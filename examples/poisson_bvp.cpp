// 1-D Poisson boundary-value problem — application [6] of the paper's
// introduction: -u'' = f on (0,1), u(0) = u(1) = 0, discretized with the
// (-1, 2, -1)/h^2 stencil. A grid-refinement study verifies second-order
// convergence of the solution computed by the hybrid solver, i.e. the
// solver's accuracy is good enough that discretization error dominates.
//
//   ./poisson_bvp [--levels 5]

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpusim/device_spec.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace tridsolve;

namespace {

// Manufactured solution u(x) = sin(pi x) + x(1-x): f = -u''.
double exact(double x) {
  return std::sin(std::numbers::pi * x) + x * (1.0 - x);
}
double rhs(double x) {
  return std::numbers::pi * std::numbers::pi * std::sin(std::numbers::pi * x) + 2.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"levels"});
  const int levels = static_cast<int>(cli.get_int("levels", 5));
  const auto dev = gpusim::gtx480();

  std::printf("1-D Poisson -u'' = f, Dirichlet BVP, hybrid solver (sim)\n");
  std::printf("%8s  %12s  %8s\n", "n", "max error", "order");

  double prev_err = 0.0;
  bool second_order = true;
  for (int level = 0; level < levels; ++level) {
    const std::size_t n = (std::size_t{1} << (8 + level)) - 1;  // interior pts
    const double h = 1.0 / static_cast<double>(n + 1);

    tridiag::SystemBatch<double> batch(1, n, tridiag::Layout::contiguous);
    auto sys = batch.system(0);
    for (std::size_t i = 0; i < n; ++i) {
      sys.a[i] = i == 0 ? 0.0 : -1.0;
      sys.b[i] = 2.0;
      sys.c[i] = i + 1 == n ? 0.0 : -1.0;
      sys.d[i] = h * h * rhs(h * static_cast<double>(i + 1));
    }
    gpu::hybrid_solve(dev, batch);

    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x = h * static_cast<double>(i + 1);
      err = std::max(err, std::abs(batch.d()[i] - exact(x)));
    }
    const double order = level == 0 ? 0.0 : std::log2(prev_err / err);
    std::printf("%8zu  %12.3e  %8s\n", n, err,
                level == 0 ? "-" : util::Table::num(order, 2).c_str());
    if (level > 0 && (order < 1.8 || order > 2.2)) second_order = false;
    prev_err = err;
  }
  std::printf("convergence is %s (expected ~2.00: discretization error "
              "dominates, solver error negligible)\n",
              second_order ? "second order" : "NOT second order");
  return second_order ? 0 : 2;
}
