// Implicit advection-diffusion on a periodic ring — exercises the
// Sherman-Morrison periodic extension (tridiag/periodic.hpp and the
// batched GPU composition in gpu_solvers/periodic_gpu.hpp).
//
//   u_t + a u_x = nu u_xx   on a circle of N cells, M independent rings
//   (e.g. M latitude bands of an atmospheric transport model), stepped
//   with backward Euler + central differences:
//
//   (1 + 2r) u_i - (r + s) u_{i-1} - (r - s) u_{i+1} = u_i^old
//   r = nu dt / h^2,  s = a dt / (2h),  indices mod N -> two corner
//   entries per matrix -> one batched periodic solve per step.
//
// A passive blob advects around the ring; mass (the discrete integral) is
// conserved exactly by this scheme, which the example verifies, and the
// peak position circulates at speed `a`.
//
//   ./ring_advection [--m 64] [--n 512] [--steps 40]

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "gpu_solvers/periodic_gpu.hpp"
#include "gpusim/device_spec.hpp"
#include "util/cli.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"m", "n", "steps"});
  const std::size_t m_count = static_cast<std::size_t>(cli.get_int("m", 64));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 512));
  const int steps = static_cast<int>(cli.get_int("steps", 40));

  const double h = 1.0 / static_cast<double>(n);
  const double dt = 0.5 * h;     // CFL-ish; implicit scheme is stable anyway
  const double a = 1.0;          // advection speed (one lap per unit time)
  const double nu = 2e-4;        // diffusion
  const double r = nu * dt / (h * h);
  const double s = a * dt / (2.0 * h);

  // M rings, each with a Gaussian blob at a ring-dependent phase.
  std::vector<std::vector<double>> u(m_count, std::vector<double>(n));
  for (std::size_t m = 0; m < m_count; ++m) {
    const double center = static_cast<double>(m) / static_cast<double>(m_count);
    for (std::size_t i = 0; i < n; ++i) {
      double x = static_cast<double>(i) * h - center;
      x -= std::round(x);  // wrap to [-0.5, 0.5)
      u[m][i] = std::exp(-x * x / 0.002);
    }
  }
  auto mass = [&](std::size_t m) {
    double total = 0.0;
    for (double v : u[m]) total += v * h;
    return total;
  };
  const double mass0 = mass(0);

  const auto dev = gpusim::gtx480();
  double sim_us = 0.0;
  for (int step = 0; step < steps; ++step) {
    tridiag::SystemBatch<double> batch(m_count, n, tridiag::Layout::contiguous);
    // alpha = A[0][n-1]: row 0's u_{i-1} coefficient wraps to u_{n-1};
    // beta = A[n-1][0]: the last row's u_{i+1} coefficient wraps to u_0.
    std::vector<gpu::PeriodicCorners<double>> corners(
        m_count, {/*alpha=*/-(r + s), /*beta=*/-(r - s)});
    for (std::size_t m = 0; m < m_count; ++m) {
      auto sys = batch.system(m);
      for (std::size_t i = 0; i < n; ++i) {
        sys.a[i] = i == 0 ? 0.0 : -(r + s);
        sys.b[i] = 1.0 + 2.0 * r;
        sys.c[i] = i + 1 == n ? 0.0 : -(r - s);
        sys.d[i] = u[m][i];
      }
    }
    const auto rep = gpu::periodic_solve_gpu<double>(dev, batch, corners);
    if (!rep.status.ok()) {
      std::fprintf(stderr, "combine failed at step %d\n", step);
      return 1;
    }
    sim_us += rep.hybrid.total_us();
    for (std::size_t m = 0; m < m_count; ++m) {
      for (std::size_t i = 0; i < n; ++i) u[m][i] = batch.d()[batch.index(m, i)];
    }
  }

  // Where did ring 0's peak end up? Expect a displacement of a*dt*steps.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (u[0][i] > u[0][peak]) peak = i;
  }
  const double expected = a * dt * static_cast<double>(steps);
  const double moved = static_cast<double>(peak) * h;  // started at 0
  double err = moved - expected;
  err -= std::round(err);  // periodic distance

  const double mass_drift = std::abs(mass(0) - mass0) / mass0;
  std::printf("%zu periodic rings of %zu cells, %d implicit steps\n", m_count,
              n, steps);
  std::printf("peak displacement %.4f (expected %.4f, periodic error %.4f)\n",
              moved, expected, std::abs(err));
  std::printf("relative mass drift %.2e (scheme is conservative)\n", mass_drift);
  std::printf("simulated GPU time %.1f us total (batched 2M=%zu systems per "
              "step via Sherman-Morrison)\n",
              sim_us, 2 * m_count);
  return (std::abs(err) < 3.0 * h && mass_drift < 1e-10) ? 0 : 2;
}
