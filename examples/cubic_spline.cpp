// Batched natural cubic-spline interpolation — application [8] of the
// paper's introduction (spline calculation, as in multi-dimensional EEMD):
// fitting M independent curves of N knots each produces M tridiagonal
// systems for the spline second derivatives, solved in one batched call.
//
// The example fits noisy samples of known smooth functions, checks the
// interpolation error at off-knot points, and compares the simulated GPU
// time against the modeled CPU baseline.
//
//   ./cubic_spline [--curves 512] [--knots 257]

#include <cmath>
#include <cstdio>
#include <vector>

#include "cpu_baselines/mkl_like.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/transition.hpp"
#include "gpusim/device_spec.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"

using namespace tridsolve;

namespace {

/// The smooth test functions the splines must recover.
double curve_value(std::size_t curve, double x) {
  switch (curve % 3) {
    case 0: return std::sin(3.0 * x) * std::exp(-0.3 * x);
    case 1: return 1.0 / (1.0 + x * x);
    default: return std::cos(2.0 * x) + 0.25 * x;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"curves", "knots"});
  const std::size_t curves = static_cast<std::size_t>(cli.get_int("curves", 512));
  const std::size_t knots = static_cast<std::size_t>(cli.get_int("knots", 257));
  const double x0 = 0.0, x1 = 4.0;
  const double h = (x1 - x0) / static_cast<double>(knots - 1);

  // Sample the curves at the knots.
  std::vector<std::vector<double>> y(curves, std::vector<double>(knots));
  for (std::size_t cvi = 0; cvi < curves; ++cvi) {
    for (std::size_t i = 0; i < knots; ++i) {
      y[cvi][i] = curve_value(cvi, x0 + h * static_cast<double>(i));
    }
  }

  // Natural cubic spline: interior second derivatives s_i solve
  //   h/6 s_{i-1} + 2h/3 s_i + h/6 s_{i+1} = (y_{i+1}-2y_i+y_{i-1})/h,
  // i = 1..knots-2; s_0 = s_{knots-1} = 0. One system per curve.
  const std::size_t n = knots - 2;
  const auto layout = gpu::heuristic_k(curves, n) == 0
                          ? tridiag::Layout::interleaved
                          : tridiag::Layout::contiguous;
  tridiag::SystemBatch<double> batch(curves, n, layout);
  for (std::size_t cvi = 0; cvi < curves; ++cvi) {
    auto sys = batch.system(cvi);
    for (std::size_t i = 0; i < n; ++i) {
      sys.a[i] = i == 0 ? 0.0 : h / 6.0;
      sys.b[i] = 2.0 * h / 3.0;
      sys.c[i] = i + 1 == n ? 0.0 : h / 6.0;
      sys.d[i] = (y[cvi][i + 2] - 2.0 * y[cvi][i + 1] + y[cvi][i]) / h;
    }
  }

  const auto dev = gpusim::gtx480();
  auto cpu_batch = batch.clone();
  const auto report = gpu::hybrid_solve(dev, batch);
  cpu::solve_batch(cpu_batch);

  // Evaluate each spline halfway between knots and measure the error
  // against the true curve, plus GPU-vs-CPU solver agreement.
  double max_err = 0.0, max_disagree = 0.0;
  for (std::size_t cvi = 0; cvi < curves; ++cvi) {
    auto s_at = [&](std::size_t knot) {  // second derivative at a knot
      if (knot == 0 || knot == knots - 1) return 0.0;
      return batch.d()[batch.index(cvi, knot - 1)];
    };
    for (std::size_t i = 0; i + 1 < knots; ++i) {
      const double xm = x0 + h * (static_cast<double>(i) + 0.5);
      const double t = 0.5;  // midpoint in [x_i, x_i+1]
      const double a = 1.0 - t, b = t;
      const double value =
          a * y[cvi][i] + b * y[cvi][i + 1] +
          ((a * a * a - a) * s_at(i) + (b * b * b - b) * s_at(i + 1)) * h * h / 6.0;
      max_err = std::max(max_err, std::abs(value - curve_value(cvi, xm)));
    }
    for (std::size_t i = 0; i < n; ++i) {
      max_disagree = std::max(
          max_disagree, std::abs(batch.d()[batch.index(cvi, i)] -
                                 cpu_batch.d()[cpu_batch.index(cvi, i)]));
    }
  }

  const cpu::CpuModel cpu_model;
  std::printf("%zu natural cubic splines of %zu knots each\n", curves, knots);
  std::printf("max interpolation error at midpoints : %.3e (h^4 ~ %.1e)\n",
              max_err, h * h * h * h);
  std::printf("GPU(sim) vs CPU solver disagreement  : %.3e\n", max_disagree);
  std::printf("hybrid: k=%u, %.1f us simulated; modeled MT CPU %.1f us "
              "(%.1fx)\n",
              report.k, report.total_us(),
              cpu_model.multithreaded_us(curves, n, true),
              cpu_model.multithreaded_us(curves, n, true) / report.total_us());
  return max_disagree < 1e-10 ? 0 : 2;
}
