// ADI (alternating-direction implicit) time stepping for the 2-D heat
// equation — the fluid-dynamics motivation of the paper's introduction
// ([2][4][5]): every half-step solves one batched tridiagonal system per
// grid line, which is exactly the (M systems) x (N unknowns) workload the
// hybrid solver targets.
//
//   u_t = alpha * (u_xx + u_yy)   on a grid of nx * ny interior points,
//   Dirichlet u = 0 boundaries, Peaceman-Rachford splitting:
//     (I - r Dxx) u*    = (I + r Dyy) u^t      (row-wise solves,   M = ny)
//     (I - r Dyy) u^t+1 = (I + r Dxx) u*       (column-wise solves, M = nx)
//
// The CPU reference path uses the real batched gtsv; the hybrid runs on
// the simulated GTX480 and must agree to round-off. The example prints the
// max temperature decay (analytically monotone) and both solvers'
// agreement, plus the simulated-GPU vs modeled-CPU time per step.
//
//   ./heat2d_adi [--nx 256] [--ny 128] [--steps 5]

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "cpu_baselines/mkl_like.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/transition.hpp"
#include "gpusim/device_spec.hpp"
#include "util/cli.hpp"

using namespace tridsolve;

namespace {

/// Fill one implicit-sweep batch: M systems (I - r D2) of size N, with the
/// right-hand side given by the explicit half (I + r D2) applied across
/// the other direction.
void build_sweep(tridiag::SystemBatch<double>& batch,
                 const std::vector<double>& u, std::size_t nx, std::size_t ny,
                 double r, bool row_sweep) {
  const std::size_t m_count = row_sweep ? ny : nx;
  const std::size_t n = row_sweep ? nx : ny;
  auto at = [&](std::size_t ix, std::size_t iy) { return u[iy * nx + ix]; };

  for (std::size_t m = 0; m < m_count; ++m) {
    auto sys = batch.system(m);
    for (std::size_t i = 0; i < n; ++i) {
      sys.a[i] = i == 0 ? 0.0 : -r;
      sys.b[i] = 1.0 + 2.0 * r;
      sys.c[i] = i + 1 == n ? 0.0 : -r;
      // Explicit half across the other direction (0 Dirichlet boundary).
      const std::size_t ix = row_sweep ? i : m;
      const std::size_t iy = row_sweep ? m : i;
      const double u_c = at(ix, iy);
      double u_lo, u_hi;
      if (row_sweep) {
        u_lo = iy > 0 ? at(ix, iy - 1) : 0.0;
        u_hi = iy + 1 < ny ? at(ix, iy + 1) : 0.0;
      } else {
        u_lo = ix > 0 ? at(ix - 1, iy) : 0.0;
        u_hi = ix + 1 < nx ? at(ix + 1, iy) : 0.0;
      }
      sys.d[i] = u_c + r * (u_lo - 2.0 * u_c + u_hi);
    }
  }
}

void scatter_solution(const tridiag::SystemBatch<double>& batch,
                      std::vector<double>& u, std::size_t nx, bool row_sweep) {
  for (std::size_t m = 0; m < batch.num_systems(); ++m) {
    for (std::size_t i = 0; i < batch.system_size(); ++i) {
      const std::size_t ix = row_sweep ? i : m;
      const std::size_t iy = row_sweep ? m : i;
      u[iy * nx + ix] = batch.d()[batch.index(m, i)];
    }
  }
}

double max_abs(const std::vector<double>& v) {
  double worst = 0.0;
  for (double x : v) worst = std::max(worst, std::abs(x));
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"nx", "ny", "steps"});
  const std::size_t nx = static_cast<std::size_t>(cli.get_int("nx", 256));
  const std::size_t ny = static_cast<std::size_t>(cli.get_int("ny", 128));
  const int steps = static_cast<int>(cli.get_int("steps", 5));
  const double r = 0.4;  // alpha * dt / h^2

  // Initial condition: product of sines (smooth decay mode).
  std::vector<double> u_gpu(nx * ny), u_cpu(nx * ny);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double sx = std::sin(std::numbers::pi * double(ix + 1) / double(nx + 1));
      const double sy = std::sin(std::numbers::pi * double(iy + 1) / double(ny + 1));
      u_gpu[iy * nx + ix] = u_cpu[iy * nx + ix] = sx * sy;
    }
  }

  const auto dev = gpusim::gtx480();
  const cpu::CpuModel cpu_model;
  double sim_gpu_us = 0.0;
  double model_cpu_us = 0.0;
  std::printf("2-D heat equation, %zux%zu grid, ADI, r=%.2f\n", nx, ny, r);
  std::printf("%5s  %12s  %12s  %14s\n", "step", "max|u| (GPU)", "max|u| (CPU)",
              "max difference");

  for (int step = 0; step < steps; ++step) {
    for (bool row_sweep : {true, false}) {
      const std::size_t m_count = row_sweep ? ny : nx;
      const std::size_t n = row_sweep ? nx : ny;
      const auto layout = gpu::heuristic_k(m_count, n) == 0
                              ? tridiag::Layout::interleaved
                              : tridiag::Layout::contiguous;

      tridiag::SystemBatch<double> gpu_batch(m_count, n, layout);
      build_sweep(gpu_batch, u_gpu, nx, ny, r, row_sweep);
      const auto rep = gpu::hybrid_solve(dev, gpu_batch);
      sim_gpu_us += rep.total_us();
      scatter_solution(gpu_batch, u_gpu, nx, row_sweep);

      tridiag::SystemBatch<double> cpu_batch(m_count, n,
                                             tridiag::Layout::contiguous);
      build_sweep(cpu_batch, u_cpu, nx, ny, r, row_sweep);
      cpu::solve_batch(cpu_batch);
      model_cpu_us += cpu_model.multithreaded_us(m_count, n, true);
      scatter_solution(cpu_batch, u_cpu, nx, row_sweep);
    }
    double diff = 0.0;
    for (std::size_t i = 0; i < u_gpu.size(); ++i) {
      diff = std::max(diff, std::abs(u_gpu[i] - u_cpu[i]));
    }
    std::printf("%5d  %12.6f  %12.6f  %14.3e\n", step + 1, max_abs(u_gpu),
                max_abs(u_cpu), diff);
  }

  std::printf("\nsimulated GPU time %.1f us vs modeled multithreaded CPU "
              "%.1f us over %d ADI steps (%.1fx)\n",
              sim_gpu_us, model_cpu_us, steps, model_cpu_us / sim_gpu_us);
  return 0;
}
