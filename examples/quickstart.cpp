// Quickstart: build one tridiagonal system, solve it three ways (host
// Thomas, pivoting LU, and the paper's hybrid on the simulated GTX480),
// and check the residual.
//
//   ./quickstart [--n 1000] [--trace]   (--trace prints the simulated
//                                        per-kernel timeline)
//   --trace-json out.json  writes a Chrome trace (open in Perfetto)
//   --json out.jsonl       appends one structured telemetry record
//   --metrics-json out.json dumps the process metrics registry
//   --break-row R          zeroes diagonal entry R: pivot-free solvers
//                          break down, the guard flags the system and the
//                          LU fallback recovers it (DESIGN.md "Guarded
//                          solve path")
//   --refine               adds residual-gated iterative refinement after
//                          the LU fallback
//   --check-hazards        runs the simulated kernels under the shared-
//                          memory hazard detector (detect|fatal) and
//                          prints the findings (expected: none)
//   --fault-seed/--fault-rate/--fault-kinds
//                          arm the deterministic fault injector; the solve
//                          switches to the resilient pipeline (retry →
//                          fallback chain → partial result) and prints the
//                          resilience report
//   --deadline-us/--max-retries
//                          resilient-pipeline budget knobs (also switch
//                          the solve onto the resilient pipeline)
//   --force-k K            pin the hybrid's PCR transition point; values
//                          out of range for the shape (2^k > N) are a
//                          structured bad-argument error (exit 2)
//   --plan-file/--autotune plan-cache knobs (see DESIGN.md "Plan cache &
//                          autotuning")

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>

#include "cpu_baselines/mkl_like.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/plan_cache.hpp"
#include "gpu_solvers/registry.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/trace.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cli.hpp"
#include "workloads/generators.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      util::with_obs_flags(
                          {"n", "trace", "break-row", "refine", "force-k"}));
  // --sim-threads / --instrument / --check-hazards
  gpusim::configure_engine_from_cli(cli);
  // --plan-file / --autotune
  gpu::configure_plan_cache_from_cli(cli);
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 1000));
  const long break_row = cli.get_int("break-row", -1);
  const bool refine = cli.get_bool("refine", false);
  const int force_k = static_cast<int>(cli.get_int("force-k", -1));

  // A diagonally dominant random system A x = d.
  util::Xoshiro256 rng(2026);
  tridiag::TridiagSystem<double> sys(n);
  workloads::fill_matrix(workloads::Kind::random_dominant, sys.ref(), rng);
  workloads::fill_rhs_random(sys.ref(), rng);
  if (break_row >= 0 && static_cast<std::size_t>(break_row) < n) {
    // A zero diagonal entry keeps the matrix nonsingular (LU with pivoting
    // still solves it) but breaks every pivot-free elimination.
    sys.b()[static_cast<std::size_t>(break_row)] = 0.0;
    std::printf("injected zero diagonal at row %ld\n", break_row);
  }

  // 1. Classic Thomas algorithm (O(n), sequential).
  auto thomas_in = sys.clone();
  util::AlignedBuffer<double> x_thomas(n);
  bool thomas_ok = true;
  if (auto st = tridiag::thomas_solve(thomas_in.ref(),
                                      tridiag::StridedView<double>(x_thomas.span()));
      !st.ok()) {
    if (break_row < 0) {
      std::fprintf(stderr, "thomas failed at row %zu\n", st.index);
      return 1;
    }
    // Expected with --break-row: the pivot-free sweep hits the zero pivot.
    std::printf("Thomas      : %s at row %zu (expected — no pivoting)\n",
                tridiag::solve_code_name(st.code), st.index);
    thomas_ok = false;
  }

  // 2. LU with partial pivoting (the robust referee).
  util::AlignedBuffer<double> x_lu(n);
  if (auto st = tridiag::lu_gtsv(sys.ref(), tridiag::StridedView<double>(x_lu.span()));
      !st.ok()) {
    std::fprintf(stderr, "lu_gtsv failed at row %zu\n", st.index);
    return 1;
  }

  // 3. The paper's hybrid tiled-PCR + p-Thomas on the simulated GTX480.
  //    (Batch of one system; the transition heuristic picks k = 8.)
  tridiag::SystemBatch<double> batch(1, n, tridiag::Layout::contiguous);
  {
    auto dst = batch.system(0);
    for (std::size_t i = 0; i < n; ++i) {
      dst.a[i] = sys.a()[i];
      dst.b[i] = sys.b()[i];
      dst.c[i] = sys.c()[i];
      dst.d[i] = sys.d()[i];
    }
  }
  const auto dev = gpusim::gtx480();
  // Fault injection or an explicit deadline/retry budget switches the
  // solve onto the resilient pipeline (DESIGN.md "Fault injection &
  // resilience"): retries, fallback chain, partial results — never a
  // crash on an injected fault.
  const bool resilient_mode =
      gpusim::ExecutionEngine::instance().fault_plan().active() ||
      cli.has("deadline-us") || cli.has("max-retries");
  gpu::HybridReport report;
  gpu::ResilientOutcome resil;
  if (resilient_mode) {
    gpu::SolverRunOptions ropts;
    ropts.guard = true;
    ropts.force_k = force_k;
    tridiag::SystemBatch<double> solved;
    resil = gpu::run_solver_resilient<double>(
        gpu::SolverKind::hybrid, dev, batch, ropts,
        gpu::engine_resilience_policy(), &solved);
    batch = std::move(solved);  // recovered solutions (or pristine d)
  } else {
    gpu::HybridOptions hopts;
    hopts.force_k = force_k;
    // Guard detection is always on (it is free); recovery is armed when a
    // breakdown is being demonstrated or refinement was requested.
    hopts.guard.fallback = break_row >= 0 || refine;
    hopts.guard.refine = refine;
    try {
      report = gpu::hybrid_solve(dev, batch, hopts);
    } catch (const std::invalid_argument& e) {
      // A forced k out of range for the shape: structured rejection, the
      // same condition run_solver reports as bad_argument.
      std::fprintf(stderr, "quickstart: %s: %s\n",
                   tridiag::solve_code_name(tridiag::SolveCode::bad_argument),
                   e.what());
      return 2;
    }
  }

  // Residuals against the original system.
  const auto sys_c = tridiag::as_const(sys.ref());
  const double r_thomas = tridiag::relative_residual(
      sys_c, tridiag::StridedView<const double>(x_thomas.data(), n, 1));
  const double r_lu = tridiag::relative_residual(
      sys_c, tridiag::StridedView<const double>(x_lu.data(), n, 1));
  const double r_hybrid = tridiag::relative_residual(
      sys_c, tridiag::as_const(batch.system(0)).d);

  std::printf("n = %zu\n", n);
  if (thomas_ok) {
    std::printf("Thomas      : relative residual %.3e\n", r_thomas);
  }
  std::printf("LU (gtsv)   : relative residual %.3e\n", r_lu);
  if (resilient_mode) {
    const auto& rep = resil.report;
    const auto& out = resil.outcome;
    std::printf("Hybrid (resilient): relative residual %.3e, k=%d, %.1f us "
                "simulated on %s\n",
                r_hybrid, out.k, out.time_us, dev.name.c_str());
    std::printf("Resilience  : %zu attempt(s), %zu retrie(s), %zu fallback "
                "stage(s), worst=%s%s%s\n",
                rep.attempts.size(), rep.retries, rep.fallback_stages,
                tridiag::solve_code_name(rep.worst),
                rep.partial ? ", PARTIAL" : "",
                rep.deadline_exceeded ? ", DEADLINE EXCEEDED" : "");
    std::printf("Faults      : flips=%zu shared=%zu nan=%zu launch=%zu "
                "timeout=%zu\n",
                out.faults.bit_flips, out.faults.shared_corruptions,
                out.faults.nan_writes, out.faults.launch_failures,
                out.faults.timeouts);
  }
  if (!resilient_mode && report.flagged > 0) {
    std::printf("Guard       : %zu system(s) flagged (%s at row %zu, growth "
                "%.2e), %zu LU fallback solve(s), %zu refinement step(s)\n",
                report.flagged, tridiag::solve_code_name(report.status[0].code),
                report.status[0].index, report.status[0].pivot_growth,
                report.fallback_solves, report.refine_steps);
  }
  if (!resilient_mode && report.timeline.timed()) {
    std::printf("Hybrid (sim): relative residual %.3e, k=%u, %zu reduced "
                "systems, %.1f us simulated on %s (PCR share %.0f%%)\n",
                r_hybrid, report.k, report.reduced_systems, report.total_us(),
                dev.name.c_str(), 100.0 * report.pcr_fraction());
  } else if (!resilient_mode) {
    // --instrument functional: the engine recorded no costs, so there is
    // no simulated time to report (and total_us() would refuse).
    std::printf("Hybrid (sim): relative residual %.3e, k=%u, %zu reduced "
                "systems, functional_only (no simulated timing) on %s\n",
                r_hybrid, report.k, report.reduced_systems, dev.name.c_str());
  }
  if (!resilient_mode &&
      gpusim::ExecutionEngine::instance().default_hazards() !=
          gpusim::HazardMode::off) {
    // Sum the per-launch hazard findings over the whole solve. A clean
    // run (the expected outcome) still reports tracked > 0, proving the
    // detector actually inspected the kernels' shared accesses.
    gpusim::HazardCounts hz;
    for (const auto& seg : report.timeline.segments()) {
      hz.merge(seg.stats.hazards);
    }
    std::printf("Hazards     : raw=%zu war=%zu waw=%zu oob=%zu divergence=%zu "
                "(%zu shared accesses tracked)\n",
                hz.raw, hz.war, hz.waw, hz.oob, hz.divergence, hz.tracked);
  }
  if (!resilient_mode && cli.get_bool("trace", false) &&
      report.timeline.timed()) {
    std::fputs(
        gpusim::timeline_table(dev, report.timeline, "hybrid solve timeline")
            .to_ascii()
            .c_str(),
        stdout);
  }

  // Structured observability outputs (see DESIGN.md "Observability").
  // Both consume simulated times, so neither exists in functional_only.
  if (const std::string trace_path = cli.get_string("trace-json", "");
      !resilient_mode && !trace_path.empty() && report.timeline.timed()) {
    obs::ChromeTraceBuilder trace("quickstart");
    trace.add_timeline(dev, report.timeline,
                       "hybrid N=" + std::to_string(n));
    trace.write_file(trace_path);
    std::printf("wrote Chrome trace (%zu events) to %s\n", trace.event_count(),
                trace_path.c_str());
  }
  if (const std::string jsonl_path = cli.get_string("json", "");
      !jsonl_path.empty() && (resilient_mode || report.timeline.timed())) {
    obs::JsonlSink sink(jsonl_path);
    obs::JsonValue rec = obs::JsonValue::object();
    rec["bench"] = "quickstart";
    rec["m"] = 1.0;
    rec["n"] = static_cast<double>(n);
    rec["residual"] = r_hybrid;
    if (resilient_mode) {
      const auto& rep = resil.report;
      const auto& out = resil.outcome;
      rec["solver"] = "hybrid-resilient";
      rec["time_us"] = out.time_us;
      rec["k"] = static_cast<double>(out.k);
      rec["guard_flagged"] = static_cast<double>(out.flagged);
      // fault_* group (all-or-nothing, tools/validate_telemetry): present
      // exactly when a FaultPlan is armed; counts are this record's own
      // injections (one record per process here, so totals == deltas).
      const auto& plan = gpusim::ExecutionEngine::instance().fault_plan();
      if (plan.active()) {
        rec["fault_seed"] = static_cast<double>(plan.seed);
        rec["fault_rate"] = plan.rate;
        rec["fault_bit_flips"] = static_cast<double>(out.faults.bit_flips);
        rec["fault_shared_corruptions"] =
            static_cast<double>(out.faults.shared_corruptions);
        rec["fault_nan_writes"] = static_cast<double>(out.faults.nan_writes);
        rec["fault_launch_failures"] =
            static_cast<double>(out.faults.launch_failures);
        rec["fault_timeouts"] = static_cast<double>(out.faults.timeouts);
      }
      // resilience_* group (all-or-nothing): what the pipeline did.
      rec["resilience_retries"] = static_cast<double>(rep.retries);
      rec["resilience_fallbacks"] = static_cast<double>(rep.fallback_stages);
      rec["resilience_spent_us"] = rep.spent_us;
      rec["resilience_partial"] = rep.partial ? 1.0 : 0.0;
      rec["resilience_deadline_exceeded"] = rep.deadline_exceeded ? 1.0 : 0.0;
      rec["resilience_worst"] = std::string(tridiag::solve_code_name(rep.worst));
    } else {
      rec["solver"] = "hybrid";
      rec["time_us"] = report.total_us();
      rec["k"] = static_cast<double>(report.k);
      rec["guard_flagged"] = static_cast<double>(report.flagged);
      rec["guard_fallback"] = static_cast<double>(report.fallback_solves);
      rec["guard_refined"] = static_cast<double>(report.refine_steps);
    }
    sink.write(rec);
  }
  if (const std::string metrics_path = cli.get_string("metrics-json", "");
      !metrics_path.empty()) {
    if (std::FILE* f = std::fopen(metrics_path.c_str(), "w")) {
      const std::string dump = obs::MetricsRegistry::instance().to_json().dump(1);
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }
  return r_hybrid < 1e-10 ? 0 : 2;
}
