// Line relaxation for anisotropic elliptic problems — the multigrid
// application of the paper's introduction ([9] Prieto et al., [10]
// Göddeke & Strzodka use tridiagonal solvers as multigrid smoothers).
//
// Problem:  -(eps * u_xx + u_yy) = f  on the unit square, Dirichlet 0,
// with strong anisotropy eps << 1. Point-Jacobi stalls on such problems
// (error modes smooth in x but oscillatory in y barely damp), while
// *zebra y-line relaxation* — solving whole tridiagonal systems along the
// strongly-coupled direction, all even columns in one batch and all odd
// columns in the next — stays an excellent smoother. Each half-sweep is
// exactly the paper's batched workload: M = nx/2 systems of ny unknowns,
// solved here by the hybrid GPU solver.
//
//   ./anisotropic_smoother [--n 128] [--eps 0.01] [--sweeps 30]

#include <cmath>
#include <cstdio>
#include <vector>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/transition.hpp"
#include "gpusim/device_spec.hpp"
#include "util/cli.hpp"

using namespace tridsolve;

namespace {

struct Grid {
  std::size_t n;     // interior points per side
  double eps;        // anisotropy
  std::vector<double> u, f;

  [[nodiscard]] double& at(std::vector<double>& v, std::size_t ix,
                           std::size_t iy) const {
    return v[iy * n + ix];
  }
  [[nodiscard]] double val(const std::vector<double>& v, std::ptrdiff_t ix,
                           std::ptrdiff_t iy) const {
    if (ix < 0 || iy < 0 || ix >= static_cast<std::ptrdiff_t>(n) ||
        iy >= static_cast<std::ptrdiff_t>(n)) {
      return 0.0;  // Dirichlet boundary
    }
    return v[static_cast<std::size_t>(iy) * n + static_cast<std::size_t>(ix)];
  }

  /// Residual r = f - A u with A = -(eps Dxx + Dyy) (h^2-scaled stencil).
  [[nodiscard]] double residual_norm() const {
    double sq = 0.0;
    for (std::size_t iy = 0; iy < n; ++iy) {
      for (std::size_t ix = 0; ix < n; ++ix) {
        const auto x = static_cast<std::ptrdiff_t>(ix);
        const auto y = static_cast<std::ptrdiff_t>(iy);
        const double au =
            (2.0 * eps + 2.0) * val(u, x, y) -
            eps * (val(u, x - 1, y) + val(u, x + 1, y)) -
            (val(u, x, y - 1) + val(u, x, y + 1));
        const double r = f[iy * n + ix] - au;
        sq += r * r;
      }
    }
    return std::sqrt(sq);
  }
};

/// One point-Jacobi sweep (damped 0.8).
void jacobi_sweep(Grid& g) {
  std::vector<double> next = g.u;
  for (std::size_t iy = 0; iy < g.n; ++iy) {
    for (std::size_t ix = 0; ix < g.n; ++ix) {
      const auto x = static_cast<std::ptrdiff_t>(ix);
      const auto y = static_cast<std::ptrdiff_t>(iy);
      const double rhs = g.f[iy * g.n + ix] +
                         g.eps * (g.val(g.u, x - 1, y) + g.val(g.u, x + 1, y)) +
                         g.val(g.u, x, y - 1) + g.val(g.u, x, y + 1);
      const double unew = rhs / (2.0 * g.eps + 2.0);
      g.at(next, ix, iy) = 0.2 * g.val(g.u, x, y) + 0.8 * unew;
    }
  }
  g.u.swap(next);
}

/// One zebra y-line Gauss-Seidel sweep: two batched tridiagonal solves
/// (even columns, then odd columns) along the strongly coupled direction.
void zebra_line_sweep(Grid& g, const gpusim::DeviceSpec& dev,
                      double* sim_us_total) {
  for (int parity = 0; parity < 2; ++parity) {
    std::vector<std::size_t> cols;
    for (std::size_t ix = static_cast<std::size_t>(parity); ix < g.n; ix += 2) {
      cols.push_back(ix);
    }
    const auto layout = gpu::heuristic_k(cols.size(), g.n) == 0
                            ? tridiag::Layout::interleaved
                            : tridiag::Layout::contiguous;
    tridiag::SystemBatch<double> batch(cols.size(), g.n, layout);
    for (std::size_t m = 0; m < cols.size(); ++m) {
      const auto ix = static_cast<std::ptrdiff_t>(cols[m]);
      auto sys = batch.system(m);
      for (std::size_t iy = 0; iy < g.n; ++iy) {
        sys.a[iy] = iy == 0 ? 0.0 : -1.0;
        sys.b[iy] = 2.0 * g.eps + 2.0;
        sys.c[iy] = iy + 1 == g.n ? 0.0 : -1.0;
        const auto y = static_cast<std::ptrdiff_t>(iy);
        sys.d[iy] = g.f[iy * g.n + cols[m]] +
                    g.eps * (g.val(g.u, ix - 1, y) + g.val(g.u, ix + 1, y));
      }
    }
    const auto rep = gpu::hybrid_solve(dev, batch);
    *sim_us_total += rep.total_us();
    for (std::size_t m = 0; m < cols.size(); ++m) {
      for (std::size_t iy = 0; iy < g.n; ++iy) {
        g.at(g.u, cols[m], iy) = batch.d()[batch.index(m, iy)];
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, {"n", "eps", "sweeps"});
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 128));
  const double eps = cli.get_double("eps", 0.01);
  const int sweeps = static_cast<int>(cli.get_int("sweeps", 30));
  const auto dev = gpusim::gtx480();

  auto make_grid = [&] {
    Grid g{n, eps, std::vector<double>(n * n, 0.0), std::vector<double>(n * n)};
    for (std::size_t iy = 0; iy < n; ++iy) {
      for (std::size_t ix = 0; ix < n; ++ix) {
        g.f[iy * n + ix] =
            std::sin(7.0 * static_cast<double>(ix + 1) / static_cast<double>(n)) *
            std::cos(5.0 * static_cast<double>(iy + 1) / static_cast<double>(n));
      }
    }
    return g;
  };

  Grid jac = make_grid();
  Grid line = make_grid();
  double sim_us = 0.0;

  const double r0 = jac.residual_norm();
  std::printf("-(%.3g u_xx + u_yy) = f, %zux%zu grid, initial residual %.3e\n",
              eps, n, n, r0);
  std::printf("%6s  %14s  %14s\n", "sweep", "point-Jacobi", "zebra y-line");
  for (int s = 1; s <= sweeps; ++s) {
    jacobi_sweep(jac);
    zebra_line_sweep(line, dev, &sim_us);
    if (s <= 5 || s % 10 == 0) {
      std::printf("%6d  %14.3e  %14.3e\n", s, jac.residual_norm(),
                  line.residual_norm());
    }
  }

  const double rho_jac = std::pow(jac.residual_norm() / r0, 1.0 / sweeps);
  const double rho_line = std::pow(line.residual_norm() / r0, 1.0 / sweeps);
  std::printf("\nper-sweep residual reduction: point-Jacobi %.3f vs "
              "zebra line %.3f\n",
              rho_jac, rho_line);
  std::printf("batched line solves: %.1f us simulated GPU time over %d "
              "sweeps (2 batches of M=%zu, N=%zu each)\n",
              sim_us, sweeps, n / 2, n);
  return rho_line < rho_jac ? 0 : 2;
}
