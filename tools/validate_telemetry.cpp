// Schema validator for the observability layer's file outputs, used by
// the `bench-smoke` CTest entries (and handy interactively):
//
//   validate_telemetry --jsonl table2.jsonl [--min-records 3]
//                      [--trace table2.trace.json] [--spans spans.jsonl]
//
// JSONL checks, per line: parses as a JSON object; `bench` and `solver`
// are non-empty strings; `m` and `n` are positive numbers; `time_us` is a
// non-negative number; `phases` (when present) is an object of
// non-negative numbers whose sum matches `time_us`; the optional guard
// taxonomy fields (`guard_flagged`, `guard_fallback`, `guard_refined`)
// are numbers >= 0; the hazard block (present when the producing bench
// ran with --check-hazards) is all-or-nothing: `hazard_mode` must be
// "detect" or "fatal" and every `hazard_{raw,war,waw,oob,divergence}`
// counter must be a number >= 0. The fault block (present when the
// producer ran with --fault-rate/--fault-seed/--fault-kinds) is likewise
// all-or-nothing: `fault_seed` >= 0, `fault_rate` in [0,1] and all five
// `fault_*` counters >= 0. The resilience block (written by the
// resilient solve pipeline) is all-or-nothing too: the `resilience_*`
// numbers >= 0, the two booleans 0/1, and `resilience_worst` a SolveCode
// name.
//
// Every JSONL line must additionally be in *canonical form*: parsing it
// and re-serializing compactly reproduces the input bytes. The JSON
// writer sorts object keys and uses round-tripping number formatting, so
// anything the observability layer emits is already canonical — the
// check pins that byte-stability (diffable telemetry, stable perfdiff
// keys) against drift.
//
// Roofline records (bench_profile --json, marked by a `frac_bandwidth`
// field or a `roofline` object) must carry the full attribution block:
// byte/FLOP tallies >= 0, achieved/peak rates >= 0, and `bound` either
// "bandwidth" or "compute". A `hist_launch_us` object must hold ordered
// quantiles (p50 <= p90 <= p99 <= max) with a count >= 0.
//
// Span checks (--spans, written by --spans-json): every line is an
// object with a positive numeric `span` id, non-empty `name`, numeric
// `parent` that is 0 or another span id present in the file, and
// monotonic clocks (wall_t1_us >= wall_t0_us, sim_t1_us >= sim_t0_us).
//
// Chrome-trace checks: top-level object with a `traceEvents` array; every
// event has a string `name` and `ph`; "X" (duration) events carry
// numeric ts/dur/pid/tid with ts, dur >= 0; within each (pid, tid) track,
// events sorted by ts are non-overlapping (monotonic timeline).
//
// The plan block (written by bench::Telemetry for hybrid-family records
// and by bench_autotune) is all-or-nothing as well: `plan_source` a
// PlanSource name, `plan_cached` 0/1, `plan_k` >= 0, `plan_variant` a
// string and `plan_c` >= 1.
//
// The service block (written by bench_service, one record per sweep
// point of the saturation curve) is all-or-nothing too: the eleven
// `service_*` numbers >= 0, `service_requests` >= 1, expired bounded by
// requests, mean occupancy <= max occupancy and p50 <= p99.
//
// Calibration-file checks (--plan, written by bench_autotune --out):
// schema tridsolve-plan-v1, device name plus decimal-string fingerprint,
// and per-plan shape/variant sanity (2^k must fit n, concrete variant,
// c >= 1). Counter assertions (--metrics FILE --require-counters
// "a>=1,b<=0,c==2"): each comma term checks one counter of a
// --metrics-json dump; counters the registry never touched read as 0.
//
// Exit code 0 on success; 1 with a diagnostic on the first failure.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/cli.hpp"

using tridsolve::obs::JsonValue;

namespace {

[[noreturn]] void fail(const std::string& msg) {
  std::fprintf(stderr, "validate_telemetry: FAIL: %s\n", msg.c_str());
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (!v) fail(where + ": missing key \"" + key + "\"");
  return *v;
}

double require_number(const JsonValue& obj, const std::string& key,
                      const std::string& where) {
  const JsonValue& v = require(obj, key, where);
  if (!v.is_number()) fail(where + ": \"" + key + "\" is not a number");
  return v.as_number();
}

std::string require_string(const JsonValue& obj, const std::string& key,
                           const std::string& where) {
  const JsonValue& v = require(obj, key, where);
  if (!v.is_string() || v.as_string().empty()) {
    fail(where + ": \"" + key + "\" is not a non-empty string");
  }
  return v.as_string();
}

/// Canonical-form pin: re-serializing the parsed line must reproduce the
/// input byte for byte (sorted keys + round-tripping number format).
void require_canonical(const JsonValue& rec, const std::string& line,
                       const std::string& where) {
  const std::string canon = rec.dump();
  if (canon != line) {
    fail(where + ": line is not in canonical form (re-serialized bytes "
         "differ; keys unsorted or non-canonical number formatting?)\n  got: " +
         line + "\n want: " + canon);
  }
}

/// One roofline attribution object (a bench_profile per-phase record, or
/// one entry of a total record's `roofline` map).
void validate_roofline(const JsonValue& attr, const std::string& where) {
  for (const char* key :
       {"bytes_global", "bytes_shared", "flops_f32", "flops_f64",
        "achieved_gbps", "achieved_gflops", "frac_bandwidth", "frac_compute",
        "intensity", "time_us"}) {
    if (require_number(attr, key, where) < 0) {
      fail(where + ": \"" + std::string(key) + "\" < 0");
    }
  }
  if (require_number(attr, "peak_gbps", where) <= 0) {
    fail(where + ": peak_gbps <= 0");
  }
  const std::string bound = require_string(attr, "bound", where);
  if (bound != "bandwidth" && bound != "compute") {
    fail(where + ": bound \"" + bound + "\" is not bandwidth|compute");
  }
}

std::size_t validate_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::size_t records = 0, lineno = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::string where = path + ":" + std::to_string(lineno);
    const auto parsed = JsonValue::parse(line);
    if (!parsed) fail(where + ": line is not valid JSON");
    if (!parsed->is_object()) fail(where + ": record is not a JSON object");
    const JsonValue& rec = *parsed;
    require_canonical(rec, line, where);

    require_string(rec, "bench", where);
    require_string(rec, "solver", where);
    if (require_number(rec, "m", where) <= 0) fail(where + ": m <= 0");
    if (require_number(rec, "n", where) <= 0) fail(where + ": n <= 0");
    const double time_us = require_number(rec, "time_us", where);
    if (time_us < 0) fail(where + ": time_us < 0");

    // Guard taxonomy fields are optional (hybrid records carry them);
    // when present each must be a count >= 0.
    for (const char* key :
         {"guard_flagged", "guard_fallback", "guard_refined"}) {
      if (const JsonValue* v = rec.find(key)) {
        if (!v->is_number() || v->as_number() < 0) {
          fail(where + ": \"" + key + "\" is not a number >= 0");
        }
      }
    }

    // Hazard block: written together by bench::Telemetry, so a partial
    // block means the producer (or the schema) drifted.
    static constexpr const char* hazard_keys[] = {
        "hazard_raw", "hazard_war", "hazard_waw", "hazard_oob",
        "hazard_divergence"};
    const bool has_mode = rec.find("hazard_mode") != nullptr;
    bool has_any_count = false, has_all_counts = true;
    for (const char* key : hazard_keys) {
      if (rec.find(key)) has_any_count = true;
      else has_all_counts = false;
    }
    if (has_mode || has_any_count) {
      if (!has_mode || !has_all_counts) {
        fail(where + ": partial hazard block (need hazard_mode plus all five"
             " hazard_{raw,war,waw,oob,divergence} counters)");
      }
      const std::string mode = require_string(rec, "hazard_mode", where);
      if (mode != "detect" && mode != "fatal") {
        fail(where + ": hazard_mode \"" + mode +
             "\" is not \"detect\" or \"fatal\"");
      }
      for (const char* key : hazard_keys) {
        if (require_number(rec, key, where) < 0) {
          fail(where + ": \"" + std::string(key) + "\" < 0");
        }
      }
    }

    // Fault block: written together (bench::Telemetry or quickstart) when
    // a FaultPlan is armed — all-or-nothing like the hazard block.
    static constexpr const char* fault_keys[] = {
        "fault_bit_flips", "fault_shared_corruptions", "fault_nan_writes",
        "fault_launch_failures", "fault_timeouts"};
    bool has_fault_any = rec.find("fault_seed") || rec.find("fault_rate");
    bool has_fault_all =
        rec.find("fault_seed") != nullptr && rec.find("fault_rate") != nullptr;
    for (const char* key : fault_keys) {
      if (rec.find(key)) has_fault_any = true;
      else has_fault_all = false;
    }
    if (has_fault_any) {
      if (!has_fault_all) {
        fail(where + ": partial fault block (need fault_seed, fault_rate and"
             " all five fault_{bit_flips,shared_corruptions,nan_writes,"
             "launch_failures,timeouts} counters)");
      }
      if (require_number(rec, "fault_seed", where) < 0) {
        fail(where + ": fault_seed < 0");
      }
      const double rate = require_number(rec, "fault_rate", where);
      if (rate < 0 || rate > 1) fail(where + ": fault_rate outside [0,1]");
      for (const char* key : fault_keys) {
        if (require_number(rec, key, where) < 0) {
          fail(where + ": \"" + std::string(key) + "\" < 0");
        }
      }
    }

    // Resilience block: written by the resilient solve pipeline —
    // all-or-nothing, with a severity code name in resilience_worst.
    static constexpr const char* resilience_counts[] = {
        "resilience_retries", "resilience_fallbacks", "resilience_spent_us",
        "resilience_partial", "resilience_deadline_exceeded"};
    bool has_res_any = rec.find("resilience_worst") != nullptr;
    bool has_res_all = has_res_any;
    for (const char* key : resilience_counts) {
      if (rec.find(key)) has_res_any = true;
      else has_res_all = false;
    }
    if (has_res_any) {
      if (!has_res_all) {
        fail(where + ": partial resilience block (need resilience_worst plus"
             " resilience_{retries,fallbacks,spent_us,partial,"
             "deadline_exceeded})");
      }
      for (const char* key : resilience_counts) {
        if (require_number(rec, key, where) < 0) {
          fail(where + ": \"" + std::string(key) + "\" < 0");
        }
      }
      for (const char* key :
           {"resilience_partial", "resilience_deadline_exceeded"}) {
        const double v = require_number(rec, key, where);
        if (v != 0.0 && v != 1.0) {
          fail(where + ": \"" + std::string(key) + "\" is not 0 or 1");
        }
      }
      static constexpr const char* codes[] = {
          "ok", "near_singular", "zero_pivot", "timed_out", "launch_failed",
          "singular", "deadline", "overloaded", "bad_size", "bad_argument"};
      const std::string worst = require_string(rec, "resilience_worst", where);
      if (std::find_if(std::begin(codes), std::end(codes),
                       [&worst](const char* c) { return worst == c; }) ==
          std::end(codes)) {
        fail(where + ": resilience_worst \"" + worst +
             "\" is not a SolveCode name");
      }
    }

    // Plan provenance block (hybrid and autotune records): written
    // together by bench::Telemetry / bench_autotune — all-or-nothing.
    static constexpr const char* plan_keys[] = {
        "plan_source", "plan_cached", "plan_k", "plan_variant", "plan_c"};
    bool has_plan_any = false, has_plan_all = true;
    for (const char* key : plan_keys) {
      if (rec.find(key)) has_plan_any = true;
      else has_plan_all = false;
    }
    if (has_plan_any) {
      if (!has_plan_all) {
        fail(where + ": partial plan block (need all of plan_{source,cached,"
             "k,variant,c})");
      }
      static constexpr const char* sources[] = {
          "heuristic", "cost_model", "forced", "calibrated", "autotuned"};
      const std::string source = require_string(rec, "plan_source", where);
      if (std::find_if(std::begin(sources), std::end(sources),
                       [&source](const char* s) { return source == s; }) ==
          std::end(sources)) {
        fail(where + ": plan_source \"" + source +
             "\" is not a PlanSource name");
      }
      const double cached = require_number(rec, "plan_cached", where);
      if (cached != 0.0 && cached != 1.0) {
        fail(where + ": plan_cached is not 0 or 1");
      }
      if (require_number(rec, "plan_k", where) < 0) fail(where + ": plan_k < 0");
      require_string(rec, "plan_variant", where);
      if (require_number(rec, "plan_c", where) < 1) fail(where + ": plan_c < 1");
    }

    // Service saturation block (bench_service records): written together
    // per sweep point — all-or-nothing like the other blocks, with
    // internal consistency (expired bounded by requests, ordered
    // occupancy and latency quantiles).
    static constexpr const char* service_keys[] = {
        "service_offered_rps",    "service_achieved_rps",
        "service_requests",       "service_expired",
        "service_batches",        "service_occupancy_mean",
        "service_occupancy_max",  "service_p50_us",
        "service_p99_us",         "service_batched_sim_us",
        "service_solo_sim_us",    "service_shed",
        "service_degraded",       "service_retried"};
    bool has_svc_any = false, has_svc_all = true;
    for (const char* key : service_keys) {
      if (rec.find(key)) has_svc_any = true;
      else has_svc_all = false;
    }
    if (has_svc_any) {
      if (!has_svc_all) {
        fail(where + ": partial service block (need all of service_{offered_"
             "rps,achieved_rps,requests,expired,batches,occupancy_mean,"
             "occupancy_max,p50_us,p99_us,batched_sim_us,solo_sim_us,shed,"
             "degraded,retried})");
      }
      for (const char* key : service_keys) {
        if (require_number(rec, key, where) < 0) {
          fail(where + ": \"" + std::string(key) + "\" < 0");
        }
      }
      const double requests = require_number(rec, "service_requests", where);
      if (requests < 1) fail(where + ": service_requests < 1");
      if (require_number(rec, "service_expired", where) > requests) {
        fail(where + ": service_expired > service_requests");
      }
      // Shed/degraded/retried are per-request tallies: each request is
      // shed or dispatched (possibly degraded/retried), never both more
      // than once — so none can exceed the request count.
      for (const char* key :
           {"service_shed", "service_degraded", "service_retried"}) {
        if (require_number(rec, key, where) > requests) {
          fail(where + ": \"" + std::string(key) + "\" > service_requests");
        }
      }
      if (require_number(rec, "service_occupancy_mean", where) >
          require_number(rec, "service_occupancy_max", where)) {
        fail(where + ": service_occupancy_mean > service_occupancy_max");
      }
      if (require_number(rec, "service_p50_us", where) >
          require_number(rec, "service_p99_us", where)) {
        fail(where + ": service_p50_us > service_p99_us");
      }
    }

    // Roofline attribution: a bench_profile per-phase record carries the
    // block inline; a total record maps phase label -> block.
    if (rec.find("frac_bandwidth")) validate_roofline(rec, where);
    if (const JsonValue* roof = rec.find("roofline")) {
      if (!roof->is_object()) fail(where + ": roofline is not an object");
      for (const auto& [phase, attr] : roof->as_object()) {
        if (!attr.is_object()) {
          fail(where + ": roofline[\"" + phase + "\"] is not an object");
        }
        validate_roofline(attr, where + " roofline[\"" + phase + "\"]");
      }
    }

    // Latency-histogram quantiles: ordered, with a sane count.
    if (const JsonValue* hist = rec.find("hist_launch_us")) {
      const std::string hw = where + " hist_launch_us";
      if (!hist->is_object()) fail(hw + ": not an object");
      const double count = require_number(*hist, "count", hw);
      if (count < 0) fail(hw + ": count < 0");
      const double p50 = require_number(*hist, "p50", hw);
      const double p90 = require_number(*hist, "p90", hw);
      const double p99 = require_number(*hist, "p99", hw);
      const double mx = require_number(*hist, "max", hw);
      if (count > 0 && !(p50 <= p90 && p90 <= p99 && p99 <= mx)) {
        fail(hw + ": quantiles out of order (need p50 <= p90 <= p99 <= max)");
      }
    }

    if (const JsonValue* phases = rec.find("phases")) {
      if (!phases->is_object()) fail(where + ": phases is not an object");
      double sum = 0.0;
      for (const auto& [label, v] : phases->as_object()) {
        if (!v.is_number() || v.as_number() < 0) {
          fail(where + ": phase \"" + label + "\" is not a number >= 0");
        }
        sum += v.as_number();
      }
      const double tol = 1e-6 * std::max(1.0, time_us);
      if (phases->size() > 0 && std::abs(sum - time_us) > tol) {
        fail(where + ": phases sum " + std::to_string(sum) +
             " != time_us " + std::to_string(time_us));
      }
    }
    ++records;
  }
  return records;
}

std::size_t validate_spans(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  struct SpanRow {
    double id, parent;
    std::string where;
  };
  std::vector<SpanRow> rows;
  std::map<double, std::size_t> ids;
  std::size_t lineno = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::string where = path + ":" + std::to_string(lineno);
    const auto parsed = JsonValue::parse(line);
    if (!parsed) fail(where + ": line is not valid JSON");
    if (!parsed->is_object()) fail(where + ": span is not a JSON object");
    const JsonValue& rec = *parsed;
    require_canonical(rec, line, where);

    const double id = require_number(rec, "span", where);
    if (id <= 0) fail(where + ": span id <= 0");
    if (!ids.emplace(id, lineno).second) {
      fail(where + ": duplicate span id " + std::to_string(id));
    }
    require_string(rec, "name", where);
    const double parent = require_number(rec, "parent", where);
    if (parent < 0) fail(where + ": parent < 0");
    if (require_number(rec, "thread", where) < 0) fail(where + ": thread < 0");
    const double wall_t0 = require_number(rec, "wall_t0_us", where);
    const double wall_t1 = require_number(rec, "wall_t1_us", where);
    if (wall_t1 < wall_t0) fail(where + ": wall_t1_us < wall_t0_us");
    const double sim_t0 = require_number(rec, "sim_t0_us", where);
    const double sim_t1 = require_number(rec, "sim_t1_us", where);
    if (sim_t1 < sim_t0) fail(where + ": sim_t1_us < sim_t0_us");
    if (const JsonValue* attrs = rec.find("attrs")) {
      if (!attrs->is_object()) fail(where + ": attrs is not an object");
    }
    rows.push_back({id, parent, where});
  }
  // Second pass: every non-zero parent must name a span in this file
  // (spans are emitted at scope exit, so children precede parents —
  // resolution cannot be checked line by line).
  for (const SpanRow& row : rows) {
    if (row.parent != 0 && ids.find(row.parent) == ids.end()) {
      fail(row.where + ": parent " + std::to_string(row.parent) +
           " does not name a span in this file");
    }
  }
  return rows.size();
}

void validate_trace(const std::string& path) {
  const auto parsed = JsonValue::parse(read_file(path));
  if (!parsed) fail(path + ": not valid JSON");
  if (!parsed->is_object()) fail(path + ": top level is not an object");
  const JsonValue& events = require(*parsed, "traceEvents", path);
  if (!events.is_array()) fail(path + ": traceEvents is not an array");

  // (pid, tid) -> sorted-by-ts [start, end) intervals of "X" events.
  std::map<std::pair<double, double>, std::vector<std::pair<double, double>>>
      tracks;
  std::size_t idx = 0, durations = 0;
  for (const JsonValue& ev : events.as_array()) {
    const std::string where = path + " traceEvents[" + std::to_string(idx++) +
                              "]";
    if (!ev.is_object()) fail(where + ": event is not an object");
    require_string(ev, "name", where);
    const std::string ph = require_string(ev, "ph", where);
    if (ph != "X") continue;
    const double ts = require_number(ev, "ts", where);
    const double dur = require_number(ev, "dur", where);
    if (ts < 0) fail(where + ": ts < 0");
    if (dur < 0) fail(where + ": dur < 0");
    const double pid = require_number(ev, "pid", where);
    const double tid = require_number(ev, "tid", where);
    tracks[{pid, tid}].emplace_back(ts, ts + dur);
    ++durations;
  }
  if (durations == 0) fail(path + ": no duration (\"X\") events");

  for (auto& [track, spans] : tracks) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].first + 1e-9 < spans[i - 1].second) {
        fail(path + ": overlapping events on tid " +
             std::to_string(track.second) + " (ts " +
             std::to_string(spans[i].first) + " starts before previous event"
             " ends at " + std::to_string(spans[i - 1].second) + ")");
      }
    }
  }
  std::printf("validate_telemetry: %s OK (%zu duration events, %zu tracks)\n",
              path.c_str(), durations, tracks.size());
}

/// Calibration-file checks (bench_autotune --out): schema tag, device
/// identity (name + decimal-string fingerprint) and per-plan sanity —
/// positive shape, k that fits it, a concrete (non-auto) window variant
/// and c >= 1. Returns the number of plans.
std::size_t validate_plan_file(const std::string& path) {
  const auto parsed = JsonValue::parse(read_file(path));
  if (!parsed) fail(path + ": not valid JSON");
  if (!parsed->is_object()) fail(path + ": top level is not an object");
  const JsonValue& doc = *parsed;
  const std::string schema = require_string(doc, "schema", path);
  if (schema != "tridsolve-plan-v1") {
    fail(path + ": schema \"" + schema + "\" is not tridsolve-plan-v1");
  }
  require_string(doc, "device", path);
  const std::string fp = require_string(doc, "fingerprint", path);
  if (fp.find_first_not_of("0123456789") != std::string::npos) {
    fail(path + ": fingerprint is not a decimal string");
  }
  const JsonValue& plans = require(doc, "plans", path);
  if (!plans.is_array()) fail(path + ": plans is not an array");
  std::size_t idx = 0;
  for (const JsonValue& entry : plans.as_array()) {
    const std::string where = path + " plans[" + std::to_string(idx++) + "]";
    if (!entry.is_object()) fail(where + ": entry is not an object");
    const double m = require_number(entry, "m", where);
    const double n = require_number(entry, "n", where);
    if (m < 1) fail(where + ": m < 1");
    if (n < 1) fail(where + ": n < 1");
    const double k = require_number(entry, "k", where);
    if (k < 0 || k > 30) fail(where + ": k outside [0, 30]");
    if (std::ldexp(1.0, static_cast<int>(k)) > n) {
      fail(where + ": 2^k exceeds n (plan cannot fit its shape)");
    }
    const std::string variant = require_string(entry, "variant", where);
    static constexpr const char* variants[] = {
        "one_block_per_system", "split_system", "multi_system_per_block"};
    if (std::find_if(std::begin(variants), std::end(variants),
                     [&variant](const char* v) { return variant == v; }) ==
        std::end(variants)) {
      fail(where + ": variant \"" + variant +
           "\" is not a concrete window variant");
    }
    if (require_number(entry, "c", where) < 1) fail(where + ": c < 1");
    if (require_number(entry, "tuned_us", where) < 0) {
      fail(where + ": tuned_us < 0");
    }
    if (require_number(entry, "heuristic_us", where) < 0) {
      fail(where + ": heuristic_us < 0");
    }
  }
  return idx;
}

/// Counter assertions over a --metrics-json dump: `spec` is a comma list
/// of `name>=value`, `name<=value` or `name==value` terms. A counter the
/// registry never touched reads as 0 (so `misses<=1` holds on a clean
/// run rather than failing on a missing key).
void validate_metrics(const std::string& path, const std::string& spec) {
  const auto parsed = JsonValue::parse(read_file(path));
  if (!parsed) fail(path + ": not valid JSON");
  const JsonValue* counters = parsed->find("counters");
  if (!counters || !counters->is_object()) {
    fail(path + ": missing \"counters\" object (not a --metrics-json dump?)");
  }
  std::size_t checked = 0;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string term = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (term.empty()) continue;
    std::size_t op_at = term.find(">=");
    std::string op = ">=";
    if (op_at == std::string::npos) { op_at = term.find("<="); op = "<="; }
    if (op_at == std::string::npos) { op_at = term.find("=="); op = "=="; }
    if (op_at == std::string::npos) {
      fail("--require-counters term \"" + term +
           "\" has no >=, <= or == operator");
    }
    const std::string name = term.substr(0, op_at);
    const double want = std::strtod(term.c_str() + op_at + 2, nullptr);
    const JsonValue* v = counters->find(name);
    const double got = v && v->is_number() ? v->as_number() : 0.0;
    const bool pass = op == ">=" ? got >= want
                    : op == "<=" ? got <= want
                                 : got == want;
    if (!pass) {
      fail(path + ": counter " + name + " = " + std::to_string(got) +
           " violates " + term);
    }
    ++checked;
  }
  if (checked == 0) fail("--require-counters spec is empty");
  std::printf("validate_telemetry: %s OK (%zu counter assertions)\n",
              path.c_str(), checked);
}

}  // namespace

int main(int argc, char** argv) {
  const tridsolve::util::Cli cli(argc, argv,
                                 {"jsonl", "trace", "spans", "min-records",
                                  "plan", "metrics", "require-counters"});
  const std::string jsonl = cli.get_string("jsonl", "");
  const std::string trace = cli.get_string("trace", "");
  const std::string spans = cli.get_string("spans", "");
  const std::string plan = cli.get_string("plan", "");
  const std::string metrics = cli.get_string("metrics", "");
  if (jsonl.empty() && trace.empty() && spans.empty() && plan.empty() &&
      metrics.empty()) {
    fail("nothing to validate: pass --jsonl, --trace, --spans, --plan and/or"
         " --metrics");
  }

  if (!jsonl.empty()) {
    const std::size_t records = validate_jsonl(jsonl);
    const auto min_records =
        static_cast<std::size_t>(cli.get_int("min-records", 1));
    if (records < min_records) {
      fail(jsonl + ": only " + std::to_string(records) + " records, expected"
           " >= " + std::to_string(min_records));
    }
    std::printf("validate_telemetry: %s OK (%zu records)\n", jsonl.c_str(),
                records);
  }
  if (!spans.empty()) {
    const std::size_t n = validate_spans(spans);
    if (n == 0) fail(spans + ": no spans");
    std::printf("validate_telemetry: %s OK (%zu spans)\n", spans.c_str(), n);
  }
  if (!trace.empty()) validate_trace(trace);
  if (!plan.empty()) {
    const std::size_t n = validate_plan_file(plan);
    if (n == 0) fail(plan + ": no plans");
    std::printf("validate_telemetry: %s OK (%zu plans)\n", plan.c_str(), n);
  }
  if (!metrics.empty()) {
    validate_metrics(metrics, cli.get_string("require-counters", ""));
  }
  return 0;
}
