// Schema validator for the observability layer's file outputs, used by
// the `bench-smoke` CTest entries (and handy interactively):
//
//   validate_telemetry --jsonl table2.jsonl [--min-records 3]
//                      [--trace table2.trace.json]
//
// JSONL checks, per line: parses as a JSON object; `bench` and `solver`
// are non-empty strings; `m` and `n` are positive numbers; `time_us` is a
// non-negative number; `phases` (when present) is an object of
// non-negative numbers whose sum matches `time_us`; the optional guard
// taxonomy fields (`guard_flagged`, `guard_fallback`, `guard_refined`)
// are numbers >= 0; the hazard block (present when the producing bench
// ran with --check-hazards) is all-or-nothing: `hazard_mode` must be
// "detect" or "fatal" and every `hazard_{raw,war,waw,oob,divergence}`
// counter must be a number >= 0. The fault block (present when the
// producer ran with --fault-rate/--fault-seed/--fault-kinds) is likewise
// all-or-nothing: `fault_seed` >= 0, `fault_rate` in [0,1] and all five
// `fault_*` counters >= 0. The resilience block (written by the
// resilient solve pipeline) is all-or-nothing too: the `resilience_*`
// numbers >= 0, the two booleans 0/1, and `resilience_worst` a SolveCode
// name.
//
// Chrome-trace checks: top-level object with a `traceEvents` array; every
// event has a string `name` and `ph`; "X" (duration) events carry
// numeric ts/dur/pid/tid with ts, dur >= 0; within each (pid, tid) track,
// events sorted by ts are non-overlapping (monotonic timeline).
//
// Exit code 0 on success; 1 with a diagnostic on the first failure.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/cli.hpp"

using tridsolve::obs::JsonValue;

namespace {

[[noreturn]] void fail(const std::string& msg) {
  std::fprintf(stderr, "validate_telemetry: FAIL: %s\n", msg.c_str());
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (!v) fail(where + ": missing key \"" + key + "\"");
  return *v;
}

double require_number(const JsonValue& obj, const std::string& key,
                      const std::string& where) {
  const JsonValue& v = require(obj, key, where);
  if (!v.is_number()) fail(where + ": \"" + key + "\" is not a number");
  return v.as_number();
}

std::string require_string(const JsonValue& obj, const std::string& key,
                           const std::string& where) {
  const JsonValue& v = require(obj, key, where);
  if (!v.is_string() || v.as_string().empty()) {
    fail(where + ": \"" + key + "\" is not a non-empty string");
  }
  return v.as_string();
}

std::size_t validate_jsonl(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail("cannot open " + path);
  std::size_t records = 0, lineno = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const std::string where = path + ":" + std::to_string(lineno);
    const auto parsed = JsonValue::parse(line);
    if (!parsed) fail(where + ": line is not valid JSON");
    if (!parsed->is_object()) fail(where + ": record is not a JSON object");
    const JsonValue& rec = *parsed;

    require_string(rec, "bench", where);
    require_string(rec, "solver", where);
    if (require_number(rec, "m", where) <= 0) fail(where + ": m <= 0");
    if (require_number(rec, "n", where) <= 0) fail(where + ": n <= 0");
    const double time_us = require_number(rec, "time_us", where);
    if (time_us < 0) fail(where + ": time_us < 0");

    // Guard taxonomy fields are optional (hybrid records carry them);
    // when present each must be a count >= 0.
    for (const char* key :
         {"guard_flagged", "guard_fallback", "guard_refined"}) {
      if (const JsonValue* v = rec.find(key)) {
        if (!v->is_number() || v->as_number() < 0) {
          fail(where + ": \"" + key + "\" is not a number >= 0");
        }
      }
    }

    // Hazard block: written together by bench::Telemetry, so a partial
    // block means the producer (or the schema) drifted.
    static constexpr const char* hazard_keys[] = {
        "hazard_raw", "hazard_war", "hazard_waw", "hazard_oob",
        "hazard_divergence"};
    const bool has_mode = rec.find("hazard_mode") != nullptr;
    bool has_any_count = false, has_all_counts = true;
    for (const char* key : hazard_keys) {
      if (rec.find(key)) has_any_count = true;
      else has_all_counts = false;
    }
    if (has_mode || has_any_count) {
      if (!has_mode || !has_all_counts) {
        fail(where + ": partial hazard block (need hazard_mode plus all five"
             " hazard_{raw,war,waw,oob,divergence} counters)");
      }
      const std::string mode = require_string(rec, "hazard_mode", where);
      if (mode != "detect" && mode != "fatal") {
        fail(where + ": hazard_mode \"" + mode +
             "\" is not \"detect\" or \"fatal\"");
      }
      for (const char* key : hazard_keys) {
        if (require_number(rec, key, where) < 0) {
          fail(where + ": \"" + std::string(key) + "\" < 0");
        }
      }
    }

    // Fault block: written together (bench::Telemetry or quickstart) when
    // a FaultPlan is armed — all-or-nothing like the hazard block.
    static constexpr const char* fault_keys[] = {
        "fault_bit_flips", "fault_shared_corruptions", "fault_nan_writes",
        "fault_launch_failures", "fault_timeouts"};
    bool has_fault_any = rec.find("fault_seed") || rec.find("fault_rate");
    bool has_fault_all =
        rec.find("fault_seed") != nullptr && rec.find("fault_rate") != nullptr;
    for (const char* key : fault_keys) {
      if (rec.find(key)) has_fault_any = true;
      else has_fault_all = false;
    }
    if (has_fault_any) {
      if (!has_fault_all) {
        fail(where + ": partial fault block (need fault_seed, fault_rate and"
             " all five fault_{bit_flips,shared_corruptions,nan_writes,"
             "launch_failures,timeouts} counters)");
      }
      if (require_number(rec, "fault_seed", where) < 0) {
        fail(where + ": fault_seed < 0");
      }
      const double rate = require_number(rec, "fault_rate", where);
      if (rate < 0 || rate > 1) fail(where + ": fault_rate outside [0,1]");
      for (const char* key : fault_keys) {
        if (require_number(rec, key, where) < 0) {
          fail(where + ": \"" + std::string(key) + "\" < 0");
        }
      }
    }

    // Resilience block: written by the resilient solve pipeline —
    // all-or-nothing, with a severity code name in resilience_worst.
    static constexpr const char* resilience_counts[] = {
        "resilience_retries", "resilience_fallbacks", "resilience_spent_us",
        "resilience_partial", "resilience_deadline_exceeded"};
    bool has_res_any = rec.find("resilience_worst") != nullptr;
    bool has_res_all = has_res_any;
    for (const char* key : resilience_counts) {
      if (rec.find(key)) has_res_any = true;
      else has_res_all = false;
    }
    if (has_res_any) {
      if (!has_res_all) {
        fail(where + ": partial resilience block (need resilience_worst plus"
             " resilience_{retries,fallbacks,spent_us,partial,"
             "deadline_exceeded})");
      }
      for (const char* key : resilience_counts) {
        if (require_number(rec, key, where) < 0) {
          fail(where + ": \"" + std::string(key) + "\" < 0");
        }
      }
      for (const char* key :
           {"resilience_partial", "resilience_deadline_exceeded"}) {
        const double v = require_number(rec, key, where);
        if (v != 0.0 && v != 1.0) {
          fail(where + ": \"" + std::string(key) + "\" is not 0 or 1");
        }
      }
      static constexpr const char* codes[] = {
          "ok", "near_singular", "zero_pivot", "timed_out", "launch_failed",
          "singular", "deadline", "bad_size"};
      const std::string worst = require_string(rec, "resilience_worst", where);
      if (std::find_if(std::begin(codes), std::end(codes),
                       [&worst](const char* c) { return worst == c; }) ==
          std::end(codes)) {
        fail(where + ": resilience_worst \"" + worst +
             "\" is not a SolveCode name");
      }
    }

    if (const JsonValue* phases = rec.find("phases")) {
      if (!phases->is_object()) fail(where + ": phases is not an object");
      double sum = 0.0;
      for (const auto& [label, v] : phases->as_object()) {
        if (!v.is_number() || v.as_number() < 0) {
          fail(where + ": phase \"" + label + "\" is not a number >= 0");
        }
        sum += v.as_number();
      }
      const double tol = 1e-6 * std::max(1.0, time_us);
      if (phases->size() > 0 && std::abs(sum - time_us) > tol) {
        fail(where + ": phases sum " + std::to_string(sum) +
             " != time_us " + std::to_string(time_us));
      }
    }
    ++records;
  }
  return records;
}

void validate_trace(const std::string& path) {
  const auto parsed = JsonValue::parse(read_file(path));
  if (!parsed) fail(path + ": not valid JSON");
  if (!parsed->is_object()) fail(path + ": top level is not an object");
  const JsonValue& events = require(*parsed, "traceEvents", path);
  if (!events.is_array()) fail(path + ": traceEvents is not an array");

  // (pid, tid) -> sorted-by-ts [start, end) intervals of "X" events.
  std::map<std::pair<double, double>, std::vector<std::pair<double, double>>>
      tracks;
  std::size_t idx = 0, durations = 0;
  for (const JsonValue& ev : events.as_array()) {
    const std::string where = path + " traceEvents[" + std::to_string(idx++) +
                              "]";
    if (!ev.is_object()) fail(where + ": event is not an object");
    require_string(ev, "name", where);
    const std::string ph = require_string(ev, "ph", where);
    if (ph != "X") continue;
    const double ts = require_number(ev, "ts", where);
    const double dur = require_number(ev, "dur", where);
    if (ts < 0) fail(where + ": ts < 0");
    if (dur < 0) fail(where + ": dur < 0");
    const double pid = require_number(ev, "pid", where);
    const double tid = require_number(ev, "tid", where);
    tracks[{pid, tid}].emplace_back(ts, ts + dur);
    ++durations;
  }
  if (durations == 0) fail(path + ": no duration (\"X\") events");

  for (auto& [track, spans] : tracks) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].first + 1e-9 < spans[i - 1].second) {
        fail(path + ": overlapping events on tid " +
             std::to_string(track.second) + " (ts " +
             std::to_string(spans[i].first) + " starts before previous event"
             " ends at " + std::to_string(spans[i - 1].second) + ")");
      }
    }
  }
  std::printf("validate_telemetry: %s OK (%zu duration events, %zu tracks)\n",
              path.c_str(), durations, tracks.size());
}

}  // namespace

int main(int argc, char** argv) {
  const tridsolve::util::Cli cli(argc, argv,
                                 {"jsonl", "trace", "min-records"});
  const std::string jsonl = cli.get_string("jsonl", "");
  const std::string trace = cli.get_string("trace", "");
  if (jsonl.empty() && trace.empty()) {
    fail("nothing to validate: pass --jsonl <file> and/or --trace <file>");
  }

  if (!jsonl.empty()) {
    const std::size_t records = validate_jsonl(jsonl);
    const auto min_records =
        static_cast<std::size_t>(cli.get_int("min-records", 1));
    if (records < min_records) {
      fail(jsonl + ": only " + std::to_string(records) + " records, expected"
           " >= " + std::to_string(min_records));
    }
    std::printf("validate_telemetry: %s OK (%zu records)\n", jsonl.c_str(),
                records);
  }
  if (!trace.empty()) validate_trace(trace);
  return 0;
}
