// perfdiff: compare two telemetry JSONL files and flag perf regressions.
//
// Records are joined on a configurable key (default: the fields that
// identify one bench configuration) and each --metrics field is compared
// pairwise; a candidate value more than --threshold above the baseline
// is a regression and the exit status is 1. Metrics are cost-like (time,
// microseconds): higher is worse. CTest wires this against the committed
// BENCH_*.json baselines with the simulated, deterministic fields, so a
// real regression fails the suite while wall-clock noise cannot.
//
//   perfdiff --baseline BENCH_sim_throughput.json --candidate fresh.jsonl
//            --metrics time_us --threshold 0.3
//
// --scale-candidate multiplies every candidate metric before comparison:
// a self-test hook (ctest runs a WILL_FAIL case with 1.4 to prove an
// injected ~40% regression is caught).

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/cli.hpp"

using namespace tridsolve;

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

struct Jsonl {
  std::vector<obs::JsonValue> records;
  bool ok = false;
};

Jsonl load_jsonl(const std::string& path) {
  Jsonl out;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perfdiff: cannot open %s\n", path.c_str());
    return out;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    auto v = obs::JsonValue::parse(line);
    if (!v || !v->is_object()) {
      std::fprintf(stderr, "perfdiff: %s:%zu: not a JSON object\n",
                   path.c_str(), lineno);
      return out;
    }
    out.records.push_back(std::move(*v));
  }
  out.ok = true;
  return out;
}

/// Join key of one record: `field=value` pairs in key order, missing
/// fields rendered empty so files with different schemas still align.
std::string key_of(const obs::JsonValue& rec,
                   const std::vector<std::string>& key_fields) {
  std::string key;
  for (const std::string& f : key_fields) {
    key += f;
    key += '=';
    if (const obs::JsonValue* v = rec.find(f)) {
      key += v->is_string() ? v->as_string() : v->dump();
    }
    key += ' ';
  }
  if (!key.empty()) key.pop_back();
  return key;
}

/// Mean of `metric` over records sharing a key (repeats average out).
struct Acc {
  double sum = 0.0;
  std::size_t count = 0;
  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

std::map<std::string, Acc> collect(const std::vector<obs::JsonValue>& records,
                                   const std::vector<std::string>& key_fields,
                                   const std::string& metric) {
  std::map<std::string, Acc> by_key;
  for (const obs::JsonValue& rec : records) {
    const obs::JsonValue* v = rec.find(metric);
    if (!v || !v->is_number()) continue;
    Acc& acc = by_key[key_of(rec, key_fields)];
    acc.sum += v->as_number();
    ++acc.count;
  }
  return by_key;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      {"baseline", "candidate", "metrics", "key", "threshold",
                       "scale-candidate", "require-matches", "allow-missing"});
  const std::string baseline_path = cli.get_string("baseline", "");
  const std::string candidate_path = cli.get_string("candidate", "");
  if (baseline_path.empty() || candidate_path.empty()) {
    std::fprintf(stderr,
                 "usage: perfdiff --baseline FILE --candidate FILE "
                 "[--metrics LIST] [--key LIST] [--threshold FRAC]\n");
    return 2;
  }
  const auto metrics = split_list(cli.get_string("metrics", "time_us"));
  const auto key_fields = split_list(
      cli.get_string("key", "bench,solver,m,n,mode,phase,instrument"));
  const double threshold = cli.get_double("threshold", 0.3);
  const double scale = cli.get_double("scale-candidate", 1.0);
  const auto require_matches =
      static_cast<std::size_t>(cli.get_int("require-matches", 1));
  const bool allow_missing = cli.get_bool("allow-missing", false);

  const Jsonl base = load_jsonl(baseline_path);
  const Jsonl cand = load_jsonl(candidate_path);
  if (!base.ok || !cand.ok) return 2;

  std::size_t matches = 0;
  std::size_t regressions = 0;
  std::size_t missing = 0;
  for (const std::string& metric : metrics) {
    const auto base_by_key = collect(base.records, key_fields, metric);
    const auto cand_by_key = collect(cand.records, key_fields, metric);
    for (const auto& [key, b] : base_by_key) {
      const auto it = cand_by_key.find(key);
      if (it == cand_by_key.end()) {
        ++missing;
        if (!allow_missing) {
          std::fprintf(stderr, "MISSING  %s: no candidate record for [%s]\n",
                       metric.c_str(), key.c_str());
        }
        continue;
      }
      ++matches;
      const double bv = b.mean();
      const double cv = it->second.mean() * scale;
      // Both effectively zero: nothing to compare (e.g. functional_only
      // records carry time_us = 0 by design).
      if (std::fabs(bv) < 1e-12 && std::fabs(cv) < 1e-12) continue;
      const double rel = bv != 0.0 ? (cv - bv) / bv : HUGE_VAL;
      const bool regressed = rel > threshold;
      if (regressed) ++regressions;
      std::printf("%s %-12s %12.3f -> %12.3f  %+7.1f%%  [%s]\n",
                  regressed ? "REGRESSION" : "ok        ", metric.c_str(), bv,
                  cv, 100.0 * rel, key.c_str());
    }
  }

  std::printf("perfdiff: %zu compared, %zu regressions, %zu missing "
              "(threshold %+.0f%%)\n",
              matches, regressions, missing, 100.0 * threshold);
  if (matches < require_matches) {
    std::fprintf(stderr,
                 "perfdiff: only %zu matched configurations (need %zu) — "
                 "check --key against the input schemas\n",
                 matches, require_matches);
    return 1;
  }
  if (!allow_missing && missing > 0) return 1;
  return regressions > 0 ? 1 : 0;
}
