// Docs-vs-binaries consistency checker (the `docs-check` CTest entry).
//
//   check_docs --readme README.md --bin-dir build
//
// Parses the README's consolidated CLI flag reference — the markdown
// table between the `<!-- flag-reference:begin -->` and
// `<!-- flag-reference:end -->` markers — and cross-checks it against
// the flags every bench/example binary actually accepts (read from each
// binary's `--help`, which prints the util::Cli known-flag list one per
// line). Both directions are enforced, so the README cannot document a
// flag a binary dropped, and a binary cannot grow a flag the README
// does not document:
//
//   1. every (flag, binary) pair in the table is accepted by that
//      binary's --help;
//   2. every flag in every binary's --help is documented in the table
//      for that binary.
//
// Table schema: `| `--flag ...` | binaries | description |` where the
// binaries cell is either the word `all` (every checked binary) or a
// comma-separated list of backticked binary names. Checked binaries are
// discovered from --bin-dir: bench/bench_* (minus bench_kernels, a
// google-benchmark binary with its own flag handling) plus
// examples/quickstart.
//
// Exit code 0 when consistent; 1 with a per-violation diagnostic.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace fs = std::filesystem;

namespace {

int failures = 0;

void violation(const std::string& msg) {
  std::fprintf(stderr, "check_docs: FAIL: %s\n", msg.c_str());
  ++failures;
}

[[noreturn]] void fatal(const std::string& msg) {
  std::fprintf(stderr, "check_docs: ERROR: %s\n", msg.c_str());
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fatal("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Flags a binary accepts, parsed from its `--help` output (lines of the
/// form "  --name").
std::set<std::string> help_flags(const fs::path& binary) {
  const std::string cmd = binary.string() + " --help 2>/dev/null";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) fatal("cannot run " + cmd);
  std::string output;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output.append(buf, got);
  }
  const int rc = pclose(pipe);
  if (rc != 0) fatal(binary.string() + " --help exited with status " +
                     std::to_string(rc));
  std::set<std::string> flags;
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    const auto dashes = line.find("--");
    if (dashes == std::string::npos ||
        line.find_first_not_of(" \t") != dashes) {
      continue;
    }
    std::string name = line.substr(dashes + 2);
    const auto end = name.find_first_of(" \t\r");
    if (end != std::string::npos) name.resize(end);
    if (!name.empty()) flags.insert(name);
  }
  if (flags.empty()) fatal(binary.string() + " --help listed no flags");
  return flags;
}

/// Split one markdown table row into trimmed cell strings.
std::vector<std::string> table_cells(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  // Skip the leading '|'; a trailing '|' just yields an empty last cell.
  for (std::size_t i = line.find('|') + 1; i < line.size(); ++i) {
    if (line[i] == '|') {
      cells.push_back(cur);
      cur.clear();
    } else {
      cur += line[i];
    }
  }
  for (std::string& c : cells) {
    const auto b = c.find_first_not_of(" \t");
    const auto e = c.find_last_not_of(" \t");
    c = b == std::string::npos ? "" : c.substr(b, e - b + 1);
  }
  return cells;
}

/// Every backtick-quoted span in `cell`.
std::vector<std::string> backticked(const std::string& cell) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = cell.find('`', pos)) != std::string::npos) {
    const auto end = cell.find('`', pos + 1);
    if (end == std::string::npos) break;
    out.push_back(cell.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return out;
}

/// Flag name from a cell like "`--check-hazards [MODE]`": the token after
/// "--" inside the first backtick span, cut at space/'='.
std::string cell_flag(const std::string& cell) {
  for (const std::string& span : backticked(cell)) {
    const auto dashes = span.find("--");
    if (dashes != 0) continue;
    std::string name = span.substr(2);
    const auto end = name.find_first_of(" =[");
    if (end != std::string::npos) name.resize(end);
    return name;
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const tridsolve::util::Cli cli(argc, argv, {"readme", "bin-dir"});
  const std::string readme_path = cli.get_string("readme", "README.md");
  const std::string bin_dir = cli.get_string("bin-dir", ".");

  // ---- Discover the checked binaries and their accepted flags ----------
  std::map<std::string, std::set<std::string>> accepted;  // name -> flags
  const fs::path bench_dir = fs::path(bin_dir) / "bench";
  if (!fs::is_directory(bench_dir)) fatal(bench_dir.string() + " not found");
  for (const auto& entry : fs::directory_iterator(bench_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("bench_", 0) != 0) continue;
    if (name == "bench_kernels") continue;  // google-benchmark CLI
    if (!fs::is_regular_file(entry.path()) ||
        (fs::status(entry.path()).permissions() & fs::perms::owner_exec) ==
            fs::perms::none) {
      continue;
    }
    accepted[name] = help_flags(entry.path());
  }
  const fs::path quickstart = fs::path(bin_dir) / "examples" / "quickstart";
  if (!fs::exists(quickstart)) fatal(quickstart.string() + " not found");
  accepted["quickstart"] = help_flags(quickstart);
  if (accepted.size() < 2) fatal("no bench binaries found in " +
                                 bench_dir.string());

  // ---- Parse the README flag-reference table ---------------------------
  const std::string readme = read_file(readme_path);
  const std::string begin_marker = "<!-- flag-reference:begin -->";
  const std::string end_marker = "<!-- flag-reference:end -->";
  const auto begin = readme.find(begin_marker);
  const auto end = readme.find(end_marker);
  if (begin == std::string::npos || end == std::string::npos || end < begin) {
    fatal(readme_path + ": flag-reference markers missing or out of order");
  }

  // flag -> set of binaries the README documents it for
  std::map<std::string, std::set<std::string>> documented;
  std::istringstream section(
      readme.substr(begin + begin_marker.size(), end - begin));
  std::string line;
  while (std::getline(section, line)) {
    if (line.find('|') == std::string::npos) continue;
    const auto cells = table_cells(line);
    if (cells.size() < 2) continue;
    const std::string flag = cell_flag(cells[0]);
    if (flag.empty()) continue;  // header / separator rows
    std::set<std::string>& bins = documented[flag];
    if (cells[1].find("all") != std::string::npos &&
        backticked(cells[1]).empty()) {
      for (const auto& [name, _] : accepted) bins.insert(name);
    } else {
      for (const std::string& name : backticked(cells[1])) {
        if (!accepted.count(name)) {
          violation(readme_path + ": flag --" + flag +
                    " names unknown binary `" + name + "`");
          continue;
        }
        bins.insert(name);
      }
    }
  }
  if (documented.empty()) fatal(readme_path + ": flag-reference table empty");

  // ---- Direction 1: documented flags must be accepted ------------------
  for (const auto& [flag, bins] : documented) {
    for (const std::string& bin : bins) {
      if (!accepted.at(bin).count(flag)) {
        violation("README documents --" + flag + " for " + bin +
                  ", but `" + bin + " --help` does not list it");
      }
    }
  }

  // ---- Direction 2: accepted flags must be documented ------------------
  for (const auto& [bin, flags] : accepted) {
    for (const std::string& flag : flags) {
      const auto it = documented.find(flag);
      if (it == documented.end() || !it->second.count(bin)) {
        violation(bin + " accepts --" + flag +
                  ", but the README flag reference does not document it for"
                  " that binary");
      }
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "check_docs: %d violation(s)\n", failures);
    return 1;
  }
  std::size_t pairs = 0;
  for (const auto& [_, bins] : documented) pairs += bins.size();
  std::printf("check_docs: OK (%zu binaries, %zu documented flags, %zu"
              " flag/binary pairs)\n",
              accepted.size(), documented.size(), pairs);
  return 0;
}
