#include "gpusim/occupancy.hpp"

#include <algorithm>

namespace tridsolve::gpusim {

Occupancy compute_occupancy(const DeviceSpec& dev, int block_threads,
                            std::size_t shared_bytes_per_block) {
  Occupancy occ;
  if (block_threads <= 0 || block_threads > dev.max_threads_per_block ||
      shared_bytes_per_block > dev.shared_mem_per_block) {
    occ.limiter = "launch";
    return occ;  // not launchable
  }

  const int by_threads = dev.max_threads_per_sm / block_threads;
  const int by_blocks = dev.max_blocks_per_sm;
  const int by_shared =
      shared_bytes_per_block == 0
          ? by_blocks
          : static_cast<int>(dev.shared_mem_per_sm / shared_bytes_per_block);

  occ.blocks_per_sm = std::max(0, std::min({by_threads, by_blocks, by_shared}));
  if (occ.blocks_per_sm == 0) {
    occ.limiter = "launch";
    return occ;
  }
  if (occ.blocks_per_sm == by_shared && by_shared < by_blocks &&
      by_shared <= by_threads) {
    occ.limiter = "shared";
  } else if (occ.blocks_per_sm == by_threads && by_threads <= by_blocks) {
    occ.limiter = "threads";
  } else {
    occ.limiter = "blocks";
  }

  const int warps_per_block = (block_threads + dev.warp_size - 1) / dev.warp_size;
  occ.resident_warps_per_sm = occ.blocks_per_sm * warps_per_block;
  const int max_warps = dev.max_threads_per_sm / dev.warp_size;
  occ.fraction =
      static_cast<double>(occ.resident_warps_per_sm) / static_cast<double>(max_warps);
  return occ;
}

}  // namespace tridsolve::gpusim
