#include "gpusim/exec_engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/cli.hpp"

namespace tridsolve::gpusim {

const char* instrument_mode_name(InstrumentMode mode) noexcept {
  switch (mode) {
    case InstrumentMode::exact:
      return "exact";
    case InstrumentMode::sampled:
      return "sampled";
    case InstrumentMode::functional_only:
      return "functional_only";
  }
  return "unknown";
}

InstrumentMode parse_instrument_mode(std::string_view name) {
  if (name == "exact") return InstrumentMode::exact;
  if (name == "sampled") return InstrumentMode::sampled;
  if (name == "functional" || name == "functional_only") {
    return InstrumentMode::functional_only;
  }
  throw std::invalid_argument("unknown instrument mode \"" + std::string(name) +
                              "\" (expected exact|sampled|functional_only)");
}

const char* hazard_mode_name(HazardMode mode) noexcept {
  switch (mode) {
    case HazardMode::off:
      return "off";
    case HazardMode::detect:
      return "detect";
    case HazardMode::fatal:
      return "fatal";
  }
  return "unknown";
}

HazardMode parse_hazard_mode(std::string_view name) {
  if (name == "off" || name == "false" || name == "no" || name == "0") {
    return HazardMode::off;
  }
  if (name == "detect" || name == "true" || name == "yes" || name == "on" ||
      name == "1") {
    return HazardMode::detect;
  }
  if (name == "fatal") return HazardMode::fatal;
  throw std::invalid_argument("unknown hazard mode \"" + std::string(name) +
                              "\" (expected off|detect|fatal)");
}

namespace {

/// Deterministic choice of which blocks record instrumentation, and which
/// recorded block stands in for each non-recorded one at reduction time.
/// Sampled plan: blocks {0, stride, 2*stride, ...} plus the last block
/// (always instrumented exactly — it may be the ragged tail of a batch).
struct SamplePlan {
  static constexpr std::size_t npos = ~static_cast<std::size_t>(0);

  InstrumentMode mode = InstrumentMode::exact;
  std::size_t grid = 0;
  std::size_t stride = 1;
  std::size_t strided = 0;   ///< number of on-stride sampled blocks
  bool tail_extra = false;   ///< grid-1 off-stride, owns an extra slot
  std::size_t num_slots = 0; ///< recorded blocks (== shard count)

  static SamplePlan make(InstrumentMode mode, std::size_t grid,
                         std::size_t sample_target) {
    SamplePlan p;
    p.mode = mode;
    p.grid = grid;
    if (grid == 0) return p;
    switch (mode) {
      case InstrumentMode::exact:
        p.stride = 1;
        p.strided = grid;
        p.num_slots = grid;
        break;
      case InstrumentMode::sampled:
        p.stride = std::max<std::size_t>(
            1, grid / std::max<std::size_t>(1, sample_target));
        p.strided = (grid - 1) / p.stride + 1;
        p.tail_extra = (grid - 1) % p.stride != 0;
        p.num_slots = p.strided + (p.tail_extra ? 1 : 0);
        break;
      case InstrumentMode::functional_only:
        break;
    }
    return p;
  }

  /// Shard index block `b` records into; npos = execute without recording.
  [[nodiscard]] std::size_t slot_of(std::size_t b) const noexcept {
    switch (mode) {
      case InstrumentMode::exact:
        return b;
      case InstrumentMode::sampled:
        if (b + 1 == grid) return tail_extra ? strided : b / stride;
        return b % stride == 0 ? b / stride : npos;
      case InstrumentMode::functional_only:
        return npos;
    }
    return npos;
  }

  /// Shard whose costs stand in for block `b` when scaling to the grid.
  [[nodiscard]] std::size_t representative_slot(std::size_t b) const noexcept {
    if (mode == InstrumentMode::exact) return b;
    if (b + 1 == grid) return tail_extra ? strided : b / stride;
    return b / stride;
  }

  /// Block id whose *exact* shard the sampling estimator would use for
  /// block `b` (exact-mode self-check).
  [[nodiscard]] std::size_t representative_block(std::size_t b) const noexcept {
    if (b + 1 == grid) return b;
    return (b / stride) * stride;
  }
};

[[nodiscard]] bool costs_equal(const KernelCosts& a,
                               const KernelCosts& b) noexcept {
  return a.ops_f32 == b.ops_f32 && a.ops_f64 == b.ops_f64 &&
         a.transactions == b.transactions &&
         a.bytes_requested == b.bytes_requested && a.loads == b.loads &&
         a.stores == b.stores && a.rounds_total == b.rounds_total &&
         a.warps == b.warps && a.barriers == b.barriers &&
         a.shared_accesses == b.shared_accesses &&
         a.shared_bytes == b.shared_bytes &&
         a.shared_serializations == b.shared_serializations &&
         a.shared_peak_bytes == b.shared_peak_bytes;
}

[[nodiscard]] std::size_t default_sim_threads() noexcept {
  if (const char* env = std::getenv("TRIDSOLVE_SIM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

}  // namespace

struct ExecutionEngine::Impl {
  // --- configuration (guarded by cfg_mu) ---
  mutable std::mutex cfg_mu;
  std::size_t threads = default_sim_threads();
  InstrumentMode default_mode = InstrumentMode::exact;
  HazardMode default_hazards = HazardMode::off;
  bool vector_enabled = true;
  std::size_t sample_target = 16;
  FaultPlan fault_plan;
  std::uint64_t fault_launch_counter = 0;  ///< launches since plan install
  double default_deadline_us = 0.0;        ///< 0 = unlimited
  int default_max_retries = 2;

  // --- one launch at a time (nested launches are not a thing: kernels
  // cannot launch kernels in this model) ---
  std::mutex launch_mu;

  // --- pool state (guarded by mu unless noted) ---
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> workers;
  std::uint64_t generation = 0;
  std::size_t active = 0;
  bool shutdown = false;

  // Per-participant scratch; index 0 is the main (launching) thread,
  // worker i uses scratch[i + 1]. Only grown between launches.
  std::vector<std::unique_ptr<WorkerScratch>> scratch;

  // Per-participant hazard trackers, parallel to `scratch`; allocated
  // lazily on the first hazard-checked launch, inert otherwise.
  std::vector<std::unique_ptr<HazardTracker>> trackers;
  bool hazards_active = false;  ///< this launch runs with detection on

  // Per-participant fault tallies plus the plan snapshot of the running
  // launch (written under launch_mu before the generation bump).
  std::vector<FaultCounts> fault_counts;
  bool faults_active = false;  ///< this launch runs with a live FaultPlan
  FaultPlan job_fault_plan;
  std::uint64_t job_fault_launch = 0;

  // --- current job (written before the generation bump, read-only while
  // workers run; slots shards are disjoint per block) ---
  const detail::LaunchRequest* job = nullptr;
  const SamplePlan* plan = nullptr;
  std::vector<KernelCosts> slots;  // reused: assign() keeps capacity
  std::size_t participants = 1;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next_block{0};
  std::atomic<bool> abort{false};
  std::mutex err_mu;
  std::exception_ptr first_error;

  Impl() { scratch.push_back(std::make_unique<WorkerScratch>()); }

  void ensure_workers(std::size_t n) {
    while (workers.size() < n) {
      scratch.push_back(std::make_unique<WorkerScratch>());
      const std::size_t idx = workers.size();
      std::uint64_t seen;
      {
        const std::lock_guard<std::mutex> lk(mu);
        seen = generation;
      }
      workers.emplace_back([this, idx, seen] { worker_loop(idx, seen); });
    }
  }

  void worker_loop(std::size_t idx, std::uint64_t seen) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        work_cv.wait(lk, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
      }
      run_blocks(idx + 1);
      {
        const std::lock_guard<std::mutex> lk(mu);
        if (--active == 0) done_cv.notify_all();
      }
    }
  }

  /// Grab chunks of blocks until the grid is drained. Exceptions from
  /// kernel bodies are captured (first wins) and abort the launch.
  void run_blocks(std::size_t scratch_idx) noexcept {
    if (scratch_idx >= participants) return;
    try {
      WorkerScratch& ws = *scratch[scratch_idx];
      HazardTracker* hz =
          hazards_active ? trackers[scratch_idx].get() : nullptr;
      const detail::LaunchRequest& req = *job;
      const SamplePlan& pl = *plan;
      for (;;) {
        if (abort.load(std::memory_order_relaxed)) return;
        const std::size_t begin =
            next_block.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= req.grid_blocks) return;
        const std::size_t end = std::min(begin + chunk, req.grid_blocks);
        for (std::size_t b = begin; b < end; ++b) {
          const std::size_t slot = pl.slot_of(b);
          const bool record = slot != SamplePlan::npos;
          std::optional<FaultSession> fs;
          if (faults_active) {
            fs.emplace(job_fault_plan, job_fault_launch, b,
                       fault_counts[scratch_idx]);
          }
          BlockContext ctx(*req.dev, b, req.grid_blocks, req.block_threads,
                           ws, record ? slots[slot] : ws.discard, record, hz,
                           fs ? &*fs : nullptr,
                           b == 0 ? req.span_parent : 0, req.vector_ok);
          req.body(req.user, ctx);
          if (record) slots[slot].shared_peak_bytes = ws.arena->block_peak();
        }
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      abort.store(true, std::memory_order_relaxed);
    }
  }
};

ExecutionEngine& ExecutionEngine::instance() {
  static ExecutionEngine engine;
  return engine;
}

ExecutionEngine::ExecutionEngine() : impl_(new Impl) {}

ExecutionEngine::~ExecutionEngine() {
  {
    const std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

std::size_t ExecutionEngine::threads() const noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  return impl_->threads;
}

void ExecutionEngine::set_threads(std::size_t n) noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  impl_->threads = n == 0 ? default_sim_threads() : n;
}

InstrumentMode ExecutionEngine::default_instrument() const noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  return impl_->default_mode;
}

void ExecutionEngine::set_default_instrument(InstrumentMode mode) noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  impl_->default_mode = mode;
}

HazardMode ExecutionEngine::default_hazards() const noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  return impl_->default_hazards;
}

void ExecutionEngine::set_default_hazards(HazardMode mode) noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  impl_->default_hazards = mode;
}

bool ExecutionEngine::vector_enabled() const noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  return impl_->vector_enabled;
}

void ExecutionEngine::set_vector_enabled(bool on) noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  impl_->vector_enabled = on;
}

bool ExecutionEngine::functional_fast_path() const noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  return impl_->default_mode == InstrumentMode::functional_only &&
         impl_->default_hazards == HazardMode::off &&
         !impl_->fault_plan.active() && impl_->vector_enabled;
}

std::size_t ExecutionEngine::sample_target() const noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  return impl_->sample_target;
}

FaultPlan ExecutionEngine::fault_plan() const noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  return impl_->fault_plan;
}

void ExecutionEngine::set_fault_plan(const FaultPlan& plan) noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  impl_->fault_plan = plan;
  impl_->fault_launch_counter = 0;
}

double ExecutionEngine::default_deadline_us() const noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  return impl_->default_deadline_us;
}

void ExecutionEngine::set_default_deadline_us(double us) noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  impl_->default_deadline_us = us >= 0.0 ? us : 0.0;
}

int ExecutionEngine::default_max_retries() const noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  return impl_->default_max_retries;
}

void ExecutionEngine::set_default_max_retries(int n) noexcept {
  const std::lock_guard<std::mutex> lk(impl_->cfg_mu);
  impl_->default_max_retries = n >= 0 ? n : 0;
}

void configure_engine_from_cli(const util::Cli& cli) {
  ExecutionEngine& engine = ExecutionEngine::instance();
  if (cli.get("sim-threads")) {
    const auto n = cli.get_int("sim-threads", 0);
    if (n < 0) {
      throw std::invalid_argument("--sim-threads must be >= 0 (0 = default)");
    }
    engine.set_threads(static_cast<std::size_t>(n));
  }
  if (const auto mode = cli.get("instrument")) {
    engine.set_default_instrument(parse_instrument_mode(*mode));
  }
  if (const auto mode = cli.get("check-hazards")) {
    engine.set_default_hazards(parse_hazard_mode(*mode));
  }
  if (const auto vec = cli.get("vector")) {
    if (*vec == "on" || *vec == "true" || *vec == "1" || *vec == "yes") {
      engine.set_vector_enabled(true);
    } else if (*vec == "off" || *vec == "false" || *vec == "0" ||
               *vec == "no") {
      engine.set_vector_enabled(false);
    } else {
      throw std::invalid_argument("--vector must be on|off");
    }
  }
  if (cli.get("fault-rate") || cli.get("fault-seed") || cli.get("fault-kinds")) {
    FaultPlan plan = engine.fault_plan();
    plan.seed = static_cast<std::uint64_t>(
        cli.get_int("fault-seed", static_cast<std::int64_t>(plan.seed)));
    plan.rate = cli.get_double("fault-rate", plan.rate);
    if (!(plan.rate >= 0.0) || plan.rate > 1.0) {
      throw std::invalid_argument("--fault-rate must be in [0, 1]");
    }
    if (const auto kinds = cli.get("fault-kinds")) {
      plan.kinds = parse_fault_kinds(*kinds);
    }
    engine.set_fault_plan(plan);
  }
  if (cli.get("deadline-us")) {
    const double us = cli.get_double("deadline-us", 0.0);
    if (!(us >= 0.0)) {
      throw std::invalid_argument("--deadline-us must be >= 0 (0 = unlimited)");
    }
    engine.set_default_deadline_us(us);
  }
  if (cli.get("max-retries")) {
    const auto n = cli.get_int("max-retries", 0);
    if (n < 0) throw std::invalid_argument("--max-retries must be >= 0");
    engine.set_default_max_retries(static_cast<int>(n));
  }
}

namespace detail {

LaunchOutcome execute_grid(const LaunchRequest& req) {
  ExecutionEngine& engine = ExecutionEngine::instance();
  ExecutionEngine::Impl& im = *engine.impl_;
  const std::lock_guard<std::mutex> launch_lock(im.launch_mu);

  const SamplePlan plan =
      SamplePlan::make(req.mode, req.grid_blocks, engine.sample_target());
  im.slots.assign(plan.num_slots, KernelCosts{});
  im.job = &req;
  im.plan = &plan;
  im.participants =
      std::min(engine.threads(), std::max<std::size_t>(req.grid_blocks, 1));
  im.hazards_active = req.hazards != HazardMode::off;
  if (im.hazards_active) {
    if (im.trackers.size() < im.participants) {
      im.trackers.resize(im.participants);
    }
    for (std::size_t i = 0; i < im.participants; ++i) {
      if (!im.trackers[i]) im.trackers[i] = std::make_unique<HazardTracker>();
      im.trackers[i]->begin_launch();
    }
  }
  // Snapshot the fault plan and claim this launch's deterministic ordinal
  // (launches are serialized by launch_mu, so the ordinal sequence is
  // independent of worker count). An injected launch failure aborts here,
  // before any block runs — the next launch draws a fresh ordinal.
  {
    const std::lock_guard<std::mutex> cfg_lk(im.cfg_mu);
    im.job_fault_plan = im.fault_plan;
    im.faults_active = im.job_fault_plan.active();
    im.job_fault_launch = im.faults_active ? im.fault_launch_counter++ : 0;
  }
  if (im.faults_active) {
    if (im.job_fault_plan.launch_should_fail(im.job_fault_launch)) {
      FaultCounts failed;
      failed.launch_failures = 1;
      note_faults(failed);
      im.faults_active = false;
      throw LaunchFailure("gpusim: injected launch failure (launch " +
                          std::to_string(im.job_fault_launch) + ", seed " +
                          std::to_string(im.job_fault_plan.seed) + ")");
    }
    im.fault_counts.assign(im.participants, FaultCounts{});
  }
  im.chunk = std::max<std::size_t>(
      1, req.grid_blocks / (std::max<std::size_t>(im.participants, 1) * 8));
  im.next_block.store(0, std::memory_order_relaxed);
  im.abort.store(false, std::memory_order_relaxed);
  im.first_error = nullptr;

  if (im.participants <= 1) {
    im.run_blocks(0);
  } else {
    im.ensure_workers(im.participants - 1);
    {
      const std::lock_guard<std::mutex> lk(im.mu);
      im.active = im.workers.size();
      ++im.generation;
    }
    im.work_cv.notify_all();
    im.run_blocks(0);
    std::unique_lock<std::mutex> lk(im.mu);
    im.done_cv.wait(lk, [&] { return im.active == 0; });
  }
  im.job = nullptr;
  im.plan = nullptr;
  // Per-launch LanePool bookkeeping: sum each participant's growth /
  // warm-serve tallies into gpusim.scratch.{acquires,reuses}. Counter
  // sums are order-independent, so the totals are worker-count invariant.
  {
    std::size_t acquires = 0;
    std::size_t reuses = 0;
    for (std::size_t i = 0; i < im.participants; ++i) {
      im.scratch[i]->lanes.drain(acquires, reuses);
    }
    note_scratch(acquires, reuses);
  }
  if (im.first_error) std::rethrow_exception(im.first_error);

  LaunchOutcome out;
  if (im.faults_active) {
    // Deterministic merge: per-worker tallies are sums of per-block hits.
    for (std::size_t i = 0; i < im.participants; ++i) {
      out.faults.merge(im.fault_counts[i]);
    }
    if (out.faults.timeouts > 0) {
      out.fault_overrun_us = im.job_fault_plan.timeout_overrun_us *
                             static_cast<double>(out.faults.timeouts);
    }
    note_faults(out.faults);
  }
  if (im.hazards_active) {
    // Deterministic merge: counts are sums (order-independent), the
    // example is the finding from the lowest block id across workers.
    for (std::size_t i = 0; i < im.participants; ++i) {
      const HazardTracker& t = *im.trackers[i];
      out.hazards.merge(t.counts());
      const HazardExample& e = t.example();
      if (e.valid &&
          (!out.hazard_example.valid || e.block < out.hazard_example.block)) {
        out.hazard_example = e;
      }
    }
    note_hazards(out.hazards);
    if (req.hazards == HazardMode::fatal && out.hazards.any()) {
      throw std::runtime_error(
          "gpusim: shared-memory hazard (fatal mode): " +
          out.hazard_example.describe() + " [raw=" +
          std::to_string(out.hazards.raw) + " war=" +
          std::to_string(out.hazards.war) + " waw=" +
          std::to_string(out.hazards.waw) + " oob=" +
          std::to_string(out.hazards.oob) + " divergence=" +
          std::to_string(out.hazards.divergence) + "]");
    }
  }
  if (req.mode == InstrumentMode::functional_only) return out;

  // Deterministic reduction: merge per-block shards in block order. All
  // floating-point shard entries are sums of exactly-representable small
  // values, so the result is independent of worker count and identical to
  // the historical serial accumulation.
  for (std::size_t b = 0; b < req.grid_blocks; ++b) {
    out.costs.merge(im.slots[plan.representative_slot(b)]);
  }
  out.instrumented_blocks = plan.num_slots;

  // Exact mode doubles as the sampling estimator's ground-truth check:
  // with every block's shard on hand, compute what `sampled` would have
  // reported and verify it matches bit-for-bit.
  if (req.mode == InstrumentMode::exact && req.grid_blocks > 1) {
    static auto checks = obs::counter_handle("gpusim.sampling.checks");
    static auto mismatches = obs::counter_handle("gpusim.sampling.mismatches");
    const SamplePlan probe = SamplePlan::make(
        InstrumentMode::sampled, req.grid_blocks, engine.sample_target());
    KernelCosts estimate;
    for (std::size_t b = 0; b < req.grid_blocks; ++b) {
      estimate.merge(im.slots[probe.representative_block(b)]);
    }
    checks.add();
    if (!costs_equal(estimate, out.costs)) mismatches.add();
  }
  return out;
}

void note_launch(std::size_t grid_blocks, bool timed, double kernel_us,
                 double overhead_us, const KernelCosts& costs) noexcept {
  static auto launches = obs::counter_handle("gpusim.launches");
  static auto blocks = obs::counter_handle("gpusim.blocks");
  static auto kernel = obs::counter_handle("gpusim.kernel_us");
  static auto overhead = obs::counter_handle("gpusim.overhead_us");
  static auto transactions = obs::counter_handle("gpusim.transactions");
  static auto bytes = obs::counter_handle("gpusim.bytes_requested");
  static auto barriers = obs::counter_handle("gpusim.barriers");
  static auto kernel_hist = obs::histogram_handle("gpusim.launch.time_us");
  launches.add();
  blocks.add(static_cast<double>(grid_blocks));
  if (timed) {
    kernel_hist.record(kernel_us);
    kernel.add(kernel_us);
    overhead.add(overhead_us);
    transactions.add(static_cast<double>(costs.transactions));
    bytes.add(static_cast<double>(costs.bytes_requested));
    barriers.add(static_cast<double>(costs.barriers));
  }
}

void note_faults(const FaultCounts& faults) noexcept {
  static auto bit_flips = obs::counter_handle("gpusim.fault.bit_flips");
  static auto shared = obs::counter_handle("gpusim.fault.shared_corruptions");
  static auto nans = obs::counter_handle("gpusim.fault.nan_writes");
  static auto launches = obs::counter_handle("gpusim.fault.launch_failures");
  static auto timeouts = obs::counter_handle("gpusim.fault.timeouts");
  bit_flips.add(static_cast<double>(faults.bit_flips));
  shared.add(static_cast<double>(faults.shared_corruptions));
  nans.add(static_cast<double>(faults.nan_writes));
  launches.add(static_cast<double>(faults.launch_failures));
  timeouts.add(static_cast<double>(faults.timeouts));
}

void note_hazards(const HazardCounts& hazards) noexcept {
  static auto raw = obs::counter_handle("gpusim.hazard.raw");
  static auto war = obs::counter_handle("gpusim.hazard.war");
  static auto waw = obs::counter_handle("gpusim.hazard.waw");
  static auto oob = obs::counter_handle("gpusim.hazard.oob");
  static auto divergence = obs::counter_handle("gpusim.hazard.divergence");
  static auto tracked = obs::counter_handle("gpusim.hazard.tracked");
  raw.add(static_cast<double>(hazards.raw));
  war.add(static_cast<double>(hazards.war));
  waw.add(static_cast<double>(hazards.waw));
  oob.add(static_cast<double>(hazards.oob));
  divergence.add(static_cast<double>(hazards.divergence));
  tracked.add(static_cast<double>(hazards.tracked));
}

}  // namespace detail

}  // namespace tridsolve::gpusim
