#pragma once
// Functional execution context for one simulated thread block.
//
// A kernel is a callable `void(BlockContext&)`. Inside it, computation is
// organized into *phases*: `ctx.phase([&](ThreadCtx& t) { ... })` runs the
// lambda once per thread id, with an implicit block-wide barrier at the
// end — the direct analogue of the code between two __syncthreads() in a
// CUDA kernel. Within a phase each thread:
//   * reads/writes global memory through t.load / t.store (functionally
//     real, and recorded for per-warp coalescing analysis),
//   * charges arithmetic through t.flops<T>/t.divs<T>,
//   * marks serialized-dependence boundaries with t.end_round() (e.g. one
//     iteration of a forward sweep = one exposed memory round).
//
// Threads of a block run sequentially in tid order; algorithms must be
// race-free between barriers exactly as on real hardware, and the
// round-indexed coalescer reconstructs the lockstep warp view.
//
// Blocks draw their arena and instrumentation state from a WorkerScratch
// owned by the executing worker thread, so back-to-back blocks (and
// launches) reuse warm buffers instead of allocating. A block constructed
// with record=false executes functionally but skips all cost recording —
// the sampled/functional_only fast paths of the execution engine.
//
// Contracts:
//  * Thread-safety: a BlockContext (and the ThreadCtx handles it hands
//    out) lives on one engine worker thread; nothing here is shared
//    between concurrent blocks except read-only launch inputs.
//  * Bit-exactness: phase() and phase_rounds() record identical costs for
//    the same accesses, and neither cost recording, hazard tracking
//    (`hazards != nullptr`) nor record=false changes any functional
//    result — only what is observed about it. Fault injection
//    (`faults != nullptr`) is the sole deliberate exception: it corrupts
//    functional values, but never recorded costs.
//  * Units: load/store sizes are bytes; flops are op-equivalents at the
//    value type's precision; rounds are serialized-memory-round counts.

#include <cassert>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "gpusim/bank_tracker.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/fault_injector.hpp"
#include "gpusim/hazard_tracker.hpp"
#include "gpusim/shared_memory.hpp"
#include "gpusim/vector_engine.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace tridsolve::gpusim {

class BlockContext;

/// Reusable per-worker execution state: one shared-memory arena plus
/// pooled per-warp coalescers/bank trackers, all kept warm across blocks
/// and launches. prepare() rebuilds only when device parameters change.
struct WorkerScratch {
  std::unique_ptr<SharedArena> arena;
  std::vector<WarpCoalescer> coalescers;
  std::vector<BankTracker> banks;
  /// Per-block lane carries (c', d', x_next, PCR window state) — bump
  /// pool, warm across blocks and launches so steady-state functional
  /// blocks perform zero heap allocations (gpusim.scratch.* metrics).
  LanePool lanes;
  /// Cost sink trackers stay attached to between blocks; never reported.
  KernelCosts discard;

  void prepare(const DeviceSpec& dev) {
    if (arena && arena_capacity_ == dev.shared_mem_per_block &&
        tx_bytes_ == static_cast<std::size_t>(dev.transaction_bytes) &&
        num_banks_ == dev.shared_banks &&
        bank_width_ == dev.shared_bank_width) {
      return;
    }
    arena = std::make_unique<SharedArena>(dev.shared_mem_per_block);
    coalescers.clear();
    banks.clear();
    arena_capacity_ = dev.shared_mem_per_block;
    tx_bytes_ = dev.transaction_bytes;
    num_banks_ = dev.shared_banks;
    bank_width_ = dev.shared_bank_width;
  }

  /// Grow the per-warp tracker pools to at least `num_warps` entries.
  void ensure_warps(const DeviceSpec& dev, std::size_t num_warps) {
    if (coalescers.size() >= num_warps) return;
    coalescers.reserve(num_warps);
    banks.reserve(num_warps);
    while (coalescers.size() < num_warps) {
      coalescers.emplace_back(dev.transaction_bytes, &discard);
      banks.emplace_back(dev.shared_banks, dev.shared_bank_width, &discard);
    }
  }

 private:
  std::size_t arena_capacity_ = 0;
  std::size_t tx_bytes_ = 0;
  int num_banks_ = 0;
  int bank_width_ = 0;
};

/// Per-thread handle passed to phase lambdas.
class ThreadCtx {
 public:
  ThreadCtx(BlockContext* block, int tid, std::size_t round = 0) noexcept
      : block_(block), tid_(tid), round_(round) {}

  [[nodiscard]] int tid() const noexcept { return tid_; }

  /// Functional global load, recorded for coalescing/bandwidth accounting.
  template <typename T>
  [[nodiscard]] T load(const T* p);

  /// Functional global store, recorded likewise.
  template <typename T>
  void store(T* p, T v);

  /// Charge n arithmetic op-equivalents at T's precision.
  template <typename T>
  void flops(double n);

  /// Charge n divisions (weighted by the device's div_op_cost).
  template <typename T>
  void divs(double n);

  /// Instrumented *shared-memory* load/store: functionally identical to a
  /// plain access, but recorded for bank-conflict accounting. Optional —
  /// only kernels studying shared access patterns route through these.
  template <typename T>
  [[nodiscard]] T sload(const T* p);
  template <typename T>
  void sstore(T* p, T v);

  /// Hazard-only annotations for kernels that touch simulated shared
  /// memory through raw references (spans from ctx.shared<T>()): they
  /// record nothing into KernelCosts and are no-ops unless hazard
  /// checking is enabled on this block. Annotate each raw shared read and
  /// write so the detector sees the kernel's true barrier structure.
  template <typename T>
  void note_sread(const T& ref);
  template <typename T>
  void note_swrite(const T& ref);

  /// Intra-phase barrier marker — the analogue of a __syncthreads()
  /// *inside* the code between two phase boundaries. Purely observational
  /// (no cost, no functional effect): the hazard detector uses it to
  /// order accesses within a phase and to flag barrier divergence when
  /// the threads of a block disagree on how many they executed.
  void sync() noexcept;

  /// Close the current dependent-load round: subsequent loads belong to a
  /// new serialized memory round on this thread's critical path.
  void end_round() noexcept { ++round_; }

  [[nodiscard]] std::size_t rounds() const noexcept { return round_; }

 private:
  BlockContext* block_;
  int tid_;
  std::size_t round_ = 0;
  std::size_t shared_ordinal_ = 0;
};

/// One simulated thread block.
class BlockContext {
 public:
  BlockContext(const DeviceSpec& dev, std::size_t block_id,
               std::size_t grid_blocks, int block_threads,
               WorkerScratch& scratch, KernelCosts& costs, bool record = true,
               HazardTracker* hazards = nullptr, FaultSession* faults = nullptr,
               std::uint64_t span_parent = 0, bool vector_ok = false)
      : dev_(dev),
        block_id_(block_id),
        grid_blocks_(grid_blocks),
        block_threads_(block_threads),
        scratch_(scratch),
        costs_(costs),
        record_(record),
        vector_(vector_ok),
        hazards_(hazards),
        faults_(faults),
        span_parent_(span_parent) {
    assert(block_threads_ > 0);
    scratch_.prepare(dev_);
    scratch_.arena->reset();
    scratch_.lanes.begin_block();
    if (hazards_ != nullptr) {
      hazards_->begin_block(scratch_.arena.get(), block_id_, block_threads_);
    }
    num_warps_ = (static_cast<std::size_t>(block_threads_) + dev_.warp_size - 1) /
                 dev_.warp_size;
    if (record_) {
      scratch_.ensure_warps(dev_, num_warps_);
      for (std::size_t w = 0; w < num_warps_; ++w) {
        scratch_.coalescers[w].attach(&costs_);
        scratch_.banks[w].attach(&costs_);
      }
    }
  }

  [[nodiscard]] std::size_t block_id() const noexcept { return block_id_; }
  [[nodiscard]] std::size_t grid_blocks() const noexcept { return grid_blocks_; }
  [[nodiscard]] int block_threads() const noexcept { return block_threads_; }
  [[nodiscard]] const DeviceSpec& device() const noexcept { return dev_; }
  [[nodiscard]] bool recording() const noexcept { return record_; }
  /// True when a hazard detector is watching this block. Kernels with a
  /// non-instrumented raw twin must take the instrumented path while
  /// hazard checking so the detector sees every access.
  [[nodiscard]] bool hazard_checking() const noexcept {
    return hazards_ != nullptr;
  }
  /// True when a fault injector is attached to this block. Kernels with a
  /// non-instrumented raw twin must take the instrumented path while
  /// fault checking so every global access is a candidate site (and the
  /// site ordinals match the instrumented modes).
  [[nodiscard]] bool fault_checking() const noexcept {
    return faults_ != nullptr;
  }
  /// True when the engine allows the vectorized lane fast path
  /// (vector_engine.hpp). Kernels take it only on top of the raw-twin
  /// gate — never while recording, hazard checking, fault checking or
  /// guarding — and must stay bit-identical to the scalar twin.
  [[nodiscard]] bool vector_enabled() const noexcept { return vector_; }

  /// Allocate shared memory for this block (throws if over capacity).
  template <typename T>
  [[nodiscard]] std::span<T> shared(std::size_t n) {
    return {scratch_.arena->allocate<T>(n), n};
  }

  /// Per-block lane carries from the worker's warm LanePool: host-side
  /// bookkeeping storage (simulated registers), value-initialized, valid
  /// until the block ends. Never counts against simulated shared memory.
  template <typename T>
  [[nodiscard]] std::span<T> lane_buffer(std::size_t n) {
    return scratch_.lanes.take<T>(n);
  }

  /// Run one barrier-delimited phase: fn(ThreadCtx&) for every tid.
  template <typename F>
  void phase(F&& fn) {
    const double span_t0 = phase_span_begin();
    const int warp = dev_.warp_size;
    for (int tid = 0; tid < block_threads_; ++tid) {
      current_warp_ = static_cast<std::size_t>(tid / warp);
      ThreadCtx t(this, tid);
      fn(t);
    }
    phase_span_end("phase", span_t0, 1);
    if (record_) {
      for (std::size_t w = 0; w < num_warps_; ++w) {
        scratch_.coalescers[w].flush();
        scratch_.banks[w].flush();
      }
      ++costs_.barriers;
    }
    if (hazards_ != nullptr) hazards_->end_phase();
    if (faults_ != nullptr) faults_->end_phase(*scratch_.arena);
  }

  /// Run one barrier-delimited phase in *lockstep* (round-major) order:
  /// fn(ThreadCtx&, r) for every tid at round 0, then every tid at round
  /// 1, and so on — how the warp actually advances on hardware. The
  /// recorded costs are identical to the equivalent thread-major phase()
  /// (the coalescer and op counters are order-independent within a
  /// round), but independent per-thread dependence chains — the divide of
  /// a forward sweep — pipeline across lanes, and accesses walk row-major
  /// (contiguous in an interleaved layout). Per-thread carried state must
  /// live in caller-managed lane arrays; shared-memory ordinal tracking
  /// (sload/sstore grouping) restarts each round, so kernels that study
  /// bank conflicts should keep using phase().
  template <typename F>
  void phase_rounds(std::size_t rounds, F&& fn) {
    const double span_t0 = phase_span_begin();
    const int warp = dev_.warp_size;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (int tid = 0; tid < block_threads_; ++tid) {
        current_warp_ = static_cast<std::size_t>(tid / warp);
        ThreadCtx t(this, tid, r);
        fn(t, r);
      }
    }
    phase_span_end("phase_rounds", span_t0, rounds);
    if (record_) {
      for (std::size_t w = 0; w < num_warps_; ++w) {
        scratch_.coalescers[w].flush();
        scratch_.banks[w].flush();
      }
      ++costs_.barriers;
    }
    if (hazards_ != nullptr) hazards_->end_phase();
    if (faults_ != nullptr) faults_->end_phase(*scratch_.arena);
  }

  KernelCosts& costs() noexcept { return costs_; }

 private:
  friend class ThreadCtx;

  /// Phase tracing (active only for the block carrying a span parent —
  /// block 0 of a traced launch). Wall-clock only: phases have no
  /// individual simulated time (the timing model prices whole launches),
  /// so sim_t0 == sim_t1 == the launch's sim cursor. Purely
  /// observational: no cost recording, no functional effect.
  [[nodiscard]] double phase_span_begin() const noexcept {
    if (span_parent_ == 0) return 0.0;
    return obs::SpanTracer::instance().now_wall_us();
  }

  void phase_span_end(const char* kind, double wall_t0,
                      std::size_t rounds) noexcept {
    if (span_parent_ == 0) return;
    obs::SpanTracer& tracer = obs::SpanTracer::instance();
    obs::Span s;
    s.id = tracer.reserve_id();
    const std::size_t index = phase_index_++;
    if (s.id == 0) return;
    try {
      s.name = "phase" + std::to_string(index);
      s.parent = span_parent_;
      s.thread_ordinal = tracer.thread_ordinal();
      s.wall_t0_us = wall_t0;
      s.wall_t1_us = tracer.now_wall_us();
      s.sim_t0_us = s.sim_t1_us = tracer.sim_now();
      s.attrs.emplace_back("block", obs::JsonValue(block_id_));
      s.attrs.emplace_back("kind", obs::JsonValue(kind));
      s.attrs.emplace_back("rounds", obs::JsonValue(rounds));
      const double wall_us = s.wall_t1_us - s.wall_t0_us;
      tracer.emit(std::move(s));
      obs::observe("gpusim.block_phase.wall_us", wall_us);
    } catch (...) {
    }
  }

  void record_access(const void* p, std::size_t size, bool is_write,
                     std::size_t round) {
    if (!record_) return;
    scratch_.coalescers[current_warp_].record(p, size, is_write, round);
  }

  void record_shared(const void* p, std::size_t size, std::size_t ordinal) {
    if (!record_) return;
    scratch_.banks[current_warp_].record(ordinal, p, size);
  }

  void hazard_access(const void* p, std::size_t size, int tid, bool is_write,
                     bool expect_shared) {
    if (hazards_ != nullptr) {
      hazards_->access(p, size, tid, is_write, expect_shared);
    }
  }

  void hazard_sync(int tid) noexcept {
    if (hazards_ != nullptr) hazards_->sync(tid);
  }

  /// Give the fault injector (when attached) a shot at a global access
  /// value. No-op — and no site-ordinal consumption — when inactive.
  template <typename T>
  [[nodiscard]] T fault_data(T v, bool is_store) noexcept {
    return faults_ != nullptr ? faults_->filter_data(v, is_store) : v;
  }

  const DeviceSpec& dev_;
  std::size_t block_id_;
  std::size_t grid_blocks_;
  int block_threads_;
  WorkerScratch& scratch_;
  KernelCosts& costs_;
  bool record_;
  bool vector_ = false;
  HazardTracker* hazards_ = nullptr;
  FaultSession* faults_ = nullptr;
  std::uint64_t span_parent_ = 0;
  std::size_t phase_index_ = 0;
  std::size_t num_warps_ = 0;
  std::size_t current_warp_ = 0;
};

template <typename T>
T ThreadCtx::load(const T* p) {
  block_->record_access(p, sizeof(T), /*is_write=*/false, round_);
  block_->hazard_access(p, sizeof(T), tid_, /*is_write=*/false,
                        /*expect_shared=*/false);
  return block_->fault_data(*p, /*is_store=*/false);
}

template <typename T>
void ThreadCtx::store(T* p, T v) {
  block_->record_access(p, sizeof(T), /*is_write=*/true, round_);
  block_->hazard_access(p, sizeof(T), tid_, /*is_write=*/true,
                        /*expect_shared=*/false);
  *p = block_->fault_data(v, /*is_store=*/true);
}

template <typename T>
T ThreadCtx::sload(const T* p) {
  block_->record_shared(p, sizeof(T), shared_ordinal_++);
  block_->hazard_access(p, sizeof(T), tid_, /*is_write=*/false,
                        /*expect_shared=*/true);
  return *p;
}

template <typename T>
void ThreadCtx::sstore(T* p, T v) {
  block_->record_shared(p, sizeof(T), shared_ordinal_++);
  block_->hazard_access(p, sizeof(T), tid_, /*is_write=*/true,
                        /*expect_shared=*/true);
  *p = v;
}

template <typename T>
void ThreadCtx::note_sread(const T& ref) {
  block_->hazard_access(&ref, sizeof(T), tid_, /*is_write=*/false,
                        /*expect_shared=*/true);
}

template <typename T>
void ThreadCtx::note_swrite(const T& ref) {
  block_->hazard_access(&ref, sizeof(T), tid_, /*is_write=*/true,
                        /*expect_shared=*/true);
}

inline void ThreadCtx::sync() noexcept { block_->hazard_sync(tid_); }

template <typename T>
void ThreadCtx::flops(double n) {
  if (!block_->record_) return;
  if constexpr (sizeof(T) == 8) {
    block_->costs_.ops_f64 += n;
  } else {
    block_->costs_.ops_f32 += n;
  }
}

template <typename T>
void ThreadCtx::divs(double n) {
  flops<T>(n * block_->dev_.div_op_cost);
}

}  // namespace tridsolve::gpusim
