#pragma once
// Functional execution context for one simulated thread block.
//
// A kernel is a callable `void(BlockContext&)`. Inside it, computation is
// organized into *phases*: `ctx.phase([&](ThreadCtx& t) { ... })` runs the
// lambda once per thread id, with an implicit block-wide barrier at the
// end — the direct analogue of the code between two __syncthreads() in a
// CUDA kernel. Within a phase each thread:
//   * reads/writes global memory through t.load / t.store (functionally
//     real, and recorded for per-warp coalescing analysis),
//   * charges arithmetic through t.flops<T>/t.divs<T>,
//   * marks serialized-dependence boundaries with t.end_round() (e.g. one
//     iteration of a forward sweep = one exposed memory round).
//
// Threads of a block run sequentially in tid order; algorithms must be
// race-free between barriers exactly as on real hardware, and the
// round-indexed coalescer reconstructs the lockstep warp view.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "gpusim/bank_tracker.hpp"
#include "gpusim/coalescer.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/shared_memory.hpp"

namespace tridsolve::gpusim {

class BlockContext;

/// Per-thread handle passed to phase lambdas.
class ThreadCtx {
 public:
  ThreadCtx(BlockContext* block, int tid) noexcept : block_(block), tid_(tid) {}

  [[nodiscard]] int tid() const noexcept { return tid_; }

  /// Functional global load, recorded for coalescing/bandwidth accounting.
  template <typename T>
  [[nodiscard]] T load(const T* p);

  /// Functional global store, recorded likewise.
  template <typename T>
  void store(T* p, T v);

  /// Charge n arithmetic op-equivalents at T's precision.
  template <typename T>
  void flops(double n);

  /// Charge n divisions (weighted by the device's div_op_cost).
  template <typename T>
  void divs(double n);

  /// Instrumented *shared-memory* load/store: functionally identical to a
  /// plain access, but recorded for bank-conflict accounting. Optional —
  /// only kernels studying shared access patterns route through these.
  template <typename T>
  [[nodiscard]] T sload(const T* p);
  template <typename T>
  void sstore(T* p, T v);

  /// Close the current dependent-load round: subsequent loads belong to a
  /// new serialized memory round on this thread's critical path.
  void end_round() noexcept { ++round_; }

  [[nodiscard]] std::size_t rounds() const noexcept { return round_; }

 private:
  BlockContext* block_;
  int tid_;
  std::size_t round_ = 0;
  std::size_t shared_ordinal_ = 0;
};

/// One simulated thread block.
class BlockContext {
 public:
  BlockContext(const DeviceSpec& dev, std::size_t block_id, std::size_t grid_blocks,
               int block_threads, SharedArena& arena, KernelCosts& costs)
      : dev_(dev),
        block_id_(block_id),
        grid_blocks_(grid_blocks),
        block_threads_(block_threads),
        arena_(arena),
        costs_(costs) {
    assert(block_threads_ > 0);
  }

  [[nodiscard]] std::size_t block_id() const noexcept { return block_id_; }
  [[nodiscard]] std::size_t grid_blocks() const noexcept { return grid_blocks_; }
  [[nodiscard]] int block_threads() const noexcept { return block_threads_; }
  [[nodiscard]] const DeviceSpec& device() const noexcept { return dev_; }

  /// Allocate shared memory for this block (throws if over capacity).
  template <typename T>
  [[nodiscard]] std::span<T> shared(std::size_t n) {
    return {arena_.allocate<T>(n), n};
  }

  /// Run one barrier-delimited phase: fn(ThreadCtx&) for every tid.
  template <typename F>
  void phase(F&& fn) {
    const int warp = dev_.warp_size;
    const std::size_t num_warps = (static_cast<std::size_t>(block_threads_) + warp - 1) / warp;
    if (coalescers_.size() < num_warps) {
      coalescers_.reserve(num_warps);
      banks_.reserve(num_warps);
      while (coalescers_.size() < num_warps) {
        coalescers_.emplace_back(dev_.transaction_bytes, &costs_);
        banks_.emplace_back(dev_.shared_banks, dev_.shared_bank_width, &costs_);
      }
    }
    for (int tid = 0; tid < block_threads_; ++tid) {
      current_warp_ = static_cast<std::size_t>(tid / warp);
      ThreadCtx t(this, tid);
      fn(t);
    }
    for (auto& c : coalescers_) {
      c.flush();
    }
    for (auto& b : banks_) {
      b.flush();
    }
    ++costs_.barriers;
  }

  KernelCosts& costs() noexcept { return costs_; }

 private:
  friend class ThreadCtx;

  void record_access(const void* p, std::size_t size, bool is_write,
                     std::size_t round) {
    coalescers_[current_warp_].record(p, size, is_write, round);
  }

  void record_shared(const void* p, std::size_t size, std::size_t ordinal) {
    banks_[current_warp_].record(ordinal, p, size);
  }

  const DeviceSpec& dev_;
  std::size_t block_id_;
  std::size_t grid_blocks_;
  int block_threads_;
  SharedArena& arena_;
  KernelCosts& costs_;
  std::vector<WarpCoalescer> coalescers_;
  std::vector<BankTracker> banks_;
  std::size_t current_warp_ = 0;
};

template <typename T>
T ThreadCtx::load(const T* p) {
  block_->record_access(p, sizeof(T), /*is_write=*/false, round_);
  return *p;
}

template <typename T>
void ThreadCtx::store(T* p, T v) {
  block_->record_access(p, sizeof(T), /*is_write=*/true, round_);
  *p = v;
}

template <typename T>
T ThreadCtx::sload(const T* p) {
  block_->record_shared(p, sizeof(T), shared_ordinal_++);
  return *p;
}

template <typename T>
void ThreadCtx::sstore(T* p, T v) {
  block_->record_shared(p, sizeof(T), shared_ordinal_++);
  *p = v;
}

template <typename T>
void ThreadCtx::flops(double n) {
  if constexpr (sizeof(T) == 8) {
    block_->costs_.ops_f64 += n;
  } else {
    block_->costs_.ops_f32 += n;
  }
}

template <typename T>
void ThreadCtx::divs(double n) {
  flops<T>(n * block_->dev_.div_op_cost);
}

}  // namespace tridsolve::gpusim
