#pragma once
// Vectorized lane execution for the functional fast path.
//
// When a launch runs without instrumentation, hazard checking, fault
// injection or divisor guards, kernels with a raw twin may drop the
// one-thread-at-a-time simulation entirely and execute whole *lane
// segments* — runs of consecutive systems whose coefficient arrays form
// an affine grid: element (row i, lane l) of each array lives at
// base + l*lane_step + i*row_step. The interleaved layout the paper's
// p-Thomas kernel prefers (and the reduced-system views the hybrid
// solver builds) satisfy this with lane_step == 1, so the inner loops
// below are contiguous, `__restrict`-annotated, and auto-vectorize under
// -O3 (see the `release-native` preset for full-width SIMD).
//
// Contracts:
//  * Bit-exactness: every function performs, per lane, exactly the
//    arithmetic of the scalar raw twin in the same per-lane order
//    (lanes are independent systems, so cross-lane ordering is free).
//    tests/test_vector_engine.cpp pins vector-on vs vector-off outputs
//    bitwise across the solver registry.
//  * Aliasing: the four coefficient arrays (and the solution array of
//    the backward sweep, unless it is exactly the d array) must be
//    disjoint — the same precondition the in-place kernels always had.
//  * Thread-safety: all functions are pure loops over caller-owned
//    memory; distinct segments never overlap, so concurrent blocks are
//    race-free exactly as in the scalar twin.
//
// LanePool is the other half of the fast path: a per-worker bump
// allocator backing the kernels' per-block lane carries (c', d', x_next,
// PCR window state). Capacity only grows, so steady-state blocks perform
// zero heap allocations; growth vs warm-serve tallies feed the
// gpusim.scratch.{acquires,reuses} metrics.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace tridsolve::gpusim {

/// One affine lane segment (see file comment for the layout contract).
template <typename T>
struct LaneSegment {
  const T* a = nullptr;
  const T* b = nullptr;
  T* c = nullptr;
  T* d = nullptr;
  std::ptrdiff_t lane_step = 1;  ///< lane-to-lane element step (all arrays)
  std::ptrdiff_t row_step = 1;   ///< row-to-row element step (all arrays)
  std::size_t lanes = 0;
  std::size_t rows = 0;
};

/// Solution-output addressing for the backward sweep. When `x == d` of
/// the segment (same base and steps) the sweep runs its in-place
/// variant; otherwise x must be disjoint from c and d.
template <typename T>
struct LaneOutput {
  T* x = nullptr;
  std::ptrdiff_t lane_step = 1;
  std::ptrdiff_t row_step = 1;
};

/// Thomas forward elimination across a lane segment, in place
/// (c <- c', d <- d'). `cp`/`dp` are the per-lane carries (>= lanes
/// entries, zero-initialized by the caller for fresh systems).
template <typename T>
void thomas_forward_lanes(const LaneSegment<T>& seg, T* __restrict cp,
                          T* __restrict dp) noexcept {
  if (seg.rows == 0 || seg.lanes == 0) return;
  if (seg.lane_step == 1) {
    // Lane-contiguous (interleaved layout): row-major walk, the inner
    // loop is a contiguous SIMD sweep across lanes.
    for (std::size_t i = 0; i < seg.rows; ++i) {
      const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(i) * seg.row_step;
      const T* __restrict a = seg.a + off;
      const T* __restrict b = seg.b + off;
      T* __restrict c = seg.c + off;
      T* __restrict d = seg.d + off;
      for (std::size_t l = 0; l < seg.lanes; ++l) {
        const T denom = b[l] - cp[l] * a[l];
        const T inv = T(1) / denom;
        const T cpl = c[l] * inv;
        const T dpl = (d[l] - dp[l] * a[l]) * inv;
        cp[l] = cpl;
        dp[l] = dpl;
        c[l] = cpl;
        d[l] = dpl;
      }
    }
    return;
  }
  // Row-contiguous (contiguous layout, e.g. k = 0): the recurrence is
  // serial per lane, but each lane streams its rows with unit stride and
  // carried state in registers.
  for (std::size_t l = 0; l < seg.lanes; ++l) {
    const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(l) * seg.lane_step;
    const T* __restrict a = seg.a + off;
    const T* __restrict b = seg.b + off;
    T* __restrict c = seg.c + off;
    T* __restrict d = seg.d + off;
    T cpl = cp[l];
    T dpl = dp[l];
    for (std::size_t i = 0; i < seg.rows; ++i) {
      const std::ptrdiff_t k = static_cast<std::ptrdiff_t>(i) * seg.row_step;
      const T denom = b[k] - cpl * a[k];
      const T inv = T(1) / denom;
      cpl = c[k] * inv;
      dpl = (d[k] - dpl * a[k]) * inv;
      c[k] = cpl;
      d[k] = dpl;
    }
    cp[l] = cpl;
    dp[l] = dpl;
  }
}

/// Thomas backward substitution across a lane segment:
/// x_{n-1} = d'_{n-1}, then x_i = d'_i - c'_i x_{i+1}. `xn` carries
/// x_{i+1} per lane. In-place when out.x addresses the segment's d.
template <typename T>
void thomas_backward_lanes(const LaneSegment<T>& seg, const LaneOutput<T>& out,
                           T* __restrict xn) noexcept {
  if (seg.rows == 0 || seg.lanes == 0) return;
  const bool in_place = out.x == seg.d && out.lane_step == seg.lane_step &&
                        out.row_step == seg.row_step;
  if (seg.lane_step == 1 && out.lane_step == 1) {
    for (std::size_t r = 0; r < seg.rows; ++r) {
      const std::size_t i = seg.rows - 1 - r;
      const std::ptrdiff_t off = static_cast<std::ptrdiff_t>(i) * seg.row_step;
      const std::ptrdiff_t xoff =
          static_cast<std::ptrdiff_t>(i) * out.row_step;
      const T* __restrict d = seg.d + off;
      if (r == 0) {
        if (in_place) {
          for (std::size_t l = 0; l < seg.lanes; ++l) xn[l] = d[l];
        } else {
          T* __restrict x = out.x + xoff;
          for (std::size_t l = 0; l < seg.lanes; ++l) {
            const T v = d[l];
            x[l] = v;
            xn[l] = v;
          }
        }
        continue;
      }
      const T* __restrict c = seg.c + off;
      if (in_place) {
        T* __restrict dx = seg.d + off;
        for (std::size_t l = 0; l < seg.lanes; ++l) {
          const T v = dx[l] - c[l] * xn[l];
          dx[l] = v;
          xn[l] = v;
        }
      } else {
        T* __restrict x = out.x + xoff;
        for (std::size_t l = 0; l < seg.lanes; ++l) {
          const T v = d[l] - c[l] * xn[l];
          x[l] = v;
          xn[l] = v;
        }
      }
    }
    return;
  }
  // Row-contiguous / general: serial per lane, streaming rows backward.
  for (std::size_t l = 0; l < seg.lanes; ++l) {
    const T* __restrict c =
        seg.c + static_cast<std::ptrdiff_t>(l) * seg.lane_step;
    const T* __restrict d =
        seg.d + static_cast<std::ptrdiff_t>(l) * seg.lane_step;
    T* x = out.x + static_cast<std::ptrdiff_t>(l) * out.lane_step;
    const std::ptrdiff_t rs = seg.row_step;
    const std::ptrdiff_t xrs = out.row_step;
    const std::ptrdiff_t last = static_cast<std::ptrdiff_t>(seg.rows - 1);
    T v = d[last * rs];
    x[last * xrs] = v;
    for (std::ptrdiff_t i = last - 1; i >= 0; --i) {
      v = d[i * rs] - c[i * rs] * v;
      x[i * xrs] = v;
    }
    xn[l] = v;
  }
}

/// Per-worker bump pool for per-block lane carries (see file comment).
/// Chunked so a mid-block growth never invalidates earlier spans; the
/// next begin_block() consolidates into one warm buffer.
class LanePool {
 public:
  /// Reset for a new block. If the previous block overflowed into spill
  /// chunks, consolidate capacity first so this block runs warm.
  void begin_block() {
    if (total_needed_ > cap_) {
      buf_ = std::make_unique<std::byte[]>(total_needed_ + kCacheLine);
      base_ = aligned_base(buf_.get());
      cap_ = total_needed_;
      ++acquires_;
    }
    spill_.clear();
    cursor_ = 0;
    total_needed_ = 0;
  }

  /// Take n value-initialized Ts (trivially copyable only). Spans start
  /// kCacheLine-aligned (base and sizes are both rounded), so distinct
  /// carries never share a cache line.
  template <typename T>
  [[nodiscard]] std::span<T> take(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t bytes = align_up(n * sizeof(T));
    total_needed_ += bytes;
    T* p;
    if (cursor_ + bytes <= cap_) {
      p = reinterpret_cast<T*>(base_ + cursor_);
      cursor_ += bytes;
      ++reuses_;
    } else {
      // Overflow: serve from a fresh spill chunk (kept alive until the
      // next begin_block so earlier spans stay valid).
      spill_.push_back(std::make_unique<std::byte[]>(bytes + kCacheLine));
      p = reinterpret_cast<T*>(aligned_base(spill_.back().get()));
      ++acquires_;
    }
    const std::span<T> out(p, n);
    for (T& v : out) v = T{};
    return out;
  }

  /// Drain the metric tallies (called once per launch by the engine).
  void drain(std::size_t& acquires, std::size_t& reuses) noexcept {
    acquires += acquires_;
    reuses += reuses_;
    acquires_ = 0;
    reuses_ = 0;
  }

 private:
  static constexpr std::size_t kCacheLine = 64;
  static std::size_t align_up(std::size_t n) noexcept {
    return (n + kCacheLine - 1) & ~(kCacheLine - 1);
  }
  static std::byte* aligned_base(std::byte* p) noexcept {
    const auto addr = reinterpret_cast<std::uintptr_t>(p);
    return p + (align_up(addr) - addr);
  }

  std::unique_ptr<std::byte[]> buf_;
  std::byte* base_ = nullptr;
  std::vector<std::unique_ptr<std::byte[]>> spill_;
  std::size_t cap_ = 0;
  std::size_t cursor_ = 0;
  std::size_t total_needed_ = 0;
  std::size_t acquires_ = 0;
  std::size_t reuses_ = 0;
};

/// VecLength-style lane blocking for grid-wide fused sweeps: the widest
/// lane tile whose c and d slices (rows * width * 2 elements) still fit a
/// last-level-cache budget, so a backward substitution re-reads the
/// forward sweep's outputs from cache instead of DRAM. Power of two,
/// clamped to [64, 2^20] (tiny tiles would spend their time on loop
/// prologues instead of streaming).
[[nodiscard]] inline std::size_t lane_tile(std::size_t rows,
                                           std::size_t elem_size) noexcept {
  constexpr std::size_t kBudgetBytes = std::size_t{128} << 20;
  const std::size_t per_lane = 2 * std::max<std::size_t>(1, rows) *
                               std::max<std::size_t>(1, elem_size);
  std::size_t w = 64;
  while (w < (std::size_t{1} << 20) && (w * 2) * per_lane <= kBudgetBytes) {
    w *= 2;
  }
  return w;
}

/// The calling thread's LanePool for grid-level (host-side) fused sweeps
/// — the pooled scratch behind the functional fast path when a kernel
/// bypasses per-block execution entirely. Callers bracket a solve with
/// begin_block() and drain() into detail::note_scratch.
[[nodiscard]] LanePool& host_lane_pool() noexcept;

namespace detail {
/// Metric bookkeeping for the fast path (cached handles; see
/// vector_engine.cpp): per-launch LanePool tallies and per-block counts
/// of kernels that took the vectorized lane path.
void note_scratch(std::size_t acquires, std::size_t reuses) noexcept;
void note_vector_blocks(double n) noexcept;
}  // namespace detail

extern template void thomas_forward_lanes<float>(const LaneSegment<float>&,
                                                 float* __restrict,
                                                 float* __restrict) noexcept;
extern template void thomas_forward_lanes<double>(const LaneSegment<double>&,
                                                  double* __restrict,
                                                  double* __restrict) noexcept;
extern template void thomas_backward_lanes<float>(const LaneSegment<float>&,
                                                  const LaneOutput<float>&,
                                                  float* __restrict) noexcept;
extern template void thomas_backward_lanes<double>(const LaneSegment<double>&,
                                                   const LaneOutput<double>&,
                                                   double* __restrict) noexcept;

}  // namespace tridsolve::gpusim
