#pragma once
// Aggregated cost counters recorded while a simulated kernel executes.
//
// Contracts: a plain value type with no internal synchronization — the
// engine gives each worker a private shard and merges shards in block
// order, so merged totals are bit-identical for any worker count
// (merge() uses only order-independent sums plus one max). Units: ops
// are op-equivalents (divisions pre-weighted by DeviceSpec::div_op_cost),
// memory fields are counts of 128-B transactions / bytes / element
// accesses, shared_serializations is extra conflict replays in
// cycle-equivalents per warp. No time lives here — the timing model
// converts costs to microseconds.

#include <cstddef>

namespace tridsolve::gpusim {

/// Everything the timing model needs from a kernel run, plus bookkeeping
/// counters benches/tests assert on directly (transactions, eliminations
/// are counted by the kernels themselves where relevant).
struct KernelCosts {
  // Arithmetic, in op-equivalents (divisions pre-weighted by div_op_cost).
  double ops_f32 = 0.0;
  double ops_f64 = 0.0;

  // Global memory.
  std::size_t transactions = 0;     ///< coalesced 128-B segment transfers
  std::size_t bytes_requested = 0;  ///< useful bytes (sum of access sizes)
  std::size_t loads = 0;            ///< element loads issued
  std::size_t stores = 0;           ///< element stores issued

  // Latency structure.
  std::size_t rounds_total = 0;  ///< serialized memory rounds, summed over warps
  std::size_t warps = 0;         ///< warps that executed
  std::size_t barriers = 0;      ///< block-wide barriers executed (summed)

  // Shared memory (only for kernels that route accesses through
  // ThreadCtx::sload/sstore).
  std::size_t shared_accesses = 0;       ///< instrumented shared accesses
  std::size_t shared_bytes = 0;          ///< bytes moved through shared memory
  std::size_t shared_serializations = 0; ///< extra conflict replays (cycles/warp)

  std::size_t shared_peak_bytes = 0;  ///< max shared-memory footprint per block

  void merge(const KernelCosts& o) noexcept {
    ops_f32 += o.ops_f32;
    ops_f64 += o.ops_f64;
    transactions += o.transactions;
    bytes_requested += o.bytes_requested;
    loads += o.loads;
    stores += o.stores;
    rounds_total += o.rounds_total;
    warps += o.warps;
    barriers += o.barriers;
    shared_accesses += o.shared_accesses;
    shared_bytes += o.shared_bytes;
    shared_serializations += o.shared_serializations;
    shared_peak_bytes = shared_peak_bytes > o.shared_peak_bytes
                            ? shared_peak_bytes
                            : o.shared_peak_bytes;
  }

  /// Bandwidth efficiency: useful bytes / bytes moved (1.0 = perfectly
  /// coalesced given 128-B transactions fully used).
  [[nodiscard]] double coalescing_efficiency(std::size_t transaction_bytes) const noexcept {
    const double moved = static_cast<double>(transactions * transaction_bytes);
    return moved > 0.0 ? static_cast<double>(bytes_requested) / moved : 1.0;
  }
};

}  // namespace tridsolve::gpusim
