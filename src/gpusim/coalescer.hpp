#pragma once
// Per-warp global-memory transaction accounting.
//
// Threads of a warp execute in lockstep; the addresses they touch within
// one "round" (one dependent-load step, e.g. one iteration of the Thomas
// forward sweep) coalesce into as few fixed-size segments as the access
// pattern allows. The simulator executes threads of a block sequentially,
// so each warp buffers its rounds' segment sets and flushes once the
// whole warp has run the phase.
//
// Instances live in per-worker scratch and are reused across phases,
// blocks and launches: flush() retires the round data but keeps every
// buffer's capacity, and attach() redirects the instance at the next
// block's cost shard. After warm-up the per-access path allocates only
// when a round sees more distinct segments than any round before it.
//
// Contracts: NOT thread-safe — one instance per engine worker, never
// shared across threads; per-worker cost shards merge in block order so
// recorded totals are bit-identical for any --sim-threads value.
// Recording is read-only w.r.t. kernel numerics. Units: transactions are
// fixed-size segments of DeviceSpec::transaction_bytes (128 B on Fermi);
// requested sizes are bytes.

#include <cstdint>
#include <cstddef>
#include <vector>

#include "gpusim/costs.hpp"

namespace tridsolve::gpusim {

class WarpCoalescer {
 public:
  WarpCoalescer(std::size_t transaction_bytes, KernelCosts* costs)
      : seg_bytes_(transaction_bytes), costs_(costs) {}

  /// Point subsequent recording at a (possibly different) cost shard.
  /// Requires the previous phase to have been flushed.
  void attach(KernelCosts* costs) noexcept { costs_ = costs; }

  /// Record an access from the current thread in round `round`. Reads and
  /// writes coalesce separately — a load and a store to the same segment
  /// are two transactions on hardware.
  void record(const void* addr, std::size_t size, bool is_write, std::size_t round) {
    if (round >= rounds_used_) {
      rounds_used_ = round + 1;
      if (rounds_used_ > rounds_.size()) rounds_.resize(rounds_used_);
    }
    auto& segs = is_write ? rounds_[round].writes : rounds_[round].reads;
    const auto first = reinterpret_cast<std::uintptr_t>(addr) / seg_bytes_;
    const auto last = (reinterpret_cast<std::uintptr_t>(addr) + size - 1) / seg_bytes_;
    for (std::uintptr_t s = first; s <= last; ++s) insert_unique(segs, s);
    costs_->bytes_requested += size;
    if (is_write) {
      ++costs_->stores;
    } else {
      ++costs_->loads;
    }
  }

  /// Called once per warp after all of its threads finished the phase.
  /// Keeps buffer capacity for reuse by the next phase/block.
  void flush() {
    std::size_t tx = 0;
    for (std::size_t r = 0; r < rounds_used_; ++r) {
      tx += rounds_[r].reads.size() + rounds_[r].writes.size();
      rounds_[r].reads.clear();
      rounds_[r].writes.clear();
    }
    costs_->transactions += tx;
    costs_->rounds_total += rounds_used_;
    rounds_used_ = 0;
  }

  [[nodiscard]] bool empty() const noexcept { return rounds_used_ == 0; }

 private:
  struct Round {
    std::vector<std::uintptr_t> reads;
    std::vector<std::uintptr_t> writes;
  };

  static void insert_unique(std::vector<std::uintptr_t>& v, std::uintptr_t s) {
    for (std::uintptr_t existing : v) {
      if (existing == s) return;
    }
    v.push_back(s);
  }

  std::size_t seg_bytes_;
  KernelCosts* costs_;
  std::vector<Round> rounds_;
  std::size_t rounds_used_ = 0;  // rounds_[0..rounds_used_) are live
};

}  // namespace tridsolve::gpusim
