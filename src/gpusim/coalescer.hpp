#pragma once
// Per-warp global-memory transaction accounting.
//
// Threads of a warp execute in lockstep; the addresses they touch within
// one "round" (one dependent-load step, e.g. one iteration of the Thomas
// forward sweep) coalesce into as few fixed-size segments as the access
// pattern allows. The simulator executes threads of a block sequentially,
// so each warp buffers its rounds' segment sets and flushes once the
// whole warp has run the phase.

#include <cstdint>
#include <cstddef>
#include <vector>

#include "gpusim/costs.hpp"

namespace tridsolve::gpusim {

class WarpCoalescer {
 public:
  WarpCoalescer(std::size_t transaction_bytes, KernelCosts* costs)
      : seg_bytes_(transaction_bytes), costs_(costs) {}

  /// Record an access from the current thread in round `round`. Reads and
  /// writes coalesce separately — a load and a store to the same segment
  /// are two transactions on hardware.
  void record(const void* addr, std::size_t size, bool is_write, std::size_t round) {
    if (round >= rounds_.size()) rounds_.resize(round + 1);
    auto& segs = is_write ? rounds_[round].writes : rounds_[round].reads;
    const auto first = reinterpret_cast<std::uintptr_t>(addr) / seg_bytes_;
    const auto last = (reinterpret_cast<std::uintptr_t>(addr) + size - 1) / seg_bytes_;
    for (std::uintptr_t s = first; s <= last; ++s) insert_unique(segs, s);
    costs_->bytes_requested += size;
    if (is_write) {
      ++costs_->stores;
    } else {
      ++costs_->loads;
    }
  }

  /// Called once per warp after all of its threads finished the phase.
  void flush() {
    std::size_t tx = 0;
    for (const auto& round : rounds_) tx += round.reads.size() + round.writes.size();
    costs_->transactions += tx;
    costs_->rounds_total += rounds_.size();
    rounds_.clear();
  }

  [[nodiscard]] bool empty() const noexcept { return rounds_.empty(); }

 private:
  struct Round {
    std::vector<std::uintptr_t> reads;
    std::vector<std::uintptr_t> writes;
  };

  static void insert_unique(std::vector<std::uintptr_t>& v, std::uintptr_t s) {
    for (std::uintptr_t existing : v) {
      if (existing == s) return;
    }
    v.push_back(s);
  }

  std::size_t seg_bytes_;
  KernelCosts* costs_;
  std::vector<Round> rounds_;
};

}  // namespace tridsolve::gpusim
