#pragma once
// Dynamic shared-memory hazard detector for the functional GPU model.
//
// The simulator executes the threads of a block sequentially, so an
// intra-phase shared-memory race — two threads touching the same word
// between barriers, which on hardware has no defined order — silently
// produces *some* order-dependent result instead of failing. The
// HazardTracker closes that gap: while a block runs, it records per
// shared-arena-word read/write sets (accessing tid + barrier epoch) and
// flags, between *distinct* threads inside the same barrier interval:
//
//   RAW   a thread reads a word another thread wrote this interval
//   WAR   a thread overwrites a word another thread read this interval
//   WAW   two threads write the same word in one interval
//   OOB   a shared access outside the arena's allocated region
//   DIV   barrier divergence: threads of one block disagree on how many
//         intra-phase barriers (ThreadCtx::sync) they executed
//
// Accesses reach the tracker from ThreadCtx::load/store (when the pointer
// lands inside the arena), from sload/sstore, and from the hazard-only
// annotations note_sread/note_swrite that raw-access kernels (the tiled
// PCR sliding window) carry. Epochs advance at every phase boundary and
// at every uniform ThreadCtx::sync, so accesses separated by a barrier
// never conflict.
//
// Contracts:
//  * Detection is read-only: the tracker never touches KernelCosts, the
//    arena contents, or the kernel's arithmetic, so a run with detection
//    enabled is bit-identical in outputs and simulated time to one
//    without (pinned by tests/test_hazards.cpp).
//  * Thread-safety: one tracker belongs to one engine worker
//    (WorkerScratch) and is only touched from that worker's thread; the
//    engine merges per-worker counts after the launch (sums are
//    order-independent, the reported example is the one from the lowest
//    block id, so results are deterministic for any worker count).
//  * Units: word granularity is 4 bytes (the shared-bank word); counts
//    are conflicting *accesses* observed, not conflicting pairs.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/shared_memory.hpp"

namespace tridsolve::gpusim {

/// Per-launch hazard totals (merged across workers in deterministic
/// fashion: every field is a sum).
struct HazardCounts {
  std::size_t raw = 0;         ///< read-after-write conflicts
  std::size_t war = 0;         ///< write-after-read conflicts
  std::size_t waw = 0;         ///< write-after-write conflicts
  std::size_t oob = 0;         ///< out-of-bounds arena accesses
  std::size_t divergence = 0;  ///< phases with non-uniform sync counts
  std::size_t tracked = 0;     ///< shared accesses the tracker inspected

  [[nodiscard]] std::size_t total() const noexcept {
    return raw + war + waw + oob + divergence;
  }
  [[nodiscard]] bool any() const noexcept { return total() > 0; }

  void merge(const HazardCounts& o) noexcept {
    raw += o.raw;
    war += o.war;
    waw += o.waw;
    oob += o.oob;
    divergence += o.divergence;
    tracked += o.tracked;
  }
};

/// First finding of a launch (by block id, then program order within the
/// block — deterministic for any worker count).
struct HazardExample {
  bool valid = false;
  const char* kind = "";        ///< "raw"|"war"|"waw"|"oob"|"divergence"
  std::size_t block = 0;        ///< block id the finding occurred in
  std::size_t phase = 0;        ///< barrier-interval index within the block
  std::size_t byte_offset = 0;  ///< arena byte offset of the word (not DIV)
  int tid_a = -1;               ///< earlier-access thread (or first diverger)
  int tid_b = -1;               ///< conflicting-access thread

  [[nodiscard]] std::string describe() const {
    if (!valid) return "no hazard";
    std::string s = std::string(kind) + " hazard in block " +
                    std::to_string(block) + ", phase " + std::to_string(phase);
    if (std::string(kind) != "divergence") {
      s += ", arena byte " + std::to_string(byte_offset);
    }
    if (tid_a >= 0) s += ", tid " + std::to_string(tid_a);
    if (tid_b >= 0) s += " vs tid " + std::to_string(tid_b);
    return s;
  }
};

class HazardTracker {
 public:
  /// Reset the per-launch accumulators (counts + example). The word table
  /// keeps its storage; stale entries are invalidated by epoch tags.
  void begin_launch() noexcept {
    counts_ = HazardCounts{};
    example_ = HazardExample{};
  }

  /// Enter a block: bind the worker's arena, bump to a fresh epoch and
  /// reset the per-thread sync counters.
  void begin_block(const SharedArena* arena, std::size_t block_id,
                   int block_threads) {
    arena_ = arena;
    block_ = block_id;
    phase_ = 0;
    next_epoch();
    sync_counts_.assign(static_cast<std::size_t>(block_threads), 0);
    if (arena_ != nullptr) {
      const std::size_t words = (arena_->capacity() + kWord - 1) / kWord;
      if (words_.size() < words) words_.resize(words);
    }
  }

  /// Intra-phase barrier marker for thread `tid` (ThreadCtx::sync).
  void sync(int tid) noexcept {
    if (static_cast<std::size_t>(tid) < sync_counts_.size()) {
      ++sync_counts_[static_cast<std::size_t>(tid)];
    }
  }

  /// Close a barrier-delimited phase: flag divergence when threads saw
  /// different numbers of intra-phase barriers, then open a new epoch.
  void end_phase() {
    if (!sync_counts_.empty()) {
      const std::uint32_t first = sync_counts_.front();
      for (std::size_t t = 1; t < sync_counts_.size(); ++t) {
        if (sync_counts_[t] != first) {
          ++counts_.divergence;
          note_example("divergence", 0, 0, static_cast<int>(t));
          break;
        }
      }
      sync_counts_.assign(sync_counts_.size(), 0);
    }
    ++phase_;
    next_epoch();
  }

  /// Record one access by `tid`. `expect_shared` marks calls that promise
  /// a shared-memory pointer (sload/sstore, note_sread/note_swrite): for
  /// those, a pointer outside the allocated arena region is an OOB
  /// finding. Plain load/store pass false — pointers outside the arena
  /// are ordinary global traffic and are ignored.
  void access(const void* p, std::size_t bytes, int tid, bool is_write,
              bool expect_shared) {
    if (arena_ == nullptr || bytes == 0) return;
    const auto* base = arena_->data();
    const auto* q = static_cast<const std::byte*>(p);
    if (q < base || q + bytes > base + arena_->capacity()) {
      if (expect_shared) {
        ++counts_.oob;
        note_example("oob", 0, tid, -1);
      }
      return;  // global access (or already reported): nothing to track
    }
    const auto offset = static_cast<std::size_t>(q - base);
    if (offset + bytes > arena_->used()) {
      // Inside the arena but past the allocation high-water mark: out of
      // every live ctx.shared<T>() span, whichever call style got here.
      ++counts_.oob;
      note_example("oob", offset, tid, -1);
      return;
    }
    ++counts_.tracked;
    const std::uint64_t e =
        epoch_ + sync_counts_[std::min<std::size_t>(
                     static_cast<std::size_t>(tid), sync_counts_.size() - 1)];
    bool raw = false, war = false, waw = false;
    std::size_t conflict_off = offset;
    int other = -1;
    for (std::size_t w = offset / kWord; w <= (offset + bytes - 1) / kWord;
         ++w) {
      Word& word = words_[w];
      if (is_write) {
        if (word.write_epoch == e && word.write_tid != tid && !waw) {
          waw = true;
          conflict_off = w * kWord;
          other = word.write_tid;
        }
        if (word.read_epoch == e &&
            (word.read_tid == kMultiTid || word.read_tid != tid) && !war) {
          war = true;
          conflict_off = w * kWord;
          other = word.read_tid == kMultiTid ? -1 : word.read_tid;
        }
        word.write_epoch = e;
        word.write_tid = tid;
      } else {
        if (word.write_epoch == e && word.write_tid != tid && !raw) {
          raw = true;
          conflict_off = w * kWord;
          other = word.write_tid;
        }
        if (word.read_epoch == e) {
          if (word.read_tid != tid) word.read_tid = kMultiTid;
        } else {
          word.read_epoch = e;
          word.read_tid = tid;
        }
      }
    }
    if (raw) {
      ++counts_.raw;
      note_example("raw", conflict_off, other, tid);
    }
    if (war) {
      ++counts_.war;
      note_example("war", conflict_off, other, tid);
    }
    if (waw) {
      ++counts_.waw;
      note_example("waw", conflict_off, other, tid);
    }
  }

  [[nodiscard]] const HazardCounts& counts() const noexcept { return counts_; }
  [[nodiscard]] const HazardExample& example() const noexcept {
    return example_;
  }

 private:
  static constexpr std::size_t kWord = 4;  ///< shared-bank word, bytes
  static constexpr int kMultiTid = -2;     ///< >1 distinct readers this epoch

  struct Word {
    std::uint64_t write_epoch = 0;
    std::uint64_t read_epoch = 0;
    int write_tid = -1;
    int read_tid = -1;
  };

  /// Open a fresh epoch window. Strides stay clear of any realistic
  /// per-phase sync count, so (epoch_ + sync_count) values never collide
  /// across phases or blocks; epochs are monotone for the tracker's
  /// lifetime, which keeps stale word-table entries inert without any
  /// O(capacity) clearing.
  void next_epoch() noexcept { epoch_ += kEpochStride; }
  static constexpr std::uint64_t kEpochStride = std::uint64_t{1} << 32;

  void note_example(const char* kind, std::size_t byte_offset, int tid_a,
                    int tid_b) {
    // Keep the finding from the lowest block id (first in program order
    // within a block: `<` never replaces a same-block earlier finding).
    if (example_.valid && example_.block <= block_) return;
    example_.valid = true;
    example_.kind = kind;
    example_.block = block_;
    example_.phase = phase_;
    example_.byte_offset = byte_offset;
    example_.tid_a = tid_a;
    example_.tid_b = tid_b;
  }

  const SharedArena* arena_ = nullptr;
  std::vector<Word> words_;
  std::vector<std::uint32_t> sync_counts_;
  std::uint64_t epoch_ = 0;
  std::size_t block_ = 0;
  std::size_t phase_ = 0;
  HazardCounts counts_{};
  HazardExample example_{};
};

}  // namespace tridsolve::gpusim
