#pragma once
// SM occupancy calculation: how many blocks/warps of a launch can be
// resident on one SM at once. This is the mechanism behind the paper's
// key argument for fine-grained tiling — the tiled PCR's small shared
// footprint admits more concurrent blocks than coarse-grained tiling,
// hence better latency hiding (§III.A "advantages", §V).
//
// Contracts: pure functions of (DeviceSpec, launch shape) — no state, no
// side effects, safe to call concurrently; the same inputs always return
// the same result. Units: counts of blocks/warps/threads and an
// occupancy fraction in [0, 1]; shared footprints in bytes.

#include <cstddef>
#include <string>

#include "gpusim/device_spec.hpp"

namespace tridsolve::gpusim {

struct Occupancy {
  int blocks_per_sm = 0;
  int resident_warps_per_sm = 0;
  double fraction = 0.0;          ///< resident warps / max warps
  std::string limiter;            ///< "threads" | "blocks" | "shared" | "launch"

  [[nodiscard]] bool launchable() const noexcept { return blocks_per_sm > 0; }
};

/// Compute occupancy for a (block_threads, shared_bytes_per_block) launch.
[[nodiscard]] Occupancy compute_occupancy(const DeviceSpec& dev, int block_threads,
                                          std::size_t shared_bytes_per_block);

}  // namespace tridsolve::gpusim
