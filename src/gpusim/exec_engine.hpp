#pragma once
// Fast-path execution engine behind gpusim::launch.
//
// Grid blocks of a simulated kernel are independent by construction (the
// functional model has no inter-block communication), so the engine
// executes them on a persistent std::thread pool with per-worker
// WorkerScratch (arena + pooled coalescers/bank trackers). Costs are
// recorded into per-block shards and reduced *in block order*, which
// makes every reported number independent of the worker count and the
// (nondeterministic) block→worker assignment: all double-valued op
// counters are sums of small exactly-representable values, so any
// association of the same per-block sums is bit-identical.
//
// Instrumentation level is selected per launch (InstrumentMode):
//   exact           every block records; per-launch self-check verifies
//                   the sampling estimator against ground truth
//   sampled         only a deterministic subset of blocks (first, last,
//                   stride sample) records; recorded costs are scaled to
//                   the full grid via representative blocks. Valid for
//                   block-homogeneous kernels (all batched solvers here);
//                   outputs remain bit-exact because *all* blocks still
//                   execute functionally.
//   functional_only no recording at all; the launch refuses to report
//                   timing (LaunchStats.timed == false).
//
// Thread count comes from --sim-threads / TRIDSOLVE_SIM_THREADS (default
// hardware_concurrency); the main thread always participates, so 1 means
// fully serial with zero pool traffic.
//
// Orthogonally, HazardMode selects shared-memory hazard detection
// (hazard_tracker.hpp): `off` (default), `detect` (count + report via
// gpusim.hazard.* metrics and LaunchStats), or `fatal` (a flagged launch
// throws). Detection is read-only — it never alters outputs, recorded
// costs, or simulated time — and per-worker trackers are merged
// deterministically after the grid drains.
//
// A FaultPlan (fault_injector.hpp) installed on the engine makes every
// launch draw deterministic, seed-keyed faults: value corruption on
// global accesses, shared-arena upsets at phase boundaries, injected
// LaunchFailure throws, and per-block timeout overruns that inflate the
// launch's simulated time. Counts merge as sums (worker-count
// independent) into gpusim.fault.* metrics and LaunchStats.faults. The
// engine also carries the resilient-solve defaults (--deadline-us /
// --max-retries) so benches configure the whole pipeline from one CLI.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "gpusim/block_context.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device_spec.hpp"

namespace tridsolve::util {
class Cli;
}

namespace tridsolve::gpusim {

enum class InstrumentMode {
  exact,            ///< every block records (ground truth + self-check)
  sampled,          ///< deterministic block subset records, scaled to grid
  functional_only,  ///< no recording; timing unavailable
};

[[nodiscard]] const char* instrument_mode_name(InstrumentMode mode) noexcept;

/// Parse "exact" / "sampled" / "functional" / "functional_only".
/// Throws std::invalid_argument on anything else.
[[nodiscard]] InstrumentMode parse_instrument_mode(std::string_view name);

enum class HazardMode {
  off,     ///< no tracking (zero overhead)
  detect,  ///< count hazards; report via metrics + LaunchStats
  fatal,   ///< like detect, but a flagged launch throws std::runtime_error
};

[[nodiscard]] const char* hazard_mode_name(HazardMode mode) noexcept;

/// Parse "off" / "detect" / "fatal" (plus boolean-switch spellings of
/// --check-hazards: "true"/"1"/"yes"/"on" mean detect).
/// Throws std::invalid_argument on anything else.
[[nodiscard]] HazardMode parse_hazard_mode(std::string_view name);

namespace detail {

/// Type-erased block body: `user` is the address of the caller's callable.
using BlockBody = void (*)(void* user, BlockContext& ctx);

struct LaunchRequest {
  const DeviceSpec* dev = nullptr;
  std::size_t grid_blocks = 0;
  int block_threads = 0;
  InstrumentMode mode = InstrumentMode::exact;
  HazardMode hazards = HazardMode::off;
  /// Engine snapshot of vector_enabled(): blocks may take the vectorized
  /// lane fast path (vector_engine.hpp) on top of the raw-twin gate.
  bool vector_ok = true;
  BlockBody body = nullptr;
  void* user = nullptr;
  /// Span id of the enclosing launch when tracing (0 = tracing off).
  /// Block 0 parents its per-phase spans under it — one representative
  /// block keeps phase tracing cheap and the span tree readable.
  std::uint64_t span_parent = 0;
};

struct LaunchOutcome {
  KernelCosts costs;                    ///< grid-scaled totals (empty when
                                        ///< functional_only)
  std::size_t instrumented_blocks = 0;  ///< blocks that actually recorded
  HazardCounts hazards;                 ///< merged findings (detect/fatal)
  HazardExample hazard_example;         ///< lowest-block-id finding, if any
  FaultCounts faults;                   ///< injected faults (all zero when
                                        ///< no FaultPlan is active)
  double fault_overrun_us = 0.0;        ///< timeout stall to add to timing
};

/// Execute every block of the grid (parallel, pooled scratch) and reduce
/// costs deterministically. Exceptions thrown by kernel bodies propagate
/// with their original type (first one wins under parallel execution).
[[nodiscard]] LaunchOutcome execute_grid(const LaunchRequest& req);

/// Per-launch metric bookkeeping (cached counter handles; no string
/// hashing per launch). `timed` mirrors LaunchStats::timed.
void note_launch(std::size_t grid_blocks, bool timed, double kernel_us,
                 double overhead_us, const KernelCosts& costs) noexcept;

/// Hazard-metric bookkeeping: bumps gpusim.hazard.{raw,war,waw,oob,
/// divergence,tracked} for one launch that ran with detection enabled.
void note_hazards(const HazardCounts& hazards) noexcept;

/// Fault-metric bookkeeping: bumps gpusim.fault.{bit_flips,
/// shared_corruptions,nan_writes,launch_failures,timeouts} for one
/// launch that ran with a FaultPlan active.
void note_faults(const FaultCounts& faults) noexcept;

}  // namespace detail

/// Process-wide engine configuration + worker pool.
class ExecutionEngine {
 public:
  [[nodiscard]] static ExecutionEngine& instance();

  /// Simulation threads used per launch (>= 1, main thread included).
  [[nodiscard]] std::size_t threads() const noexcept;
  /// 0 restores the default (TRIDSOLVE_SIM_THREADS or hardware_concurrency).
  void set_threads(std::size_t n) noexcept;

  [[nodiscard]] InstrumentMode default_instrument() const noexcept;
  void set_default_instrument(InstrumentMode mode) noexcept;

  [[nodiscard]] HazardMode default_hazards() const noexcept;
  void set_default_hazards(HazardMode mode) noexcept;

  /// Vectorized lane fast path for non-instrumented blocks (on by
  /// default; --vector off forces the scalar raw twins — same outputs,
  /// bit-identical, just slower). Orthogonal to InstrumentMode: it only
  /// ever applies to blocks that record nothing.
  [[nodiscard]] bool vector_enabled() const noexcept;
  void set_vector_enabled(bool on) noexcept;

  /// True iff a launch issued right now with no per-launch overrides would
  /// run functional_only with no hazard checking, no active fault plan,
  /// and the vector path on — i.e. a kernel may replace its launches with
  /// one grid-wide vectorized sweep (plus empty-bodied launches to keep
  /// the launch accounting identical). Kernel-side conditions (no guard
  /// spans) are the caller's to check.
  [[nodiscard]] bool functional_fast_path() const noexcept;

  /// Approximate number of blocks the sampled mode instruments per launch
  /// (first/last/stride plan; small grids degenerate to exact coverage).
  [[nodiscard]] std::size_t sample_target() const noexcept;

  /// Fault-injection plan applied to every launch (snapshot). A default
  /// (inactive) plan means zero-overhead execution.
  [[nodiscard]] FaultPlan fault_plan() const noexcept;
  /// Install a plan and reset the deterministic launch ordinal to 0, so a
  /// plan's fault sites are reproducible from the moment it is set.
  void set_fault_plan(const FaultPlan& plan) noexcept;

  /// Resilient-solve defaults fed from --deadline-us / --max-retries;
  /// consumed by gpu::engine_resilience_policy(). 0 deadline = unlimited.
  [[nodiscard]] double default_deadline_us() const noexcept;
  void set_default_deadline_us(double us) noexcept;
  [[nodiscard]] int default_max_retries() const noexcept;
  void set_default_max_retries(int n) noexcept;

  ~ExecutionEngine();

 private:
  friend detail::LaunchOutcome detail::execute_grid(
      const detail::LaunchRequest& req);

  ExecutionEngine();
  ExecutionEngine(const ExecutionEngine&) = delete;
  ExecutionEngine& operator=(const ExecutionEngine&) = delete;

  struct Impl;
  Impl* impl_;
};

/// RAII override of the engine's thread count (tests, benches).
class ScopedSimThreads {
 public:
  explicit ScopedSimThreads(std::size_t n)
      : prev_(ExecutionEngine::instance().threads()) {
    ExecutionEngine::instance().set_threads(n);
  }
  ~ScopedSimThreads() { ExecutionEngine::instance().set_threads(prev_); }
  ScopedSimThreads(const ScopedSimThreads&) = delete;
  ScopedSimThreads& operator=(const ScopedSimThreads&) = delete;

 private:
  std::size_t prev_;
};

/// RAII override of the default instrumentation mode.
class ScopedInstrumentMode {
 public:
  explicit ScopedInstrumentMode(InstrumentMode mode)
      : prev_(ExecutionEngine::instance().default_instrument()) {
    ExecutionEngine::instance().set_default_instrument(mode);
  }
  ~ScopedInstrumentMode() {
    ExecutionEngine::instance().set_default_instrument(prev_);
  }
  ScopedInstrumentMode(const ScopedInstrumentMode&) = delete;
  ScopedInstrumentMode& operator=(const ScopedInstrumentMode&) = delete;

 private:
  InstrumentMode prev_;
};

/// RAII override of the vectorized-lane fast path (tests, benches).
class ScopedVectorMode {
 public:
  explicit ScopedVectorMode(bool on)
      : prev_(ExecutionEngine::instance().vector_enabled()) {
    ExecutionEngine::instance().set_vector_enabled(on);
  }
  ~ScopedVectorMode() { ExecutionEngine::instance().set_vector_enabled(prev_); }
  ScopedVectorMode(const ScopedVectorMode&) = delete;
  ScopedVectorMode& operator=(const ScopedVectorMode&) = delete;

 private:
  bool prev_;
};

/// RAII override of the default hazard-detection mode.
class ScopedHazardMode {
 public:
  explicit ScopedHazardMode(HazardMode mode)
      : prev_(ExecutionEngine::instance().default_hazards()) {
    ExecutionEngine::instance().set_default_hazards(mode);
  }
  ~ScopedHazardMode() { ExecutionEngine::instance().set_default_hazards(prev_); }
  ScopedHazardMode(const ScopedHazardMode&) = delete;
  ScopedHazardMode& operator=(const ScopedHazardMode&) = delete;

 private:
  HazardMode prev_;
};

/// RAII override of the engine's fault-injection plan. Installing (and
/// restoring) a plan resets the launch ordinal, so the scope sees a
/// reproducible fault sequence starting at launch 0.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan)
      : prev_(ExecutionEngine::instance().fault_plan()) {
    ExecutionEngine::instance().set_fault_plan(plan);
  }
  ~ScopedFaultPlan() { ExecutionEngine::instance().set_fault_plan(prev_); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  FaultPlan prev_;
};

/// Apply --sim-threads / --instrument / --check-hazards / --vector plus the fault
/// and resilience flags (--fault-seed / --fault-rate / --fault-kinds /
/// --deadline-us / --max-retries) to the engine when present. Benches
/// call this once after parsing; flags come from util::with_obs_flags.
void configure_engine_from_cli(const util::Cli& cli);

}  // namespace tridsolve::gpusim
