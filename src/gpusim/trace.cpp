#include "gpusim/trace.hpp"

#include <cstdio>

namespace tridsolve::gpusim {

std::string describe_launch(const DeviceSpec& dev, const LaunchStats& stats) {
  char buf[256];
  std::snprintf(
      buf, sizeof buf,
      "<<<%zu,%d>>> %.1fus [%s-bound] occ=%.0f%% tx=%zu coalesce=%.0f%%",
      stats.config.grid_blocks, stats.config.block_threads,
      stats.timing.time_us, stats.timing.bound(),
      100.0 * stats.timing.occupancy.fraction, stats.costs.transactions,
      100.0 * stats.costs.coalescing_efficiency(dev.transaction_bytes));
  return buf;
}

std::string describe_segment(const DeviceSpec& dev,
                             const Timeline::Segment& seg) {
  if (seg.is_host()) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "host %.1fus", seg.stats.timing.time_us);
    return seg.label + ": " + buf;
  }
  return seg.label + ": " + describe_launch(dev, seg.stats);
}

util::Table timeline_table(const DeviceSpec& dev, const Timeline& timeline,
                           std::string title) {
  util::Table table(std::move(title));
  table.set_header({"kernel", "grid", "block", "time[us]", "share", "bound",
                    "occupancy", "transactions", "coalescing"});
  for (const auto& seg : timeline.segments()) {
    const auto& s = seg.stats;
    const double share =
        timeline.total_us() > 0.0 ? s.timing.time_us / timeline.total_us() : 0.0;
    if (seg.is_host()) {
      // Fixed host-side cost: it has no real launch configuration, so
      // grid/block/occupancy render as "-" instead of a fake <<<1,1>>>.
      table.add_row({seg.label, "-", "-", util::Table::num(s.timing.time_us, 1),
                     util::Table::num(100.0 * share, 1) + "%", "host", "-", "-",
                     "-"});
      continue;
    }
    table.add_row(
        {seg.label,
         std::to_string(s.config.grid_blocks),
         std::to_string(s.config.block_threads),
         util::Table::num(s.timing.time_us, 1),
         util::Table::num(100.0 * share, 1) + "%",
         s.costs.warps == 0 ? "-" : s.timing.bound(),
         util::Table::num(100.0 * s.timing.occupancy.fraction, 0) + "%",
         std::to_string(s.costs.transactions),
         util::Table::num(
             100.0 * s.costs.coalescing_efficiency(dev.transaction_bytes), 0) +
             "%"});
  }
  table.add_row({"total", "", "", util::Table::num(timeline.total_us(), 1),
                 "100.0%", "", "", "", ""});
  return table;
}

TimelineTotals summarize_timeline(const DeviceSpec& dev,
                                  const Timeline& timeline) {
  TimelineTotals totals;
  totals.time_us = timeline.total_us();
  for (const auto& seg : timeline.segments()) {
    if (seg.is_host()) {
      ++totals.host_segments;
      totals.host_us += seg.stats.timing.time_us;
      continue;
    }
    ++totals.launches;
    totals.kernel_us += seg.stats.timing.time_us;
    totals.overhead_us += seg.stats.timing.overhead_us;
    totals.transactions += seg.stats.costs.transactions;
    totals.bytes_requested += seg.stats.costs.bytes_requested;
  }
  totals.bytes_moved = static_cast<double>(totals.transactions) *
                       static_cast<double>(dev.transaction_bytes);
  return totals;
}

}  // namespace tridsolve::gpusim
