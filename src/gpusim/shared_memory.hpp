#pragma once
// Simulated per-block shared memory (scratchpad) arena.
//
// Kernels allocate typed spans out of a fixed-capacity byte arena; the
// high-water mark feeds the occupancy calculator exactly the way static
// shared-memory declarations size a CUDA kernel's footprint. Exceeding
// the device's per-block capacity throws — the same way a real launch
// fails — so tests can assert capacity claims (e.g. Table I / Table III
// configurations fitting in 48 KB).
//
// Contracts:
//  * Thread-safety: one arena belongs to one engine worker (via
//    WorkerScratch) and is only touched from that worker's thread; the
//    execution engine never shares an arena between concurrent blocks.
//  * Units: all sizes are bytes; peak()/block_peak() feed occupancy and
//    the shared_peak_bytes cost counter unscaled.
//  * The base pointer (data()) is stable for the arena's lifetime, which
//    the hazard tracker relies on to map pointers back to word indices.

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace tridsolve::gpusim {

class SharedArena {
 public:
  explicit SharedArena(std::size_t capacity_bytes)
      : storage_(capacity_bytes), capacity_(capacity_bytes) {}

  /// Allocate n elements of T, aligned to alignof(T).
  template <typename T>
  [[nodiscard]] T* allocate(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    const std::size_t align = alignof(T);
    std::size_t offset = (used_ + align - 1) / align * align;
    const std::size_t end = offset + n * sizeof(T);
    if (end > capacity_) {
      throw std::length_error("simulated shared memory exhausted: need " +
                              std::to_string(end) + " bytes, capacity " +
                              std::to_string(capacity_));
    }
    used_ = end;
    if (used_ > peak_) peak_ = used_;
    if (used_ > block_peak_) block_peak_ = used_;
    return reinterpret_cast<T*>(storage_.data() + offset);
  }

  /// Release all allocations (block retirement); the lifetime peak
  /// survives, while the per-block peak restarts for the next block.
  void reset() noexcept {
    used_ = 0;
    block_peak_ = 0;
  }

  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t peak() const noexcept { return peak_; }
  /// High-water mark since the last reset() — the footprint of the block
  /// currently (or most recently) executing on this arena. The launch
  /// engine max-reduces this across blocks into shared_peak_bytes, so
  /// arena reuse across blocks and workers never conflates footprints.
  [[nodiscard]] std::size_t block_peak() const noexcept { return block_peak_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Stable base address of the arena storage (hazard tracking maps
  /// accessed pointers to arena offsets against this).
  [[nodiscard]] const std::byte* data() const noexcept {
    return storage_.data();
  }

  /// Mutable base address — for the fault injector only, which corrupts
  /// live arena words at phase boundaries. Kernels must keep going
  /// through allocate()'d spans.
  [[nodiscard]] std::byte* mutable_data() noexcept { return storage_.data(); }

 private:
  std::vector<std::byte> storage_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
  std::size_t block_peak_ = 0;
};

}  // namespace tridsolve::gpusim
