#pragma once
// Human-readable reports of simulated kernel launches and timelines:
// what ran, for how long, what bound it, how well it coalesced, and how
// occupied the SMs were. Benches and examples print these with --trace.
//
// Contracts: pure formatting over already-recorded LaunchStats — reads
// its inputs, mutates nothing, safe to call concurrently on distinct
// Timeline objects. Times render in microseconds (or ms where labeled);
// Timeline::total_us throws for functional-only runs rather than print
// a fabricated number.

#include <string>

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "util/table.hpp"

namespace tridsolve::gpusim {

/// One-line summary of a single launch.
[[nodiscard]] std::string describe_launch(const DeviceSpec& dev,
                                          const LaunchStats& stats);

/// One-line summary of a timeline segment. Kernel segments render as
/// describe_launch; host segments render as "host <time>us" — they have
/// no grid/block/occupancy, so printing them as a `<<<1,1>>>` launch
/// would be a lie.
[[nodiscard]] std::string describe_segment(const DeviceSpec& dev,
                                           const Timeline::Segment& seg);

/// Table over all segments of a timeline: label, grid x block, time,
/// binding resource, occupancy, transactions, coalescing efficiency and
/// each segment's share of the total.
[[nodiscard]] util::Table timeline_table(const DeviceSpec& dev,
                                         const Timeline& timeline,
                                         std::string title = "timeline");

/// Aggregate counters over a whole timeline, with kernel and host-side
/// (add_fixed) segments classified explicitly: time_us = kernel_us +
/// host_us always holds, and `launches` counts only real kernel launches.
struct TimelineTotals {
  double time_us = 0.0;    ///< kernel_us + host_us
  double kernel_us = 0.0;  ///< simulated kernel segments
  double host_us = 0.0;    ///< fixed host-side segments
  double overhead_us = 0.0;  ///< launch overhead inside kernel segments
  std::size_t launches = 0;       ///< kernel segments only
  std::size_t host_segments = 0;  ///< add_fixed segments
  std::size_t transactions = 0;
  std::size_t bytes_requested = 0;
  double bytes_moved = 0.0;  ///< transactions x transaction size

  [[nodiscard]] double coalescing_efficiency() const noexcept {
    return bytes_moved > 0.0 ? static_cast<double>(bytes_requested) / bytes_moved
                             : 1.0;
  }
};

[[nodiscard]] TimelineTotals summarize_timeline(const DeviceSpec& dev,
                                                const Timeline& timeline);

}  // namespace tridsolve::gpusim
