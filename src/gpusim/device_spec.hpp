#pragma once
// GPU device descriptions for the execution/timing simulator.
//
// The numbers for the GTX480 preset are the public Fermi GF100 datasheet
// values for the card the paper evaluates on. Only ratios and mechanisms
// (occupancy, latency hiding, bandwidth, FP64 throttling, launch overhead)
// matter for reproducing the paper's performance *shapes*; see DESIGN.md.
//
// Contracts: DeviceSpec is an immutable-after-construction value type —
// copy freely, share across threads without synchronization. Units are
// stated per field: clocks in GHz, bandwidth in GB/s, latencies and
// barrier costs in shader cycles, launch overhead in microseconds,
// memory sizes in bytes.

#include <cstddef>
#include <cstdint>
#include <string>

namespace tridsolve::gpusim {

struct DeviceSpec {
  std::string name;

  // Parallelism / scheduling limits.
  int num_sms = 15;
  int warp_size = 32;
  int max_threads_per_sm = 1536;
  int max_blocks_per_sm = 8;
  int max_threads_per_block = 1024;

  // Memories.
  std::size_t shared_mem_per_sm = 48 * 1024;
  std::size_t shared_mem_per_block = 48 * 1024;
  int shared_banks = 32;            ///< shared-memory banks
  int shared_bank_width = 4;        ///< bytes per bank
  std::size_t transaction_bytes = 128;  ///< global-memory segment size
  double mem_bandwidth_gbps = 177.4;    ///< GB/s
  double mem_latency_cycles = 600.0;    ///< exposed global load latency
  double max_mem_warps_per_sm = 16.0;    ///< MWP cap: warps whose memory
                                        ///< rounds the LSU pipeline can
                                        ///< keep in flight concurrently

  // Execution throughput.
  double clock_ghz = 1.401;           ///< shader clock
  double fp32_lanes_per_sm = 32.0;    ///< FP32 op-equivalents retired/cycle/SM
  double fp64_lanes_per_sm = 4.0;     ///< GeForce Fermi: FP64 = 1/8 FP32
  double div_op_cost = 8.0;           ///< one division ~ this many op-equivalents
  double barrier_cycles = 32.0;       ///< __syncthreads cost per block barrier

  // Host-side costs.
  double kernel_launch_overhead_us = 6.0;

  /// FP op-equivalents per cycle for the whole device at a given precision.
  [[nodiscard]] double ops_per_cycle(bool fp64) const noexcept {
    return (fp64 ? fp64_lanes_per_sm : fp32_lanes_per_sm) * num_sms;
  }

  /// Peak GFLOP/s at a precision (sanity/reporting only).
  [[nodiscard]] double peak_gflops(bool fp64) const noexcept {
    return ops_per_cycle(fp64) * clock_ghz;
  }

  /// Stable identity hash (FNV-1a over the name and every numeric field):
  /// two specs with equal fields fingerprint equally, and any field change
  /// changes it. Keys plan-cache entries and calibration files so a plan
  /// tuned for one device is never applied to another.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// The card the paper's evaluation uses (Fermi GF100, 1.5 GB).
[[nodiscard]] DeviceSpec gtx480();

/// An older Tesla-class part (GT200): used by scalability/what-if ablations
/// to show the transition heuristic adapting to different hardware.
[[nodiscard]] DeviceSpec gtx280();

/// A deliberately tiny device for unit tests: 2 SMs, 64 threads/SM,
/// 1 KB shared — occupancy and wave effects show up at toy sizes.
[[nodiscard]] DeviceSpec test_device();

}  // namespace tridsolve::gpusim
