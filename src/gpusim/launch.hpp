#pragma once
// Kernel launch engine: executes every block of a grid functionally,
// aggregates costs, and prices the launch with the timing model.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/block_context.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/timing_model.hpp"
#include "obs/metrics.hpp"

namespace tridsolve::gpusim {

struct LaunchConfig {
  std::size_t grid_blocks = 1;
  int block_threads = 1;
};

/// Result of one simulated launch.
struct LaunchStats {
  LaunchConfig config;
  KernelCosts costs;
  KernelTiming timing;
};

/// Execute `body(BlockContext&)` for every block of the grid.
/// Throws std::invalid_argument for configurations a real driver would
/// reject (too many threads per block, shared memory over capacity).
template <typename KernelFn>
LaunchStats launch(const DeviceSpec& dev, LaunchConfig cfg, KernelFn&& body) {
  if (cfg.block_threads <= 0 || cfg.block_threads > dev.max_threads_per_block) {
    throw std::invalid_argument("launch: invalid block size " +
                                std::to_string(cfg.block_threads));
  }
  LaunchStats stats;
  stats.config = cfg;

  SharedArena arena(dev.shared_mem_per_block);
  for (std::size_t b = 0; b < cfg.grid_blocks; ++b) {
    arena.reset();
    BlockContext ctx(dev, b, cfg.grid_blocks, cfg.block_threads, arena,
                     stats.costs);
    body(ctx);
  }

  const int warps_per_block =
      (cfg.block_threads + dev.warp_size - 1) / dev.warp_size;
  stats.costs.warps = cfg.grid_blocks * static_cast<std::size_t>(warps_per_block);
  stats.costs.shared_peak_bytes = arena.peak();

  stats.timing =
      predict_kernel_time(dev, cfg.grid_blocks, cfg.block_threads, stats.costs);
  if (!stats.timing.occupancy.launchable()) {
    throw std::invalid_argument("launch: kernel not launchable (" +
                                stats.timing.occupancy.limiter + " limit)");
  }
  obs::count("gpusim.launches");
  obs::count("gpusim.kernel_us", stats.timing.time_us);
  obs::count("gpusim.overhead_us", stats.timing.overhead_us);
  obs::count("gpusim.transactions", static_cast<double>(stats.costs.transactions));
  obs::count("gpusim.bytes_requested",
             static_cast<double>(stats.costs.bytes_requested));
  obs::count("gpusim.barriers", static_cast<double>(stats.costs.barriers));
  return stats;
}

/// Accumulates the launches making up one logical solve (e.g. tiled PCR
/// kernel + p-Thomas kernel), preserving the per-phase breakdown the
/// paper reports in §IV ("the portion of tiled PCR in total execution
/// time is 6.25% and 36.2% ...").
class Timeline {
 public:
  /// What a segment represents: a simulated kernel launch, or a fixed
  /// host-side cost (no grid/block, no occupancy — reports must not
  /// render it as a real `<<<g,b>>>` launch).
  enum class SegmentKind { kernel, host };

  void add(std::string label, const LaunchStats& stats) {
    total_us_ += stats.timing.time_us;
    segments_.push_back({std::move(label), stats, SegmentKind::kernel});
  }

  /// Add a host-side cost (e.g. layout conversion charged to the GPU
  /// timeline as an extra segment in ablations).
  void add_fixed(std::string label, double time_us) {
    total_us_ += time_us;
    LaunchStats s;
    s.timing.time_us = time_us;
    segments_.push_back({std::move(label), s, SegmentKind::host});
  }

  [[nodiscard]] double total_us() const noexcept { return total_us_; }

  struct Segment {
    std::string label;
    LaunchStats stats;
    SegmentKind kind = SegmentKind::kernel;

    [[nodiscard]] bool is_host() const noexcept {
      return kind == SegmentKind::host;
    }
  };
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }

  /// Total time of all segments whose label starts with `prefix`.
  [[nodiscard]] double time_with_prefix(const std::string& prefix) const {
    double sum = 0.0;
    for (const auto& seg : segments_) {
      if (seg.label.rfind(prefix, 0) == 0) sum += seg.stats.timing.time_us;
    }
    return sum;
  }

 private:
  double total_us_ = 0.0;
  std::vector<Segment> segments_;
};

}  // namespace tridsolve::gpusim
