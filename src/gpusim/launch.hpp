#pragma once
// Kernel launch front-end: validates the configuration, hands the grid to
// the execution engine (parallel blocks, pooled scratch, instrumentation
// sampling — see exec_engine.hpp), and prices the launch with the timing
// model.

#include <cstddef>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "gpusim/block_context.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/timing_model.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace tridsolve::gpusim {

struct LaunchConfig {
  std::size_t grid_blocks = 1;
  int block_threads = 1;
  /// Per-launch instrumentation override; empty = the engine's default
  /// (exact unless --instrument / ScopedInstrumentMode says otherwise).
  std::optional<InstrumentMode> instrument{};
  /// Per-launch hazard-detection override; empty = the engine's default
  /// (off unless --check-hazards / ScopedHazardMode says otherwise).
  std::optional<HazardMode> hazards{};
};

/// Result of one simulated launch.
struct LaunchStats {
  LaunchConfig config;
  KernelCosts costs;
  KernelTiming timing;
  /// False iff the launch ran functional_only: outputs are valid but no
  /// costs were recorded, so the timing fields are meaningless and
  /// Timeline refuses to total them.
  bool timed = true;
  /// Blocks that recorded instrumentation (grid size in exact mode, the
  /// sample size in sampled mode, 0 in functional_only).
  std::size_t instrumented_blocks = 0;
  /// Shared-memory hazard findings (all zero when detection was off —
  /// `hazards.tracked` distinguishes "clean" from "not checked").
  HazardCounts hazards{};
  /// First finding by block id; invalid when the launch was clean.
  HazardExample hazard_example{};
  /// Injected-fault tallies (all zero when no FaultPlan was active). A
  /// nonzero `faults.timeouts` means timing.time_us already includes the
  /// per-block overrun stalls — and that the results are suspect.
  FaultCounts faults{};
};

/// Execute `body(BlockContext&)` for every block of the grid.
/// Throws std::invalid_argument for configurations a real driver would
/// reject (too many threads per block, shared memory over capacity).
template <typename KernelFn>
LaunchStats launch(const DeviceSpec& dev, LaunchConfig cfg, KernelFn&& body) {
  if (cfg.block_threads <= 0 || cfg.block_threads > dev.max_threads_per_block) {
    throw std::invalid_argument("launch: invalid block size " +
                                std::to_string(cfg.block_threads));
  }
  const InstrumentMode mode = cfg.instrument
                                  ? *cfg.instrument
                                  : ExecutionEngine::instance().default_instrument();
  const HazardMode hazards =
      cfg.hazards ? *cfg.hazards : ExecutionEngine::instance().default_hazards();

  using Fn = std::remove_reference_t<KernelFn>;
  detail::LaunchRequest req;
  req.dev = &dev;
  req.grid_blocks = cfg.grid_blocks;
  req.block_threads = cfg.block_threads;
  req.mode = mode;
  req.hazards = hazards;
  req.vector_ok = ExecutionEngine::instance().vector_enabled();
  req.user = const_cast<void*>(static_cast<const void*>(std::addressof(body)));
  req.body = [](void* user, BlockContext& ctx) {
    (*static_cast<Fn*>(user))(ctx);
  };

  // Span tracing (read-only; every call below no-ops when the tracer is
  // disabled). The id is reserved up front so block 0's per-phase spans
  // can parent under this launch, and the span is emitted only after the
  // timing model prices the launch — carrying both clocks.
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  const std::uint64_t span_id = tracer.reserve_id();
  const double span_wall0 = span_id != 0 ? tracer.now_wall_us() : 0.0;
  const double span_sim0 = span_id != 0 ? tracer.sim_now() : 0.0;
  req.span_parent = span_id;

  const detail::LaunchOutcome outcome = detail::execute_grid(req);

  LaunchStats stats;
  stats.config = cfg;
  stats.costs = outcome.costs;
  stats.instrumented_blocks = outcome.instrumented_blocks;
  stats.hazards = outcome.hazards;
  stats.hazard_example = outcome.hazard_example;
  stats.faults = outcome.faults;
  stats.timed = mode != InstrumentMode::functional_only;
  if (stats.timed) {
    const int warps_per_block =
        (cfg.block_threads + dev.warp_size - 1) / dev.warp_size;
    stats.costs.warps =
        cfg.grid_blocks * static_cast<std::size_t>(warps_per_block);
    stats.timing = predict_kernel_time(dev, cfg.grid_blocks, cfg.block_threads,
                                       stats.costs);
    if (!stats.timing.occupancy.launchable()) {
      throw std::invalid_argument("launch: kernel not launchable (" +
                                  stats.timing.occupancy.limiter + " limit)");
    }
    // Injected per-block timeouts stall the launch past its modelled
    // time; the overrun is pure wall-clock, not extra work.
    stats.timing.time_us += outcome.fault_overrun_us;
  }
  detail::note_launch(cfg.grid_blocks, stats.timed, stats.timing.time_us,
                      stats.timing.overhead_us, stats.costs);
  if (span_id != 0) {
    if (stats.timed) tracer.advance_sim(stats.timing.time_us);
    obs::Span s;
    s.id = span_id;
    s.parent = tracer.current_parent();
    s.name = "launch";
    s.thread_ordinal = tracer.thread_ordinal();
    s.wall_t0_us = span_wall0;
    s.wall_t1_us = tracer.now_wall_us();
    s.sim_t0_us = span_sim0;
    s.sim_t1_us = tracer.sim_now();
    s.attrs.emplace_back("grid", obs::JsonValue(cfg.grid_blocks));
    s.attrs.emplace_back("block", obs::JsonValue(cfg.block_threads));
    s.attrs.emplace_back("instrument", obs::JsonValue(instrument_mode_name(mode)));
    if (stats.timed) {
      s.attrs.emplace_back("time_us", obs::JsonValue(stats.timing.time_us));
      s.attrs.emplace_back("bound", obs::JsonValue(stats.timing.bound()));
    }
    tracer.emit(std::move(s));
  }
  return stats;
}

/// Accumulates the launches making up one logical solve (e.g. tiled PCR
/// kernel + p-Thomas kernel), preserving the per-phase breakdown the
/// paper reports in §IV ("the portion of tiled PCR in total execution
/// time is 6.25% and 36.2% ...").
class Timeline {
 public:
  /// What a segment represents: a simulated kernel launch, or a fixed
  /// host-side cost (no grid/block, no occupancy — reports must not
  /// render it as a real `<<<g,b>>>` launch).
  enum class SegmentKind { kernel, host };

  void add(std::string label, const LaunchStats& stats) {
    total_us_ += stats.timing.time_us;
    if (!stats.timed) ++untimed_segments_;
    segments_.push_back({std::move(label), stats, SegmentKind::kernel});
  }

  /// Add a host-side cost (e.g. layout conversion charged to the GPU
  /// timeline as an extra segment in ablations).
  void add_fixed(std::string label, double time_us) {
    total_us_ += time_us;
    LaunchStats s;
    s.timing.time_us = time_us;
    segments_.push_back({std::move(label), s, SegmentKind::host});
  }

  /// Total simulated time. Throws std::logic_error when any segment ran
  /// functional_only — such a timeline has no meaningful timing to report.
  [[nodiscard]] double total_us() const {
    require_timed();
    return total_us_;
  }

  struct Segment {
    std::string label;
    LaunchStats stats;
    SegmentKind kind = SegmentKind::kernel;

    [[nodiscard]] bool is_host() const noexcept {
      return kind == SegmentKind::host;
    }
  };
  [[nodiscard]] const std::vector<Segment>& segments() const noexcept {
    return segments_;
  }

  /// True iff every segment carries valid timing.
  [[nodiscard]] bool timed() const noexcept { return untimed_segments_ == 0; }

  /// Total time of all segments whose label starts with `prefix`.
  /// Throws std::logic_error when the timeline holds untimed segments.
  [[nodiscard]] double time_with_prefix(const std::string& prefix) const {
    require_timed();
    double sum = 0.0;
    for (const auto& seg : segments_) {
      if (seg.label.rfind(prefix, 0) == 0) sum += seg.stats.timing.time_us;
    }
    return sum;
  }

 private:
  void require_timed() const {
    if (untimed_segments_ > 0) {
      throw std::logic_error(
          "Timeline: timing requested but " +
          std::to_string(untimed_segments_) +
          " segment(s) executed functional_only (no recorded costs); "
          "re-run with --instrument exact|sampled for timing");
    }
  }

  double total_us_ = 0.0;
  std::size_t untimed_segments_ = 0;
  std::vector<Segment> segments_;
};

}  // namespace tridsolve::gpusim
