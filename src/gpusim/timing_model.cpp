#include "gpusim/timing_model.hpp"

#include <algorithm>
#include <cmath>

namespace tridsolve::gpusim {

KernelTiming predict_kernel_time(const DeviceSpec& dev, std::size_t grid_blocks,
                                 int block_threads, const KernelCosts& costs) {
  KernelTiming t;
  t.overhead_us = dev.kernel_launch_overhead_us;
  t.occupancy = compute_occupancy(dev, block_threads, costs.shared_peak_bytes);
  if (grid_blocks == 0 || costs.warps == 0) {
    t.time_us = t.overhead_us;
    return t;
  }

  const int warps_per_block = (block_threads + dev.warp_size - 1) / dev.warp_size;

  // Work one SM must retire: blocks cannot split across SMs.
  const std::size_t blocks_per_sm_share =
      (grid_blocks + dev.num_sms - 1) / static_cast<std::size_t>(dev.num_sms);
  const double warps_per_sm_share =
      static_cast<double>(blocks_per_sm_share * warps_per_block);

  // --- Compute / issue bound -------------------------------------------
  // Each SM retires fpXX_lanes op-equivalents per cycle; barriers cost a
  // fixed pipeline drain each. Work is assumed evenly spread over SMs that
  // received blocks.
  const int sms_used = static_cast<int>(std::min<std::size_t>(
      grid_blocks, static_cast<std::size_t>(dev.num_sms)));
  const double compute_cycles_per_sm =
      costs.ops_f32 / (dev.fp32_lanes_per_sm * sms_used) +
      costs.ops_f64 / (dev.fp64_lanes_per_sm * sms_used) +
      static_cast<double>(costs.barriers) * dev.barrier_cycles / sms_used +
      // Bank-conflict replays serialize whole warp accesses: one extra
      // cycle per serialization, spread over the SMs that got blocks.
      static_cast<double>(costs.shared_serializations) / sms_used;
  t.compute_us = compute_cycles_per_sm / (dev.clock_ghz * 1e3);

  // --- Exposed-latency bound -------------------------------------------
  // Each warp's critical path has (rounds_total / warps) dependent memory
  // rounds of mem_latency_cycles each; R_eff resident warps overlap them.
  const double rounds_per_warp =
      static_cast<double>(costs.rounds_total) / static_cast<double>(costs.warps);
  const double resident = std::max(
      1.0, std::min({static_cast<double>(t.occupancy.resident_warps_per_sm),
                     warps_per_sm_share, dev.max_mem_warps_per_sm}));
  const double latency_cycles_per_sm =
      warps_per_sm_share * rounds_per_warp * dev.mem_latency_cycles / resident;
  t.latency_us = latency_cycles_per_sm / (dev.clock_ghz * 1e3);

  // --- Bandwidth bound ---------------------------------------------------
  const double bytes_moved =
      static_cast<double>(costs.transactions) * static_cast<double>(dev.transaction_bytes);
  t.bandwidth_us = bytes_moved / (dev.mem_bandwidth_gbps * 1e3);

  t.time_us = t.overhead_us + std::max({t.compute_us, t.latency_us, t.bandwidth_us});
  return t;
}

}  // namespace tridsolve::gpusim
