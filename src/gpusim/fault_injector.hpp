#pragma once
// Seeded, fully deterministic fault injection for the execution engine.
//
// A FaultPlan installed on the ExecutionEngine (or via ScopedFaultPlan)
// makes every launch draw faults from a counter-keyed hash instead of any
// real randomness: each candidate site is identified by the tuple
// (seed, launch ordinal, block id, per-block site ordinal), so the set of
// injected faults is bit-identical for any --sim-threads value, any
// InstrumentMode, and any block->worker assignment. Five fault kinds are
// modelled:
//   * global_flip — ECC-style single-bit flip on a global t.load/t.store
//   * nan_write   — a global t.store silently writes quiet-NaN instead
//   * shared_flip — one live shared-arena word is corrupted at a phase
//                   boundary (transient scratchpad upset)
//   * launch_fail — the whole launch aborts with a LaunchFailure
//   * timeout     — a block overruns its time budget; the launch completes
//                   but its simulated time is inflated by timeout_overrun_us
//                   per overrunning block and the results are suspect
// By default a value flip targets the top exponent bit (bit 62 for
// 8-byte, bit 30 for 4-byte payloads): the corruption is loud — orders of
// magnitude, infinities — so detection layers are exercised rather than
// quietly perturbing low mantissa bits (set flip_bit for silent-upset
// studies).
//
// Contracts:
//  * Thread-safety: FaultPlan is a value snapshot; FaultSession belongs
//    to exactly one block on one worker thread. Counts sinks are
//    per-worker and merged (sums) after the grid drains.
//  * Determinism: decisions depend only on (seed, launch, block, site);
//    the per-block site ordinal counts *global* instrumented accesses in
//    thread-sequential block order, which is identical across worker
//    counts and instrument modes (kernels with raw twins divert to the
//    instrumented path while fault checking, like hazard checking).
//  * Injection changes only functional values / timing — never recorded
//    KernelCosts, so cost accounting stays that of the un-faulted kernel.

#include <cstdint>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

#include "gpusim/shared_memory.hpp"

namespace tridsolve::gpusim {

/// Bitmask of injectable fault kinds (FaultPlan::kinds).
enum FaultKind : unsigned {
  kFaultGlobalFlip = 1u << 0,
  kFaultSharedFlip = 1u << 1,
  kFaultNanWrite = 1u << 2,
  kFaultLaunchFail = 1u << 3,
  kFaultTimeout = 1u << 4,
  kFaultAll = (1u << 5) - 1,
};

/// Parse a comma-separated kind list: "flip", "shared", "nan", "launch",
/// "timeout", plus "all" and "none". Throws std::invalid_argument on
/// anything else.
[[nodiscard]] inline unsigned parse_fault_kinds(std::string_view list) {
  unsigned kinds = 0;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    const std::string_view tok = list.substr(0, comma);
    if (tok == "flip" || tok == "global-flip") {
      kinds |= kFaultGlobalFlip;
    } else if (tok == "shared" || tok == "shared-flip") {
      kinds |= kFaultSharedFlip;
    } else if (tok == "nan" || tok == "nan-write") {
      kinds |= kFaultNanWrite;
    } else if (tok == "launch" || tok == "launch-fail") {
      kinds |= kFaultLaunchFail;
    } else if (tok == "timeout") {
      kinds |= kFaultTimeout;
    } else if (tok == "all") {
      kinds |= kFaultAll;
    } else if (tok != "none" && !tok.empty()) {
      throw std::invalid_argument(
          "unknown fault kind \"" + std::string(tok) +
          "\" (expected flip|shared|nan|launch|timeout|all|none)");
    }
    if (comma == std::string_view::npos) break;
    list.remove_prefix(comma + 1);
  }
  return kinds;
}

/// Human-readable form of a kinds bitmask ("flip,nan", "all", "none").
[[nodiscard]] inline std::string fault_kinds_name(unsigned kinds) {
  if ((kinds & kFaultAll) == kFaultAll) return "all";
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (kinds & kFaultGlobalFlip) append("flip");
  if (kinds & kFaultSharedFlip) append("shared");
  if (kinds & kFaultNanWrite) append("nan");
  if (kinds & kFaultLaunchFail) append("launch");
  if (kinds & kFaultTimeout) append("timeout");
  return out.empty() ? "none" : out;
}

/// Per-kind injection tallies. merge() is a plain sum, so any association
/// of per-worker tallies yields the same totals.
struct FaultCounts {
  std::uint64_t bit_flips = 0;           ///< global load/store bit flips
  std::uint64_t shared_corruptions = 0;  ///< arena words hit at phase ends
  std::uint64_t nan_writes = 0;          ///< stores replaced with quiet-NaN
  std::uint64_t launch_failures = 0;     ///< launches aborted outright
  std::uint64_t timeouts = 0;            ///< blocks that overran the budget

  void merge(const FaultCounts& o) noexcept {
    bit_flips += o.bit_flips;
    shared_corruptions += o.shared_corruptions;
    nan_writes += o.nan_writes;
    launch_failures += o.launch_failures;
    timeouts += o.timeouts;
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return bit_flips + shared_corruptions + nan_writes + launch_failures +
           timeouts;
  }
  [[nodiscard]] bool any() const noexcept { return total() != 0; }
};

/// An injected launch failure: thrown by the engine in place of running
/// the grid (the simulated analogue of cudaLaunchKernel returning an
/// error). Retryable — the next launch draws a fresh ordinal.
class LaunchFailure : public std::runtime_error {
 public:
  explicit LaunchFailure(const std::string& what) : std::runtime_error(what) {}
};

/// What to inject, where, and how often. A default-constructed plan is
/// inactive (rate 0, no pinpoint). Two selection modes:
///  * rate mode — every candidate site is hit independently with
///    probability `rate`, decided by hashing (seed, launch, block, site);
///  * pinpoint mode — exactly one site is hit: `pinpoint_kind` at launch
///    `at_launch`, block `at_block`, site ordinal `at_site` (ignored for
///    launch-level kinds). Used by property tests that need precisely one
///    corruption.
struct FaultPlan {
  std::uint64_t seed = 0;
  double rate = 0.0;        ///< per-site probability in [0, 1]
  unsigned kinds = kFaultAll;
  std::int64_t target_block = -1;  ///< restrict to one block id; -1 = all
  double timeout_overrun_us = 50.0;  ///< stall added per overrunning block
  int flip_bit = -1;  ///< bit index to flip; -1 = top exponent bit

  bool pinpoint = false;
  std::uint64_t at_launch = 0;
  std::uint64_t at_block = 0;
  std::uint64_t at_site = 0;
  unsigned pinpoint_kind = kFaultNanWrite;

  [[nodiscard]] bool active() const noexcept { return rate > 0.0 || pinpoint; }

  /// Launch-level decisions (made once per launch by the engine).
  [[nodiscard]] bool launch_should_fail(std::uint64_t launch) const noexcept;
};

namespace fault_detail {

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Hash one candidate site; `salt` separates fault categories so e.g.
/// data-site and timeout decisions at the same ordinals are independent.
[[nodiscard]] constexpr std::uint64_t site_hash(std::uint64_t seed,
                                                std::uint64_t salt,
                                                std::uint64_t launch,
                                                std::uint64_t block,
                                                std::uint64_t site) noexcept {
  return mix64(mix64(mix64(mix64(seed ^ salt) + launch) + block) + site);
}

inline constexpr std::uint64_t kSaltData = 0x66617573696d3031ull;
inline constexpr std::uint64_t kSaltShared = 0x66617573696d3032ull;
inline constexpr std::uint64_t kSaltLaunch = 0x66617573696d3033ull;
inline constexpr std::uint64_t kSaltTimeout = 0x66617573696d3034ull;

/// Map a probability to a strict-< threshold on the 64-bit hash space.
[[nodiscard]] constexpr std::uint64_t rate_threshold(double rate) noexcept {
  if (!(rate > 0.0)) return 0;
  if (rate >= 1.0) return ~0ull;
  const double scaled = rate * 18446744073709551616.0;  // 2^64
  return scaled >= 18446744073709551615.0
             ? ~0ull
             : static_cast<std::uint64_t>(scaled);
}

/// Flip one bit of an arbitrary trivially-copyable payload. bit < 0 picks
/// the top exponent bit of an IEEE float of that width (62 / 30), or the
/// next-to-top bit of the widest word otherwise.
template <typename T>
[[nodiscard]] T flip_value_bit(T v, int bit) noexcept {
  static_assert(std::is_trivially_copyable_v<T>);
  if constexpr (sizeof(T) == 8) {
    std::uint64_t u;
    std::memcpy(&u, &v, 8);
    u ^= 1ull << ((bit >= 0 && bit < 64) ? bit : 62);
    std::memcpy(&v, &u, 8);
  } else if constexpr (sizeof(T) == 4) {
    std::uint32_t u;
    std::memcpy(&u, &v, 4);
    u ^= 1u << ((bit >= 0 && bit < 32) ? bit : 30);
    std::memcpy(&v, &u, 4);
  } else {
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &v, sizeof(T));
    const int nbits = static_cast<int>(8 * sizeof(T));
    const int b = (bit >= 0 && bit < nbits) ? bit : nbits - 2;
    bytes[static_cast<std::size_t>(b) / 8] ^=
        static_cast<unsigned char>(1u << (static_cast<unsigned>(b) % 8));
    std::memcpy(&v, bytes, sizeof(T));
  }
  return v;
}

}  // namespace fault_detail

inline bool FaultPlan::launch_should_fail(std::uint64_t launch) const noexcept {
  if (pinpoint) {
    return pinpoint_kind == kFaultLaunchFail && launch == at_launch;
  }
  if ((kinds & kFaultLaunchFail) == 0) return false;
  return fault_detail::site_hash(seed, fault_detail::kSaltLaunch, launch, 0,
                                 0) < fault_detail::rate_threshold(rate);
}

/// Per-block fault state: owns the deterministic site ordinals of one
/// block and applies the plan's decisions. Constructed by the engine for
/// every block of a fault-checked launch, with the counts sink of the
/// executing worker (merged deterministically post-launch).
class FaultSession {
 public:
  FaultSession(const FaultPlan& plan, std::uint64_t launch, std::uint64_t block,
               FaultCounts& sink) noexcept
      : plan_(plan), launch_(launch), block_(block), sink_(sink) {
    targeted_ = plan_.target_block < 0 ||
                static_cast<std::uint64_t>(plan_.target_block) == block_;
    if (targeted_ && timeout_hit()) {
      ++sink_.timeouts;
    }
  }

  /// Filter one global load/store value. Loads are candidates for bit
  /// flips; stores additionally for NaN writes. Every call advances the
  /// block's data-site ordinal whether or not a fault fires.
  template <typename T>
  [[nodiscard]] T filter_data(T v, bool is_store) noexcept {
    const std::uint64_t site = data_site_++;
    if (!targeted_) return v;
    unsigned kind = 0;
    if (plan_.pinpoint) {
      if (launch_ == plan_.at_launch && block_ == plan_.at_block &&
          site == plan_.at_site) {
        kind = plan_.pinpoint_kind;
      }
    } else {
      const std::uint64_t h = fault_detail::site_hash(
          plan_.seed, fault_detail::kSaltData, launch_, block_, site);
      if (h < fault_detail::rate_threshold(plan_.rate)) {
        // Both data kinds enabled: a second hash bit picks one.
        const bool flip_ok = (plan_.kinds & kFaultGlobalFlip) != 0;
        const bool nan_ok = is_store && (plan_.kinds & kFaultNanWrite) != 0;
        if (flip_ok && nan_ok) {
          kind = (fault_detail::mix64(h) & 1) ? kFaultNanWrite
                                              : kFaultGlobalFlip;
        } else if (flip_ok) {
          kind = kFaultGlobalFlip;
        } else if (nan_ok) {
          kind = kFaultNanWrite;
        }
      }
    }
    if (kind == kFaultNanWrite && is_store) {
      if constexpr (std::is_floating_point_v<T>) {
        ++sink_.nan_writes;
        return std::numeric_limits<T>::quiet_NaN();
      } else {
        kind = kFaultGlobalFlip;  // non-FP payloads degrade to a flip
      }
    }
    if (kind == kFaultGlobalFlip) {
      ++sink_.bit_flips;
      return fault_detail::flip_value_bit(v, plan_.flip_bit);
    }
    return v;
  }

  /// Phase-boundary shared-memory upset: corrupt one live arena word
  /// (XOR of one bit of a 32-bit word chosen by hash). Called by
  /// BlockContext at the end of every phase; advances the phase ordinal
  /// regardless of whether a fault fires.
  void end_phase(SharedArena& arena) noexcept {
    const std::uint64_t phase = phase_++;
    if (!targeted_) return;
    std::uint64_t h;
    if (plan_.pinpoint) {
      if (plan_.pinpoint_kind != kFaultSharedFlip ||
          launch_ != plan_.at_launch || block_ != plan_.at_block ||
          phase != plan_.at_site) {
        return;
      }
      h = fault_detail::site_hash(plan_.seed, fault_detail::kSaltShared,
                                  launch_, block_, phase);
    } else {
      if ((plan_.kinds & kFaultSharedFlip) == 0) return;
      h = fault_detail::site_hash(plan_.seed, fault_detail::kSaltShared,
                                  launch_, block_, phase);
      if (h >= fault_detail::rate_threshold(plan_.rate)) return;
    }
    const std::size_t words = arena.used() / 4;
    if (words == 0) return;  // no live shared memory to corrupt
    const std::size_t word = fault_detail::mix64(h) % words;
    const unsigned bit = (plan_.flip_bit >= 0 && plan_.flip_bit < 32)
                             ? static_cast<unsigned>(plan_.flip_bit)
                             : 30u;
    std::uint32_t u;
    std::byte* p = arena.mutable_data() + word * 4;
    std::memcpy(&u, p, 4);
    u ^= 1u << bit;
    std::memcpy(p, &u, 4);
    ++sink_.shared_corruptions;
  }

 private:
  [[nodiscard]] bool timeout_hit() const noexcept {
    if (plan_.pinpoint) {
      return plan_.pinpoint_kind == kFaultTimeout &&
             launch_ == plan_.at_launch && block_ == plan_.at_block;
    }
    if ((plan_.kinds & kFaultTimeout) == 0) return false;
    return fault_detail::site_hash(plan_.seed, fault_detail::kSaltTimeout,
                                   launch_, block_, 0) <
           fault_detail::rate_threshold(plan_.rate);
  }

  const FaultPlan& plan_;
  std::uint64_t launch_;
  std::uint64_t block_;
  FaultCounts& sink_;
  bool targeted_ = true;
  std::uint64_t data_site_ = 0;
  std::uint64_t phase_ = 0;
};

}  // namespace tridsolve::gpusim
