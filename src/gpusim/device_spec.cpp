#include "gpusim/device_spec.hpp"

#include <bit>

namespace tridsolve::gpusim {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void mix_bytes(std::uint64_t& h, const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void mix_u64(std::uint64_t& h, std::uint64_t v) noexcept {
  mix_bytes(h, &v, sizeof v);
}

void mix_f64(std::uint64_t& h, double v) noexcept {
  mix_u64(h, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t DeviceSpec::fingerprint() const noexcept {
  std::uint64_t h = kFnvOffset;
  mix_bytes(h, name.data(), name.size());
  mix_u64(h, static_cast<std::uint64_t>(num_sms));
  mix_u64(h, static_cast<std::uint64_t>(warp_size));
  mix_u64(h, static_cast<std::uint64_t>(max_threads_per_sm));
  mix_u64(h, static_cast<std::uint64_t>(max_blocks_per_sm));
  mix_u64(h, static_cast<std::uint64_t>(max_threads_per_block));
  mix_u64(h, shared_mem_per_sm);
  mix_u64(h, shared_mem_per_block);
  mix_u64(h, static_cast<std::uint64_t>(shared_banks));
  mix_u64(h, static_cast<std::uint64_t>(shared_bank_width));
  mix_u64(h, transaction_bytes);
  mix_f64(h, mem_bandwidth_gbps);
  mix_f64(h, mem_latency_cycles);
  mix_f64(h, max_mem_warps_per_sm);
  mix_f64(h, clock_ghz);
  mix_f64(h, fp32_lanes_per_sm);
  mix_f64(h, fp64_lanes_per_sm);
  mix_f64(h, div_op_cost);
  mix_f64(h, barrier_cycles);
  mix_f64(h, kernel_launch_overhead_us);
  return h;
}

DeviceSpec gtx480() {
  DeviceSpec d;
  d.name = "GTX480";
  d.num_sms = 15;
  d.warp_size = 32;
  d.max_threads_per_sm = 1536;
  d.max_blocks_per_sm = 8;
  d.max_threads_per_block = 1024;
  d.shared_mem_per_sm = 48 * 1024;
  d.shared_mem_per_block = 48 * 1024;
  d.transaction_bytes = 128;
  d.mem_bandwidth_gbps = 177.4;
  d.mem_latency_cycles = 600.0;
  d.clock_ghz = 1.401;
  d.fp32_lanes_per_sm = 32.0;
  d.fp64_lanes_per_sm = 4.0;  // GeForce cap: 1/8 of FP32
  d.div_op_cost = 8.0;
  d.barrier_cycles = 32.0;
  d.kernel_launch_overhead_us = 6.0;
  return d;
}

DeviceSpec gtx280() {
  DeviceSpec d;
  d.name = "GTX280";
  d.num_sms = 30;
  d.warp_size = 32;
  d.max_threads_per_sm = 1024;
  d.max_blocks_per_sm = 8;
  d.max_threads_per_block = 512;
  d.shared_mem_per_sm = 16 * 1024;
  d.shared_mem_per_block = 16 * 1024;
  d.transaction_bytes = 128;
  d.mem_bandwidth_gbps = 141.7;
  d.mem_latency_cycles = 550.0;
  d.clock_ghz = 1.296;
  d.fp32_lanes_per_sm = 8.0;   // GT200 SM: 8 SPs
  d.fp64_lanes_per_sm = 1.0;   // 1/8 of FP32
  d.div_op_cost = 8.0;
  d.barrier_cycles = 32.0;
  d.kernel_launch_overhead_us = 8.0;
  return d;
}

DeviceSpec test_device() {
  DeviceSpec d;
  d.name = "test2sm";
  d.num_sms = 2;
  d.warp_size = 4;
  d.max_threads_per_sm = 64;
  d.max_blocks_per_sm = 4;
  d.max_threads_per_block = 32;
  d.shared_mem_per_sm = 1024;
  d.shared_mem_per_block = 1024;
  d.transaction_bytes = 32;
  d.mem_bandwidth_gbps = 1.0;
  d.mem_latency_cycles = 100.0;
  d.clock_ghz = 1.0;
  d.fp32_lanes_per_sm = 4.0;
  d.fp64_lanes_per_sm = 1.0;
  d.div_op_cost = 8.0;
  d.barrier_cycles = 8.0;
  d.kernel_launch_overhead_us = 1.0;
  return d;
}

}  // namespace tridsolve::gpusim
