#pragma once
// Analytic kernel timing from recorded costs — a simplified Hong & Kim
// (ISCA'09) style MWP/CWP model. It captures the four mechanisms the
// paper's performance curves hinge on:
//
//  1. latency-bound floor: with few resident warps (small M), per-round
//     memory latency is exposed — the flat region of Fig. 12;
//  2. latency hiding: more resident warps overlap rounds until either
//     issue or bandwidth saturates — the knee around M ≈ 4096;
//  3. bandwidth roofline: at large M the kernel streams and time grows
//     linearly in total transactions (coalescing-weighted);
//  4. occupancy: the resident-warp count comes from the launch's shared
//     memory and thread footprint — how coarse tiling loses (§V).
//
// Plus fixed per-launch overhead, which is what repeated global-sync
// relaunches (Davidson baseline) pay.
//
// Contracts: a pure function from (DeviceSpec, occupancy, KernelCosts)
// to a KernelTiming — stateless, thread-safe, deterministic: identical
// costs always price to bit-identical times, which is what lets the
// engine's sampling/threading/hazard modes change nothing. All times are
// in microseconds (the simulator's native unit, matching Chrome-trace
// ts/dur).

#include <cstddef>

#include "gpusim/costs.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/occupancy.hpp"

namespace tridsolve::gpusim {

/// Timing breakdown of one simulated kernel launch.
struct KernelTiming {
  double time_us = 0.0;          ///< total (overhead + max of the bounds)
  double compute_us = 0.0;       ///< issue/arithmetic bound (incl. barriers)
  double latency_us = 0.0;       ///< exposed-latency bound
  double bandwidth_us = 0.0;     ///< DRAM bound
  double overhead_us = 0.0;      ///< launch overhead
  Occupancy occupancy;

  [[nodiscard]] const char* bound() const noexcept {
    if (compute_us >= latency_us && compute_us >= bandwidth_us) return "compute";
    if (latency_us >= bandwidth_us) return "latency";
    return "bandwidth";
  }
};

/// Predict the wall time of a launch of `grid_blocks` x `block_threads`
/// whose execution recorded `costs`.
[[nodiscard]] KernelTiming predict_kernel_time(const DeviceSpec& dev,
                                               std::size_t grid_blocks,
                                               int block_threads,
                                               const KernelCosts& costs);

}  // namespace tridsolve::gpusim
