#pragma once
// Shared-memory bank-conflict accounting.
//
// Fermi-class shared memory is organized as 32 four-byte banks; lanes of
// a warp touching distinct words in the same bank serialize. Kernels that
// opt in route their shared accesses through ThreadCtx::sload/sstore;
// lockstep accesses are grouped by each lane's access ordinal within the
// phase, and every group is charged
//
//   serializations = max over banks of (distinct words in that bank)
//   extra          = serializations - ceil(access bytes / bank width)
//
// so a conflict-free access pattern costs zero extra (including 8-byte
// accesses, which inherently take two passes). This is the effect
// Göddeke & Strzodka's bank-conflict-free CR layout [10] eliminates; the
// banks ablation bench measures it on both CR layouts.
//
// Like WarpCoalescer, instances are pooled in per-worker scratch:
// flush() clears group contents but keeps capacity, attach() retargets
// the cost shard for the next block.
//
// Contracts: NOT thread-safe — each instance is owned by one engine
// worker and never shared (workers' cost shards merge in block order, so
// totals are bit-identical for any worker count). Accounting is
// read-only with respect to kernel numerics: it never alters arena
// contents or arithmetic. Units: serializations and extra replays are
// cycle-equivalent counts per warp; widths/bytes are bytes.

#include <cstdint>
#include <cstddef>
#include <vector>

#include "gpusim/costs.hpp"

namespace tridsolve::gpusim {

class BankTracker {
 public:
  BankTracker(int num_banks, int bank_width_bytes, KernelCosts* costs)
      : banks_(num_banks), width_(bank_width_bytes), costs_(costs) {}

  /// Point subsequent recording at a (possibly different) cost shard.
  /// Requires the previous phase to have been flushed.
  void attach(KernelCosts* costs) noexcept { costs_ = costs; }

  /// Record one access: the `ordinal`-th shared access of the current
  /// lane in this phase.
  void record(std::size_t ordinal, const void* addr, std::size_t size) {
    if (ordinal >= groups_used_) {
      groups_used_ = ordinal + 1;
      if (groups_used_ > groups_.size()) groups_.resize(groups_used_);
    }
    auto& group = groups_[ordinal];
    const auto first = reinterpret_cast<std::uintptr_t>(addr) / width_;
    const auto last =
        (reinterpret_cast<std::uintptr_t>(addr) + size - 1) / width_;
    for (std::uintptr_t w = first; w <= last; ++w) {
      insert_unique(group.words, w);
    }
    group.max_size = group.max_size > size ? group.max_size : size;
    ++costs_->shared_accesses;
    costs_->shared_bytes += size;
  }

  /// Phase end: charge each ordinal group's serialization overhead.
  /// Keeps buffer capacity for reuse by the next phase/block.
  void flush() {
    for (std::size_t g = 0; g < groups_used_; ++g) {
      auto& group = groups_[g];
      std::size_t worst = 0;
      // Count distinct words per bank; small linear scans (<= 64 words).
      for (std::size_t i = 0; i < group.words.size(); ++i) {
        std::size_t in_bank = 0;
        const auto bank_i = group.words[i] % banks_;
        for (std::uintptr_t w : group.words) {
          in_bank += (w % banks_) == bank_i;
        }
        worst = worst > in_bank ? worst : in_bank;
      }
      const std::size_t baseline = (group.max_size + width_ - 1) / width_;
      if (worst > baseline) {
        costs_->shared_serializations += worst - baseline;
      }
      group.words.clear();
      group.max_size = 0;
    }
    groups_used_ = 0;
  }

 private:
  struct Group {
    std::vector<std::uintptr_t> words;
    std::size_t max_size = 0;
  };

  static void insert_unique(std::vector<std::uintptr_t>& v, std::uintptr_t w) {
    for (std::uintptr_t existing : v) {
      if (existing == w) return;
    }
    v.push_back(w);
  }

  std::size_t banks_;
  std::size_t width_;
  KernelCosts* costs_;
  std::vector<Group> groups_;
  std::size_t groups_used_ = 0;  // groups_[0..groups_used_) are live
};

}  // namespace tridsolve::gpusim
