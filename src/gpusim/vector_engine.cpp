#include "gpusim/vector_engine.hpp"

#include "obs/metrics.hpp"

namespace tridsolve::gpusim {

LanePool& host_lane_pool() noexcept {
  thread_local LanePool pool;
  return pool;
}

namespace detail {

void note_scratch(std::size_t acquires, std::size_t reuses) noexcept {
  static auto acq = obs::counter_handle("gpusim.scratch.acquires");
  static auto reu = obs::counter_handle("gpusim.scratch.reuses");
  if (acquires > 0) acq.add(static_cast<double>(acquires));
  if (reuses > 0) reu.add(static_cast<double>(reuses));
}

void note_vector_blocks(double n) noexcept {
  static auto blocks = obs::counter_handle("gpusim.vector.blocks");
  blocks.add(n);
}

}  // namespace detail

template void thomas_forward_lanes<float>(const LaneSegment<float>&,
                                          float* __restrict,
                                          float* __restrict) noexcept;
template void thomas_forward_lanes<double>(const LaneSegment<double>&,
                                           double* __restrict,
                                           double* __restrict) noexcept;
template void thomas_backward_lanes<float>(const LaneSegment<float>&,
                                           const LaneOutput<float>&,
                                           float* __restrict) noexcept;
template void thomas_backward_lanes<double>(const LaneSegment<double>&,
                                            const LaneOutput<double>&,
                                            double* __restrict) noexcept;

}  // namespace tridsolve::gpusim
