#pragma once
// Closed-loop traffic generation for the solve service.
//
// The service bench needs arrival processes, not just batches: a stream
// of submit times whose offered load can be swept to trace a saturation
// curve. Two shapes cover the operating regimes docs/SERVICE.md tunes
// for:
//   * steady  (burst = 1) — Poisson arrivals at `rate_rps`: exponential
//     inter-arrival gaps, the classic open-loop model of many
//     independent clients.
//   * bursty  (burst > 1) — the same mean rate delivered in on/off
//     duty cycles: within each `cycle_us` period the generator is "on"
//     for 1/burst of the cycle at `burst * rate_rps`, then silent. Mean
//     load matches the steady case; the instantaneous load the batcher
//     sees is `burst` times higher, which is what stresses window
//     sizing and queue depth.
//
// Everything is deterministic in `seed` (xoshiro256++, no std
// distributions), so a sweep point is exactly reproducible.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tridiag/types.hpp"
#include "util/random.hpp"
#include "workloads/generators.hpp"

namespace tridsolve::workloads {

struct TrafficConfig {
  double rate_rps = 1000.0;   ///< mean offered load, requests per second
  double burst = 1.0;         ///< duty-cycle factor; 1 = steady Poisson
  double cycle_us = 20000.0;  ///< on/off period for burst > 1
  std::size_t requests = 1000;
  std::uint64_t seed = 42;
};

/// Submit times in microseconds from t = 0, non-decreasing, one per
/// request. Steady: cumulative exponential gaps at `rate_rps`. Bursty:
/// gaps drawn at `burst * rate_rps` on a virtual always-on clock, then
/// time-warped so each cycle's on-window occupies its first
/// cycle_us / burst microseconds.
[[nodiscard]] std::vector<double> arrival_times_us(const TrafficConfig& cfg);

/// One owned request system: matrix per `kind`, random rhs — the
/// per-client unit the service consumes (make_batch's single-system
/// sibling). Deterministic in the rng state.
[[nodiscard]] tridiag::TridiagSystem<double> make_request_system(
    Kind kind, std::size_t n, util::Xoshiro256& rng);

}  // namespace tridsolve::workloads
