#include "workloads/generators.hpp"

#include <cmath>

namespace tridsolve::workloads {

const char* kind_name(Kind k) noexcept {
  switch (k) {
    case Kind::random_dominant: return "random_dominant";
    case Kind::toeplitz: return "toeplitz";
    case Kind::poisson1d: return "poisson1d";
    case Kind::adi_sweep: return "adi_sweep";
    case Kind::spline: return "spline";
    case Kind::needs_pivoting: return "needs_pivoting";
  }
  return "?";
}

template <typename T>
void fill_matrix(Kind kind, tridiag::SystemRef<T> sys, util::Xoshiro256& rng) {
  const std::size_t n = sys.size();
  if (n == 0) return;

  switch (kind) {
    case Kind::random_dominant: {
      for (std::size_t i = 0; i < n; ++i) {
        const double a = i == 0 ? 0.0 : util::uniform(rng, -1.0, 1.0);
        const double c = i + 1 == n ? 0.0 : util::uniform(rng, -1.0, 1.0);
        // Strict dominance with margin keeps every reduced pivot bounded
        // away from zero through all PCR/CR levels (dominance is preserved
        // by the reduction).
        const double mag = std::abs(a) + std::abs(c) + util::uniform(rng, 0.25, 1.25);
        const double sign = rng() & 1 ? 1.0 : -1.0;
        sys.a[i] = static_cast<T>(a);
        sys.b[i] = static_cast<T>(sign * mag);
        sys.c[i] = static_cast<T>(c);
      }
      break;
    }
    case Kind::toeplitz: {
      for (std::size_t i = 0; i < n; ++i) {
        sys.a[i] = i == 0 ? T(0) : T(1);
        sys.b[i] = T(4);
        sys.c[i] = i + 1 == n ? T(0) : T(1);
      }
      break;
    }
    case Kind::poisson1d: {
      for (std::size_t i = 0; i < n; ++i) {
        sys.a[i] = i == 0 ? T(0) : T(-1);
        sys.b[i] = T(2);
        sys.c[i] = i + 1 == n ? T(0) : T(-1);
      }
      break;
    }
    case Kind::adi_sweep: {
      const double r = util::uniform(rng, 0.1, 2.0);  // diffusion number
      for (std::size_t i = 0; i < n; ++i) {
        sys.a[i] = i == 0 ? T(0) : static_cast<T>(-r);
        sys.b[i] = static_cast<T>(1.0 + 2.0 * r);
        sys.c[i] = i + 1 == n ? T(0) : static_cast<T>(-r);
      }
      break;
    }
    case Kind::spline: {
      // Natural cubic spline second-derivative system with random knot
      // spacing h_i in [0.5, 1.5): rows (h_{i-1}, 2(h_{i-1}+h_i), h_i).
      double h_prev = util::uniform(rng, 0.5, 1.5);
      for (std::size_t i = 0; i < n; ++i) {
        const double h_next = util::uniform(rng, 0.5, 1.5);
        sys.a[i] = i == 0 ? T(0) : static_cast<T>(h_prev);
        sys.b[i] = static_cast<T>(2.0 * (h_prev + h_next));
        sys.c[i] = i + 1 == n ? T(0) : static_cast<T>(h_next);
        h_prev = h_next;
      }
      break;
    }
    case Kind::needs_pivoting: {
      // Alternate rows with near-zero diagonals but large off-diagonals:
      // adjacent-row interchanges are mandatory for stability.
      for (std::size_t i = 0; i < n; ++i) {
        const bool weak = (i % 2 == 0) && i + 1 < n;
        sys.a[i] = i == 0 ? T(0) : static_cast<T>(util::uniform(rng, 1.0, 2.0));
        sys.b[i] = weak ? static_cast<T>(util::uniform(rng, -1e-3, 1e-3))
                        : static_cast<T>(util::uniform(rng, 2.5, 4.0));
        sys.c[i] = i + 1 == n ? T(0) : static_cast<T>(util::uniform(rng, 1.0, 2.0));
      }
      break;
    }
  }
}

template <typename T>
void fill_rhs_for_solution(tridiag::SystemRef<T> sys,
                           tridiag::StridedView<const T> x_true) {
  const std::size_t n = sys.size();
  for (std::size_t i = 0; i < n; ++i) {
    T d = sys.b[i] * x_true[i];
    if (i > 0) d += sys.a[i] * x_true[i - 1];
    if (i + 1 < n) d += sys.c[i] * x_true[i + 1];
    sys.d[i] = d;
  }
}

template <typename T>
void fill_rhs_random(tridiag::SystemRef<T> sys, util::Xoshiro256& rng) {
  for (std::size_t i = 0; i < sys.size(); ++i) {
    sys.d[i] = static_cast<T>(util::uniform(rng, -1.0, 1.0));
  }
}

template <typename T>
tridiag::SystemBatch<T> make_batch(Kind kind, std::size_t num_systems,
                                   std::size_t n, tridiag::Layout layout,
                                   std::uint64_t seed) {
  tridiag::SystemBatch<T> batch(num_systems, n, layout);
  util::Xoshiro256 rng(seed);
  for (std::size_t m = 0; m < num_systems; ++m) {
    auto sys = batch.system(m);
    fill_matrix(kind, sys, rng);
    fill_rhs_random(sys, rng);
  }
  return batch;
}

template void fill_matrix<float>(Kind, tridiag::SystemRef<float>, util::Xoshiro256&);
template void fill_matrix<double>(Kind, tridiag::SystemRef<double>, util::Xoshiro256&);
template void fill_rhs_for_solution<float>(tridiag::SystemRef<float>,
                                           tridiag::StridedView<const float>);
template void fill_rhs_for_solution<double>(tridiag::SystemRef<double>,
                                            tridiag::StridedView<const double>);
template void fill_rhs_random<float>(tridiag::SystemRef<float>, util::Xoshiro256&);
template void fill_rhs_random<double>(tridiag::SystemRef<double>, util::Xoshiro256&);
template tridiag::SystemBatch<float> make_batch<float>(Kind, std::size_t, std::size_t,
                                                       tridiag::Layout, std::uint64_t);
template tridiag::SystemBatch<double> make_batch<double>(Kind, std::size_t,
                                                         std::size_t, tridiag::Layout,
                                                         std::uint64_t);

}  // namespace tridsolve::workloads
