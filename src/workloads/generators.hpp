#pragma once
// Workload generators for tests, examples and benches.
//
// The paper evaluates on batches of (M systems) x (N unknowns) without
// prescribing matrix entries; these generators cover the application
// classes its introduction motivates (fluid/ADI sweeps, Poisson problems,
// cubic splines) plus stress cases (random dominant, pivot-requiring).

#include <cstdint>

#include "tridiag/layout.hpp"
#include "tridiag/types.hpp"
#include "util/random.hpp"

namespace tridsolve::workloads {

enum class Kind {
  random_dominant,  ///< random entries, strictly diagonally dominant
  toeplitz,         ///< constant (1, 4, 1) spline-like stencil
  poisson1d,        ///< (-1, 2, -1) Laplacian, Dirichlet boundaries
  adi_sweep,        ///< (-r, 1+2r, -r) implicit diffusion sweep
  spline,           ///< natural cubic spline with random knot spacing
  needs_pivoting,   ///< rows with tiny diagonals: breaks pivot-free solvers,
                    ///< exercises lu_gtsv's interchanges
};

[[nodiscard]] const char* kind_name(Kind k) noexcept;

/// Fill one system's coefficients (a, b, c only; d untouched).
template <typename T>
void fill_matrix(Kind kind, tridiag::SystemRef<T> sys, util::Xoshiro256& rng);

/// Fill d so that the exact solution is `x_true`.
template <typename T>
void fill_rhs_for_solution(tridiag::SystemRef<T> sys,
                           tridiag::StridedView<const T> x_true);

/// Fill d with uniform random values in [-1, 1).
template <typename T>
void fill_rhs_random(tridiag::SystemRef<T> sys, util::Xoshiro256& rng);

/// Generate a full batch: matrix per `kind`, random rhs. Deterministic in
/// `seed` regardless of layout.
template <typename T>
[[nodiscard]] tridiag::SystemBatch<T> make_batch(Kind kind, std::size_t num_systems,
                                                 std::size_t n,
                                                 tridiag::Layout layout,
                                                 std::uint64_t seed);

extern template void fill_matrix<float>(Kind, tridiag::SystemRef<float>,
                                        util::Xoshiro256&);
extern template void fill_matrix<double>(Kind, tridiag::SystemRef<double>,
                                         util::Xoshiro256&);
extern template void fill_rhs_for_solution<float>(tridiag::SystemRef<float>,
                                                  tridiag::StridedView<const float>);
extern template void fill_rhs_for_solution<double>(tridiag::SystemRef<double>,
                                                   tridiag::StridedView<const double>);
extern template void fill_rhs_random<float>(tridiag::SystemRef<float>,
                                            util::Xoshiro256&);
extern template void fill_rhs_random<double>(tridiag::SystemRef<double>,
                                             util::Xoshiro256&);
extern template tridiag::SystemBatch<float> make_batch<float>(Kind, std::size_t,
                                                              std::size_t,
                                                              tridiag::Layout,
                                                              std::uint64_t);
extern template tridiag::SystemBatch<double> make_batch<double>(Kind, std::size_t,
                                                                std::size_t,
                                                                tridiag::Layout,
                                                                std::uint64_t);

}  // namespace tridsolve::workloads
