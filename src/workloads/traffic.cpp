#include "workloads/traffic.hpp"

#include <cmath>

namespace tridsolve::workloads {

std::vector<double> arrival_times_us(const TrafficConfig& cfg) {
  std::vector<double> out;
  out.reserve(cfg.requests);
  const double rate = cfg.rate_rps > 0.0 ? cfg.rate_rps : 1.0;
  const double burst = cfg.burst > 1.0 ? cfg.burst : 1.0;
  const double gap_mean_us = 1e6 / (rate * burst);
  util::Xoshiro256 rng(cfg.seed);
  double tau = 0.0;  // virtual always-on clock
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    // Inverse-CDF exponential gap; 1 - u keeps the argument in (0, 1].
    const double u = util::uniform(rng, 0.0, 1.0);
    tau += -gap_mean_us * std::log(1.0 - u);
    if (burst <= 1.0) {
      out.push_back(tau);
      continue;
    }
    // Warp the virtual clock onto on/off duty cycles: each cycle's
    // on-window (cycle_us / burst long) absorbs one window's worth of
    // virtual time, the off remainder passes instantly.
    const double on_len = cfg.cycle_us / burst;
    const double cycle_index = std::floor(tau / on_len);
    out.push_back(cycle_index * cfg.cycle_us + (tau - cycle_index * on_len));
  }
  return out;
}

tridiag::TridiagSystem<double> make_request_system(Kind kind, std::size_t n,
                                                   util::Xoshiro256& rng) {
  tridiag::TridiagSystem<double> sys(n);
  fill_matrix(kind, sys.ref(), rng);
  fill_rhs_random(sys.ref(), rng);
  return sys;
}

}  // namespace tridsolve::workloads
