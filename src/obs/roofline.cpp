#include "obs/roofline.hpp"

namespace tridsolve::obs {

JsonValue RooflineAttribution::to_json() const {
  JsonValue out = JsonValue::object();
  out["time_us"] = time_us;
  out["bytes_global"] = bytes_global;
  out["bytes_shared"] = bytes_shared;
  out["flops_f32"] = flops_f32;
  out["flops_f64"] = flops_f64;
  out["achieved_gbps"] = achieved_gbps;
  out["peak_gbps"] = peak_gbps;
  out["achieved_gflops"] = achieved_gflops;
  out["frac_bandwidth"] = frac_bandwidth;
  out["frac_compute"] = frac_compute;
  out["intensity"] = intensity;
  out["bound"] = bound;
  return out;
}

RooflineAttribution attribute_roofline(const gpusim::DeviceSpec& dev,
                                       const gpusim::KernelCosts& costs,
                                       double time_us) {
  RooflineAttribution r;
  r.time_us = time_us;
  r.bytes_global = static_cast<double>(costs.transactions) *
                   static_cast<double>(dev.transaction_bytes);
  r.bytes_shared = static_cast<double>(costs.shared_bytes);
  r.flops_f32 = costs.ops_f32;
  r.flops_f64 = costs.ops_f64;
  r.peak_gbps = dev.mem_bandwidth_gbps;
  if (r.bytes_global > 0.0) {
    r.intensity = (r.flops_f32 + r.flops_f64) / r.bytes_global;
  }
  if (time_us > 0.0) {
    // bytes/us == 1e6 B/s, so GB/s = (bytes/us) / 1000; same for GFLOP/s.
    r.achieved_gbps = r.bytes_global / time_us / 1000.0;
    r.achieved_gflops = (r.flops_f32 + r.flops_f64) / time_us / 1000.0;
    if (r.peak_gbps > 0.0) r.frac_bandwidth = r.achieved_gbps / r.peak_gbps;
    const double peak_f32 = dev.peak_gflops(/*fp64=*/false);
    const double peak_f64 = dev.peak_gflops(/*fp64=*/true);
    double util = 0.0;
    if (peak_f32 > 0.0) util += (r.flops_f32 / time_us / 1000.0) / peak_f32;
    if (peak_f64 > 0.0) util += (r.flops_f64 / time_us / 1000.0) / peak_f64;
    r.frac_compute = util;
  }
  r.bound = r.frac_compute > r.frac_bandwidth ? "compute" : "bandwidth";
  return r;
}

std::map<std::string, RooflineAttribution> attribute_timeline(
    const gpusim::DeviceSpec& dev, const gpusim::Timeline& timeline) {
  struct Acc {
    gpusim::KernelCosts costs;
    double time_us = 0.0;
  };
  std::map<std::string, Acc> by_label;
  for (const auto& seg : timeline.segments()) {
    if (seg.is_host() || !seg.stats.timed) continue;
    Acc& acc = by_label[seg.label];
    acc.costs.merge(seg.stats.costs);
    acc.time_us += seg.stats.timing.time_us;
  }
  std::map<std::string, RooflineAttribution> out;
  for (const auto& [label, acc] : by_label) {
    out.emplace(label, attribute_roofline(dev, acc.costs, acc.time_us));
  }
  return out;
}

}  // namespace tridsolve::obs
