#pragma once
// Roofline attribution: how close a simulated kernel (or one phase of a
// solve) runs to the device's bandwidth and FLOP roofs.
//
// This operationalizes the paper's cost-model framing (Table III /
// Eq. 8-9 count memory transactions per algorithm step): from a
// KernelCosts we take bytes actually moved on the global-memory bus
// (transactions x 128 B — the quantity the paper's model prices), bytes
// moved through shared memory, and FP op-equivalents per precision; from
// the DeviceSpec we take peak bandwidth and per-precision peak GFLOP/s.
// Dividing by the modelled kernel time yields achieved rates and
// fractions-of-roof, and the arithmetic intensity (FLOPs per global
// byte) says which roof binds — for the paper's solvers that is nearly
// always bandwidth, which is exactly why transaction counts predict
// solver choice.
//
// Pure functions over value types: no registry access, no state — safe
// anywhere, trivially testable.

#include <map>
#include <string>

#include "gpusim/costs.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "obs/json.hpp"

namespace tridsolve::obs {

/// Achieved-vs-peak summary for one kernel / phase / aggregate.
struct RooflineAttribution {
  double time_us = 0.0;
  double bytes_global = 0.0;  ///< transactions x transaction_bytes
  double bytes_shared = 0.0;  ///< instrumented shared-memory traffic
  double flops_f32 = 0.0;     ///< FP32 op-equivalents
  double flops_f64 = 0.0;     ///< FP64 op-equivalents

  double achieved_gbps = 0.0;    ///< global bytes / time
  double peak_gbps = 0.0;        ///< DeviceSpec::mem_bandwidth_gbps
  double achieved_gflops = 0.0;  ///< (f32 + f64 ops) / time
  /// Fraction of the bandwidth roof: achieved_gbps / peak_gbps.
  double frac_bandwidth = 0.0;
  /// Fraction of the compute roof: per-precision utilizations summed
  /// (f32 rate / f32 peak + f64 rate / f64 peak), since the lanes are
  /// distinct resources on Fermi.
  double frac_compute = 0.0;
  /// Arithmetic intensity in FLOPs per global byte moved.
  double intensity = 0.0;
  /// Which roof the kernel sits closer to: "bandwidth" or "compute".
  std::string bound = "bandwidth";

  /// Flat object with every field above (sorted keys via JsonValue).
  [[nodiscard]] JsonValue to_json() const;
};

/// Attribute one cost record executed over `time_us` against `dev`'s
/// roofs. A zero/negative time yields zero rates (counters still filled).
[[nodiscard]] RooflineAttribution attribute_roofline(
    const gpusim::DeviceSpec& dev, const gpusim::KernelCosts& costs,
    double time_us);

/// Per-phase attribution of a solve timeline: kernel segments sharing a
/// label are merged (costs and time summed) before attribution. Host
/// segments (no KernelCosts) are skipped.
[[nodiscard]] std::map<std::string, RooflineAttribution> attribute_timeline(
    const gpusim::DeviceSpec& dev, const gpusim::Timeline& timeline);

}  // namespace tridsolve::obs
