#include "obs/telemetry.hpp"

#include <stdexcept>

namespace tridsolve::obs {

JsonlSink::JsonlSink(std::string path) : path_(std::move(path)) {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (!f) {
    throw std::runtime_error("JsonlSink: cannot open " + path_ +
                             " for writing");
  }
  file_ = std::shared_ptr<std::FILE>(f, [](std::FILE* p) { std::fclose(p); });
}

void JsonlSink::write(const JsonValue& record) {
  if (!file_) return;
  const std::string line = record.dump();
  std::fwrite(line.data(), 1, line.size(), file_.get());
  std::fputc('\n', file_.get());
  std::fflush(file_.get());
  ++records_;
}

}  // namespace tridsolve::obs
