#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>

#include "obs/metrics.hpp"

namespace tridsolve::obs {

namespace {

JsonValue metadata_event(const char* name, int tid, const std::string& value) {
  JsonValue ev = JsonValue::object();
  ev["name"] = name;
  ev["ph"] = "M";
  ev["pid"] = 0;
  ev["tid"] = tid;
  ev["args"]["name"] = value;
  return ev;
}

}  // namespace

ChromeTraceBuilder::ChromeTraceBuilder(std::string process_name)
    : process_name_(std::move(process_name)) {
  trace_events_.push_back(metadata_event("process_name", 0, process_name_));
}

int ChromeTraceBuilder::add_timeline(const gpusim::DeviceSpec& dev,
                                     const gpusim::Timeline& timeline,
                                     const std::string& track_name) {
  const int tid = next_tid_++;
  trace_events_.push_back(metadata_event("thread_name", tid, track_name));

  double cursor_us = 0.0;
  for (const auto& seg : timeline.segments()) {
    const auto& s = seg.stats;
    JsonValue ev = JsonValue::object();
    ev["name"] = seg.label;
    ev["ph"] = "X";
    ev["pid"] = 0;
    ev["tid"] = tid;
    ev["ts"] = cursor_us;
    ev["dur"] = s.timing.time_us;
    JsonValue& args = ev["args"] = JsonValue::object();
    if (seg.is_host()) {
      ev["cat"] = "host";
      args["kind"] = "host";
    } else {
      ev["cat"] = "kernel";
      args["grid"] = s.config.grid_blocks;
      args["block"] = s.config.block_threads;
      args["occupancy"] = s.timing.occupancy.fraction;
      args["limiter"] = s.timing.occupancy.limiter;
      args["bound"] = s.timing.bound();
      args["compute_us"] = s.timing.compute_us;
      args["latency_us"] = s.timing.latency_us;
      args["bandwidth_us"] = s.timing.bandwidth_us;
      args["overhead_us"] = s.timing.overhead_us;
      args["transactions"] = s.costs.transactions;
      args["bytes_requested"] = s.costs.bytes_requested;
      args["coalescing_efficiency"] =
          s.costs.coalescing_efficiency(dev.transaction_bytes);
      args["bank_conflict_replays"] = s.costs.shared_serializations;
      args["barriers"] = s.costs.barriers;
      args["warps"] = s.costs.warps;
      args["shared_bytes"] = s.costs.shared_bytes;
      args["shared_peak_bytes"] = s.costs.shared_peak_bytes;
    }
    trace_events_.push_back(std::move(ev));
    ++events_;
    cursor_us += s.timing.time_us;
  }
  return tid;
}

std::size_t ChromeTraceBuilder::add_spans(const std::vector<Span>& spans) {
  // id -> span, for depth computation via the parent chain.
  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& s : spans) by_id.emplace(s.id, &s);
  const auto depth_of = [&by_id](const Span& s) {
    int depth = 0;
    std::uint64_t parent = s.parent;
    while (parent != 0 && depth < 64) {
      const auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      ++depth;
      parent = it->second->parent;
    }
    return depth;
  };
  const auto span_tid = [&depth_of](const Span& s) {
    const int capped = std::min(depth_of(s), 7);
    return 1000 + s.thread_ordinal * 8 + capped;
  };

  std::map<int, std::string> track_names;
  std::size_t added = 0;
  for (const Span& s : spans) {
    const int tid = span_tid(s);
    track_names.emplace(
        tid, "spans t" + std::to_string(s.thread_ordinal) + " depth " +
                 std::to_string(std::min(depth_of(s), 7)));
    JsonValue ev = JsonValue::object();
    ev["name"] = s.name;
    ev["ph"] = "X";
    ev["cat"] = "span";
    ev["pid"] = 1;
    ev["tid"] = tid;
    ev["ts"] = s.wall_t0_us;
    ev["dur"] = s.wall_t1_us >= s.wall_t0_us ? s.wall_t1_us - s.wall_t0_us
                                             : 0.0;
    JsonValue& args = ev["args"] = JsonValue::object();
    args["span"] = s.id;
    args["parent"] = s.parent;
    args["sim_t0_us"] = s.sim_t0_us;
    args["sim_t1_us"] = s.sim_t1_us;
    for (const auto& [key, value] : s.attrs) args[key] = value;
    trace_events_.push_back(std::move(ev));
    ++events_;
    ++added;

    // Causal arrow parent -> child (flow events are exempt from the
    // non-overlap check; only "X" events are tracked).
    const auto parent_it = by_id.find(s.parent);
    if (parent_it != by_id.end()) {
      const Span& p = *parent_it->second;
      JsonValue start = JsonValue::object();
      start["name"] = "span-parent";
      start["ph"] = "s";
      start["cat"] = "span-flow";
      start["id"] = s.id;
      start["pid"] = 1;
      start["tid"] = span_tid(p);
      start["ts"] = p.wall_t0_us;
      trace_events_.push_back(std::move(start));
      JsonValue finish = JsonValue::object();
      finish["name"] = "span-parent";
      finish["ph"] = "f";
      finish["bp"] = "e";
      finish["cat"] = "span-flow";
      finish["id"] = s.id;
      finish["pid"] = 1;
      finish["tid"] = tid;
      finish["ts"] = s.wall_t0_us;
      trace_events_.push_back(std::move(finish));
    }
  }
  for (const auto& [tid, name] : track_names) {
    JsonValue ev = metadata_event("thread_name", tid, name);
    ev["pid"] = 1;
    trace_events_.push_back(std::move(ev));
  }
  return added;
}

JsonValue ChromeTraceBuilder::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["traceEvents"] = trace_events_;
  doc["displayTimeUnit"] = "ms";
  JsonValue& other = doc["otherData"] = JsonValue::object();
  other["exporter"] = "tridsolve-obs";
  other["process"] = process_name_;
  other["metrics"] = MetricsRegistry::instance().to_json();
  return doc;
}

bool ChromeTraceBuilder::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "chrome_trace: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string text = str();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "chrome_trace: short write to %s\n", path.c_str());
  return ok;
}

std::string chrome_trace_json(const gpusim::DeviceSpec& dev,
                              const gpusim::Timeline& timeline,
                              const std::string& track_name) {
  ChromeTraceBuilder builder;
  builder.add_timeline(dev, timeline, track_name);
  return builder.str();
}

}  // namespace tridsolve::obs
