#include "obs/chrome_trace.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace tridsolve::obs {

namespace {

JsonValue metadata_event(const char* name, int tid, const std::string& value) {
  JsonValue ev = JsonValue::object();
  ev["name"] = name;
  ev["ph"] = "M";
  ev["pid"] = 0;
  ev["tid"] = tid;
  ev["args"]["name"] = value;
  return ev;
}

}  // namespace

ChromeTraceBuilder::ChromeTraceBuilder(std::string process_name)
    : process_name_(std::move(process_name)) {
  trace_events_.push_back(metadata_event("process_name", 0, process_name_));
}

int ChromeTraceBuilder::add_timeline(const gpusim::DeviceSpec& dev,
                                     const gpusim::Timeline& timeline,
                                     const std::string& track_name) {
  const int tid = next_tid_++;
  trace_events_.push_back(metadata_event("thread_name", tid, track_name));

  double cursor_us = 0.0;
  for (const auto& seg : timeline.segments()) {
    const auto& s = seg.stats;
    JsonValue ev = JsonValue::object();
    ev["name"] = seg.label;
    ev["ph"] = "X";
    ev["pid"] = 0;
    ev["tid"] = tid;
    ev["ts"] = cursor_us;
    ev["dur"] = s.timing.time_us;
    JsonValue& args = ev["args"] = JsonValue::object();
    if (seg.is_host()) {
      ev["cat"] = "host";
      args["kind"] = "host";
    } else {
      ev["cat"] = "kernel";
      args["grid"] = s.config.grid_blocks;
      args["block"] = s.config.block_threads;
      args["occupancy"] = s.timing.occupancy.fraction;
      args["limiter"] = s.timing.occupancy.limiter;
      args["bound"] = s.timing.bound();
      args["compute_us"] = s.timing.compute_us;
      args["latency_us"] = s.timing.latency_us;
      args["bandwidth_us"] = s.timing.bandwidth_us;
      args["overhead_us"] = s.timing.overhead_us;
      args["transactions"] = s.costs.transactions;
      args["bytes_requested"] = s.costs.bytes_requested;
      args["coalescing_efficiency"] =
          s.costs.coalescing_efficiency(dev.transaction_bytes);
      args["bank_conflict_replays"] = s.costs.shared_serializations;
      args["barriers"] = s.costs.barriers;
      args["warps"] = s.costs.warps;
      args["shared_peak_bytes"] = s.costs.shared_peak_bytes;
    }
    trace_events_.push_back(std::move(ev));
    ++events_;
    cursor_us += s.timing.time_us;
  }
  return tid;
}

JsonValue ChromeTraceBuilder::to_json() const {
  JsonValue doc = JsonValue::object();
  doc["traceEvents"] = trace_events_;
  doc["displayTimeUnit"] = "ms";
  JsonValue& other = doc["otherData"] = JsonValue::object();
  other["exporter"] = "tridsolve-obs";
  other["process"] = process_name_;
  other["metrics"] = MetricsRegistry::instance().to_json();
  return doc;
}

bool ChromeTraceBuilder::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "chrome_trace: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string text = str();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "chrome_trace: short write to %s\n", path.c_str());
  return ok;
}

std::string chrome_trace_json(const gpusim::DeviceSpec& dev,
                              const gpusim::Timeline& timeline,
                              const std::string& track_name) {
  ChromeTraceBuilder builder;
  builder.add_timeline(dev, timeline, track_name);
  return builder.str();
}

}  // namespace tridsolve::obs
