#pragma once
// Causal span tracing for the simulated solver stack.
//
// A *span* is one timed unit of work — a resilient-solve attempt, a
// kernel launch, a per-block phase — with a parent link, so a run
// produces a tree: resilient_solve → attempt[stage=pthomas] → launch →
// phase. Each span carries begin/end in *both* clocks:
//   * wall microseconds (steady_clock since tracer epoch) — what the
//     host actually spent, and what Chrome-trace rendering uses;
//   * simulated microseconds — the process-wide simulated-GPU clock,
//     advanced by gpusim::launch by each launch's modelled time.
// plus key/value attributes (the SolveCode of a failed attempt, grid
// shape, instrument mode, ...).
//
// The tracer is a process-wide singleton, DISABLED by default: every
// entry point checks one relaxed atomic and returns immediately when
// off, so instrumented code paths are read-only and effectively free in
// normal runs (the perf-attribution tests pin bit-identical outputs and
// simulated time with tracing on vs off). Enable via set_enabled(true)
// (bench::Telemetry does this when --spans-json is given).
//
// Two usage patterns:
//   * Host code uses SpanScope (RAII): parenting is automatic through a
//     thread-local open-span stack.
//   * Engine/worker code (block phases run on pool threads where the
//     host's stack is invisible) reserves an id up front, then emit()s a
//     completed Span with an explicit parent.
//
// Thread-safety: reserve_id() and the clocks are atomics; emit() appends
// under a mutex (bounded by kMaxSpans; overflow increments dropped()
// instead of growing without bound). "Lock-free-enough": the only lock
// is on the cold emit path, never inside a phase/launch hot loop while
// disabled.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace tridsolve::obs {

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 = root (no parent)
  std::string name;
  double wall_t0_us = 0.0;
  double wall_t1_us = 0.0;
  double sim_t0_us = 0.0;
  double sim_t1_us = 0.0;
  /// Ordinal of the OS thread that ran the span (stable per thread,
  /// assigned on first use) — Chrome-trace export lays tracks out by it.
  int thread_ordinal = 0;
  /// Insertion-ordered attributes; serialization sorts keys.
  std::vector<std::pair<std::string, JsonValue>> attrs;
};

class SpanTracer {
 public:
  /// Completed spans kept before new emits are counted as dropped.
  static constexpr std::size_t kMaxSpans = 1 << 16;

  [[nodiscard]] static SpanTracer& instance() noexcept;

  SpanTracer() = default;
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Claim the next span id (ids are > 0); 0 when disabled.
  [[nodiscard]] std::uint64_t reserve_id() noexcept;

  /// Record a completed span. No-op when disabled or s.id == 0; drops
  /// (counting) past kMaxSpans.
  void emit(Span&& s) noexcept;

  /// Wall microseconds since the tracer epoch (process start).
  [[nodiscard]] double now_wall_us() const noexcept;

  /// Current simulated-clock cursor in microseconds.
  [[nodiscard]] double sim_now() const noexcept {
    return sim_cursor_us_.load(std::memory_order_relaxed);
  }
  /// Advance the simulated clock (gpusim::launch adds each launch's
  /// modelled time). No-op when disabled, keeping tracing read-only.
  void advance_sim(double us) noexcept;

  /// Thread-local open-span stack (SpanScope parenting). current_parent()
  /// is 0 when this thread has no open span.
  [[nodiscard]] std::uint64_t current_parent() const noexcept;
  void push_current(std::uint64_t id) noexcept;
  void pop_current() noexcept;

  /// Stable small ordinal for the calling OS thread.
  [[nodiscard]] int thread_ordinal() noexcept;

  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::size_t span_count() const noexcept;
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drop every recorded span and zero the id counter, simulated clock
  /// and dropped tally. Does not change enabled().
  void reset() noexcept;

  /// One JSONL line per span: {"attrs": {...}, "name": ..., "parent": ...,
  /// "sim_t0_us": ..., "sim_t1_us": ..., "span": id, "thread": ordinal,
  /// "wall_t0_us": ..., "wall_t1_us": ...} (keys sorted by JsonValue).
  [[nodiscard]] static JsonValue span_json(const Span& s);
  /// Write every recorded span as JSONL; false on I/O failure.
  [[nodiscard]] bool write_jsonl(const std::string& path) const;

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<double> sim_cursor_us_{0.0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::atomic<int> next_thread_ordinal_{0};
};

/// RAII host-side span: begins on construction (parent = the thread's
/// current open span), ends + emits on destruction. All no-ops when the
/// tracer is disabled at construction time.
class SpanScope {
 public:
  explicit SpanScope(std::string_view name) noexcept;
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope();

  /// Attach a key/value attribute (no-op when inactive).
  void attr(std::string_view key, JsonValue value) noexcept;

  /// This span's id (0 when the tracer was disabled).
  [[nodiscard]] std::uint64_t id() const noexcept { return span_.id; }

 private:
  Span span_;
  bool active_ = false;
};

}  // namespace tridsolve::obs
