#pragma once
// Chrome trace-event exporter: converts simulated `gpusim::Timeline`s
// into a trace.json loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Each timeline becomes one track (a trace "thread"); each segment
// becomes one complete duration event ("ph":"X") laid out back-to-back
// in simulated time, carrying the launch's full stats as args: grid x
// block, occupancy + limiting resource, binding bound, transactions,
// coalescing efficiency, bank-conflict replays and barriers. Host-side
// segments (Timeline::add_fixed) are exported in a "host" category with
// no launch-shaped args. Timestamps are microseconds, which is exactly
// the Chrome trace `ts`/`dur` unit.

#include <cstddef>
#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "obs/json.hpp"
#include "obs/span_tracer.hpp"

namespace tridsolve::obs {

class ChromeTraceBuilder {
 public:
  explicit ChromeTraceBuilder(std::string process_name = "tridsolve-sim");

  /// Append every segment of `timeline` as one new track named
  /// `track_name`. Events start at the track's cursor (0 for a fresh
  /// track) and are laid out contiguously. Returns the track's tid.
  int add_timeline(const gpusim::DeviceSpec& dev,
                   const gpusim::Timeline& timeline,
                   const std::string& track_name);

  /// Append causal spans (SpanTracer output) as wall-clock duration
  /// events on pid 1 (timeline tracks live on pid 0). Track layout keeps
  /// the validator's per-(pid,tid) non-overlap invariant: tid =
  /// thread_ordinal * 8 + min(tree depth, 7), so nested spans land on
  /// distinct tracks while same-depth spans from one thread are
  /// sequential by construction. Each parent -> child edge additionally
  /// becomes a flow-event pair ("s"/"f", id = child span id) so Perfetto
  /// draws the causal arrows. Returns the number of duration events
  /// added.
  std::size_t add_spans(const std::vector<Span>& spans);

  /// Duration events recorded so far (metadata events not counted).
  [[nodiscard]] std::size_t event_count() const noexcept { return events_; }

  /// The full document: {"traceEvents": [...], "displayTimeUnit": "ms",
  /// "otherData": {...}}. A snapshot of the metrics registry is embedded
  /// under otherData.metrics.
  [[nodiscard]] JsonValue to_json() const;

  [[nodiscard]] std::string str() const { return to_json().dump(1); }

  /// Serialize to `path`; false (with a note on stderr) on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::string process_name_;
  JsonValue trace_events_ = JsonValue::array();
  int next_tid_ = 0;
  std::size_t events_ = 0;
};

/// One-shot convenience: a single-timeline trace document as a string.
[[nodiscard]] std::string chrome_trace_json(const gpusim::DeviceSpec& dev,
                                            const gpusim::Timeline& timeline,
                                            const std::string& track_name);

}  // namespace tridsolve::obs
