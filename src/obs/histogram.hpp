#pragma once
// Log-bucketed (HDR-style) latency histogram for the metrics registry.
//
// Values are non-negative doubles (typically microseconds). Buckets are
// geometric: 8 linear sub-buckets per power-of-two octave starting at
// kMinTrackable, so a recorded value lands in a bucket whose upper bound
// is at most 12.5% above it — quantile snapshots (p50/p90/p99) therefore
// carry <= 12.5% relative error by construction, which is plenty for the
// "is this phase 2x slower" questions perfdiff asks. count/sum/min/max
// are exact.
//
// Contracts: record() is noexcept, lock-free (relaxed atomics only) and
// safe to call from any thread — the simulated-launch hot path records
// into one of these per launch. snapshot() is a racy-but-consistent-
// enough read: it never tears an individual counter, but a snapshot taken
// while writers are active may see a sum that includes a value whose
// bucket increment it missed (and vice versa); quiesce writers before
// asserting exact totals, as the registry tests do. Like counter slots,
// a LogHistogram never moves once created (the registry stores them in a
// deque), so handles stay valid for the process lifetime.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace tridsolve::obs {

/// Point-in-time summary of one histogram. Quantiles are bucket upper
/// bounds (clamped to the observed max); zero-count snapshots are all 0.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

class LogHistogram {
 public:
  /// Values below this collapse into bucket 0 (2^-10 ~ 0.001 us).
  static constexpr double kMinTrackable = 1.0 / 1024.0;
  static constexpr int kSubBuckets = 8;   ///< linear slices per octave
  static constexpr int kOctaves = 52;     ///< kMin * 2^52 ~ 4.4e12 us top
  static constexpr int kBuckets = kOctaves * kSubBuckets;

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Record one sample. Negative/NaN samples are dropped.
  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

  /// Zero every bucket and the count/sum/min/max (registry reset()).
  void reset() noexcept;

  /// Bucket index a value lands in (exposed for tests).
  [[nodiscard]] static int bucket_index(double value) noexcept;
  /// Upper bound of bucket `idx` (the value quantiles report).
  [[nodiscard]] static double bucket_upper_bound(int idx) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // min seeds at +inf so the first sample wins the CAS race cleanly;
  // snapshot() maps a still-infinite min (no samples) back to 0.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

}  // namespace tridsolve::obs
