#include "obs/prometheus.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace tridsolve::obs {

namespace {

/// Format a sample value the way Prometheus clients do: shortest float
/// text that round-trips (reuses the JSON number formatter's contract).
std::string sample_value(double v) {
  JsonValue num(v);
  return num.dump();
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double value) {
  out += name;
  out += labels;
  out += ' ';
  out += sample_value(value);
  out += '\n';
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (alpha || c == '_' || c == ':' || (digit && !out.empty())) {
      out += c;
    } else {
      out += '_';
    }
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prometheus_text(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.counters()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    append_sample(out, pname, "", value);
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " gauge\n";
    append_sample(out, pname, "", value);
  }
  for (const auto& [name, snap] : registry.histograms()) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " summary\n";
    append_sample(out, pname, "{quantile=\"0.5\"}", snap.p50);
    append_sample(out, pname, "{quantile=\"0.9\"}", snap.p90);
    append_sample(out, pname, "{quantile=\"0.99\"}", snap.p99);
    append_sample(out, pname + "_sum", "", snap.sum);
    append_sample(out, pname + "_count", "",
                  static_cast<double>(snap.count));
  }
  return out;
}

bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "prometheus: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::string text = prometheus_text(registry);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "prometheus: short write to %s\n", path.c_str());
  }
  return ok;
}

}  // namespace tridsolve::obs
