#include "obs/span_tracer.hpp"

#include <chrono>
#include <cstdio>

namespace tridsolve::obs {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point tracer_epoch() noexcept {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

thread_local std::vector<std::uint64_t> tls_span_stack;
thread_local int tls_thread_ordinal = -1;

}  // namespace

SpanTracer& SpanTracer::instance() noexcept {
  static SpanTracer tracer;
  // Touch the epoch so wall timestamps are relative to first tracer use.
  (void)tracer_epoch();
  return tracer;
}

std::uint64_t SpanTracer::reserve_id() noexcept {
  if (!enabled()) return 0;
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void SpanTracer::emit(Span&& s) noexcept {
  if (!enabled() || s.id == 0) return;
  try {
    const std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= kMaxSpans) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    spans_.push_back(std::move(s));
  } catch (...) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

double SpanTracer::now_wall_us() const noexcept {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   tracer_epoch())
      .count();
}

void SpanTracer::advance_sim(double us) noexcept {
  if (!enabled() || !(us > 0.0)) return;
  double cur = sim_cursor_us_.load(std::memory_order_relaxed);
  while (!sim_cursor_us_.compare_exchange_weak(cur, cur + us,
                                               std::memory_order_relaxed)) {
  }
}

std::uint64_t SpanTracer::current_parent() const noexcept {
  return tls_span_stack.empty() ? 0 : tls_span_stack.back();
}

void SpanTracer::push_current(std::uint64_t id) noexcept {
  try {
    tls_span_stack.push_back(id);
  } catch (...) {
  }
}

void SpanTracer::pop_current() noexcept {
  if (!tls_span_stack.empty()) tls_span_stack.pop_back();
}

int SpanTracer::thread_ordinal() noexcept {
  if (tls_thread_ordinal < 0) {
    tls_thread_ordinal =
        next_thread_ordinal_.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_ordinal;
}

std::vector<Span> SpanTracer::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t SpanTracer::span_count() const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void SpanTracer::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  next_id_.store(1, std::memory_order_relaxed);
  sim_cursor_us_.store(0.0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

JsonValue SpanTracer::span_json(const Span& s) {
  JsonValue rec = JsonValue::object();
  rec["span"] = s.id;
  rec["parent"] = s.parent;
  rec["name"] = s.name;
  rec["thread"] = s.thread_ordinal;
  rec["wall_t0_us"] = s.wall_t0_us;
  rec["wall_t1_us"] = s.wall_t1_us;
  rec["sim_t0_us"] = s.sim_t0_us;
  rec["sim_t1_us"] = s.sim_t1_us;
  JsonValue& attrs = rec["attrs"] = JsonValue::object();
  for (const auto& [key, value] : s.attrs) attrs[key] = value;
  return rec;
}

bool SpanTracer::write_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "span_tracer: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  bool ok = true;
  for (const Span& s : spans()) {
    const std::string line = span_json(s).dump() + "\n";
    ok = ok && std::fwrite(line.data(), 1, line.size(), f) == line.size();
  }
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "span_tracer: short write to %s\n", path.c_str());
  }
  return ok;
}

SpanScope::SpanScope(std::string_view name) noexcept {
  SpanTracer& tracer = SpanTracer::instance();
  if (!tracer.enabled()) return;
  span_.id = tracer.reserve_id();
  if (span_.id == 0) return;
  try {
    span_.name = std::string(name);
  } catch (...) {
    span_.id = 0;
    return;
  }
  span_.parent = tracer.current_parent();
  span_.thread_ordinal = tracer.thread_ordinal();
  span_.wall_t0_us = tracer.now_wall_us();
  span_.sim_t0_us = tracer.sim_now();
  tracer.push_current(span_.id);
  active_ = true;
}

void SpanScope::attr(std::string_view key, JsonValue value) noexcept {
  if (!active_) return;
  try {
    span_.attrs.emplace_back(std::string(key), std::move(value));
  } catch (...) {
  }
}

SpanScope::~SpanScope() {
  if (!active_) return;
  SpanTracer& tracer = SpanTracer::instance();
  tracer.pop_current();
  span_.wall_t1_us = tracer.now_wall_us();
  span_.sim_t1_us = tracer.sim_now();
  tracer.emit(std::move(span_));
}

}  // namespace tridsolve::obs
