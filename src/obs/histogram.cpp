#include "obs/histogram.hpp"

#include <cmath>

namespace tridsolve::obs {

namespace {

/// Lock-free add on an atomic double (same CAS idiom as Counter::add).
void atomic_add(std::atomic<double>& a, double delta) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int LogHistogram::bucket_index(double value) noexcept {
  if (!(value > kMinTrackable)) return 0;
  int exp = 0;
  // value/kMin > 1, so frexp gives m in [0.5, 1) with exp >= 1; the
  // octave is exp-1 and m*2 in [1, 2) slices linearly into sub-buckets.
  const double m = std::frexp(value / kMinTrackable, &exp);
  const int octave = exp - 1;
  if (octave >= kOctaves) return kBuckets - 1;
  int sub = static_cast<int>((m * 2.0 - 1.0) * kSubBuckets);
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // m*2 == 2 rounding guard
  return octave * kSubBuckets + sub;
}

double LogHistogram::bucket_upper_bound(int idx) noexcept {
  const int octave = idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  return kMinTrackable * std::ldexp(1.0 + (sub + 1.0) / kSubBuckets, octave);
}

void LogHistogram::record(double value) noexcept {
  if (!(value >= 0.0)) return;  // drops negatives and NaN
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

HistogramSnapshot LogHistogram::snapshot() const noexcept {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  const double mn = min_.load(std::memory_order_relaxed);
  s.min = std::isfinite(mn) ? mn : 0.0;
  s.max = max_.load(std::memory_order_relaxed);

  // Walk buckets accumulating counts; a quantile reports the upper bound
  // of the bucket where the cumulative count crosses q * total, clamped
  // to the exact observed max so p99 never exceeds it.
  std::uint64_t cumulative = 0;
  std::uint64_t total = 0;
  std::uint64_t per_bucket[kBuckets];
  for (int i = 0; i < kBuckets; ++i) {
    per_bucket[i] = buckets_[i].load(std::memory_order_relaxed);
    total += per_bucket[i];
  }
  if (total == 0) return s;  // racing reset(); report count/sum as seen
  const auto quantile_target = [total](double q) {
    auto t = static_cast<std::uint64_t>(q * static_cast<double>(total));
    return t < total ? t + 1 : total;  // rank is 1-based
  };
  const std::uint64_t t50 = quantile_target(0.50);
  const std::uint64_t t90 = quantile_target(0.90);
  const std::uint64_t t99 = quantile_target(0.99);
  for (int i = 0; i < kBuckets; ++i) {
    if (per_bucket[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += per_bucket[i];
    const double ub = bucket_upper_bound(i);
    const double v = ub < s.max ? ub : s.max;
    if (before < t50 && t50 <= cumulative) s.p50 = v;
    if (before < t90 && t90 <= cumulative) s.p90 = v;
    if (before < t99 && t99 <= cumulative) s.p99 = v;
  }
  return s;
}

void LogHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

}  // namespace tridsolve::obs
