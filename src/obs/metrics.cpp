#include "obs/metrics.hpp"

namespace tridsolve::obs {

MetricsRegistry& MetricsRegistry::instance() noexcept {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Counter MetricsRegistry::handle(
    std::string_view name) noexcept {
  try {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) return Counter(it->second);
    Slot& slot = slots_.emplace_back();
    slot.name = std::string(name);
    by_name_.emplace(slot.name, &slot);
    return Counter(&slot);
  } catch (...) {
    // Drop the sample rather than propagate from instrumentation.
    return Counter();
  }
}

void MetricsRegistry::set(std::string_view name, double value) noexcept {
  try {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
      it->second = value;
    } else {
      gauges_.emplace(std::string(name), value);
    }
  } catch (...) {
  }
}

MetricsRegistry::Histogram MetricsRegistry::histogram(
    std::string_view name) noexcept {
  try {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = hist_by_name_.find(name);
    if (it != hist_by_name_.end()) return Histogram(it->second);
    HistSlot& slot = hist_slots_.emplace_back();
    slot.name = std::string(name);
    hist_by_name_.emplace(slot.name, &slot);
    return Histogram(&slot);
  } catch (...) {
    // Drop the sample rather than propagate from instrumentation.
    return Histogram();
  }
}

bool MetricsRegistry::has_histogram(std::string_view name) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = hist_by_name_.find(name);
  return it != hist_by_name_.end() && it->second->hist.count() > 0;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::histograms() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const HistSlot& slot : hist_slots_) {
    if (slot.hist.count() > 0) out.emplace(slot.name, slot.hist.snapshot());
  }
  return out;
}

const MetricsRegistry::Slot* MetricsRegistry::find_slot(
    std::string_view name) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

double MetricsRegistry::counter(std::string_view name) const noexcept {
  const Slot* slot = find_slot(name);
  return slot ? slot->value.load(std::memory_order_relaxed) : 0.0;
}

double MetricsRegistry::gauge(std::string_view name) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::has_counter(std::string_view name) const noexcept {
  const Slot* slot = find_slot(name);
  return slot != nullptr && slot->touched.load(std::memory_order_relaxed);
}

bool MetricsRegistry::has_gauge(std::string_view name) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_.find(name) != gauges_.end();
}

std::map<std::string, double> MetricsRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const Slot& slot : slots_) {
    if (slot.touched.load(std::memory_order_relaxed)) {
      out.emplace(slot.name, slot.value.load(std::memory_order_relaxed));
    }
  }
  return out;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue out = JsonValue::object();
  JsonValue& c = out["counters"] = JsonValue::object();
  JsonValue& g = out["gauges"] = JsonValue::object();
  JsonValue& h = out["histograms"] = JsonValue::object();
  for (const auto& [name, value] : counters()) c[name] = value;
  for (const auto& [name, value] : gauges()) g[name] = value;
  for (const auto& [name, snap] : histograms()) {
    JsonValue& entry = h[name] = JsonValue::object();
    entry["count"] = snap.count;
    entry["sum"] = snap.sum;
    entry["min"] = snap.min;
    entry["max"] = snap.max;
    entry["mean"] = snap.mean();
    entry["p50"] = snap.p50;
    entry["p90"] = snap.p90;
    entry["p99"] = snap.p99;
  }
  return out;
}

void MetricsRegistry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    slot.value.store(0.0, std::memory_order_relaxed);
    slot.touched.store(false, std::memory_order_relaxed);
  }
  for (HistSlot& slot : hist_slots_) slot.hist.reset();
  gauges_.clear();
}

}  // namespace tridsolve::obs
