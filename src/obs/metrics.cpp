#include "obs/metrics.hpp"

namespace tridsolve::obs {

MetricsRegistry& MetricsRegistry::instance() noexcept {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::add(std::string_view name, double delta) noexcept {
  try {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) {
      it->second += delta;
    } else {
      counters_.emplace(std::string(name), delta);
    }
  } catch (...) {
    // Drop the sample rather than propagate from instrumentation.
  }
}

void MetricsRegistry::set(std::string_view name, double value) noexcept {
  try {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = gauges_.find(name);
    if (it != gauges_.end()) {
      it->second = value;
    } else {
      gauges_.emplace(std::string(name), value);
    }
  } catch (...) {
  }
}

double MetricsRegistry::counter(std::string_view name) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::has_counter(std::string_view name) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.find(name) != counters_.end();
}

bool MetricsRegistry::has_gauge(std::string_view name) const noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_.find(name) != gauges_.end();
}

std::map<std::string, double> MetricsRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {gauges_.begin(), gauges_.end()};
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue out = JsonValue::object();
  JsonValue& c = out["counters"] = JsonValue::object();
  JsonValue& g = out["gauges"] = JsonValue::object();
  for (const auto& [name, value] : counters()) c[name] = value;
  for (const auto& [name, value] : gauges()) g[name] = value;
  return out;
}

void MetricsRegistry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
}

}  // namespace tridsolve::obs
