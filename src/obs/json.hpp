#pragma once
// Minimal self-contained JSON document model: build, serialize, parse.
//
// This is the substrate of the observability layer (Chrome traces, the
// metrics registry dump, JSONL bench telemetry) and of the tests that
// re-parse what the exporters emit. No external dependency; the subset
// implemented is exactly RFC 8259 minus exotic number forms (NaN/Inf are
// serialized as null, as browsers' JSON.stringify does).

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tridsolve::obs {

/// A JSON value: null, bool, number, string, array or object. Objects
/// keep keys sorted so serialized output is deterministic and diffable.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() noexcept : kind_(Kind::null) {}
  JsonValue(std::nullptr_t) noexcept : kind_(Kind::null) {}
  JsonValue(bool b) noexcept : kind_(Kind::boolean), bool_(b) {}
  JsonValue(double v) noexcept : kind_(Kind::number), num_(v) {}
  JsonValue(int v) noexcept : JsonValue(static_cast<double>(v)) {}
  JsonValue(unsigned v) noexcept : JsonValue(static_cast<double>(v)) {}
  JsonValue(long v) noexcept : JsonValue(static_cast<double>(v)) {}
  JsonValue(long long v) noexcept : JsonValue(static_cast<double>(v)) {}
  JsonValue(unsigned long v) noexcept : JsonValue(static_cast<double>(v)) {}
  JsonValue(unsigned long long v) noexcept
      : JsonValue(static_cast<double>(v)) {}
  JsonValue(std::string s) : kind_(Kind::string), str_(std::move(s)) {}
  JsonValue(std::string_view s) : kind_(Kind::string), str_(s) {}
  JsonValue(const char* s) : kind_(Kind::string), str_(s) {}

  [[nodiscard]] static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::array;
    return v;
  }
  [[nodiscard]] static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::object;
    return v;
  }

  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::boolean; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::number; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::string; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::array; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::object; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return num_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }
  [[nodiscard]] const Array& as_array() const noexcept { return arr_; }
  [[nodiscard]] const Object& as_object() const noexcept { return obj_; }

  /// Object access; inserts a null member (and coerces a null value into
  /// an object) so `v["a"]["b"] = 1` builds nested structure.
  JsonValue& operator[](const std::string& key);

  /// Object lookup without insertion; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Append to an array (coerces a null value into an array).
  void push_back(JsonValue v);

  [[nodiscard]] std::size_t size() const noexcept {
    if (kind_ == Kind::array) return arr_.size();
    if (kind_ == Kind::object) return obj_.size();
    return 0;
  }

  /// Serialize. indent < 0: compact single line; otherwise pretty-print
  /// with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (surrounding whitespace allowed).
  /// Returns nullopt on any syntax error or trailing garbage.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

 private:
  enum class Kind { null, boolean, number, string, array, object };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Quote + escape a string for embedding in JSON (returns with quotes).
[[nodiscard]] std::string json_quote(std::string_view s);

}  // namespace tridsolve::obs
