#pragma once
// Prometheus text-exposition writer for the metrics registry.
//
// Emits the standard `# TYPE` + sample-line format (exposition format
// version 0.0.4) so a future service layer can expose the registry on a
// /metrics endpoint without reformatting. Mapping:
//   counters   -> `counter` samples
//   gauges     -> `gauge` samples
//   histograms -> `summary` samples: quantile-labelled lines for
//                 p50/p90/p99 plus `_sum` and `_count`
// Metric names are sanitized to the Prometheus grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*): dots and dashes become underscores, any
// other invalid character likewise. Output is deterministic (registry
// maps are sorted by name).

#include <string>

namespace tridsolve::obs {

class MetricsRegistry;

/// Sanitize one metric name to the Prometheus grammar.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// The full registry snapshot in exposition format.
[[nodiscard]] std::string prometheus_text(const MetricsRegistry& registry);

/// Write prometheus_text(registry) to `path`; false (with a note on
/// stderr) on I/O failure.
bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path);

}  // namespace tridsolve::obs
