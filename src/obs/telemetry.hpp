#pragma once
// JSONL bench telemetry sink: one structured JSON record per line.
//
// Benches and examples open a sink when --json <path> is passed and
// append one record per configuration they run (shape, solver, time,
// per-phase split). A disabled (default-constructed) sink swallows
// writes, so call sites need no `if (enabled)` guards. Files are
// truncated per process run and appended to per record, so one bench
// invocation yields one self-contained JSONL trajectory.

#include <cstdio>
#include <memory>
#include <string>

#include "obs/json.hpp"

namespace tridsolve::obs {

class JsonlSink {
 public:
  /// Disabled sink: enabled() is false, write() is a no-op.
  JsonlSink() = default;

  /// Open `path` for writing (truncates any previous contents). Throws
  /// std::runtime_error when the file cannot be opened, so a bench run
  /// asked for telemetry fails loudly instead of silently dropping it.
  explicit JsonlSink(std::string path);

  [[nodiscard]] bool enabled() const noexcept { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t records_written() const noexcept { return records_; }

  /// Append `record` as one compact line and flush, so partial bench
  /// runs still leave valid JSONL behind.
  void write(const JsonValue& record);

 private:
  std::string path_;
  std::shared_ptr<std::FILE> file_;
  std::size_t records_ = 0;
};

}  // namespace tridsolve::obs
