#pragma once
// Process-wide solver metrics registry: named counters and gauges every
// layer of the stack records into, plus RAII scoped host timers.
//
// Counters accumulate (launch counts, redundant loads avoided per the
// paper's Eq. 8-9 model, layout-conversion rows); gauges hold the latest
// value of a decision (the chosen transition point k, the window variant).
// Tests and the bench telemetry sink read the registry back; `to_json`
// dumps the whole state for --metrics-json.
//
// All mutation paths are noexcept so instrumentation can live inside
// noexcept solver code: an allocation failure drops the sample instead of
// terminating the process.

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace tridsolve::obs {

class MetricsRegistry {
 public:
  /// The process-wide registry (benches, examples and tests share it).
  [[nodiscard]] static MetricsRegistry& instance() noexcept;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Add `delta` to counter `name` (created at zero on first use).
  void add(std::string_view name, double delta = 1.0) noexcept;

  /// Set gauge `name` to `value`.
  void set(std::string_view name, double value) noexcept;

  /// Current counter value; 0 when never incremented.
  [[nodiscard]] double counter(std::string_view name) const noexcept;

  /// Latest gauge value; 0 when never set.
  [[nodiscard]] double gauge(std::string_view name) const noexcept;

  [[nodiscard]] bool has_counter(std::string_view name) const noexcept;
  [[nodiscard]] bool has_gauge(std::string_view name) const noexcept;

  [[nodiscard]] std::map<std::string, double> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;

  /// {"counters": {...}, "gauges": {...}} snapshot.
  [[nodiscard]] JsonValue to_json() const;

  /// Drop every counter and gauge (tests isolate themselves with this).
  void reset() noexcept;

 private:
  mutable std::mutex mu_;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

/// Shorthands against the process-wide registry.
inline void count(std::string_view name, double delta = 1.0) noexcept {
  MetricsRegistry::instance().add(name, delta);
}
inline void gauge(std::string_view name, double value) noexcept {
  MetricsRegistry::instance().set(name, value);
}

/// RAII wall-clock timer: on destruction adds the elapsed microseconds to
/// counter "<name>.time_us" and bumps "<name>.calls". Measures *host*
/// orchestration time, complementing the simulated GPU timeline.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string name) noexcept
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const double us =
        std::chrono::duration<double, std::micro>(elapsed).count();
    try {
      count(name_ + ".time_us", us);
      count(name_ + ".calls");
    } catch (...) {
      // Instrumentation must never take the process down.
    }
  }

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tridsolve::obs
