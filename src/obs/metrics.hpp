#pragma once
// Process-wide solver metrics registry: named counters and gauges every
// layer of the stack records into, plus RAII scoped host timers.
//
// Counters accumulate (launch counts, redundant loads avoided per the
// paper's Eq. 8-9 model, layout-conversion rows); gauges hold the latest
// value of a decision (the chosen transition point k, the window variant).
// Tests and the bench telemetry sink read the registry back; `to_json`
// dumps the whole state for --metrics-json.
//
// Hot paths (the simulated-launch engine, per-solve accounting) use
// *metric handles*: `Counter h = obs::counter("gpusim.launches")` resolves
// the name once, and `h.add()` is a lock-free atomic add on a stable slot
// — no string hashing or map lookup per event. The string API
// (`obs::count`) remains as a thin wrapper that resolves a handle per
// call, so cold paths and tests stay ergonomic.
//
// All mutation paths are noexcept so instrumentation can live inside
// noexcept solver code: an allocation failure drops the sample instead of
// terminating the process.

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace tridsolve::obs {

class MetricsRegistry {
 public:
  /// Stable storage cell for one named counter. Slots are created once and
  /// never move or disappear (reset() zeroes them), so handles stay valid
  /// for the process lifetime.
  struct Slot {
    std::string name;
    std::atomic<double> value{0.0};
    std::atomic<bool> touched{false};
  };

  /// Cheap copyable handle to one counter slot: add() is an atomic
  /// read-modify-write with no locking and no string handling.
  class Counter {
   public:
    Counter() = default;

    void add(double delta = 1.0) const noexcept {
      if (!slot_) return;
      slot_->touched.store(true, std::memory_order_relaxed);
      double cur = slot_->value.load(std::memory_order_relaxed);
      while (!slot_->value.compare_exchange_weak(cur, cur + delta,
                                                 std::memory_order_relaxed)) {
      }
    }

    [[nodiscard]] double value() const noexcept {
      return slot_ ? slot_->value.load(std::memory_order_relaxed) : 0.0;
    }

    [[nodiscard]] bool valid() const noexcept { return slot_ != nullptr; }

   private:
    friend class MetricsRegistry;
    explicit Counter(Slot* s) noexcept : slot_(s) {}
    Slot* slot_ = nullptr;
  };

  /// Stable storage cell for one named histogram (same lifetime contract
  /// as counter Slots: created once, never moves, reset() zeroes it).
  struct HistSlot {
    std::string name;
    LogHistogram hist;
  };

  /// Cheap copyable handle to one histogram slot: record() is lock-free
  /// (relaxed atomics) with no string handling — safe on launch hot paths.
  class Histogram {
   public:
    Histogram() = default;

    void record(double value) const noexcept {
      if (slot_) slot_->hist.record(value);
    }

    [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
      return slot_ ? slot_->hist.snapshot() : HistogramSnapshot{};
    }

    [[nodiscard]] bool valid() const noexcept { return slot_ != nullptr; }

   private:
    friend class MetricsRegistry;
    explicit Histogram(HistSlot* s) noexcept : slot_(s) {}
    HistSlot* slot_ = nullptr;
  };

  /// The process-wide registry (benches, examples and tests share it).
  [[nodiscard]] static MetricsRegistry& instance() noexcept;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve (creating on first use) the handle for counter `name`.
  /// Returns an invalid handle only if slot allocation fails.
  [[nodiscard]] Counter handle(std::string_view name) noexcept;

  /// Add `delta` to counter `name` (created at zero on first use).
  void add(std::string_view name, double delta = 1.0) noexcept {
    handle(name).add(delta);
  }

  /// Set gauge `name` to `value`.
  void set(std::string_view name, double value) noexcept;

  /// Current counter value; 0 when never incremented.
  [[nodiscard]] double counter(std::string_view name) const noexcept;

  /// Latest gauge value; 0 when never set.
  [[nodiscard]] double gauge(std::string_view name) const noexcept;

  [[nodiscard]] bool has_counter(std::string_view name) const noexcept;
  [[nodiscard]] bool has_gauge(std::string_view name) const noexcept;

  /// Resolve (creating on first use) the handle for histogram `name`.
  /// Returns an invalid (no-op) handle only if slot allocation fails.
  [[nodiscard]] Histogram histogram(std::string_view name) noexcept;

  /// Record one sample into histogram `name` (cold-path convenience).
  void observe(std::string_view name, double value) noexcept {
    histogram(name).record(value);
  }

  [[nodiscard]] bool has_histogram(std::string_view name) const noexcept;

  [[nodiscard]] std::map<std::string, double> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;

  /// Snapshots of every histogram that has recorded at least one sample.
  [[nodiscard]] std::map<std::string, HistogramSnapshot> histograms() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} snapshot.
  /// Each histogram dumps {count, sum, min, max, mean, p50, p90, p99}.
  [[nodiscard]] JsonValue to_json() const;

  /// Drop every counter and gauge (tests isolate themselves with this).
  /// Handles stay valid: their slots are zeroed, not destroyed.
  void reset() noexcept;

 private:
  [[nodiscard]] const Slot* find_slot(std::string_view name) const noexcept;

  // Snapshot-path safety note: every read API (counters()/gauges()/
  // histograms()/to_json()) takes mu_ only to walk the name maps; the
  // values themselves live in atomics (counter slots, histogram buckets)
  // that concurrent add()/record() mutate without the lock. A snapshot is
  // therefore always a consistent *per-metric* read (no torn doubles),
  // racing writers just land in this snapshot or the next — pinned by the
  // multi-threaded registry test.
  mutable std::mutex mu_;
  std::deque<Slot> slots_;  // deque: stable addresses as slots are added
  std::map<std::string, Slot*, std::less<>> by_name_;
  std::map<std::string, double, std::less<>> gauges_;
  std::deque<HistSlot> hist_slots_;  // deque: stable addresses, like slots_
  std::map<std::string, HistSlot*, std::less<>> hist_by_name_;
};

/// Shorthands against the process-wide registry.
inline void count(std::string_view name, double delta = 1.0) noexcept {
  MetricsRegistry::instance().add(name, delta);
}
inline void gauge(std::string_view name, double value) noexcept {
  MetricsRegistry::instance().set(name, value);
}
/// Resolve a cached counter handle (do this once at a registration site,
/// not per event).
[[nodiscard]] inline MetricsRegistry::Counter counter_handle(
    std::string_view name) noexcept {
  return MetricsRegistry::instance().handle(name);
}
/// Record one histogram sample (cold paths / tests).
inline void observe(std::string_view name, double value) noexcept {
  MetricsRegistry::instance().observe(name, value);
}
/// Resolve a cached histogram handle (once per registration site).
[[nodiscard]] inline MetricsRegistry::Histogram histogram_handle(
    std::string_view name) noexcept {
  return MetricsRegistry::instance().histogram(name);
}

/// RAII wall-clock timer: on destruction adds the elapsed microseconds to
/// counter "<name>.time_us" and bumps "<name>.calls". Measures *host*
/// orchestration time, complementing the simulated GPU timeline. The
/// handle constructor avoids all per-call string work for hot call sites.
class ScopedTimer {
 public:
  explicit ScopedTimer(const std::string& name) noexcept
      : ScopedTimer(counter_handle(name + ".time_us"),
                    counter_handle(name + ".calls")) {}

  ScopedTimer(MetricsRegistry::Counter time_us,
              MetricsRegistry::Counter calls) noexcept
      : time_us_(time_us),
        calls_(calls),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    time_us_.add(std::chrono::duration<double, std::micro>(elapsed).count());
    calls_.add();
  }

 private:
  MetricsRegistry::Counter time_us_;
  MetricsRegistry::Counter calls_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tridsolve::obs
