#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tridsolve::obs {

namespace {

/// Format a JSON number: integral doubles in the exactly-representable
/// range print without a fraction so counters stay readable.
std::string format_number(double v) {
  if (!std::isfinite(v)) return "null";
  constexpr double exact = 9007199254740992.0;  // 2^53
  if (v == std::floor(v) && std::fabs(v) < exact) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n': return literal("null") ? std::optional<JsonValue>(JsonValue())
                                       : std::nullopt;
      case 't': return literal("true") ? std::optional<JsonValue>(JsonValue(true))
                                       : std::nullopt;
      case 'f': return literal("false")
                           ? std::optional<JsonValue>(JsonValue(false))
                           : std::nullopt;
      case '"': return string_value();
      case '[': return array_value();
      case '{': return object_value();
      default: return number_value();
    }
  }

  std::optional<JsonValue> number_value() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool digits = false;
    auto digit_run = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        digits = true;
      }
    };
    digit_run();
    if (!digits) return std::nullopt;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits = false;
      digit_run();
      if (!digits) return std::nullopt;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      digits = false;
      digit_run();
      if (!digits) return std::nullopt;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue(std::strtod(token.c_str(), nullptr));
  }

  std::optional<std::string> string_token() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          append_utf8(out, cp);  // BMP only; surrogate pairs land as-is
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> string_value() {
    auto s = string_token();
    if (!s) return std::nullopt;
    return JsonValue(std::move(*s));
  }

  std::optional<JsonValue> array_value() {
    if (!eat('[')) return std::nullopt;
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (eat(']')) return arr;
    while (true) {
      auto v = value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (eat(']')) return arr;
      if (!eat(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> object_value() {
    if (!eat('{')) return std::nullopt;
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (eat('}')) return obj;
    while (true) {
      skip_ws();
      auto key = string_token();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      obj[*key] = std::move(*v);
      skip_ws();
      if (eat('}')) return obj;
      if (!eat(',')) return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::null) kind_ = Kind::object;
  return obj_[key];
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::object) return nullptr;
  const auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::null) kind_ = Kind::array;
  arr_.push_back(std::move(v));
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::null: out += "null"; break;
    case Kind::boolean: out += bool_ ? "true" : "false"; break;
    case Kind::number: out += format_number(num_); break;
    case Kind::string: out += json_quote(str_); break;
    case Kind::array: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Kind::object: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, val] : obj_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += json_quote(key);
        out += pretty ? ": " : ":";
        val.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace tridsolve::obs
