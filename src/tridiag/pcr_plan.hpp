#pragma once
// Factor-once / solve-many plan for the full hybrid pipeline (host).
//
// The k-step PCR reduction applies, at every level j and row q, two
// matrix-only multipliers k1 = a_q/b_{q-2^{j-1}} and k2 = c_q/b_{q+2^{j-1}}
// to the right-hand side: d' = d - k1*d_lo - k2*d_hi. Caching the k1/k2
// streams and a division-free ThomasPlan per reduced class turns every
// subsequent solve with the same matrix into pure fused multiply-adds —
// the batched analogue of ?gttrf/?gtts2, and the natural optimization for
// ADI-style time stepping where the matrix is fixed across steps.
//
// solve() reproduces pcr_reduce(...)+thomas_solve(...) bit for bit (same
// arithmetic in the same order), which the tests assert.
//
// Contracts: building a plan mutates only the plan; solve() mutates only
// the caller's d/x views — a fully built plan is immutable and may be
// shared by concurrent solve() calls on distinct right-hand sides.
// Factorization rejects matrices whose pivot-free elimination breaks
// down instead of caching non-finite coefficients.

#include <cstddef>
#include <vector>

#include "tridiag/thomas_plan.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

template <typename T>
class PcrPlan {
 public:
  PcrPlan() = default;

  /// Factor: run the k-step reduction on the matrix once, caching the
  /// multipliers and the reduced-class Thomas factorizations.
  PcrPlan(const SystemRef<const T>& sys, unsigned k);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] unsigned steps() const noexcept { return k_; }
  [[nodiscard]] const SolveStatus& status() const noexcept { return status_; }
  [[nodiscard]] bool ok() const noexcept { return status_.ok(); }

  /// Solve for a new rhs; x may alias d. Division-free.
  SolveStatus solve(StridedView<const T> d, StridedView<T> x) const;

 private:
  unsigned k_ = 0;
  std::size_t n_ = 0;
  std::vector<T> k1_, k2_;              ///< k levels x n multipliers
  std::vector<ThomasPlan<T>> classes_;  ///< one plan per reduced class
  SolveStatus status_;
};

extern template class PcrPlan<float>;
extern template class PcrPlan<double>;

}  // namespace tridsolve::tridiag
