#pragma once
// Parallel cyclic reduction (PCR), paper §II.A.3 (Figs. 3-4, Eqs. 5-6).
//
// One PCR step eliminates, for every row i simultaneously, the coupling to
// rows i±s using rows i-s and i+s, doubling the coupling stride. After k
// steps a size-n system decomposes into 2^k independent interleaved systems
// (rows i ≡ r mod 2^k). Out-of-range neighbours are identity rows (0,1,0|0),
// which makes the transform valid for any n, not just powers of two.
//
// Contracts: free functions over caller-owned views — stateless,
// reentrant, safe concurrently on disjoint systems; fixed evaluation
// order makes repeat runs bit-identical, and tiled_pcr_reduce is pinned
// bit-exact against this plain implementation. Pivot-free: bad divisors
// propagate non-finite values for the guard layer to catch.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "tridiag/types.hpp"
#include "util/aligned_buffer.hpp"

namespace tridsolve::tridiag {

/// f(k) = 2^k - 1 (paper Eq. 8): halo width of a k-step PCR dependency,
/// i.e. the number of extra rows a naive tile must load per boundary.
[[nodiscard]] constexpr std::size_t pcr_halo(unsigned k) noexcept {
  return (std::size_t{1} << k) - 1;
}

/// g(k) = k*2^k - 2^{k+1} + 2 (paper Eq. 9): redundant elimination steps a
/// naive k-step tile performs per boundary.
[[nodiscard]] constexpr std::size_t pcr_redundant_elims(unsigned k) noexcept {
  if (k == 0) return 0;
  const std::size_t two_k = std::size_t{1} << k;
  return k * two_k - 2 * two_k + 2;
}

/// Read row i of `sys`, substituting the identity row outside [0, n).
template <typename T>
[[nodiscard]] inline Row<T> row_or_identity(const SystemRef<T>& sys,
                                            std::ptrdiff_t i) noexcept {
  if (i < 0 || i >= static_cast<std::ptrdiff_t>(sys.size())) {
    return identity_row<T>();
  }
  const auto u = static_cast<std::size_t>(i);
  return Row<T>{sys.a[u], sys.b[u], sys.c[u], sys.d[u]};
}

/// The PCR elimination for one row (Eqs. 5-6): combine `mid` with its
/// neighbours `lo` (at -stride) and `hi` (at +stride).
template <typename T>
[[nodiscard]] constexpr Row<T> pcr_combine(const Row<T>& lo, const Row<T>& mid,
                                           const Row<T>& hi) noexcept {
  const T k1 = mid.a / lo.b;
  const T k2 = mid.c / hi.b;
  return Row<T>{
      -lo.a * k1,
      mid.b - lo.c * k1 - hi.a * k2,
      -hi.c * k2,
      mid.d - lo.d * k1 - hi.d * k2,
  };
}

namespace detail {

/// Divisor check for one pcr_combine: a zero or non-finite PCR pivot
/// (lo.b / hi.b, the denominators of Eqs. 5-6) flags zero_pivot at `pos`
/// (first offence wins); otherwise the pivot-growth estimate absorbs the
/// ratio of this row's coefficient magnitude to the smallest divisor.
/// Read-only — shared by the host tiled PCR and the GPU kernels, whose
/// arithmetic must stay bit-identical with guards on or off.
template <typename T>
inline void guard_pcr_combine(SolveStatus& guard, const Row<T>& lo,
                              const Row<T>& mid, const Row<T>& hi,
                              std::size_t pos) noexcept {
  const double blo = std::abs(static_cast<double>(lo.b));
  const double bhi = std::abs(static_cast<double>(hi.b));
  const bool bad = !(blo > 0.0) || !(bhi > 0.0) ||  // zero or NaN divisor
                   !std::isfinite(blo) || !std::isfinite(bhi);
  if (bad) {
    if (guard.code == SolveCode::ok) {
      guard.code = SolveCode::zero_pivot;
      guard.index = pos;
    }
    return;
  }
  const double scale = std::max({std::abs(static_cast<double>(mid.a)),
                                 std::abs(static_cast<double>(mid.b)),
                                 std::abs(static_cast<double>(mid.c))});
  const double ratio = scale / std::min(blo, bhi);
  if (ratio > guard.pivot_growth) guard.pivot_growth = ratio;
}

}  // namespace detail

/// One full PCR step at the given stride: dst[i] = combine(src[i-s], src[i],
/// src[i+s]) for all i. src and dst must not alias. Returns the number of
/// elimination steps performed (= n).
template <typename T>
std::size_t pcr_step(const SystemRef<T>& src, const SystemRef<T>& dst,
                     std::size_t stride);

/// Perform k PCR steps in place (ping-pong against an internal workspace).
/// Afterwards the rows of `sys` describe 2^k interleaved independent
/// systems coupled at stride 2^k. Returns total elimination steps (k*n).
template <typename T>
std::size_t pcr_reduce(SystemRef<T> sys, unsigned k);

/// Solve completely with PCR: reduce until the stride reaches n, then each
/// row is a 1x1 system x_i = d_i / b_i. Destroys `sys`; writes x.
template <typename T>
SolveStatus pcr_solve(SystemRef<T> sys, StridedView<T> x);

extern template std::size_t pcr_step<float>(const SystemRef<float>&,
                                            const SystemRef<float>&, std::size_t);
extern template std::size_t pcr_step<double>(const SystemRef<double>&,
                                             const SystemRef<double>&, std::size_t);
extern template std::size_t pcr_reduce<float>(SystemRef<float>, unsigned);
extern template std::size_t pcr_reduce<double>(SystemRef<double>, unsigned);
extern template SolveStatus pcr_solve<float>(SystemRef<float>, StridedView<float>);
extern template SolveStatus pcr_solve<double>(SystemRef<double>, StridedView<double>);

}  // namespace tridsolve::tridiag
