#pragma once
// Per-system solve statuses for batched workloads.
//
// A 65K-system batch must not be poisoned by one singular member: every
// batched solve path records one SolveStatus per system here, so callers
// can tell exactly which systems failed (and why), re-solve just those
// through the pivoted-LU fallback, and leave the rest untouched.
//
// Statuses merge via absorb(): a batched pipeline has several stages
// (tiled PCR, then p-Thomas, then a post-solve scan), each of which may
// flag the same system; the most severe code and the largest pivot-growth
// estimate win, and the first stage to flag keeps its offending row.
//
// Contracts: BatchStatus is a plain container with no synchronization —
// concurrent writers must own disjoint slots (each p-Thomas lane owns one
// system, each tiled-PCR block a disjoint window range), merging happens
// post-launch in deterministic order. Detection is read-only: recording a
// status changes no arithmetic and no simulated cost, so guarded runs are
// bit-identical to unguarded ones. Pivot growth is the dimensionless
// ratio max|coef| / |pivot|; rows are 0-based element indices.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Severity order for merging statuses from multiple pipeline stages —
/// and the resilient pipeline's error taxonomy. Transient execution
/// failures (timed_out, launch_failed) rank between the numerical codes a
/// retry can plausibly clear and the terminal ones (singular: the matrix
/// itself is bad; deadline: the budget is gone; overloaded: the service
/// shed the request before spending compute; bad_size: the request was
/// malformed).
[[nodiscard]] constexpr int solve_code_severity(SolveCode c) noexcept {
  switch (c) {
    case SolveCode::ok: return 0;
    case SolveCode::near_singular: return 1;
    case SolveCode::zero_pivot: return 2;
    case SolveCode::timed_out: return 3;
    case SolveCode::launch_failed: return 4;
    case SolveCode::singular: return 5;
    case SolveCode::deadline: return 6;
    case SolveCode::overloaded: return 7;
    case SolveCode::bad_size: return 8;
    case SolveCode::bad_argument: return 9;
  }
  return 0;
}

/// Default pivot-growth limit above which a completed solve is flagged
/// near_singular: 1/sqrt(eps) of the working precision, the classical
/// point past which half the mantissa is amplification noise.
template <typename T>
[[nodiscard]] inline double default_growth_limit() noexcept {
  return 1.0 /
         std::sqrt(static_cast<double>(std::numeric_limits<T>::epsilon()));
}

/// One SolveStatus per system of a batch.
class BatchStatus {
 public:
  BatchStatus() = default;
  explicit BatchStatus(std::size_t num_systems) : sys_(num_systems) {}

  [[nodiscard]] std::size_t size() const noexcept { return sys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sys_.empty(); }
  void resize(std::size_t num_systems) {
    sys_.assign(num_systems, {});
    attempts_.clear();
    detected_.clear();
  }

  [[nodiscard]] SolveStatus& operator[](std::size_t m) noexcept { return sys_[m]; }
  [[nodiscard]] const SolveStatus& operator[](std::size_t m) const noexcept {
    return sys_[m];
  }
  [[nodiscard]] const std::vector<SolveStatus>& systems() const noexcept {
    return sys_;
  }

  /// Merge a stage's verdict for system m: higher-severity code wins (the
  /// first stage to reach that severity keeps its row), growth is the max.
  void absorb(std::size_t m, const SolveStatus& s) noexcept {
    SolveStatus& cur = sys_[m];
    if (solve_code_severity(s.code) > solve_code_severity(cur.code)) {
      cur.code = s.code;
      cur.index = s.index;
    }
    if (s.pivot_growth > cur.pivot_growth) cur.pivot_growth = s.pivot_growth;
  }

  /// Record one *attempt* at system m (the resilient pipeline's merge,
  /// distinct from absorb()): the live status becomes the latest
  /// attempt's verdict — a clean retry clears an earlier flag — while a
  /// sticky per-system detection record keeps the worst code ever seen
  /// (absorb semantics) and the attempt counter the full tally. The
  /// caller applies chunks in ascending system order, so merges from any
  /// chunking are deterministic and severity-ordered absorb no longer
  /// erases per-attempt provenance.
  void record_attempt(std::size_t m, const SolveStatus& s) {
    if (attempts_.size() != sys_.size()) {
      attempts_.assign(sys_.size(), 0);
      detected_ = sys_;  // seed the sticky record with pre-attempt state
    }
    ++attempts_[m];
    SolveStatus& det = detected_[m];
    if (solve_code_severity(s.code) > solve_code_severity(det.code)) {
      det.code = s.code;
      det.index = s.index;
    }
    if (s.pivot_growth > det.pivot_growth) det.pivot_growth = s.pivot_growth;
    sys_[m] = s;
  }

  /// True once record_attempt has been called since the last resize.
  [[nodiscard]] bool has_provenance() const noexcept {
    return !attempts_.empty();
  }

  /// Attempts recorded against system m (0 without provenance).
  [[nodiscard]] std::uint32_t attempts(std::size_t m) const noexcept {
    return m < attempts_.size() ? attempts_[m] : 0;
  }

  /// Total attempts across the batch.
  [[nodiscard]] std::uint64_t total_attempts() const noexcept {
    std::uint64_t n = 0;
    for (const auto a : attempts_) n += a;
    return n;
  }

  /// Sticky detection record for system m: the worst code any attempt
  /// reported (the live operator[] is the *latest* attempt's verdict).
  /// Falls back to the live status when no attempts were recorded.
  [[nodiscard]] const SolveStatus& detected(std::size_t m) const noexcept {
    return m < detected_.size() ? detected_[m] : sys_[m];
  }

  /// Upgrade ok systems whose recorded growth exceeds `limit` to
  /// near_singular (the guard policy step between detection and recovery).
  void apply_growth_limit(double limit) noexcept {
    if (!(limit > 0.0)) return;
    for (auto& s : sys_) {
      if (s.code == SolveCode::ok && !(s.pivot_growth <= limit)) {
        s.code = SolveCode::near_singular;
      }
    }
  }

  [[nodiscard]] bool all_ok() const noexcept {
    for (const auto& s : sys_) {
      if (!s.ok()) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t flagged_count() const noexcept {
    std::size_t n = 0;
    for (const auto& s : sys_) n += s.ok() ? 0 : 1;
    return n;
  }

  /// Indices of every non-ok system, in order.
  [[nodiscard]] std::vector<std::size_t> flagged() const {
    std::vector<std::size_t> out;
    for (std::size_t m = 0; m < sys_.size(); ++m) {
      if (!sys_[m].ok()) out.push_back(m);
    }
    return out;
  }

 private:
  std::vector<SolveStatus> sys_;
  // Attempt provenance (resilient pipeline); empty until record_attempt.
  std::vector<std::uint32_t> attempts_;
  std::vector<SolveStatus> detected_;
};

}  // namespace tridsolve::tridiag
