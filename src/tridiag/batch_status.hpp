#pragma once
// Per-system solve statuses for batched workloads.
//
// A 65K-system batch must not be poisoned by one singular member: every
// batched solve path records one SolveStatus per system here, so callers
// can tell exactly which systems failed (and why), re-solve just those
// through the pivoted-LU fallback, and leave the rest untouched.
//
// Statuses merge via absorb(): a batched pipeline has several stages
// (tiled PCR, then p-Thomas, then a post-solve scan), each of which may
// flag the same system; the most severe code and the largest pivot-growth
// estimate win, and the first stage to flag keeps its offending row.
//
// Contracts: BatchStatus is a plain container with no synchronization —
// concurrent writers must own disjoint slots (each p-Thomas lane owns one
// system, each tiled-PCR block a disjoint window range), merging happens
// post-launch in deterministic order. Detection is read-only: recording a
// status changes no arithmetic and no simulated cost, so guarded runs are
// bit-identical to unguarded ones. Pivot growth is the dimensionless
// ratio max|coef| / |pivot|; rows are 0-based element indices.

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Severity order for merging statuses from multiple pipeline stages.
[[nodiscard]] constexpr int solve_code_severity(SolveCode c) noexcept {
  switch (c) {
    case SolveCode::ok: return 0;
    case SolveCode::near_singular: return 1;
    case SolveCode::zero_pivot: return 2;
    case SolveCode::singular: return 3;
    case SolveCode::bad_size: return 4;
  }
  return 0;
}

/// Default pivot-growth limit above which a completed solve is flagged
/// near_singular: 1/sqrt(eps) of the working precision, the classical
/// point past which half the mantissa is amplification noise.
template <typename T>
[[nodiscard]] inline double default_growth_limit() noexcept {
  return 1.0 /
         std::sqrt(static_cast<double>(std::numeric_limits<T>::epsilon()));
}

/// One SolveStatus per system of a batch.
class BatchStatus {
 public:
  BatchStatus() = default;
  explicit BatchStatus(std::size_t num_systems) : sys_(num_systems) {}

  [[nodiscard]] std::size_t size() const noexcept { return sys_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sys_.empty(); }
  void resize(std::size_t num_systems) { sys_.assign(num_systems, {}); }

  [[nodiscard]] SolveStatus& operator[](std::size_t m) noexcept { return sys_[m]; }
  [[nodiscard]] const SolveStatus& operator[](std::size_t m) const noexcept {
    return sys_[m];
  }
  [[nodiscard]] const std::vector<SolveStatus>& systems() const noexcept {
    return sys_;
  }

  /// Merge a stage's verdict for system m: higher-severity code wins (the
  /// first stage to reach that severity keeps its row), growth is the max.
  void absorb(std::size_t m, const SolveStatus& s) noexcept {
    SolveStatus& cur = sys_[m];
    if (solve_code_severity(s.code) > solve_code_severity(cur.code)) {
      cur.code = s.code;
      cur.index = s.index;
    }
    if (s.pivot_growth > cur.pivot_growth) cur.pivot_growth = s.pivot_growth;
  }

  /// Upgrade ok systems whose recorded growth exceeds `limit` to
  /// near_singular (the guard policy step between detection and recovery).
  void apply_growth_limit(double limit) noexcept {
    if (!(limit > 0.0)) return;
    for (auto& s : sys_) {
      if (s.code == SolveCode::ok && !(s.pivot_growth <= limit)) {
        s.code = SolveCode::near_singular;
      }
    }
  }

  [[nodiscard]] bool all_ok() const noexcept {
    for (const auto& s : sys_) {
      if (!s.ok()) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t flagged_count() const noexcept {
    std::size_t n = 0;
    for (const auto& s : sys_) n += s.ok() ? 0 : 1;
    return n;
  }

  /// Indices of every non-ok system, in order.
  [[nodiscard]] std::vector<std::size_t> flagged() const {
    std::vector<std::size_t> out;
    for (std::size_t m = 0; m < sys_.size(); ++m) {
      if (!sys_[m].ok()) out.push_back(m);
    }
    return out;
  }

 private:
  std::vector<SolveStatus> sys_;
};

}  // namespace tridsolve::tridiag
