#include "tridiag/partition.hpp"

#include <cmath>
#include <vector>

#include "tridiag/thomas.hpp"

namespace tridsolve::tridiag {

template <typename T>
SolveStatus partition_solve(const SystemRef<T>& sys, StridedView<T> x,
                            std::size_t p) {
  const std::size_t n = sys.size();
  if (x.size() != n || p < 2) return {SolveCode::bad_size, 0};
  if (n == 0) return {};

  const std::size_t packets = (n + p - 1) / p;

  // Downward coefficients for every row; upward coefficients only at each
  // packet's first row (computed per packet, stored per packet).
  std::vector<T> cl(n), al(n), dl(n);
  std::vector<T> au(packets), cu(packets), du(packets);

  auto bad = [](T v) {
    return !(v != T(0)) || !std::isfinite(static_cast<double>(v));
  };

  for (std::size_t t = 0; t < packets; ++t) {
    const std::size_t s = t * p;
    const std::size_t e = std::min(s + p, n);

    // Downward: x_j = dl_j - cl_j x_{j+1} - al_j x_{s-1}.
    for (std::size_t j = s; j < e; ++j) {
      if (j == s) {
        if (bad(sys.b[j])) return {SolveCode::zero_pivot, j};
        const T inv = T(1) / sys.b[j];
        cl[j] = sys.c[j] * inv;
        al[j] = sys.a[j] * inv;
        dl[j] = sys.d[j] * inv;
      } else {
        const T denom = sys.b[j] - sys.a[j] * cl[j - 1];
        if (bad(denom)) return {SolveCode::zero_pivot, j};
        const T inv = T(1) / denom;
        cl[j] = sys.c[j] * inv;
        al[j] = -sys.a[j] * al[j - 1] * inv;
        dl[j] = (sys.d[j] - sys.a[j] * dl[j - 1]) * inv;
      }
    }

    // Upward: x_s = du_t - au_t x_{s-1} - cu_t x_e.
    T au_next{}, cu_next{}, du_next{};
    for (std::size_t j = e; j-- > s;) {
      if (j == e - 1) {
        if (bad(sys.b[j])) return {SolveCode::zero_pivot, j};
        const T inv = T(1) / sys.b[j];
        au_next = sys.a[j] * inv;
        cu_next = sys.c[j] * inv;
        du_next = sys.d[j] * inv;
      } else {
        const T denom = sys.b[j] - sys.c[j] * au_next;
        if (bad(denom)) return {SolveCode::zero_pivot, j};
        const T inv = T(1) / denom;
        du_next = (sys.d[j] - sys.c[j] * du_next) * inv;
        cu_next = -sys.c[j] * cu_next * inv;
        au_next = sys.a[j] * inv;
      }
    }
    au[t] = au_next;
    cu[t] = cu_next;
    du[t] = du_next;
  }

  // Reduced system over the packet boundary unknowns U_t = (first_t,
  // last_t): block tridiagonal with 2x2 blocks,
  //
  //   (up)   first_t + au_t last_{t-1} + cu_t first_{t+1} = du_t
  //   (down) last_t  + al_t last_{t-1} + cl_t first_{t+1} = dl_t
  //
  // i.e. A_t U_{t-1} + U_t + C_t U_{t+1} = F_t with
  // A_t = [[0, au],[0, al_last]], C_t = [[cu, 0],[cl_last, 0]].
  // Solved with a 2x2 block Thomas sweep.
  struct M2 {
    T m00, m01, m10, m11;
  };
  struct V2 {
    T v0, v1;
  };
  auto mul_mm = [](const M2& a, const M2& b) {
    return M2{a.m00 * b.m00 + a.m01 * b.m10, a.m00 * b.m01 + a.m01 * b.m11,
              a.m10 * b.m00 + a.m11 * b.m10, a.m10 * b.m01 + a.m11 * b.m11};
  };
  auto mul_mv = [](const M2& a, const V2& v) {
    return V2{a.m00 * v.v0 + a.m01 * v.v1, a.m10 * v.v0 + a.m11 * v.v1};
  };

  std::vector<M2> cp(packets);
  std::vector<V2> fp(packets);
  {
    M2 cp_prev{T(0), T(0), T(0), T(0)};
    V2 fp_prev{T(0), T(0)};
    for (std::size_t t = 0; t < packets; ++t) {
      const std::size_t last = std::min(t * p + p, n) - 1;
      const M2 at{T(0), au[t], T(0), al[last]};
      const M2 c_here = t + 1 < packets ? M2{cu[t], T(0), cl[last], T(0)}
                                        : M2{T(0), T(0), T(0), T(0)};
      const V2 ft{du[t], dl[last]};

      // denom = I - A_t * Cp_{t-1}
      const M2 acp = mul_mm(at, cp_prev);
      const M2 denom{T(1) - acp.m00, -acp.m01, -acp.m10, T(1) - acp.m11};
      const T det = denom.m00 * denom.m11 - denom.m01 * denom.m10;
      if (bad(det)) return {SolveCode::zero_pivot, last};
      const T inv = T(1) / det;
      const M2 denom_inv{denom.m11 * inv, -denom.m01 * inv, -denom.m10 * inv,
                         denom.m00 * inv};

      cp[t] = mul_mm(denom_inv, c_here);
      const V2 afp = mul_mv(at, fp_prev);
      fp[t] = mul_mv(denom_inv, V2{ft.v0 - afp.v0, ft.v1 - afp.v1});
      cp_prev = cp[t];
      fp_prev = fp[t];
    }
  }
  std::vector<V2> u(packets);
  {
    V2 u_next{T(0), T(0)};
    for (std::size_t t = packets; t-- > 0;) {
      const V2 cu_next = mul_mv(cp[t], u_next);
      u[t] = V2{fp[t].v0 - cu_next.v0, fp[t].v1 - cu_next.v1};
      u_next = u[t];
    }
  }

  // Local back-substitution within every packet.
  for (std::size_t t = 0; t < packets; ++t) {
    const std::size_t s = t * p;
    const std::size_t e = std::min(s + p, n);
    const T x_left = t > 0 ? u[t - 1].v1 : T(0);
    x[s] = u[t].v0;
    x[e - 1] = u[t].v1;
    for (std::size_t j = e - 1; j-- > s + 1;) {
      x[j] = dl[j] - cl[j] * x[j + 1] - al[j] * x_left;
    }
  }
  return {};
}

template SolveStatus partition_solve<float>(const SystemRef<float>&,
                                            StridedView<float>, std::size_t);
template SolveStatus partition_solve<double>(const SystemRef<double>&,
                                             StridedView<double>, std::size_t);

}  // namespace tridsolve::tridiag
