#include "tridiag/resilient_solve.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "obs/span_tracer.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"

namespace tridsolve::tridiag {

namespace {

template <typename T>
[[nodiscard]] double residual_gate() noexcept {
  // Same gate as the registry's post-hoc scan: half the mantissa.
  return std::sqrt(static_cast<double>(std::numeric_limits<T>::epsilon()));
}

/// Residual-gate a host-solved system: non-finite entries or a residual
/// past the gate downgrade the attempt's status so the taxonomy is honest
/// even at the last fallback stage.
template <typename T>
[[nodiscard]] SolveStatus gate_solution(const SystemRef<const T>& pristine,
                                        StridedView<const T> x,
                                        SolveStatus st) noexcept {
  if (!st.ok()) return st;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(static_cast<double>(x[i]))) {
      return {SolveCode::zero_pivot, i, st.pivot_growth};
    }
  }
  const double rel = relative_residual(pristine, x);
  if (!(rel <= residual_gate<T>())) {
    return {SolveCode::near_singular, 0, st.pivot_growth};
  }
  return st;
}

}  // namespace

template <typename T>
SystemBatch<T> extract_systems(const SystemBatch<T>& batch,
                               std::span<const std::size_t> systems) {
  SystemBatch<T> out(systems.size(), batch.system_size(), batch.layout());
  for (std::size_t j = 0; j < systems.size(); ++j) {
    const SystemRef<const T> src = batch.system(systems[j]);
    const SystemRef<T> dst = out.system(j);
    for (std::size_t i = 0; i < batch.system_size(); ++i) {
      dst.a[i] = src.a[i];
      dst.b[i] = src.b[i];
      dst.c[i] = src.c[i];
      dst.d[i] = src.d[i];
    }
  }
  return out;
}

template <typename T>
void scatter_solutions(const SystemBatch<T>& sub,
                       std::span<const std::size_t> systems,
                       SystemBatch<T>& dst) {
  for (std::size_t j = 0; j < systems.size(); ++j) {
    const StridedView<const T> x = sub.system(j).d;
    const StridedView<T> out = dst.system(systems[j]).d;
    for (std::size_t i = 0; i < sub.system_size(); ++i) out[i] = x[i];
  }
}

template <typename T>
std::size_t host_thomas_stage(const SystemBatch<T>& pristine,
                              std::span<const std::size_t> systems,
                              SystemBatch<T>& dst, BatchStatus& status) {
  const std::size_t n = pristine.system_size();
  obs::SpanScope span("host_thomas");
  span.attr("systems", obs::JsonValue(systems.size()));
  std::vector<T> x(n);
  std::vector<T> cprime(n);
  std::size_t recovered = 0;
  for (const std::size_t m : systems) {
    const SystemRef<const T> sys = pristine.system(m);
    SolveStatus guard{};
    // thomas_solve/lu_gtsv take mutable views but only read the
    // coefficients when x does not alias d — the const_cast never
    // materializes a write to `pristine`.
    SolveStatus st = thomas_solve<T>(
        {StridedView<T>(const_cast<T*>(sys.a.data()), n, sys.a.stride()),
         StridedView<T>(const_cast<T*>(sys.b.data()), n, sys.b.stride()),
         StridedView<T>(const_cast<T*>(sys.c.data()), n, sys.c.stride()),
         StridedView<T>(const_cast<T*>(sys.d.data()), n, sys.d.stride())},
        StridedView<T>(std::span<T>(x)), cprime, &guard);
    st = gate_solution(sys, StridedView<const T>(x.data(), n, 1), st);
    status.record_attempt(m, st);
    if (st.ok()) {
      const StridedView<T> out = dst.system(m).d;
      for (std::size_t i = 0; i < n; ++i) out[i] = x[i];
      ++recovered;
    }
  }
  span.attr("recovered", obs::JsonValue(recovered));
  return recovered;
}

template <typename T>
std::size_t host_lu_stage(const SystemBatch<T>& pristine,
                          std::span<const std::size_t> systems,
                          SystemBatch<T>& dst, BatchStatus& status) {
  const std::size_t n = pristine.system_size();
  obs::SpanScope span("host_lu");
  span.attr("systems", obs::JsonValue(systems.size()));
  std::vector<T> x(n), dl(n), dd(n), du(n), du2(n);
  const GtsvWorkspace<T> ws{dl, dd, du, du2};
  std::size_t recovered = 0;
  for (const std::size_t m : systems) {
    const SystemRef<const T> sys = pristine.system(m);
    const SystemRef<T> mut{
        StridedView<T>(const_cast<T*>(sys.a.data()), n, sys.a.stride()),
        StridedView<T>(const_cast<T*>(sys.b.data()), n, sys.b.stride()),
        StridedView<T>(const_cast<T*>(sys.c.data()), n, sys.c.stride()),
        StridedView<T>(const_cast<T*>(sys.d.data()), n, sys.d.stride())};
    SolveStatus st = lu_gtsv<T>(mut, StridedView<T>(std::span<T>(x)), ws);
    st = gate_solution(sys, StridedView<const T>(x.data(), n, 1), st);
    status.record_attempt(m, st);
    if (st.ok()) {
      const StridedView<T> out = dst.system(m).d;
      for (std::size_t i = 0; i < n; ++i) out[i] = x[i];
      ++recovered;
    }
  }
  span.attr("recovered", obs::JsonValue(recovered));
  return recovered;
}

template SystemBatch<float> extract_systems<float>(
    const SystemBatch<float>&, std::span<const std::size_t>);
template SystemBatch<double> extract_systems<double>(
    const SystemBatch<double>&, std::span<const std::size_t>);
template void scatter_solutions<float>(const SystemBatch<float>&,
                                       std::span<const std::size_t>,
                                       SystemBatch<float>&);
template void scatter_solutions<double>(const SystemBatch<double>&,
                                        std::span<const std::size_t>,
                                        SystemBatch<double>&);
template std::size_t host_thomas_stage<float>(const SystemBatch<float>&,
                                              std::span<const std::size_t>,
                                              SystemBatch<float>&,
                                              BatchStatus&);
template std::size_t host_thomas_stage<double>(const SystemBatch<double>&,
                                               std::span<const std::size_t>,
                                               SystemBatch<double>&,
                                               BatchStatus&);
template std::size_t host_lu_stage<float>(const SystemBatch<float>&,
                                          std::span<const std::size_t>,
                                          SystemBatch<float>&, BatchStatus&);
template std::size_t host_lu_stage<double>(const SystemBatch<double>&,
                                           std::span<const std::size_t>,
                                           SystemBatch<double>&, BatchStatus&);

}  // namespace tridsolve::tridiag
