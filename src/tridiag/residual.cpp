#include "tridiag/residual.hpp"

#include <cmath>
#include <limits>

namespace tridsolve::tridiag {

namespace {

// NaN-propagating max accumulator: std::max(worst, NaN) silently returns
// `worst`, which let a fully-NaN solution report residual 0.0 — the exact
// failure mode a residual check exists to catch. A NaN sample is sticky.
void accumulate_inf_norm(double& worst, double sample) noexcept {
  if (std::isnan(sample)) {
    worst = std::numeric_limits<double>::quiet_NaN();
  } else if (!std::isnan(worst) && sample > worst) {
    worst = sample;
  }
}

}  // namespace

template <typename T>
double residual_inf(const SystemRef<const T>& sys, StridedView<const T> x) {
  const std::size_t n = sys.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = static_cast<double>(sys.b[i]) * x[i] - static_cast<double>(sys.d[i]);
    if (i > 0) r += static_cast<double>(sys.a[i]) * x[i - 1];
    if (i + 1 < n) r += static_cast<double>(sys.c[i]) * x[i + 1];
    accumulate_inf_norm(worst, std::abs(r));
  }
  return worst;
}

template <typename T>
double relative_residual(const SystemRef<const T>& sys, StridedView<const T> x) {
  const std::size_t n = sys.size();
  if (n == 0) return 0.0;

  double norm_a = 0.0;  // ||A||_inf = max row sum
  double norm_x = 0.0;
  double norm_d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double row = std::abs(static_cast<double>(sys.a[i])) +
                       std::abs(static_cast<double>(sys.b[i])) +
                       std::abs(static_cast<double>(sys.c[i]));
    accumulate_inf_norm(norm_a, row);
    accumulate_inf_norm(norm_x, std::abs(static_cast<double>(x[i])));
    accumulate_inf_norm(norm_d, std::abs(static_cast<double>(sys.d[i])));
  }
  const double denom = norm_a * norm_x + norm_d;
  // denom == 0 means ||A||*||x|| and ||d|| are both zero (e.g. an all-zero
  // system with any x): there is no scale to measure against, so the
  // relative residual is undefined — NaN, per the contract in
  // residual.hpp. Returning the absolute residual here (as this function
  // once did) reported that degenerate case as a perfect 0.0.
  if (!(denom > 0.0)) return std::numeric_limits<double>::quiet_NaN();
  // An *overflowed* denominator is just as undefined: with finite inputs
  // it means ||x|| (or ||d||) is within a factor ||A|| of DBL_MAX, where
  // `finite / inf == 0.0` would report a wildly wrong solution as a
  // perfect one (e.g. a corrupted x[i] near 1e308 — caught by the chaos
  // suite). No trustworthy scale exists there either.
  if (!std::isfinite(denom)) return std::numeric_limits<double>::quiet_NaN();
  return residual_inf(sys, x) / denom;
}

template double residual_inf<float>(const SystemRef<const float>&,
                                    StridedView<const float>);
template double residual_inf<double>(const SystemRef<const double>&,
                                     StridedView<const double>);
template double relative_residual<float>(const SystemRef<const float>&,
                                         StridedView<const float>);
template double relative_residual<double>(const SystemRef<const double>&,
                                          StridedView<const double>);

}  // namespace tridsolve::tridiag
