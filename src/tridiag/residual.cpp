#include "tridiag/residual.hpp"

#include <algorithm>
#include <cmath>

namespace tridsolve::tridiag {

template <typename T>
double residual_inf(const SystemRef<const T>& sys, StridedView<const T> x) {
  const std::size_t n = sys.size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double r = static_cast<double>(sys.b[i]) * x[i] - static_cast<double>(sys.d[i]);
    if (i > 0) r += static_cast<double>(sys.a[i]) * x[i - 1];
    if (i + 1 < n) r += static_cast<double>(sys.c[i]) * x[i + 1];
    worst = std::max(worst, std::abs(r));
  }
  return worst;
}

template <typename T>
double relative_residual(const SystemRef<const T>& sys, StridedView<const T> x) {
  const std::size_t n = sys.size();
  if (n == 0) return 0.0;

  double norm_a = 0.0;  // ||A||_inf = max row sum
  double norm_x = 0.0;
  double norm_d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double row = std::abs(static_cast<double>(sys.a[i])) +
                       std::abs(static_cast<double>(sys.b[i])) +
                       std::abs(static_cast<double>(sys.c[i]));
    norm_a = std::max(norm_a, row);
    norm_x = std::max(norm_x, std::abs(static_cast<double>(x[i])));
    norm_d = std::max(norm_d, std::abs(static_cast<double>(sys.d[i])));
  }
  const double denom = norm_a * norm_x + norm_d;
  return denom == 0.0 ? residual_inf(sys, x) : residual_inf(sys, x) / denom;
}

template double residual_inf<float>(const SystemRef<const float>&,
                                    StridedView<const float>);
template double residual_inf<double>(const SystemRef<const double>&,
                                     StridedView<const double>);
template double relative_residual<float>(const SystemRef<const float>&,
                                         StridedView<const float>);
template double relative_residual<double>(const SystemRef<const double>&,
                                          StridedView<const double>);

}  // namespace tridsolve::tridiag
