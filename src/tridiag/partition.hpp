#pragma once
// Block-partition (Wang / SPIKE-style) tridiagonal solver.
//
// The structural idea behind Davidson & Owens' register-packed CR [18]
// and cuSPARSE's gtsv: split the system into packets of p rows; inside
// each packet a *downward* elimination expresses every unknown in terms
// of its successor and the packet's left ghost,
//
//   x_j = dL_j - cL_j x_{j+1} - aL_j x_{s-1},
//
// and an *upward* elimination expresses the packet's first unknown as
//
//   x_s = dU - aU x_{s-1} - cU x_e.
//
// Writing X_t for each packet's last unknown and substituting packet
// t+1's upward relation for x_e yields a tridiagonal *reduced system* of
// one row per packet:
//
//   aL_t X_{t-1} + (1 - cL_t aU_{t+1}) X_t - cL_t cU_{t+1} X_{t+1}
//       = dL_t - cL_t dU_{t+1},
//
// solved directly; interior unknowns then back-substitute locally. On a
// GPU each packet lives in one thread's registers (hence "register
// packing"): n/p-way parallel sweeps, a tiny reduced solve, and n/p-way
// parallel back-substitution. Here it is implemented as a host algorithm
// and cross-validated against the rest of the library; it is stable for
// the diagonally dominant systems this library targets.
//
// Contracts: free functions over caller-owned views — stateless,
// reentrant, safe concurrently on disjoint systems; bit-deterministic
// for a fixed packet size p. Pivot-free within packets: breakdown
// propagates non-finite values for the guard layer to catch.

#include <cstddef>

#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Solve one system with the partition method using packets of `p` rows.
/// Non-destructive on `sys`; writes x. p >= 2.
template <typename T>
SolveStatus partition_solve(const SystemRef<T>& sys, StridedView<T> x,
                            std::size_t p);

extern template SolveStatus partition_solve<float>(const SystemRef<float>&,
                                                   StridedView<float>, std::size_t);
extern template SolveStatus partition_solve<double>(const SystemRef<double>&,
                                                    StridedView<double>,
                                                    std::size_t);

}  // namespace tridsolve::tridiag
