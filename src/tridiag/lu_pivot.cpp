#include "tridiag/lu_pivot.hpp"

#include <cmath>
#include <limits>

#include "tridiag/residual.hpp"
#include "util/aligned_buffer.hpp"

namespace tridsolve::tridiag {

template <typename T>
SolveStatus lu_gtsv(const SystemRef<T>& sys, StridedView<T> x) {
  const std::size_t n = sys.size();
  util::AlignedBuffer<T> scratch(4 * n);
  GtsvWorkspace<T> ws{scratch.span().subspan(0, n), scratch.span().subspan(n, n),
                      scratch.span().subspan(2 * n, n),
                      scratch.span().subspan(3 * n, n)};
  return lu_gtsv(sys, x, ws);
}

template <typename T>
RecoverStats lu_recover_flagged(const SystemBatch<T>& pristine,
                                SystemBatch<T>& solved, BatchStatus& status,
                                const RecoverOptions& opts) {
  RecoverStats stats;
  const std::size_t m_count = pristine.num_systems();
  const std::size_t n = pristine.system_size();
  if (status.size() != m_count || solved.num_systems() != m_count ||
      solved.system_size() != n || n == 0) {
    return stats;
  }

  const double gate =
      opts.refine_gate > 0.0
          ? opts.refine_gate
          : std::sqrt(static_cast<double>(std::numeric_limits<T>::epsilon()));

  // Local mutable copy of one system (LU wants SystemRef<T>, the pristine
  // batch only hands out SystemRef<const T>), plus LU workspace and a
  // residual / correction buffer for refinement.
  util::AlignedBuffer<T> coeffs(4 * n);
  util::AlignedBuffer<T> lu_ws(4 * n);
  util::AlignedBuffer<T> delta(2 * n);
  GtsvWorkspace<T> ws{lu_ws.span().subspan(0, n), lu_ws.span().subspan(n, n),
                      lu_ws.span().subspan(2 * n, n),
                      lu_ws.span().subspan(3 * n, n)};
  const SystemRef<T> local{StridedView<T>(coeffs.data(), n, 1),
                           StridedView<T>(coeffs.data() + n, n, 1),
                           StridedView<T>(coeffs.data() + 2 * n, n, 1),
                           StridedView<T>(coeffs.data() + 3 * n, n, 1)};

  for (std::size_t m = 0; m < m_count; ++m) {
    const SolveCode code = status[m].code;
    if (code == SolveCode::ok || code == SolveCode::bad_size) continue;

    const auto src = pristine.system(m);
    for (std::size_t i = 0; i < n; ++i) {
      local.a[i] = src.a[i];
      local.b[i] = src.b[i];
      local.c[i] = src.c[i];
      local.d[i] = src.d[i];
    }
    StridedView<T> x = solved.system(m).d;

    const auto st = lu_gtsv(local, x, ws);
    if (!st.ok()) {
      status.absorb(m, SolveStatus{SolveCode::singular, st.index,
                                   status[m].pivot_growth});
      ++stats.unrecovered;
      continue;
    }
    ++stats.fallback_solves;

    if (!opts.refine) continue;
    // lu_gtsv reads its input non-destructively, so local.d still holds
    // the original right-hand side for the residual below.
    for (int it = 0; it < opts.max_refine_steps; ++it) {
      const double rel = relative_residual(as_const(local), as_const(x));
      if (!(rel > gate)) break;  // converged (NaN cannot be improved either)
      // r = d - A x, accumulated in double; then solve A delta = r.
      for (std::size_t i = 0; i < n; ++i) {
        double ax = static_cast<double>(local.b[i]) * static_cast<double>(x[i]);
        if (i > 0) {
          ax += static_cast<double>(local.a[i]) * static_cast<double>(x[i - 1]);
        }
        if (i + 1 < n) {
          ax += static_cast<double>(local.c[i]) * static_cast<double>(x[i + 1]);
        }
        delta[i] = static_cast<T>(static_cast<double>(local.d[i]) - ax);
      }
      const SystemRef<T> residual_sys{local.a, local.b, local.c,
                                      StridedView<T>(delta.data(), n, 1)};
      StridedView<T> dx(delta.data() + n, n, 1);
      if (!lu_gtsv(residual_sys, dx, ws).ok()) break;
      for (std::size_t i = 0; i < n; ++i) x[i] = x[i] + dx[i];
      ++stats.refine_steps;
    }
  }
  return stats;
}

template SolveStatus lu_gtsv<float>(const SystemRef<float>&, StridedView<float>);
template SolveStatus lu_gtsv<double>(const SystemRef<double>&, StridedView<double>);
template RecoverStats lu_recover_flagged<float>(const SystemBatch<float>&,
                                                SystemBatch<float>&, BatchStatus&,
                                                const RecoverOptions&);
template RecoverStats lu_recover_flagged<double>(const SystemBatch<double>&,
                                                 SystemBatch<double>&, BatchStatus&,
                                                 const RecoverOptions&);

}  // namespace tridsolve::tridiag
