#include "tridiag/lu_pivot.hpp"

#include "util/aligned_buffer.hpp"

namespace tridsolve::tridiag {

template <typename T>
SolveStatus lu_gtsv(const SystemRef<T>& sys, StridedView<T> x) {
  const std::size_t n = sys.size();
  util::AlignedBuffer<T> scratch(4 * n);
  GtsvWorkspace<T> ws{scratch.span().subspan(0, n), scratch.span().subspan(n, n),
                      scratch.span().subspan(2 * n, n),
                      scratch.span().subspan(3 * n, n)};
  return lu_gtsv(sys, x, ws);
}

template SolveStatus lu_gtsv<float>(const SystemRef<float>&, StridedView<float>);
template SolveStatus lu_gtsv<double>(const SystemRef<double>&, StridedView<double>);

}  // namespace tridsolve::tridiag
