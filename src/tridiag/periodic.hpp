#pragma once
// Periodic (cyclic) tridiagonal systems via Sherman-Morrison.
//
// An extension beyond the paper's scope (its future-work direction is
// generalizing the approach): ADI sweeps with periodic boundary
// conditions and circular spline problems produce tridiagonal matrices
// with two corner entries,
//
//   | b0  c0            alpha |
//   | a1  b1  c1              |
//   |     ...                 |
//   |            a    b    c  |
//   | beta         a_n  b_n   |   (alpha = A[0][n-1], beta = A[n-1][0])
//
// Writing A_p = A' + u v^T with u = (gamma, 0..0, beta)^T and
// v = (1, 0..0, alpha/gamma)^T reduces the periodic solve to two plain
// tridiagonal solves with the same matrix A' (diagonal corrected at both
// ends), combined by the Sherman-Morrison formula:
//
//   x = y - z * (v.y) / (1 + v.z),  A' y = d,  A' z = u.
//
// The two solves share coefficients, which is exactly the batched
// workload shape the hybrid GPU solver exploits (see
// gpu_solvers/periodic_gpu.hpp).
//
// Contracts: free functions over caller-owned views — stateless,
// reentrant, safe concurrently on disjoint systems, bit-deterministic
// (fixed inner-solver order). The Sherman-Morrison denominator 1 + v.z
// is guarded: an exact zero reports SolveCode::zero_pivot instead of
// dividing through; otherwise conditioning matches the underlying
// solves.

#include <cstddef>

#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Build the corrected system A' in place from a periodic system:
/// subtracts gamma from b[0] and alpha*beta/gamma from b[n-1] and returns
/// gamma (chosen as -b[0] for stability). n must be >= 3.
template <typename T>
T periodic_correct_matrix(SystemRef<T> sys, T alpha, T beta);

/// Fill `u` (an n-element contiguous span) with the Sherman-Morrison
/// rank-one column for the given gamma/beta.
template <typename T>
void periodic_fill_u(std::span<T> u, T gamma, T beta);

/// Combine the two plain solves into the periodic solution, in place in
/// `y`: x = y - z * (y[0] + alpha/gamma * y[n-1]) / (1 + v.z).
/// Returns zero_pivot if the Sherman-Morrison denominator vanishes.
template <typename T>
SolveStatus periodic_combine(StridedView<T> y, StridedView<const T> z, T alpha,
                             T gamma);

/// Convenience host path: solve one periodic system with Thomas.
/// Destroys `sys` (corner entries are given separately, not stored in
/// a[0]/c[n-1]). Writes the solution to x.
template <typename T>
SolveStatus periodic_solve(SystemRef<T> sys, T alpha, T beta, StridedView<T> x);

extern template double periodic_correct_matrix<double>(SystemRef<double>, double,
                                                       double);
extern template float periodic_correct_matrix<float>(SystemRef<float>, float, float);
extern template void periodic_fill_u<double>(std::span<double>, double, double);
extern template void periodic_fill_u<float>(std::span<float>, float, float);
extern template SolveStatus periodic_combine<double>(StridedView<double>,
                                                     StridedView<const double>,
                                                     double, double);
extern template SolveStatus periodic_combine<float>(StridedView<float>,
                                                    StridedView<const float>, float,
                                                    float);
extern template SolveStatus periodic_solve<double>(SystemRef<double>, double, double,
                                                   StridedView<double>);
extern template SolveStatus periodic_solve<float>(SystemRef<float>, float, float,
                                                  StridedView<float>);

}  // namespace tridsolve::tridiag
