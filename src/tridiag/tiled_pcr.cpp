#include "tridiag/tiled_pcr.hpp"

#include <cassert>

namespace tridsolve::tridiag {

namespace {

/// Per-level ring of trailing intermediate rows, indexed by absolute
/// position. Size 2^{j+1} + 1 for level j: the span a level-(j+1)
/// elimination reads (2*2^j + 1 positions) is live at once.
template <typename T>
class LevelRing {
 public:
  explicit LevelRing(std::size_t size) : rows_(size) {}

  void put(std::size_t pos, const Row<T>& r) noexcept {
    rows_[pos % rows_.size()] = r;
  }
  [[nodiscard]] const Row<T>& get(std::size_t pos) const noexcept {
    return rows_[pos % rows_.size()];
  }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

 private:
  std::vector<Row<T>> rows_;
};

}  // namespace

template <typename T>
TiledPcrCounters tiled_pcr_reduce(SystemRef<T> sys, unsigned k,
                                  SolveStatus* guard) {
  TiledPcrCounters counters;
  if (guard != nullptr) *guard = {};
  const std::size_t n = sys.size();
  if (k == 0 || n == 0) return counters;

  // Rings for levels 0 .. k-1 (level-k rows stream straight to the output).
  std::vector<LevelRing<T>> rings;
  rings.reserve(k);
  for (unsigned j = 0; j < k; ++j) {
    rings.emplace_back((std::size_t{2} << j) + 1);
    counters.cache_rows_peak += rings.back().size();
  }

  const auto sn = static_cast<std::ptrdiff_t>(n);
  auto level_row = [&](unsigned level, std::ptrdiff_t pos) -> Row<T> {
    // Identity rows propagate unchanged through PCR, so any out-of-range
    // position is the identity at *every* level (see DESIGN.md).
    if (pos < 0 || pos >= sn) return identity_row<T>();
    return rings[level].get(static_cast<std::size_t>(pos));
  };

  const std::ptrdiff_t halo = static_cast<std::ptrdiff_t>(pcr_halo(k));
  for (std::ptrdiff_t p = 0; p < sn + halo; ++p) {
    // Advance the load frontier: level 0 at position p.
    if (p < sn) {
      const auto u = static_cast<std::size_t>(p);
      rings[0].put(u, Row<T>{sys.a[u], sys.b[u], sys.c[u], sys.d[u]});
      ++counters.global_row_loads;
    }
    // Ascending levels: level j's frontier is p - (2^j - 1); each new value
    // only needs level j-1 values up to the one just produced.
    for (unsigned j = 1; j <= k; ++j) {
      const std::ptrdiff_t reach = static_cast<std::ptrdiff_t>(std::size_t{1} << (j - 1));
      const std::ptrdiff_t q = p - (2 * reach - 1);
      if (q < 0 || q >= sn) continue;
      const Row<T> lo = level_row(j - 1, q - reach);
      const Row<T> mid = level_row(j - 1, q);
      const Row<T> hi = level_row(j - 1, q + reach);
      if (guard != nullptr) {
        // Read-only divisor check; the elimination below is unchanged.
        detail::guard_pcr_combine(*guard, lo, mid, hi,
                                  static_cast<std::size_t>(q));
      }
      const Row<T> out = pcr_combine(lo, mid, hi);
      ++counters.eliminations;
      if (j == k) {
        // Final level: write through to the (in-place) output. Position q
        // is always behind the load frontier, so this never clobbers an
        // unread input row.
        const auto u = static_cast<std::size_t>(q);
        sys.a[u] = out.a;
        sys.b[u] = out.b;
        sys.c[u] = out.c;
        sys.d[u] = out.d;
      } else {
        rings[j].put(static_cast<std::size_t>(q), out);
      }
    }
  }
  return counters;
}

template <typename T>
TiledPcrCounters naive_tiled_pcr_reduce(SystemRef<T> sys, unsigned k,
                                        std::size_t tile_rows) {
  TiledPcrCounters counters;
  const std::size_t n = sys.size();
  if (k == 0 || n == 0) return counters;
  assert(tile_rows > 0);

  const auto sn = static_cast<std::ptrdiff_t>(n);
  // All tiles conceptually run in parallel (each is a thread block), so
  // outputs are staged and written back only after every tile has loaded
  // its inputs.
  std::vector<Row<T>> staged(n);

  // Per-level scratch covering [t0 - e_j, t1 + e_j), e_j = 2^k - 2^j.
  std::vector<std::vector<Row<T>>> level(k + 1);

  for (std::size_t t0 = 0; t0 < n; t0 += tile_rows) {
    const std::size_t t1 = std::min(t0 + tile_rows, n);
    const auto st0 = static_cast<std::ptrdiff_t>(t0);
    const auto st1 = static_cast<std::ptrdiff_t>(t1);

    auto extent = [&](unsigned j) {
      return static_cast<std::ptrdiff_t>((std::size_t{1} << k) - (std::size_t{1} << j));
    };

    // Level 0: load the tile plus its halo (counting only real rows —
    // the redundancy the paper's Eq. 8 quantifies).
    {
      const std::ptrdiff_t lo = st0 - extent(0);
      const std::ptrdiff_t hi = st1 + extent(0);
      level[0].assign(static_cast<std::size_t>(hi - lo), identity_row<T>());
      for (std::ptrdiff_t pos = lo; pos < hi; ++pos) {
        if (pos < 0 || pos >= sn) continue;
        const auto u = static_cast<std::size_t>(pos);
        level[0][static_cast<std::size_t>(pos - lo)] =
            Row<T>{sys.a[u], sys.b[u], sys.c[u], sys.d[u]};
        ++counters.global_row_loads;
      }
    }

    // Levels 1..k, each over a shrinking range.
    for (unsigned j = 1; j <= k; ++j) {
      const std::ptrdiff_t lo = st0 - extent(j);
      const std::ptrdiff_t hi = st1 + extent(j);
      const std::ptrdiff_t plo = st0 - extent(j - 1);
      const std::ptrdiff_t reach = static_cast<std::ptrdiff_t>(std::size_t{1} << (j - 1));
      level[j].assign(static_cast<std::size_t>(hi - lo), identity_row<T>());
      for (std::ptrdiff_t pos = lo; pos < hi; ++pos) {
        if (pos < 0 || pos >= sn) continue;  // identities stay identities
        const Row<T> out =
            pcr_combine(level[j - 1][static_cast<std::size_t>(pos - reach - plo)],
                        level[j - 1][static_cast<std::size_t>(pos - plo)],
                        level[j - 1][static_cast<std::size_t>(pos + reach - plo)]);
        level[j][static_cast<std::size_t>(pos - lo)] = out;
        ++counters.eliminations;
      }
    }

    for (std::size_t pos = t0; pos < t1; ++pos) {
      staged[pos] = level[k][pos - t0];  // level k extent is exactly the tile
    }
    std::size_t live = 0;
    for (const auto& lvl : level) live += lvl.size();
    counters.cache_rows_peak = std::max(counters.cache_rows_peak, live);
  }

  for (std::size_t i = 0; i < n; ++i) {
    sys.a[i] = staged[i].a;
    sys.b[i] = staged[i].b;
    sys.c[i] = staged[i].c;
    sys.d[i] = staged[i].d;
  }
  return counters;
}

template TiledPcrCounters tiled_pcr_reduce<float>(SystemRef<float>, unsigned,
                                                  SolveStatus*);
template TiledPcrCounters tiled_pcr_reduce<double>(SystemRef<double>, unsigned,
                                                   SolveStatus*);
template TiledPcrCounters naive_tiled_pcr_reduce<float>(SystemRef<float>, unsigned,
                                                        std::size_t);
template TiledPcrCounters naive_tiled_pcr_reduce<double>(SystemRef<double>, unsigned,
                                                         std::size_t);

}  // namespace tridsolve::tridiag
