#pragma once
// Tridiagonal Gaussian elimination with partial pivoting, following the
// structure of LAPACK's ?gtsv (the routine behind the paper's Intel MKL
// baseline). Row interchanges create a second super-diagonal (du2) of
// fill-in, so this solver handles matrices the pivot-free Thomas/PCR
// family cannot — it is the correctness referee for every other solver
// in this repository.
//
// Contracts: free functions over caller-owned views — stateless,
// reentrant, safe concurrently on disjoint systems; deterministic
// (row-interchange decisions depend only on the input values, so repeat
// solves are bit-identical). lu_recover_flagged re-solves exactly the
// flagged systems from pristine inputs and leaves every other system's
// solution untouched bit-for-bit.

#include <cstddef>
#include <span>

#include "tridiag/batch_status.hpp"
#include "tridiag/layout.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Workspace for lu_gtsv: working copies of the three diagonals plus the
/// fill-in diagonal. Reused across systems in batched loops.
template <typename T>
struct GtsvWorkspace {
  std::span<T> dl;   ///< sub-diagonal copy, n elements (dl[0] unused)
  std::span<T> dd;   ///< main diagonal copy, n elements
  std::span<T> du;   ///< super-diagonal copy, n elements (du[n-1] unused)
  std::span<T> du2;  ///< second super-diagonal fill-in, n elements

  [[nodiscard]] bool fits(std::size_t n) const noexcept {
    return dl.size() >= n && dd.size() >= n && du.size() >= n && du2.size() >= n;
  }
};

/// Solve one system with partial pivoting. Reads `sys` non-destructively
/// (coefficients are copied into the workspace), writes the solution to
/// `x` (may alias sys.d only if the caller accepts d being overwritten).
template <typename T>
SolveStatus lu_gtsv(const SystemRef<T>& sys, StridedView<T> x,
                    GtsvWorkspace<T> ws) {
  const std::size_t n = sys.size();
  if (x.size() != n || !ws.fits(n)) return {SolveCode::bad_size, 0};
  if (n == 0) return {};

  for (std::size_t i = 0; i < n; ++i) {
    ws.dl[i] = sys.a[i];
    ws.dd[i] = sys.b[i];
    ws.du[i] = sys.c[i];
    ws.du2[i] = T(0);
    x[i] = sys.d[i];
  }

  auto abs_val = [](T v) { return v < T(0) ? -v : v; };

  // Forward elimination with adjacent-row partial pivoting.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (abs_val(ws.dd[i]) >= abs_val(ws.dl[i + 1])) {
      // No interchange. Row i is (dd[i], du[i]); du2[i] stays zero.
      if (ws.dd[i] == T(0)) return {SolveCode::singular, i};
      const T fact = ws.dl[i + 1] / ws.dd[i];
      ws.dd[i + 1] -= fact * ws.du[i];
      x[i + 1] = x[i + 1] - fact * x[i];
    } else {
      // Interchange rows i and i+1; old row i+1 becomes the pivot row with
      // entries (dl[i+1], dd[i+1], du[i+1]) in columns i..i+2, producing
      // du2 fill-in in row i.
      const T fact = ws.dd[i] / ws.dl[i + 1];
      const T pivot_super = ws.dd[i + 1];
      const T pivot_super2 = (i + 2 < n) ? ws.du[i + 1] : T(0);
      ws.dd[i] = ws.dl[i + 1];
      ws.dd[i + 1] = ws.du[i] - fact * pivot_super;
      if (i + 2 < n) ws.du[i + 1] = -fact * pivot_super2;
      ws.du[i] = pivot_super;
      ws.du2[i] = pivot_super2;
      const T xt = x[i];
      x[i] = x[i + 1];
      x[i + 1] = xt - fact * x[i];
    }
  }
  if (ws.dd[n - 1] == T(0)) return {SolveCode::singular, n - 1};

  // Back substitution against the (dd, du, du2) upper-triangular factor.
  x[n - 1] = x[n - 1] / ws.dd[n - 1];
  if (n > 1) {
    x[n - 2] = (x[n - 2] - ws.du[n - 2] * x[n - 1]) / ws.dd[n - 2];
  }
  if (n > 2) {
    for (std::size_t r = n - 2; r-- > 0;) {  // rows n-3 .. 0
      x[r] = (x[r] - ws.du[r] * x[r + 1] - ws.du2[r] * x[r + 2]) / ws.dd[r];
    }
  }
  return {};
}

/// Convenience overload that allocates its own workspace.
template <typename T>
SolveStatus lu_gtsv(const SystemRef<T>& sys, StridedView<T> x);

/// Knobs for lu_recover_flagged.
struct RecoverOptions {
  bool refine = false;       ///< residual-gated iterative refinement
  int max_refine_steps = 2;  ///< refinement iterations per system, at most
  double refine_gate = 0.0;  ///< rel-residual trigger; 0 = sqrt(eps of T)
};

/// What the recovery pass did (fed into solver.guard.* metrics).
struct RecoverStats {
  std::size_t fallback_solves = 0;  ///< flagged systems re-solved with LU
  std::size_t refine_steps = 0;     ///< refinement iterations, all systems
  std::size_t unrecovered = 0;      ///< LU itself found the matrix singular
};

/// Re-solve every flagged system of a batch with partial-pivoting LU.
///
/// `pristine` holds the untouched inputs; `solved` is the batch the
/// (possibly corrupted) solutions were written into, solution in d.
/// Each system whose status code is not ok (bad_size excepted — there is
/// no well-formed system to re-solve) is solved from its pristine
/// coefficients directly into solved.d, replacing the bad values; the
/// status entry keeps its detection code as a record of what happened.
/// A system LU itself rejects is upgraded to SolveCode::singular.
///
/// With opts.refine set, each recovered solution whose relative residual
/// still exceeds the gate gets iterative refinement (r = d - Ax, solve
/// A delta = r, x += delta), up to max_refine_steps rounds.
template <typename T>
RecoverStats lu_recover_flagged(const SystemBatch<T>& pristine,
                                SystemBatch<T>& solved, BatchStatus& status,
                                const RecoverOptions& opts = {});

extern template SolveStatus lu_gtsv<float>(const SystemRef<float>&, StridedView<float>);
extern template SolveStatus lu_gtsv<double>(const SystemRef<double>&, StridedView<double>);
extern template RecoverStats lu_recover_flagged<float>(const SystemBatch<float>&,
                                                       SystemBatch<float>&,
                                                       BatchStatus&,
                                                       const RecoverOptions&);
extern template RecoverStats lu_recover_flagged<double>(const SystemBatch<double>&,
                                                        SystemBatch<double>&,
                                                        BatchStatus&,
                                                        const RecoverOptions&);

}  // namespace tridsolve::tridiag
