#pragma once
// Resilient batched solving: the policy, taxonomy, and host-side stages
// behind the registry's run_solver_resilient (gpu_solvers/registry.hpp).
//
// A ResiliencePolicy wraps any solver with three recovery mechanisms, in
// order:
//   1. retry — a flagged / failed / timed-out dispatch is re-run from
//      pristine inputs, restricted to the affected sub-batch and split
//      into retry_chunk-sized chunks so one poisoned system cannot force
//      a full-batch re-solve;
//   2. fallback chain — after max_retries the pipeline degrades to the
//      next stage (default: tiled-PCR hybrid → p-Thomas → CPU Thomas →
//      pivoting LU), each stage attempting only the still-unrecovered
//      systems;
//   3. deadline — a simulated-time budget (deadline_us) checked before
//      every dispatch; on exhaustion the remaining systems are marked
//      SolveCode::deadline and a *partial* result is returned instead of
//      aborting.
// Per-system outcomes land in BatchStatus via record_attempt (live =
// latest attempt, sticky detection record + attempt counts preserved),
// so the final report is a severity-ordered taxonomy, never silence.
//
// Contracts:
//  * Determinism: every stage re-solves from pristine inputs with
//    per-system arithmetic that does not depend on chunk size (the
//    registry pins the hybrid's k across retries), so a recovered system
//    is bit-identical to its fault-free solve.
//  * Host stages (cpu-thomas, lu) run outside the simulated GPU and are
//    immune to injected faults; they charge zero simulated time.
//  * Thread-safety: free functions over caller-owned batches; safe
//    concurrently on disjoint batches.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tridiag/batch_status.hpp"
#include "tridiag/layout.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Retry / fallback / deadline knobs for one resilient solve.
struct ResiliencePolicy {
  int max_retries = 2;        ///< re-dispatches per stage after the first try
  double backoff_us = 0.0;    ///< simulated pause charged before each retry
  double deadline_us = 0.0;   ///< total simulated-time budget; 0 = unlimited
  std::size_t retry_chunk = 32;  ///< systems per retry re-dispatch
  /// Stage names tried after the entry solver ("hybrid", "hybrid-fused",
  /// "pthomas", "zhang", "cr", "davidson", "partition", "cpu-thomas",
  /// "lu"). Empty = the default chain pthomas → cpu-thomas → lu.
  std::vector<std::string> fallback_chain;
};

/// One dispatch (or host pass) of the resilient pipeline.
struct AttemptRecord {
  std::string stage;           ///< stage name ("hybrid", "cpu-thomas", ...)
  int attempt = 0;             ///< 0 = the stage's first try
  std::size_t systems = 0;     ///< systems dispatched
  std::size_t recovered = 0;   ///< systems that came back ok
  std::size_t still_flagged = 0;  ///< systems still pending afterwards
  /// Attempt-level failure: ok when the dispatch ran to completion (even
  /// if some systems stayed flagged), launch_failed / timed_out /
  /// bad_size (config rejected) when the whole dispatch was discarded.
  SolveCode reason = SolveCode::ok;
  double time_us = 0.0;        ///< simulated time charged (0 for host stages)
};

/// What the resilient pipeline did, end to end.
struct ResilienceReport {
  std::vector<AttemptRecord> attempts;  ///< every dispatch, in order
  std::size_t retries = 0;          ///< re-dispatches past each stage's first
  std::size_t fallback_stages = 0;  ///< stages entered past the entry solver
  double spent_us = 0.0;            ///< simulated time incl. backoff/overruns
  bool deadline_exceeded = false;   ///< budget ran out with systems pending
  bool partial = false;             ///< some systems have no clean solution
  SolveCode worst = SolveCode::ok;  ///< most severe live code in the batch
};

/// Gather the listed systems of `batch` into a fresh sub-batch with the
/// same layout and system size (pristine inputs for a retry dispatch).
template <typename T>
[[nodiscard]] SystemBatch<T> extract_systems(
    const SystemBatch<T>& batch, std::span<const std::size_t> systems);

/// Scatter solved right-hand sides back: sub.system(j).d → dst.system(
/// systems[j]).d for every j, leaving all other systems untouched.
template <typename T>
void scatter_solutions(const SystemBatch<T>& sub,
                       std::span<const std::size_t> systems,
                       SystemBatch<T>& dst);

/// Host CPU-Thomas stage: solve each listed system from `pristine` into
/// `dst.d`, recording one attempt per system (residual-gated like the
/// registry's post-hoc scan, so it cannot return silent garbage). Returns
/// the number of systems recovered (live status ok).
template <typename T>
std::size_t host_thomas_stage(const SystemBatch<T>& pristine,
                              std::span<const std::size_t> systems,
                              SystemBatch<T>& dst, BatchStatus& status);

/// Host pivoting-LU stage (the terminal referee): like host_thomas_stage
/// but via lu_gtsv, which handles matrices the pivot-free family cannot.
template <typename T>
std::size_t host_lu_stage(const SystemBatch<T>& pristine,
                          std::span<const std::size_t> systems,
                          SystemBatch<T>& dst, BatchStatus& status);

extern template SystemBatch<float> extract_systems<float>(
    const SystemBatch<float>&, std::span<const std::size_t>);
extern template SystemBatch<double> extract_systems<double>(
    const SystemBatch<double>&, std::span<const std::size_t>);
extern template void scatter_solutions<float>(const SystemBatch<float>&,
                                              std::span<const std::size_t>,
                                              SystemBatch<float>&);
extern template void scatter_solutions<double>(const SystemBatch<double>&,
                                               std::span<const std::size_t>,
                                               SystemBatch<double>&);
extern template std::size_t host_thomas_stage<float>(
    const SystemBatch<float>&, std::span<const std::size_t>,
    SystemBatch<float>&, BatchStatus&);
extern template std::size_t host_thomas_stage<double>(
    const SystemBatch<double>&, std::span<const std::size_t>,
    SystemBatch<double>&, BatchStatus&);
extern template std::size_t host_lu_stage<float>(const SystemBatch<float>&,
                                                 std::span<const std::size_t>,
                                                 SystemBatch<float>&,
                                                 BatchStatus&);
extern template std::size_t host_lu_stage<double>(
    const SystemBatch<double>&, std::span<const std::size_t>,
    SystemBatch<double>&, BatchStatus&);

}  // namespace tridsolve::tridiag
