#include "tridiag/periodic.hpp"

#include <vector>

#include "tridiag/thomas.hpp"

namespace tridsolve::tridiag {

template <typename T>
T periodic_correct_matrix(SystemRef<T> sys, T alpha, T beta) {
  const std::size_t n = sys.size();
  const T gamma = -sys.b[0];
  sys.b[0] = sys.b[0] - gamma;
  sys.b[n - 1] = sys.b[n - 1] - alpha * beta / gamma;
  return gamma;
}

template <typename T>
void periodic_fill_u(std::span<T> u, T gamma, T beta) {
  for (auto& v : u) v = T(0);
  u.front() = gamma;
  u.back() = beta;
}

template <typename T>
SolveStatus periodic_combine(StridedView<T> y, StridedView<const T> z, T alpha,
                             T gamma) {
  const std::size_t n = y.size();
  if (z.size() != n) return {SolveCode::bad_size, 0};
  const T vy = y[0] + alpha / gamma * y[n - 1];
  const T vz = z[0] + alpha / gamma * z[n - 1];
  const T denom = T(1) + vz;
  if (denom == T(0)) return {SolveCode::zero_pivot, 0};
  const T factor = vy / denom;
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = y[i] - factor * z[i];
  }
  return {};
}

template <typename T>
SolveStatus periodic_solve(SystemRef<T> sys, T alpha, T beta, StridedView<T> x) {
  const std::size_t n = sys.size();
  if (x.size() != n) return {SolveCode::bad_size, 0};
  if (n < 3) return {SolveCode::bad_size, 0};  // corners would overlap the band

  const T gamma = periodic_correct_matrix(sys, alpha, beta);

  std::vector<T> u(n), z(n), scratch(n);
  periodic_fill_u(std::span<T>(u), gamma, beta);

  // Two solves against the same corrected matrix A'.
  if (auto st = thomas_solve(sys, x, std::span<T>(scratch)); !st.ok()) return st;
  SystemRef<T> with_u{sys.a, sys.b, sys.c, StridedView<T>(std::span<T>(u))};
  StridedView<T> zv{z.data(), n, 1};
  if (auto st = thomas_solve(with_u, zv, std::span<T>(scratch)); !st.ok()) {
    return st;
  }
  return periodic_combine(x, StridedView<const T>(z.data(), n, 1), alpha, gamma);
}

template double periodic_correct_matrix<double>(SystemRef<double>, double, double);
template float periodic_correct_matrix<float>(SystemRef<float>, float, float);
template void periodic_fill_u<double>(std::span<double>, double, double);
template void periodic_fill_u<float>(std::span<float>, float, float);
template SolveStatus periodic_combine<double>(StridedView<double>,
                                              StridedView<const double>, double,
                                              double);
template SolveStatus periodic_combine<float>(StridedView<float>,
                                             StridedView<const float>, float, float);
template SolveStatus periodic_solve<double>(SystemRef<double>, double, double,
                                            StridedView<double>);
template SolveStatus periodic_solve<float>(SystemRef<float>, float, float,
                                           StridedView<float>);

}  // namespace tridsolve::tridiag
