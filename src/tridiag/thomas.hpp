#pragma once
// Thomas algorithm (Eqs. 2-4 of the paper): Gaussian elimination
// specialized to tridiagonal matrices, 2n-1 elimination steps, O(n).
//
// The strided formulation below is the exact routine p-Thomas threads run:
// after k PCR steps each reduced system lives at stride 2^k in the original
// arrays, so one function serves the plain CPU path (stride 1), the
// interleaved batched path (stride M) and the post-PCR path (stride 2^k).
//
// Contracts: free functions over caller-owned views — stateless,
// reentrant, safe concurrently on disjoint systems; fixed sweep order
// makes repeat runs bit-identical, and the simulated p-Thomas kernel is
// pinned bit-exact against this host routine. Pivot-free: the optional
// SolveStatus* out-param reports zero/NaN pivots and pivot growth
// without changing any arithmetic (read-only detection); strides are in
// elements.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>

#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Number of elimination steps Thomas performs on an n-row system
/// (paper §II.A: 2n - 1).
[[nodiscard]] constexpr std::size_t thomas_elimination_steps(std::size_t n) noexcept {
  return n == 0 ? 0 : 2 * n - 1;
}

/// Solve one tridiagonal system in place.
///
/// Inputs are read through the views in `sys`; the solution is written to
/// `x` (which may alias `sys.d`). `cprime` is an n-element scratch array
/// (contiguous, caller-provided so batched loops can reuse it).
/// Fails with SolveCode::zero_pivot if any forward-reduction denominator
/// is zero or non-finite (a NaN pivot would otherwise stream NaNs through
/// the whole solution under an ok() status) — use lu_gtsv for matrices
/// that need pivoting.
///
/// When `guard` is non-null the pivot-growth estimate (see SolveStatus)
/// is tracked and written there along with the final code/row; the extra
/// per-row arithmetic is skipped entirely otherwise.
template <typename T>
SolveStatus thomas_solve(SystemRef<T> sys, StridedView<T> x, std::span<T> cprime,
                         SolveStatus* guard = nullptr) {
  const std::size_t n = sys.size();
  if (x.size() != n || cprime.size() < n) return {SolveCode::bad_size, 0};
  if (n == 0) return {};

  // Forward reduction: c'_1 = c_1/b_1, d'_1 = d_1/b_1, then
  // c'_i = c_i / (b_i - c'_{i-1} a_i), d'_i = (d_i - d'_{i-1} a_i) / same.
  // d' is accumulated directly in x. The reciprocal form below is the
  // exact arithmetic of the p-Thomas GPU kernel and of ThomasPlan, so all
  // three agree bitwise (rows with a_0 = 0 make i = 0 a plain b pivot).
  T cp = T(0);
  T dp = T(0);
  double growth = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const T denom = sys.b[i] - cp * sys.a[i];
    // !(denom != 0) also catches a NaN denominator.
    if (!(denom != T(0)) || !std::isfinite(static_cast<double>(denom))) {
      const SolveStatus st{SolveCode::zero_pivot, i, growth};
      if (guard != nullptr) *guard = st;
      return st;
    }
    if (guard != nullptr) {
      const double scale =
          std::max({std::abs(static_cast<double>(sys.a[i])),
                    std::abs(static_cast<double>(sys.b[i])),
                    std::abs(static_cast<double>(sys.c[i]))});
      const double ratio = scale / std::abs(static_cast<double>(denom));
      if (ratio > growth) growth = ratio;
    }
    const T inv = T(1) / denom;
    cp = sys.c[i] * inv;
    dp = (sys.d[i] - dp * sys.a[i]) * inv;
    cprime[i] = cp;
    x[i] = dp;
  }

  // Backward substitution: x_n = d'_n, x_i = d'_i - c'_i x_{i+1}.
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = x[i] - cprime[i] * x[i + 1];
  }
  SolveStatus st{};
  st.pivot_growth = growth;
  if (guard != nullptr) *guard = st;
  return st;
}

/// Convenience overload that allocates its own scratch.
template <typename T>
SolveStatus thomas_solve(SystemRef<T> sys, StridedView<T> x);

extern template SolveStatus thomas_solve<float>(SystemRef<float>, StridedView<float>);
extern template SolveStatus thomas_solve<double>(SystemRef<double>, StridedView<double>);

}  // namespace tridsolve::tridiag
