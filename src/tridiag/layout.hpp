#pragma once
// Batched system storage and the two memory layouts the paper discusses.
//
// * contiguous  — system m occupies elements [m*n, (m+1)*n). Natural for a
//   CPU (each system is a cache-friendly streak) and for MKL-style calls.
// * interleaved — element i of system m lives at i*M + m. Consecutive
//   threads working on consecutive systems touch consecutive addresses,
//   which is exactly the coalescing-friendly layout p-Thomas wants (§III.B:
//   "PCR naturally produces interleaved results which is perfect match
//   with p-Thomas").
//
// Contracts: SystemBatch owns its storage and has no internal locking —
// share read-only across threads freely; concurrent writers must target
// disjoint systems. Layout converters copy element-for-element with no
// arithmetic, so a round trip is bit-identical (and conversion row counts
// are recorded as metrics, not charged as simulated time). Sizes are
// element counts; strides are in elements, not bytes.

#include <cstddef>

#include "obs/metrics.hpp"
#include "tridiag/types.hpp"
#include "util/aligned_buffer.hpp"

namespace tridsolve::tridiag {

enum class Layout { contiguous, interleaved };

[[nodiscard]] constexpr const char* layout_name(Layout l) noexcept {
  return l == Layout::contiguous ? "contiguous" : "interleaved";
}

/// M independent n-row tridiagonal systems in one SoA allocation.
template <typename T>
class SystemBatch {
 public:
  SystemBatch() = default;

  SystemBatch(std::size_t num_systems, std::size_t n, Layout layout)
      : a_(num_systems * n),
        b_(num_systems * n),
        c_(num_systems * n),
        d_(num_systems * n),
        m_(num_systems),
        n_(n),
        layout_(layout) {}

  [[nodiscard]] std::size_t num_systems() const noexcept { return m_; }
  [[nodiscard]] std::size_t system_size() const noexcept { return n_; }
  [[nodiscard]] std::size_t total_rows() const noexcept { return m_ * n_; }
  [[nodiscard]] Layout layout() const noexcept { return layout_; }

  /// Flat coefficient arrays (layout-dependent element order).
  [[nodiscard]] std::span<T> a() noexcept { return a_.span(); }
  [[nodiscard]] std::span<T> b() noexcept { return b_.span(); }
  [[nodiscard]] std::span<T> c() noexcept { return c_.span(); }
  [[nodiscard]] std::span<T> d() noexcept { return d_.span(); }
  [[nodiscard]] std::span<const T> a() const noexcept { return a_.span(); }
  [[nodiscard]] std::span<const T> b() const noexcept { return b_.span(); }
  [[nodiscard]] std::span<const T> c() const noexcept { return c_.span(); }
  [[nodiscard]] std::span<const T> d() const noexcept { return d_.span(); }

  /// Flat index of row i of system m under the current layout.
  [[nodiscard]] std::size_t index(std::size_t m, std::size_t i) const noexcept {
    return layout_ == Layout::contiguous ? m * n_ + i : i * m_ + m;
  }

  /// Strided views of one system.
  [[nodiscard]] SystemRef<T> system(std::size_t m) noexcept {
    const std::size_t base = layout_ == Layout::contiguous ? m * n_ : m;
    const std::ptrdiff_t stride =
        layout_ == Layout::contiguous ? 1 : static_cast<std::ptrdiff_t>(m_);
    return {StridedView<T>(a_.data() + base, n_, stride),
            StridedView<T>(b_.data() + base, n_, stride),
            StridedView<T>(c_.data() + base, n_, stride),
            StridedView<T>(d_.data() + base, n_, stride)};
  }

  [[nodiscard]] SystemRef<const T> system(std::size_t m) const noexcept {
    const std::size_t base = layout_ == Layout::contiguous ? m * n_ : m;
    const std::ptrdiff_t stride =
        layout_ == Layout::contiguous ? 1 : static_cast<std::ptrdiff_t>(m_);
    return {StridedView<const T>(a_.data() + base, n_, stride),
            StridedView<const T>(b_.data() + base, n_, stride),
            StridedView<const T>(c_.data() + base, n_, stride),
            StridedView<const T>(d_.data() + base, n_, stride)};
  }

  [[nodiscard]] SystemBatch clone() const {
    SystemBatch out(m_, n_, layout_);
    for (std::size_t i = 0; i < m_ * n_; ++i) {
      out.a_[i] = a_[i];
      out.b_[i] = b_[i];
      out.c_[i] = c_[i];
      out.d_[i] = d_[i];
    }
    return out;
  }

 private:
  util::AlignedBuffer<T> a_, b_, c_, d_;
  std::size_t m_ = 0, n_ = 0;
  Layout layout_ = Layout::contiguous;
};

/// Produce a copy of `in` with the other layout (or the requested one).
/// Conversions are not free on real hardware, so the metrics registry
/// tracks how many rows crossed layouts (the paper's layout-conversion
/// cost the hybrid avoids by producing interleaved output in place).
template <typename T>
[[nodiscard]] SystemBatch<T> convert_layout(const SystemBatch<T>& in, Layout to) {
  static const auto conversions = obs::counter_handle("layout.conversions");
  static const auto rows = obs::counter_handle("layout.rows_converted");
  conversions.add();
  rows.add(static_cast<double>(in.num_systems() * in.system_size()));
  SystemBatch<T> out(in.num_systems(), in.system_size(), to);
  for (std::size_t m = 0; m < in.num_systems(); ++m) {
    for (std::size_t i = 0; i < in.system_size(); ++i) {
      const std::size_t src = in.index(m, i);
      const std::size_t dst = out.index(m, i);
      out.a()[dst] = in.a()[src];
      out.b()[dst] = in.b()[src];
      out.c()[dst] = in.c()[src];
      out.d()[dst] = in.d()[src];
    }
  }
  return out;
}

}  // namespace tridsolve::tridiag
