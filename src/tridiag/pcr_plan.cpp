#include "tridiag/pcr_plan.hpp"

#include "tridiag/pcr.hpp"

namespace tridsolve::tridiag {

template <typename T>
PcrPlan<T>::PcrPlan(const SystemRef<const T>& sys, unsigned k)
    : k_(k), n_(sys.size()) {
  if (n_ == 0) return;

  // Ping-pong matrix reduction (a, b, c only), capturing k1/k2 per level.
  std::vector<T> a(n_), b(n_), c(n_), a2(n_), b2(n_), c2(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    a[i] = sys.a[i];
    b[i] = sys.b[i];
    c[i] = sys.c[i];
  }
  k1_.resize(static_cast<std::size_t>(k_) * n_);
  k2_.resize(static_cast<std::size_t>(k_) * n_);

  std::size_t stride = 1;
  for (unsigned level = 0; level < k_; ++level) {
    for (std::size_t i = 0; i < n_; ++i) {
      // Out-of-range neighbours are identity rows (a=0, b=1, c=0).
      const bool has_lo = i >= stride;
      const bool has_hi = i + stride < n_;
      const T b_lo = has_lo ? b[i - stride] : T(1);
      const T b_hi = has_hi ? b[i + stride] : T(1);
      const T m1 = a[i] / b_lo;
      const T m2 = c[i] / b_hi;
      k1_[level * n_ + i] = m1;
      k2_[level * n_ + i] = m2;
      const T a_lo = has_lo ? a[i - stride] : T(0);
      const T c_lo = has_lo ? c[i - stride] : T(0);
      const T a_hi = has_hi ? a[i + stride] : T(0);
      const T c_hi = has_hi ? c[i + stride] : T(0);
      a2[i] = -a_lo * m1;
      b2[i] = b[i] - c_lo * m1 - a_hi * m2;
      c2[i] = -c_hi * m2;
    }
    a.swap(a2);
    b.swap(b2);
    c.swap(c2);
    stride *= 2;
  }

  // One division-free Thomas factorization per reduced class, over the
  // stride-2^k interleaved views of the reduced matrix.
  const std::size_t num_classes = std::min<std::size_t>(n_, std::size_t{1} << k_);
  classes_.resize(num_classes);
  for (std::size_t r = 0; r < num_classes; ++r) {
    const std::size_t count = (n_ - r + stride - 1) / stride;
    SystemRef<const T> view{
        StridedView<const T>(a.data() + r, count, static_cast<std::ptrdiff_t>(stride)),
        StridedView<const T>(b.data() + r, count, static_cast<std::ptrdiff_t>(stride)),
        StridedView<const T>(c.data() + r, count, static_cast<std::ptrdiff_t>(stride)),
        StridedView<const T>(nullptr, count, static_cast<std::ptrdiff_t>(stride))};
    classes_[r].factor(view);
    if (!classes_[r].ok() && status_.ok()) {
      status_ = classes_[r].status();
    }
  }
}

template <typename T>
SolveStatus PcrPlan<T>::solve(StridedView<const T> d, StridedView<T> x) const {
  if (!ok()) return status_;
  if (d.size() != n_ || x.size() != n_) return {SolveCode::bad_size, 0};
  if (n_ == 0) return {};

  // Replay the cached reduction on the rhs.
  std::vector<T> cur(n_), next(n_);
  for (std::size_t i = 0; i < n_; ++i) cur[i] = d[i];
  std::size_t stride = 1;
  for (unsigned level = 0; level < k_; ++level) {
    for (std::size_t i = 0; i < n_; ++i) {
      const T d_lo = i >= stride ? cur[i - stride] : T(0);
      const T d_hi = i + stride < n_ ? cur[i + stride] : T(0);
      next[i] = cur[i] - k1_[level * n_ + i] * d_lo - k2_[level * n_ + i] * d_hi;
    }
    cur.swap(next);
    stride *= 2;
  }

  // Division-free Thomas per reduced class, straight into x.
  for (std::size_t r = 0; r < classes_.size(); ++r) {
    const std::size_t count = (n_ - r + stride - 1) / stride;
    const auto st = classes_[r].solve(
        StridedView<const T>(cur.data() + r, count, static_cast<std::ptrdiff_t>(stride)),
        StridedView<T>(x.ptr(r), count,
                       x.stride() * static_cast<std::ptrdiff_t>(stride)));
    if (!st.ok()) return st;
  }
  return {};
}

template class PcrPlan<float>;
template class PcrPlan<double>;

}  // namespace tridsolve::tridiag
