#include "tridiag/pcr.hpp"

#include <bit>
#include <cmath>

namespace tridsolve::tridiag {

template <typename T>
std::size_t pcr_step(const SystemRef<T>& src, const SystemRef<T>& dst,
                     std::size_t stride) {
  const std::size_t n = src.size();
  const auto s = static_cast<std::ptrdiff_t>(stride);
  for (std::size_t i = 0; i < n; ++i) {
    const auto ip = static_cast<std::ptrdiff_t>(i);
    const Row<T> lo = row_or_identity(src, ip - s);
    const Row<T> mid{src.a[i], src.b[i], src.c[i], src.d[i]};
    const Row<T> hi = row_or_identity(src, ip + s);
    const Row<T> out = pcr_combine(lo, mid, hi);
    dst.a[i] = out.a;
    dst.b[i] = out.b;
    dst.c[i] = out.c;
    dst.d[i] = out.d;
  }
  return n;
}

namespace {

/// Contiguous scratch system of n rows backed by one allocation.
template <typename T>
struct ScratchSystem {
  explicit ScratchSystem(std::size_t n) : storage(4 * n), n_(n) {}

  [[nodiscard]] SystemRef<T> ref() {
    auto s = storage.span();
    return {StridedView<T>(s.subspan(0, n_)), StridedView<T>(s.subspan(n_, n_)),
            StridedView<T>(s.subspan(2 * n_, n_)),
            StridedView<T>(s.subspan(3 * n_, n_))};
  }

  util::AlignedBuffer<T> storage;
  std::size_t n_;
};

template <typename T>
void copy_system(const SystemRef<T>& from, const SystemRef<T>& to) {
  for (std::size_t i = 0; i < from.size(); ++i) {
    to.a[i] = from.a[i];
    to.b[i] = from.b[i];
    to.c[i] = from.c[i];
    to.d[i] = from.d[i];
  }
}

}  // namespace

template <typename T>
std::size_t pcr_reduce(SystemRef<T> sys, unsigned k) {
  const std::size_t n = sys.size();
  if (k == 0 || n == 0) return 0;

  ScratchSystem<T> scratch(n);
  SystemRef<T> ping = sys;
  SystemRef<T> pong = scratch.ref();

  std::size_t elims = 0;
  std::size_t stride = 1;
  for (unsigned step = 0; step < k; ++step) {
    elims += pcr_step(ping, pong, stride);
    std::swap(ping, pong);
    stride *= 2;
  }
  if (k % 2 == 1) copy_system(ping, sys);  // result landed in the scratch
  return elims;
}

template <typename T>
SolveStatus pcr_solve(SystemRef<T> sys, StridedView<T> x) {
  const std::size_t n = sys.size();
  if (x.size() != n) return {SolveCode::bad_size, 0};
  if (n == 0) return {};

  const unsigned k = static_cast<unsigned>(std::bit_width(n - 1));  // ceil(log2 n)
  pcr_reduce(sys, k);
  for (std::size_t i = 0; i < n; ++i) {
    // A zero pivot at any level surfaces as 0 or NaN/Inf in the reduced
    // diagonal; !(b != 0) also catches NaN.
    if (!(sys.b[i] != T(0)) || !std::isfinite(static_cast<double>(sys.b[i]))) {
      return {SolveCode::zero_pivot, i};
    }
    x[i] = sys.d[i] / sys.b[i];
  }
  return {};
}

template std::size_t pcr_step<float>(const SystemRef<float>&,
                                     const SystemRef<float>&, std::size_t);
template std::size_t pcr_step<double>(const SystemRef<double>&,
                                      const SystemRef<double>&, std::size_t);
template std::size_t pcr_reduce<float>(SystemRef<float>, unsigned);
template std::size_t pcr_reduce<double>(SystemRef<double>, unsigned);
template SolveStatus pcr_solve<float>(SystemRef<float>, StridedView<float>);
template SolveStatus pcr_solve<double>(SystemRef<double>, StridedView<double>);

}  // namespace tridsolve::tridiag
