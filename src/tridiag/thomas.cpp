#include "tridiag/thomas.hpp"

#include "util/aligned_buffer.hpp"

namespace tridsolve::tridiag {

template <typename T>
SolveStatus thomas_solve(SystemRef<T> sys, StridedView<T> x) {
  util::AlignedBuffer<T> scratch(sys.size());
  return thomas_solve(sys, x, scratch.span());
}

template SolveStatus thomas_solve<float>(SystemRef<float>, StridedView<float>);
template SolveStatus thomas_solve<double>(SystemRef<double>, StridedView<double>);

}  // namespace tridsolve::tridiag
