#pragma once
// Cyclic reduction (CR / odd-even reduction), paper §II.A.2 (Figs. 1-2).
//
// Forward phase: eliminate the odd-indexed unknowns level by level until a
// single unknown remains; backward phase: substitute back down the tree.
// O(n) work, 2*log2(n) + 1 parallel steps. Arbitrary n is handled by
// virtually padding to the next power of two with identity rows (whose
// solution is 0 and which never perturb real rows).
//
// Contracts: free functions over caller-owned views — no global state,
// reentrant, safe to call concurrently on disjoint systems. Deterministic:
// the same input always produces the bit-identical solution (fixed
// elimination order). Pivot-free: zero/NaN pivots propagate non-finite
// values rather than trap (the guard layer detects them downstream).

#include <cstddef>

#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Solve one system with cyclic reduction. Reads `sys` non-destructively,
/// writes the solution to `x`. Returns zero_pivot if a reduced diagonal
/// vanishes (CR, like Thomas/PCR, does not pivot).
template <typename T>
SolveStatus cr_solve(const SystemRef<T>& sys, StridedView<T> x);

/// Number of elimination steps CR performs (paper: 2*log2(n)+1 parallel
/// steps; total work counted in row-eliminations is ~2n).
[[nodiscard]] std::size_t cr_elimination_steps(std::size_t n) noexcept;

extern template SolveStatus cr_solve<float>(const SystemRef<float>&, StridedView<float>);
extern template SolveStatus cr_solve<double>(const SystemRef<double>&, StridedView<double>);

}  // namespace tridsolve::tridiag
