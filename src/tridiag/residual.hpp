#pragma once
// Residual and error metrics for solver validation.
//
// Contracts: pure read-only functions over caller-owned views — no
// state, thread-safe, deterministic. NaN-propagating by design: a NaN
// solution entry or a zero normalization denominator yields NaN, never a
// reassuring 0.0 — this is what makes the guard layer's residual gate
// sound (gates must be written NaN-safe: `!(rel <= gate)`).
// residual_inf is an absolute infinity-norm in the units of d;
// relative_residual is the dimensionless ||d - Ax||_inf / (||A||_inf
// ||x||_inf + ||d||_inf).

#include <cstddef>

#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// ||A x - d||_inf computed against the *original* (unreduced) system.
/// Non-finite values propagate: a NaN anywhere in the residual yields NaN
/// (never a silent 0.0), an Inf yields Inf — so a corrupted solution can
/// never masquerade as a converged one.
template <typename T>
double residual_inf(const SystemRef<const T>& sys, StridedView<const T> x);

/// Scaled relative residual ||Ax - d||_inf / (||A||_inf ||x||_inf + ||d||_inf).
/// Values within a small multiple of machine epsilon indicate a
/// backward-stable solve.
///
/// Contract:
///  * NaN coefficients, solution entries or residuals propagate to NaN.
///  * A zero denominator (||A||·||x|| and ||d|| both zero, e.g. an
///    all-zero system — no scale to measure against) returns NaN: the
///    relative residual is undefined there, and callers gating on
///    `res <= tol` correctly treat NaN as "not ok". An *overflowed*
///    denominator (||x|| within a factor ||A|| of DBL_MAX) returns NaN
///    for the same reason — `finite / inf` would otherwise report an
///    absurdly large solution as a perfect 0.0.
///  * An empty system (n == 0) returns 0.0 (nothing to be wrong about).
template <typename T>
double relative_residual(const SystemRef<const T>& sys, StridedView<const T> x);

/// Convenience: build const views from a mutable SystemRef.
template <typename T>
[[nodiscard]] inline SystemRef<const T> as_const(const SystemRef<T>& s) noexcept {
  return {StridedView<const T>(s.a.data(), s.a.size(), s.a.stride()),
          StridedView<const T>(s.b.data(), s.b.size(), s.b.stride()),
          StridedView<const T>(s.c.data(), s.c.size(), s.c.stride()),
          StridedView<const T>(s.d.data(), s.d.size(), s.d.stride())};
}

template <typename T>
[[nodiscard]] inline StridedView<const T> as_const(const StridedView<T>& v) noexcept {
  return {v.data(), v.size(), v.stride()};
}

extern template double residual_inf<float>(const SystemRef<const float>&,
                                           StridedView<const float>);
extern template double residual_inf<double>(const SystemRef<const double>&,
                                            StridedView<const double>);
extern template double relative_residual<float>(const SystemRef<const float>&,
                                                StridedView<const float>);
extern template double relative_residual<double>(const SystemRef<const double>&,
                                                 StridedView<const double>);

}  // namespace tridsolve::tridiag
