#pragma once
// Tiled PCR (paper §III.A): k-step incomplete PCR over a system of any
// size, streamed through a bounded cache of intermediate values.
//
// Two host implementations live here:
//
// * tiled_pcr_reduce — the paper's dependency-caching scheme (Figs. 8-10).
//   Positions are processed in order; the level-j reduction frontier lags
//   the load frontier by 2^j - 1 positions, so every intermediate value is
//   produced exactly once and consumed from a small per-level ring buffer.
//   Total live state is sum_j (2^{j+1} + 1) = 2*f(k) + k rows — the paper's
//   2*f(k) minimum cache requirement plus one in-flight row per level.
//   Zero redundant global loads, zero redundant eliminations. Bit-exact
//   against pcr_reduce (each row's arithmetic is identical).
//
// * naive_tiled_pcr_reduce — the strawman of Fig. 7: independent tiles that
//   re-load f(k) halo rows and re-do g(k) eliminations per boundary
//   (Eqs. 8-9). Used by the caching ablation bench to *measure* that
//   redundancy rather than assert it.
//
// Both return counters so benches and tests can verify the claims.
//
// Contracts: free functions over caller-owned views — stateless,
// reentrant, safe concurrently on disjoint systems; tiled_pcr_reduce is
// pinned bit-exact against plain pcr_reduce for every (n, k, tile)
// tested. The optional SolveStatus* divisor guard is read-only: it
// changes no arithmetic. Redundancy counters (loads / eliminations) are
// plain element counts, also reported via the metrics registry.

#include <cstddef>
#include <vector>

#include "tridiag/pcr.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Work/traffic counters for a tiled PCR run.
struct TiledPcrCounters {
  std::size_t global_row_loads = 0;   ///< rows read from the input arrays
  std::size_t eliminations = 0;       ///< PCR row-eliminations performed
  std::size_t cache_rows_peak = 0;    ///< peak live intermediate rows

  [[nodiscard]] std::size_t redundant_loads(std::size_t n) const noexcept {
    return global_row_loads - n;
  }
  [[nodiscard]] std::size_t redundant_elims(std::size_t n, unsigned k) const noexcept {
    return eliminations - k * n;
  }
};

/// Streaming dependency-cached k-step PCR, in place. After it returns,
/// `sys` holds 2^k interleaved independent systems (identical to
/// pcr_reduce(sys, k), including bit-exact values).
///
/// When `guard` is non-null, every elimination's divisors are checked:
/// a zero or non-finite PCR pivot flags SolveCode::zero_pivot (first
/// offending position wins) and the pivot-growth estimate is tracked.
/// Detection is read-only — guarded and unguarded runs produce
/// bit-identical reduced systems.
template <typename T>
TiledPcrCounters tiled_pcr_reduce(SystemRef<T> sys, unsigned k,
                                  SolveStatus* guard = nullptr);

/// Naive halo-tiled k-step PCR, in place: splits [0, n) into tiles of
/// `tile_rows` outputs, each tile independently loading its halo and
/// recomputing intermediate values (Fig. 7). Produces the same final rows.
template <typename T>
TiledPcrCounters naive_tiled_pcr_reduce(SystemRef<T> sys, unsigned k,
                                        std::size_t tile_rows);

extern template TiledPcrCounters tiled_pcr_reduce<float>(SystemRef<float>, unsigned,
                                                         SolveStatus*);
extern template TiledPcrCounters tiled_pcr_reduce<double>(SystemRef<double>, unsigned,
                                                          SolveStatus*);
extern template TiledPcrCounters naive_tiled_pcr_reduce<float>(SystemRef<float>,
                                                               unsigned, std::size_t);
extern template TiledPcrCounters naive_tiled_pcr_reduce<double>(SystemRef<double>,
                                                                unsigned, std::size_t);

}  // namespace tridsolve::tridiag
