#pragma once
// Recursive doubling (RD), Stone 1973 — the third classic parallel
// tridiagonal algorithm the paper surveys (§I, §II).
//
// The Thomas forward recurrences are reassociated into parallel prefix
// scans and evaluated with Kogge-Stone doubling passes:
//   c'_i = c_i / (b_i - a_i c'_{i-1})   -> Möbius transform, 2x2 matrix scan
//   d'_i = (d_i - a_i d'_{i-1}) / D_i   -> affine scan (given the D_i)
//   x_i  = d'_i - c'_i x_{i+1}          -> affine scan, backward
// O(n log n) work, O(log n) parallel steps. Products are renormalized per
// combine, so the scan is safe for long diagonally-dominant systems.
//
// Contracts: free functions over caller-owned views — stateless,
// reentrant, safe concurrently on disjoint systems; the scan combine
// order is fixed, so repeat runs are bit-identical. Note RD's
// reassociated arithmetic is NOT bit-equal to Thomas — agreement is to
// rounding (tests compare against a tolerance), unlike the tiled-PCR /
// PCR pair which is exactly bit-equal.

#include <cstddef>

#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

/// Solve one system with recursive doubling. Non-destructive on `sys`.
template <typename T>
SolveStatus rd_solve(const SystemRef<T>& sys, StridedView<T> x);

extern template SolveStatus rd_solve<float>(const SystemRef<float>&, StridedView<float>);
extern template SolveStatus rd_solve<double>(const SystemRef<double>&, StridedView<double>);

}  // namespace tridsolve::tridiag
