#include "tridiag/cyclic_reduction.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "tridiag/pcr.hpp"  // pcr_combine: CR uses the same elimination

namespace tridsolve::tridiag {

namespace {

/// Rows kept at CR level L sit at original positions (r+1)*2^L - 1.
constexpr std::size_t level_pos(std::size_t r, unsigned level) noexcept {
  return ((r + 1) << level) - 1;
}

}  // namespace

template <typename T>
SolveStatus cr_solve(const SystemRef<T>& sys, StridedView<T> x) {
  const std::size_t n = sys.size();
  if (x.size() != n) return {SolveCode::bad_size, 0};
  if (n == 0) return {};
  if (n == 1) {
    if (sys.b[0] == T(0)) return {SolveCode::zero_pivot, 0};
    x[0] = sys.d[0] / sys.b[0];
    return {};
  }

  const std::size_t npad = std::bit_ceil(n);
  const unsigned num_levels = static_cast<unsigned>(std::bit_width(npad) - 1);

  // levels[L] holds the reduced rows surviving to level L (identity rows
  // for padded positions; they stay identity through every reduction).
  std::vector<std::vector<Row<T>>> levels(num_levels + 1);
  levels[0].resize(npad);
  for (std::size_t i = 0; i < npad; ++i) {
    levels[0][i] = i < n ? Row<T>{sys.a[i], sys.b[i], sys.c[i], sys.d[i]}
                         : identity_row<T>();
  }

  // Forward reduction: level L+1 keeps the odd rows of level L, each
  // eliminated against both even neighbours (same arithmetic as PCR).
  for (unsigned level = 0; level < num_levels; ++level) {
    const auto& prev = levels[level];
    auto& next = levels[level + 1];
    next.resize(prev.size() / 2);
    for (std::size_t r = 0; r < next.size(); ++r) {
      const std::size_t mid = 2 * r + 1;
      const Row<T> lo = prev[mid - 1];
      const Row<T> hi = mid + 1 < prev.size() ? prev[mid + 1] : identity_row<T>();
      next[r] = pcr_combine(lo, prev[mid], hi);
    }
  }

  // Top: a single row whose off-diagonal couplings point outside the
  // matrix (virtual x = 0).
  std::vector<T> sol(npad, T(0));
  auto bad_pivot = [](T b) {
    return !(b != T(0)) || !std::isfinite(static_cast<double>(b));
  };
  {
    const Row<T>& top = levels[num_levels][0];
    if (bad_pivot(top.b)) return {SolveCode::zero_pivot, level_pos(0, num_levels)};
    sol[level_pos(0, num_levels)] = top.d / top.b;
  }

  // Backward substitution: at each level the rows not promoted upward
  // (even local index) are solved from their already-known neighbours
  // at distance 2^level (Eq. 7).
  for (unsigned level = num_levels; level-- > 0;) {
    const auto& rows = levels[level];
    const std::size_t reach = std::size_t{1} << level;
    for (std::size_t r = 0; r < rows.size(); r += 2) {
      const std::size_t pos = level_pos(r, level);
      const Row<T>& row = rows[r];
      if (bad_pivot(row.b)) return {SolveCode::zero_pivot, pos};
      const T left = pos >= reach ? sol[pos - reach] : T(0);
      const T right = pos + reach < npad ? sol[pos + reach] : T(0);
      sol[pos] = (row.d - row.a * left - row.c * right) / row.b;
    }
  }

  for (std::size_t i = 0; i < n; ++i) x[i] = sol[i];
  return {};
}

std::size_t cr_elimination_steps(std::size_t n) noexcept {
  if (n <= 1) return n;
  const std::size_t npad = std::bit_ceil(n);
  // npad/2 forward eliminations (one per surviving row per level, summed
  // over levels) plus npad back-substitutions.
  return (npad - 1) + npad;
}

template SolveStatus cr_solve<float>(const SystemRef<float>&, StridedView<float>);
template SolveStatus cr_solve<double>(const SystemRef<double>&, StridedView<double>);

}  // namespace tridsolve::tridiag
