#pragma once
// Core tridiagonal-system containers and views.
//
// Everything downstream (host algorithms, simulated GPU kernels, benches)
// works on the SoA representation the paper assumes: four arrays a, b, c, d
// where row i of A x = d is   a[i]*x[i-1] + b[i]*x[i] + c[i]*x[i+1] = d[i],
// with a[0] = 0 and c[n-1] = 0 (Eq. 1 of the paper).
//
// Contracts: StridedView/SystemRef are non-owning views with no
// synchronization — lifetime and aliasing are the caller's problem, and
// concurrent access is safe only when the underlying elements are
// disjoint (or all access is read-only). TridiagSystem owns its arrays.
// Sizes and strides are in elements, not bytes; strides come up as 1
// (contiguous), M (interleaved batch) and 2^k (post-PCR).

#include <cstddef>
#include <span>

#include "util/aligned_buffer.hpp"

namespace tridsolve::tridiag {

/// Outcome of a solve. Solvers never throw from hot loops; a zero (or,
/// for the pivoting LU, exactly-singular) pivot is reported here instead.
/// The last three codes are execution-level outcomes recorded by the
/// resilient pipeline (resilient_solve.hpp): they describe what happened
/// to an attempt, not a property of the matrix, and are transient — a
/// retry or fallback stage can clear them.
enum class SolveCode {
  ok,
  near_singular,  ///< solve completed but pivot growth exceeded the guard
                  ///< policy's limit — the answer may be badly amplified
  zero_pivot,     ///< elimination hit a zero (or non-finite) pivot (system
                  ///< not solvable by this pivot-free algorithm; see
                  ///< lu_gtsv for the referee)
  singular,       ///< pivoting LU found the matrix exactly singular
  timed_out,      ///< the dispatch overran its time budget; results suspect
  launch_failed,  ///< the kernel launch itself failed before running
  deadline,       ///< the resilience deadline expired before a clean solve
  overloaded,     ///< shed by admission control or an open circuit breaker
                  ///< before any compute was spent — pristine inputs, safe
                  ///< to resubmit once pressure drops (service layer)
  bad_size,       ///< size mismatch between matrix, rhs, or workspace
  bad_argument,   ///< caller-supplied option invalid for the shape (e.g.
                  ///< a forced transition point with 2^k > N)
};

[[nodiscard]] constexpr const char* solve_code_name(SolveCode c) noexcept {
  switch (c) {
    case SolveCode::ok: return "ok";
    case SolveCode::near_singular: return "near_singular";
    case SolveCode::zero_pivot: return "zero_pivot";
    case SolveCode::singular: return "singular";
    case SolveCode::timed_out: return "timed_out";
    case SolveCode::launch_failed: return "launch_failed";
    case SolveCode::deadline: return "deadline";
    case SolveCode::overloaded: return "overloaded";
    case SolveCode::bad_size: return "bad_size";
    case SolveCode::bad_argument: return "bad_argument";
  }
  return "?";
}

struct SolveStatus {
  SolveCode code = SolveCode::ok;
  std::size_t index = 0;  ///< offending row for zero_pivot/singular

  /// Pivot-growth estimate: the largest ratio of a row's coefficient
  /// magnitude to the elimination pivot it was divided by — roughly the
  /// factor by which forward elimination can amplify rounding error.
  /// O(1) for diagonally dominant systems; blows up as the matrix
  /// approaches singularity. 1.0 when the solver does not track it.
  double pivot_growth = 1.0;

  [[nodiscard]] bool ok() const noexcept { return code == SolveCode::ok; }
};

/// Non-owning strided 1-D view. The stride is in elements, not bytes.
///
/// Batched layouts address row i of system m at base + i*stride, so a
/// single view type serves both contiguous (stride 1 within a system)
/// and interleaved (stride M) layouts, as well as the stride-2^k systems
/// PCR leaves behind.
template <typename T>
class StridedView {
 public:
  StridedView() = default;
  StridedView(T* data, std::size_t n, std::ptrdiff_t stride) noexcept
      : data_(data), n_(n), stride_(stride) {}

  /// Contiguous view over a span.
  explicit StridedView(std::span<T> s) noexcept
      : data_(s.data()), n_(s.size()), stride_(1) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::ptrdiff_t stride() const noexcept { return stride_; }
  [[nodiscard]] T* data() const noexcept { return data_; }

  T& operator[](std::size_t i) const noexcept {
    return data_[static_cast<std::ptrdiff_t>(i) * stride_];
  }

  /// Address of element i (used by the GPU simulator's transaction model).
  [[nodiscard]] T* ptr(std::size_t i) const noexcept {
    return data_ + static_cast<std::ptrdiff_t>(i) * stride_;
  }

  /// View of `count` elements starting at element `first`.
  [[nodiscard]] StridedView subview(std::size_t first, std::size_t count) const noexcept {
    return {ptr(first), count, stride_};
  }

 private:
  T* data_ = nullptr;
  std::size_t n_ = 0;
  std::ptrdiff_t stride_ = 1;
};

/// The four coefficient views of one tridiagonal system (mutable).
template <typename T>
struct SystemRef {
  StridedView<T> a;  ///< sub-diagonal   (a[0] ignored / zero)
  StridedView<T> b;  ///< main diagonal
  StridedView<T> c;  ///< super-diagonal (c[n-1] ignored / zero)
  StridedView<T> d;  ///< right-hand side

  [[nodiscard]] std::size_t size() const noexcept { return b.size(); }
};

/// One owning tridiagonal system in SoA form.
template <typename T>
class TridiagSystem {
 public:
  TridiagSystem() = default;
  explicit TridiagSystem(std::size_t n) : a_(n), b_(n), c_(n), d_(n), n_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] std::span<T> a() noexcept { return a_.span(); }
  [[nodiscard]] std::span<T> b() noexcept { return b_.span(); }
  [[nodiscard]] std::span<T> c() noexcept { return c_.span(); }
  [[nodiscard]] std::span<T> d() noexcept { return d_.span(); }
  [[nodiscard]] std::span<const T> a() const noexcept { return a_.span(); }
  [[nodiscard]] std::span<const T> b() const noexcept { return b_.span(); }
  [[nodiscard]] std::span<const T> c() const noexcept { return c_.span(); }
  [[nodiscard]] std::span<const T> d() const noexcept { return d_.span(); }

  [[nodiscard]] SystemRef<T> ref() noexcept {
    return {StridedView<T>(a_.span()), StridedView<T>(b_.span()),
            StridedView<T>(c_.span()), StridedView<T>(d_.span())};
  }

  /// Deep copy (the solvers are destructive; tests copy before solving).
  [[nodiscard]] TridiagSystem clone() const {
    TridiagSystem out(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      out.a_[i] = a_[i];
      out.b_[i] = b_[i];
      out.c_[i] = c_[i];
      out.d_[i] = d_[i];
    }
    return out;
  }

 private:
  util::AlignedBuffer<T> a_, b_, c_, d_;
  std::size_t n_ = 0;
};

/// Identity row (0,1,0 | 0): the virtual row used for all out-of-range
/// neighbours, which makes CR/PCR size-agnostic (x_virtual = 0).
template <typename T>
struct Row {
  T a{}, b{}, c{}, d{};
};

template <typename T>
constexpr Row<T> identity_row() noexcept {
  return Row<T>{T(0), T(1), T(0), T(0)};
}

}  // namespace tridsolve::tridiag
