#pragma once
// Factor-once / solve-many Thomas plan.
//
// Time-stepping applications (ADI sweeps, implicit diffusion) solve the
// *same* tridiagonal matrix against a new right-hand side every step. The
// Thomas forward-reduction coefficients c'_i and the pivot reciprocals
// depend only on the matrix, so they can be computed once; each subsequent
// solve is then two division-free sweeps:
//
//   d'_i = (d_i - a_i d'_{i-1}) * inv_i,     x_i = d'_i - c'_i x_{i+1}.
//
// This mirrors LAPACK's ?gttrf/?gtts2 split (without pivoting — the plan
// rejects matrices whose pivot-free elimination breaks down).
//
// Contracts: factoring mutates only the plan; solve() mutates only the
// caller's views — a built plan is immutable and may back concurrent
// solve() calls on distinct right-hand sides. solve() is pinned bitwise
// identical to a direct thomas_solve of the same system (same
// arithmetic, same order — see tests/test_thomas_plan.cpp).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "tridiag/layout.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

template <typename T>
class ThomasPlan {
 public:
  ThomasPlan() = default;

  /// Factor the matrix (a, b, c of `sys`; d is ignored). On failure the
  /// plan is unusable and status() reports the offending row.
  explicit ThomasPlan(const SystemRef<const T>& sys) { factor(sys); }

  void factor(const SystemRef<const T>& sys) {
    const std::size_t n = sys.size();
    a_.resize(n);
    cprime_.resize(n);
    inv_.resize(n);
    status_ = {};
    T cp = T(0);
    double growth = 1.0;  // pivot-growth estimate (see SolveStatus)
    for (std::size_t i = 0; i < n; ++i) {
      const T denom = sys.b[i] - cp * sys.a[i];
      // !(denom != 0) also catches NaN pivots (e.g. from an upstream
      // singular reduction).
      if (!(denom != T(0)) || !std::isfinite(static_cast<double>(denom))) {
        status_ = {SolveCode::zero_pivot, i, growth};
        return;
      }
      const double scale = std::max({std::abs(static_cast<double>(sys.a[i])),
                                     std::abs(static_cast<double>(sys.b[i])),
                                     std::abs(static_cast<double>(sys.c[i]))});
      const double ratio = scale / std::abs(static_cast<double>(denom));
      if (ratio > growth) growth = ratio;
      const T inv = T(1) / denom;
      cp = sys.c[i] * inv;
      a_[i] = sys.a[i];
      cprime_[i] = cp;
      inv_[i] = inv;
    }
    status_.pivot_growth = growth;
  }

  [[nodiscard]] std::size_t size() const noexcept { return inv_.size(); }
  [[nodiscard]] const SolveStatus& status() const noexcept { return status_; }
  [[nodiscard]] bool ok() const noexcept { return status_.ok(); }

  /// Solve for one rhs; x may alias d. Division-free.
  SolveStatus solve(StridedView<const T> d, StridedView<T> x) const {
    const std::size_t n = size();
    if (!ok()) return status_;
    if (d.size() != n || x.size() != n) return {SolveCode::bad_size, 0};
    if (n == 0) return {};

    T dp = T(0);
    for (std::size_t i = 0; i < n; ++i) {
      dp = (d[i] - dp * a_[i]) * inv_[i];
      x[i] = dp;
    }
    for (std::size_t i = n - 1; i-- > 0;) {
      x[i] = x[i] - cprime_[i] * x[i + 1];
    }
    return {};
  }

  /// Solve for many right-hand sides stored as columns of a contiguous
  /// (num_rhs x n) row-major block: rhs r occupies [r*n, (r+1)*n).
  SolveStatus solve_many(std::span<const T> d, std::span<T> x,
                         std::size_t num_rhs) const {
    const std::size_t n = size();
    if (d.size() < num_rhs * n || x.size() < num_rhs * n) {
      return {SolveCode::bad_size, 0};
    }
    for (std::size_t r = 0; r < num_rhs; ++r) {
      const auto st = solve(StridedView<const T>(d.data() + r * n, n, 1),
                            StridedView<T>(x.data() + r * n, n, 1));
      if (!st.ok()) return st;
    }
    return {};
  }

 private:
  std::vector<T> a_;       ///< sub-diagonal (for the d' recurrence)
  std::vector<T> cprime_;  ///< forward-reduced super-diagonal
  std::vector<T> inv_;     ///< pivot reciprocals
  SolveStatus status_;
};

/// Factor-once / solve-many plan for a whole SystemBatch.
///
/// The factored arrays (a, c', inv) are stored with the *same* index
/// mapping as the source batch, so an interleaved batch gets
/// lane-contiguous plans: solve()'s inner loops then run over systems at
/// stride 1 and auto-vectorize, while each lane's arithmetic stays the
/// exact ThomasPlan recurrence — per-system results are pinned bitwise
/// identical to factoring/solving that system through ThomasPlan alone
/// (lanes are independent, so cross-lane evaluation order is free).
///
/// Factoring failures are per system: statuses()[m] reports system m, the
/// failed lane's plan rows are zero-filled (its solve output is zeros),
/// and the healthy lanes stay fully usable. Counters
/// `tridiag.plan.batch_factors` / `tridiag.plan.batch_solves` record plan
/// reuse (a steady-state time-stepping loop shows factors flat while
/// solves climb).
template <typename T>
class BatchThomasPlan {
 public:
  BatchThomasPlan() = default;

  /// Factor every system of `batch` (a, b, c; d is ignored).
  explicit BatchThomasPlan(const SystemBatch<T>& batch) { factor(batch); }

  void factor(const SystemBatch<T>& batch) {
    static const auto factors = obs::counter_handle("tridiag.plan.batch_factors");
    factors.add();
    m_ = batch.num_systems();
    n_ = batch.system_size();
    layout_ = batch.layout();
    a_.assign(m_ * n_, T(0));
    cprime_.assign(m_ * n_, T(0));
    inv_.assign(m_ * n_, T(0));
    statuses_.assign(m_, SolveStatus{});
    for (std::size_t m = 0; m < m_; ++m) {
      const auto sys = batch.system(m);
      T cp = T(0);
      double growth = 1.0;
      for (std::size_t i = 0; i < n_; ++i) {
        const T denom = sys.b[i] - cp * sys.a[i];
        if (!(denom != T(0)) || !std::isfinite(static_cast<double>(denom))) {
          statuses_[m] = {SolveCode::zero_pivot, i, growth};
          // Zero out the partial rows so the batched sweeps stay finite.
          for (std::size_t j = 0; j < i; ++j) {
            const std::size_t idx = index(m, j);
            a_[idx] = cprime_[idx] = inv_[idx] = T(0);
          }
          break;
        }
        const double scale =
            std::max({std::abs(static_cast<double>(sys.a[i])),
                      std::abs(static_cast<double>(sys.b[i])),
                      std::abs(static_cast<double>(sys.c[i]))});
        const double ratio = scale / std::abs(static_cast<double>(denom));
        if (ratio > growth) growth = ratio;
        const T inv = T(1) / denom;
        cp = sys.c[i] * inv;
        const std::size_t idx = index(m, i);
        a_[idx] = sys.a[i];
        cprime_[idx] = cp;
        inv_[idx] = inv;
        if (i + 1 == n_) statuses_[m].pivot_growth = growth;
      }
    }
  }

  [[nodiscard]] std::size_t num_systems() const noexcept { return m_; }
  [[nodiscard]] std::size_t system_size() const noexcept { return n_; }
  [[nodiscard]] Layout layout() const noexcept { return layout_; }
  [[nodiscard]] std::size_t index(std::size_t m, std::size_t i) const noexcept {
    return layout_ == Layout::contiguous ? m * n_ + i : i * m_ + m;
  }

  [[nodiscard]] const std::vector<SolveStatus>& statuses() const noexcept {
    return statuses_;
  }
  /// True iff every system factored cleanly.
  [[nodiscard]] bool ok() const noexcept {
    for (const auto& st : statuses_) {
      if (!st.ok()) return false;
    }
    return true;
  }

  /// Solve every system against flat right-hand sides `d` (plan's layout);
  /// `x` may alias `d`. Division-free. Failed lanes produce zeros; the
  /// return value is the first failed system's status ({} when all ok).
  SolveStatus solve(std::span<const T> d, std::span<T> x) const {
    static const auto solves = obs::counter_handle("tridiag.plan.batch_solves");
    if (d.size() < m_ * n_ || x.size() < m_ * n_) {
      return {SolveCode::bad_size, 0};
    }
    solves.add();
    if (m_ == 0 || n_ == 0) return first_failure();
    if (layout_ == Layout::interleaved) {
      // Lane-contiguous sweeps: rows outer, systems inner (stride 1).
      std::vector<T> dp(m_, T(0));
      const T* __restrict dv = d.data();
      T* __restrict xv = x.data();
      const T* __restrict av = a_.data();
      const T* __restrict iv = inv_.data();
      const T* __restrict cv = cprime_.data();
      T* __restrict carry = dp.data();
      for (std::size_t i = 0; i < n_; ++i) {
        const std::size_t row = i * m_;
        for (std::size_t m = 0; m < m_; ++m) {
          const T v = (dv[row + m] - carry[m] * av[row + m]) * iv[row + m];
          carry[m] = v;
          xv[row + m] = v;
        }
      }
      for (std::size_t i = n_ - 1; i-- > 0;) {
        const std::size_t row = i * m_;
        for (std::size_t m = 0; m < m_; ++m) {
          xv[row + m] = xv[row + m] - cv[row + m] * xv[row + m + m_];
        }
      }
    } else {
      for (std::size_t m = 0; m < m_; ++m) {
        const std::size_t base = m * n_;
        T dp = T(0);
        for (std::size_t i = 0; i < n_; ++i) {
          dp = (d[base + i] - dp * a_[base + i]) * inv_[base + i];
          x[base + i] = dp;
        }
        for (std::size_t i = n_ - 1; i-- > 0;) {
          x[base + i] = x[base + i] - cprime_[base + i] * x[base + i + 1];
        }
      }
    }
    return first_failure();
  }

 private:
  [[nodiscard]] SolveStatus first_failure() const noexcept {
    for (const auto& st : statuses_) {
      if (!st.ok()) return st;
    }
    return {};
  }

  std::vector<T> a_, cprime_, inv_;  ///< batch-layout factored arrays
  std::vector<SolveStatus> statuses_;
  std::size_t m_ = 0, n_ = 0;
  Layout layout_ = Layout::contiguous;
};

}  // namespace tridsolve::tridiag
