#pragma once
// Factor-once / solve-many Thomas plan.
//
// Time-stepping applications (ADI sweeps, implicit diffusion) solve the
// *same* tridiagonal matrix against a new right-hand side every step. The
// Thomas forward-reduction coefficients c'_i and the pivot reciprocals
// depend only on the matrix, so they can be computed once; each subsequent
// solve is then two division-free sweeps:
//
//   d'_i = (d_i - a_i d'_{i-1}) * inv_i,     x_i = d'_i - c'_i x_{i+1}.
//
// This mirrors LAPACK's ?gttrf/?gtts2 split (without pivoting — the plan
// rejects matrices whose pivot-free elimination breaks down).
//
// Contracts: factoring mutates only the plan; solve() mutates only the
// caller's views — a built plan is immutable and may back concurrent
// solve() calls on distinct right-hand sides. solve() is pinned bitwise
// identical to a direct thomas_solve of the same system (same
// arithmetic, same order — see tests/test_thomas_plan.cpp).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "tridiag/types.hpp"

namespace tridsolve::tridiag {

template <typename T>
class ThomasPlan {
 public:
  ThomasPlan() = default;

  /// Factor the matrix (a, b, c of `sys`; d is ignored). On failure the
  /// plan is unusable and status() reports the offending row.
  explicit ThomasPlan(const SystemRef<const T>& sys) { factor(sys); }

  void factor(const SystemRef<const T>& sys) {
    const std::size_t n = sys.size();
    a_.resize(n);
    cprime_.resize(n);
    inv_.resize(n);
    status_ = {};
    T cp = T(0);
    double growth = 1.0;  // pivot-growth estimate (see SolveStatus)
    for (std::size_t i = 0; i < n; ++i) {
      const T denom = sys.b[i] - cp * sys.a[i];
      // !(denom != 0) also catches NaN pivots (e.g. from an upstream
      // singular reduction).
      if (!(denom != T(0)) || !std::isfinite(static_cast<double>(denom))) {
        status_ = {SolveCode::zero_pivot, i, growth};
        return;
      }
      const double scale = std::max({std::abs(static_cast<double>(sys.a[i])),
                                     std::abs(static_cast<double>(sys.b[i])),
                                     std::abs(static_cast<double>(sys.c[i]))});
      const double ratio = scale / std::abs(static_cast<double>(denom));
      if (ratio > growth) growth = ratio;
      const T inv = T(1) / denom;
      cp = sys.c[i] * inv;
      a_[i] = sys.a[i];
      cprime_[i] = cp;
      inv_[i] = inv;
    }
    status_.pivot_growth = growth;
  }

  [[nodiscard]] std::size_t size() const noexcept { return inv_.size(); }
  [[nodiscard]] const SolveStatus& status() const noexcept { return status_; }
  [[nodiscard]] bool ok() const noexcept { return status_.ok(); }

  /// Solve for one rhs; x may alias d. Division-free.
  SolveStatus solve(StridedView<const T> d, StridedView<T> x) const {
    const std::size_t n = size();
    if (!ok()) return status_;
    if (d.size() != n || x.size() != n) return {SolveCode::bad_size, 0};
    if (n == 0) return {};

    T dp = T(0);
    for (std::size_t i = 0; i < n; ++i) {
      dp = (d[i] - dp * a_[i]) * inv_[i];
      x[i] = dp;
    }
    for (std::size_t i = n - 1; i-- > 0;) {
      x[i] = x[i] - cprime_[i] * x[i + 1];
    }
    return {};
  }

  /// Solve for many right-hand sides stored as columns of a contiguous
  /// (num_rhs x n) row-major block: rhs r occupies [r*n, (r+1)*n).
  SolveStatus solve_many(std::span<const T> d, std::span<T> x,
                         std::size_t num_rhs) const {
    const std::size_t n = size();
    if (d.size() < num_rhs * n || x.size() < num_rhs * n) {
      return {SolveCode::bad_size, 0};
    }
    for (std::size_t r = 0; r < num_rhs; ++r) {
      const auto st = solve(StridedView<const T>(d.data() + r * n, n, 1),
                            StridedView<T>(x.data() + r * n, n, 1));
      if (!st.ok()) return st;
    }
    return {};
  }

 private:
  std::vector<T> a_;       ///< sub-diagonal (for the d' recurrence)
  std::vector<T> cprime_;  ///< forward-reduced super-diagonal
  std::vector<T> inv_;     ///< pivot reciprocals
  SolveStatus status_;
};

}  // namespace tridsolve::tridiag
