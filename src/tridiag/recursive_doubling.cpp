#include "tridiag/recursive_doubling.hpp"

#include <cmath>
#include <vector>

namespace tridsolve::tridiag {

namespace {

/// 2x2 matrix representing a Möbius transform t -> (m00 t + m01)/(m10 t + m11).
template <typename T>
struct Mobius {
  T m00, m01, m10, m11;

  /// Compose: (newer * older), i.e. apply `older` first.
  [[nodiscard]] Mobius operator*(const Mobius& o) const noexcept {
    Mobius r{m00 * o.m00 + m01 * o.m10, m00 * o.m01 + m01 * o.m11,
             m10 * o.m00 + m11 * o.m10, m10 * o.m01 + m11 * o.m11};
    r.normalize();
    return r;
  }

  void normalize() noexcept {
    using std::abs;
    const T scale = std::max(std::max(abs(m00), abs(m01)),
                             std::max(abs(m10), abs(m11)));
    if (scale > T(0)) {
      m00 /= scale;
      m01 /= scale;
      m10 /= scale;
      m11 /= scale;
    }
  }

  /// Apply at t = 0.
  [[nodiscard]] T at_zero(bool* ok) const noexcept {
    if (m11 == T(0)) {
      *ok = false;
      return T(0);
    }
    return m01 / m11;
  }
};

/// Affine map t -> u + v t; composition is (newer ∘ older).
template <typename T>
struct Affine {
  T u, v;
  [[nodiscard]] Affine compose_after(const Affine& older) const noexcept {
    return {u + v * older.u, v * older.v};
  }
};

/// In-place Kogge-Stone inclusive scan with a binary combine
/// `out = f(newer, older)`.
template <typename E, typename F>
void kogge_stone_scan(std::vector<E>& elems, F combine) {
  const std::size_t n = elems.size();
  std::vector<E> next(n);
  for (std::size_t dist = 1; dist < n; dist *= 2) {
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = i >= dist ? combine(elems[i], elems[i - dist]) : elems[i];
    }
    elems.swap(next);
  }
}

}  // namespace

template <typename T>
SolveStatus rd_solve(const SystemRef<T>& sys, StridedView<T> x) {
  const std::size_t n = sys.size();
  if (x.size() != n) return {SolveCode::bad_size, 0};
  if (n == 0) return {};

  // Pass 1: Möbius scan for the c' recurrence.
  std::vector<Mobius<T>> mob(n);
  for (std::size_t i = 0; i < n; ++i) {
    mob[i] = Mobius<T>{T(0), sys.c[i], -sys.a[i], sys.b[i]};
    mob[i].normalize();
  }
  kogge_stone_scan(mob, [](const Mobius<T>& newer, const Mobius<T>& older) {
    return newer * older;
  });

  std::vector<T> cprime(n);
  for (std::size_t i = 0; i < n; ++i) {
    bool ok = true;
    cprime[i] = mob[i].at_zero(&ok);
    if (!ok) return {SolveCode::zero_pivot, i};
  }

  // Pass 2: affine scan for d' (denominators from c').
  std::vector<Affine<T>> aff(n);
  for (std::size_t i = 0; i < n; ++i) {
    const T denom = i == 0 ? sys.b[0] : sys.b[i] - sys.a[i] * cprime[i - 1];
    if (denom == T(0)) return {SolveCode::zero_pivot, i};
    aff[i] = Affine<T>{sys.d[i] / denom, i == 0 ? T(0) : -sys.a[i] / denom};
  }
  kogge_stone_scan(aff, [](const Affine<T>& newer, const Affine<T>& older) {
    return newer.compose_after(older);
  });

  std::vector<T> dprime(n);
  for (std::size_t i = 0; i < n; ++i) dprime[i] = aff[i].u;  // G_i(0)

  // Pass 3: backward affine scan for x_i = d'_i - c'_i x_{i+1}.
  // Reverse index so the scan runs forward: y_j = x_{n-1-j}.
  std::vector<Affine<T>> back(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t i = n - 1 - j;
    back[j] = Affine<T>{dprime[i], j == 0 ? T(0) : -cprime[i]};
  }
  kogge_stone_scan(back, [](const Affine<T>& newer, const Affine<T>& older) {
    return newer.compose_after(older);
  });
  for (std::size_t j = 0; j < n; ++j) x[n - 1 - j] = back[j].u;

  return {};
}

template SolveStatus rd_solve<float>(const SystemRef<float>&, StridedView<float>);
template SolveStatus rd_solve<double>(const SystemRef<double>&, StridedView<double>);

}  // namespace tridsolve::tridiag
