#pragma once
// Front-door solve service: dynamic batch coalescing for small requests.
//
// The paper's central performance result (Fig. 12) is that the GPU only
// wins in the large-batch regime — time is flat in M until the machine
// saturates, so a solo N-row solve wastes almost the whole device. A
// service with millions of small independent clients therefore must not
// launch per request: it must coalesce many compatible requests into one
// large interleaved batch and ride the flat part of the curve. That is
// exactly what SolveService does:
//
//   submit() ──► mutex-sharded queues ──► batcher thread ──► registry
//     (any thread)    (one per shard)    (coalesce + admit)  (PlanCache)
//                                              │
//   future<SolveResult> ◄── scatter per-request code/latency/solution
//
// Coalescing rules: requests are compatible when they agree on system
// size N and element size (double today). The batcher opens a batch at
// the oldest pending request and admits every compatible request that
// arrives within `batch_window_us` of it, capped at `max_batch`; the
// window closes early when the batch fills, when shutdown drains, or
// when waiting longer would expire a member's deadline. Admission order
// is (priority desc, submission order) — deterministic for a quiesced
// queue.
//
// Deadline semantics (per request, wall time from submit; 0 = none):
//   * expires in-queue — the request is never dispatched; its future is
//     fulfilled with SolveCode::deadline and the pristine right-hand
//     side, exactly like the resilient pipeline's budget-exhausted
//     partial results.
//   * expires in-flight — the solved solution is still delivered, but
//     an `ok` code is upgraded to SolveCode::timed_out (the answer is
//     late; per the taxonomy, results past budget are suspect). A more
//     severe per-system code is kept instead.
//
// Determinism contract: a batch assembled from requests r_0..r_{M-1} (in
// admission order) solves bit-identically to a direct run_solver call on
// the same M x N batch with the same options — the service adds gather/
// scatter copies and no arithmetic. Pinned by tests/test_service.cpp for
// every solver kind, solo and coalesced.
//
// Thread-safety: submit() is safe from any thread; one batcher thread
// owns admission and dispatch. shutdown() (and the destructor) stops
// intake, drains every queued request — every future is fulfilled, none
// lost — and joins the batcher.
//
// Observability (all through the process-wide registry; names documented
// in docs/SERVICE.md): counters service.requests.{submitted,completed,
// expired,rejected}, service.batches, service.batches.solo; gauges
// service.queue.depth, service.batch.occupancy; histograms
// service.request.latency_us, service.request.queue_us,
// service.batch.size, service.batch.solve_us. With span tracing enabled
// (--spans-json) every batch emits a `service.batch` span with one
// `service.request` child per member.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "gpu_solvers/registry.hpp"
#include "gpusim/device_spec.hpp"
#include "obs/metrics.hpp"
#include "tridiag/layout.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::service {

/// Service-wide knobs (fixed at construction). Units are stated per
/// field; docs/SERVICE.md is the operator reference for tuning them.
struct ServiceConfig {
  /// Coalescing window in wall microseconds, measured from the arrival
  /// of the oldest request in the open batch. Larger windows build
  /// bigger batches (higher throughput, Fig. 12 regime) at the cost of
  /// added p50 latency; 0 dispatches every request as it is seen.
  double batch_window_us = 200.0;
  /// Admission cap: at most this many requests ride one launch.
  std::size_t max_batch = 4096;
  /// Submission queue shards (submit() round-robins across them so
  /// concurrent clients do not serialize on one mutex). Min 1.
  std::size_t shards = 8;
  /// Solver every batch is dispatched through (the registry picks the
  /// plan per coalesced shape via the PlanCache).
  gpu::SolverKind solver = gpu::SolverKind::hybrid;
  /// Per-system guarding: record a SolveCode per request (pivot guards
  /// plus the registry's post-hoc scan). Off = every delivered request
  /// reports ok and the service trusts the kernel blindly.
  bool guard = true;
  /// Re-solve flagged systems with pivoting LU from pristine inputs
  /// before delivering (implies guard).
  bool fallback = false;
  /// Start the batcher thread in the constructor. Tests set false and
  /// call start() after staging requests, making admission
  /// deterministic.
  bool auto_start = true;
  /// Simulated device every batch launches on.
  gpusim::DeviceSpec device = gpusim::gtx480();
};

/// One client request: an owned N-row system plus its SLO.
struct SolveRequest {
  tridiag::TridiagSystem<double> system;
  /// Wall-clock budget in microseconds from submit(); 0 = no deadline.
  double deadline_us = 0.0;
  /// Higher priority admits first when a window oversubscribes.
  int priority = 0;
};

/// What a client gets back, one per request.
struct SolveResult {
  tridiag::SolveCode code = tridiag::SolveCode::ok;
  /// Solution vector (length N). For requests that never ran (expired
  /// in-queue, rejected, failed launch) this is the pristine rhs — the
  /// service never hands back partially-eliminated garbage.
  std::vector<double> x;
  double latency_us = 0.0;   ///< submit → fulfillment, wall
  double queue_us = 0.0;     ///< submit → admission, wall (== latency_us
                             ///< for requests that expired in-queue)
  double solve_us = 0.0;     ///< simulated time of the batch it rode
  std::uint64_t batch_id = 0;  ///< 1-based; 0 = never admitted
  std::size_t batch_size = 0;  ///< occupancy of its coalesced launch
  double pivot_growth = 1.0;   ///< per-system guard estimate (1.0 unguarded)
};

/// Layout the batcher assembles a coalesced M x N batch in: interleaved
/// when the planned transition point is k = 0 (pure p-Thomas wants
/// coalesced columns), contiguous when tiled PCR leads — the same rule
/// the paper-reproduction benches use. Exposed so tests can build the
/// exact twin batch for bitwise comparison.
[[nodiscard]] tridiag::Layout coalesced_layout(std::size_t m, std::size_t n);

class SolveService {
 public:
  explicit SolveService(ServiceConfig cfg = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Enqueue one request. Returns immediately; the future is fulfilled
  /// by the batcher. After shutdown() the request is rejected: the
  /// future is ready at once with SolveCode::bad_argument and the
  /// pristine rhs. Empty systems are rejected with SolveCode::bad_size.
  std::future<SolveResult> submit(SolveRequest req);

  /// Launch the batcher thread (no-op when already running). Only
  /// needed with auto_start = false.
  void start();

  /// Stop intake, drain every queued request (all futures fulfilled),
  /// join the batcher. Idempotent; also run by the destructor.
  void shutdown();

  /// Lifetime tallies of this instance (the registry metrics aggregate
  /// across instances; tests want per-service numbers).
  [[nodiscard]] std::uint64_t batches_launched() const noexcept;
  [[nodiscard]] std::uint64_t requests_completed() const noexcept;
  [[nodiscard]] std::uint64_t requests_expired() const noexcept;

 private:
  struct Pending;
  struct Shard;

  void batcher_main();
  void drain_shards(std::vector<Pending>& backlog);
  void expire_overdue(std::vector<Pending>& backlog,
                      std::chrono::steady_clock::time_point now);
  void dispatch(std::vector<Pending> group);
  void fulfill_unran(Pending& p, tridiag::SolveCode code);

  ServiceConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_{false};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::thread batcher_;
  std::mutex lifecycle_mu_;  ///< serializes start()/shutdown()

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> expired_{0};

  // Metric handles resolved once (hot submit/dispatch paths).
  obs::MetricsRegistry::Counter m_submitted_, m_completed_, m_expired_,
      m_rejected_, m_batches_, m_solo_batches_;
  obs::MetricsRegistry::Histogram h_latency_, h_queue_, h_batch_size_,
      h_solve_us_;
};

}  // namespace tridsolve::service
