#pragma once
// Front-door solve service: dynamic batch coalescing for small requests.
//
// The paper's central performance result (Fig. 12) is that the GPU only
// wins in the large-batch regime — time is flat in M until the machine
// saturates, so a solo N-row solve wastes almost the whole device. A
// service with millions of small independent clients therefore must not
// launch per request: it must coalesce many compatible requests into one
// large interleaved batch and ride the flat part of the curve. That is
// exactly what SolveService does:
//
//   submit() ──► admission ──► mutex-sharded queues ──► batcher thread
//     (any thread)  (bounds      (one per shard)      (coalesce + admit)
//                    + shedding)                             │
//                                   breaker gate ──► resilient dispatch
//                                  (open: degrade/shed)  (registry, PlanCache)
//                                                            │
//   future<SolveResult> ◄── scatter per-request code/latency/provenance
//
// Coalescing rules: requests are compatible when they agree on system
// size N and element size (double today). The batcher opens a batch at
// the oldest pending request and admits every compatible request that
// arrives within `batch_window_us` of it, capped at `max_batch`; the
// window closes early when the batch fills, when shutdown drains, or
// when waiting longer would expire a member's deadline. Admission order
// is (priority desc, submission order) — deterministic for a quiesced
// queue.
//
// Overload (docs/SERVICE.md § Overload & degradation): admission bounds
// (cfg.admission) shed excess load at submit() with
// SolveCode::overloaded and the pristine rhs — never a blocked or lost
// future. The depth bound counts every admitted-but-undispatched request
// (shard queues plus the batcher's backlog), so it is a hard cap on
// queue growth, provable via peak_queue_depth().
//
// Faults: with cfg.resilient (the default) every batch dispatches
// through run_solver_resilient — guarded solve, chunked retries from
// pristine inputs, degradation down the fallback chain, and a simulated
// budget derived from the earliest member deadline. A batch that stays
// launch_failed after that is *bisected*: both halves re-dispatch from
// pristine inputs so one poisoned request cannot fail its co-batched
// riders; a request still failing alone is quarantined with its own
// launch_failed code. Consecutive dispatch failures trip the circuit
// breaker (cfg.breaker), which degrades whole batches to the
// fault-immune host-Thomas stage (or sheds them) for a cooldown before
// half-open probing. Per-request provenance lands on SolveResult:
// attempts, recovered, degraded.
//
// Deadline semantics (per request, wall time from submit; 0 = none):
//   * expires in-queue — the request is never dispatched; its future is
//     fulfilled with SolveCode::deadline and the pristine right-hand
//     side, exactly like the resilient pipeline's budget-exhausted
//     partial results.
//   * expires in-flight — the solved solution is still delivered, but
//     an `ok` code is upgraded to SolveCode::timed_out (the answer is
//     late; per the taxonomy, results past budget are suspect). A more
//     severe per-system code is kept instead.
//
// Determinism contract: a batch assembled from requests r_0..r_{M-1} (in
// admission order) solves bit-identically to a direct run_solver call on
// the same M x N batch with the same options — the service adds gather/
// scatter copies and no arithmetic (the resilient entry dispatch pins
// the hybrid's k through the same PlanCache key a direct call plans
// with). Pinned by tests/test_service.cpp for every solver kind, solo
// and coalesced.
//
// Thread-safety: submit() is safe from any thread; one batcher thread
// owns admission-to-batch and dispatch. shutdown() (and the destructor)
// stops intake, drains every queued request — every future is fulfilled,
// none lost — and joins the batcher.
//
// Observability (all through the process-wide registry; names documented
// in docs/SERVICE.md): counters service.requests.{submitted,completed,
// expired,rejected,shed,retried,degraded,quarantined}, service.batches,
// service.batches.solo, service.batches.bisected,
// service.breaker.{trips,resets}; gauges service.queue.depth,
// service.batch.occupancy, service.breaker.state; histograms
// service.request.latency_us, service.request.queue_us,
// service.batch.size, service.batch.solve_us. With span tracing enabled
// (--spans-json) every batch emits a `service.batch` span with one
// `service.request` child per member.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gpu_solvers/registry.hpp"
#include "gpusim/device_spec.hpp"
#include "obs/metrics.hpp"
#include "service/admission.hpp"
#include "service/breaker.hpp"
#include "tridiag/layout.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::service {

/// Service-wide knobs (fixed at construction). Units are stated per
/// field; docs/SERVICE.md is the operator reference for tuning them.
/// Invalid combinations (max_batch == 0, negative batch_window_us) are
/// rejected structurally: the service constructs into a rejecting state
/// where every submit() resolves immediately with SolveCode::bad_argument
/// and config_error() names the offending knob — never silent clamping
/// of a nonsensical value.
struct ServiceConfig {
  /// Coalescing window in wall microseconds, measured from the arrival
  /// of the oldest request in the open batch. Larger windows build
  /// bigger batches (higher throughput, Fig. 12 regime) at the cost of
  /// added p50 latency; 0 dispatches every request as it is seen.
  /// Negative values are rejected (bad_argument).
  double batch_window_us = 200.0;
  /// Admission cap: at most this many requests ride one launch. Zero is
  /// rejected (bad_argument) — it would make dispatch impossible.
  std::size_t max_batch = 4096;
  /// Submission queue shards (submit() round-robins across them so
  /// concurrent clients do not serialize on one mutex). Clamped to >= 1.
  std::size_t shards = 8;
  /// Solver every batch is dispatched through (the registry picks the
  /// plan per coalesced shape via the PlanCache).
  gpu::SolverKind solver = gpu::SolverKind::hybrid;
  /// Per-system guarding: record a SolveCode per request (pivot guards
  /// plus the registry's post-hoc scan). Off = every delivered request
  /// reports ok and the service trusts the kernel blindly. Implied by
  /// `resilient` (the resilient pipeline always guards).
  bool guard = true;
  /// Re-solve flagged systems with pivoting LU from pristine inputs
  /// before delivering (implies guard). Only consulted on the
  /// non-resilient dispatch path; the resilient path recovers through
  /// its fallback chain instead.
  bool fallback = false;
  /// Start the batcher thread in the constructor. Tests set false and
  /// call start() after staging requests, making admission
  /// deterministic.
  bool auto_start = true;
  /// Simulated device every batch launches on.
  gpusim::DeviceSpec device = gpusim::gtx480();

  /// Queue bounds + shedding policy (admission.hpp). Defaults unbounded,
  /// preserving pre-overload-control behavior.
  AdmissionConfig admission{};
  /// Circuit breaker over consecutive dispatch failures (breaker.hpp).
  /// Default threshold 0 = disabled.
  BreakerConfig breaker{};
  /// Route batches through run_solver_resilient: retries and fallback
  /// degradation from pristine inputs, budget from the earliest member
  /// deadline, launch-failure bisection. false = the plain run_solver
  /// dispatch (one shot, shared-fate on launch failure).
  bool resilient = true;
  /// Re-dispatches per resilient stage; -1 = the engine's --max-retries
  /// default. Tests pin 0 to make single-dispatch failures deterministic.
  int max_retries = -1;
  /// Resilient fallback-stage names after the entry solver; empty = the
  /// registry default (pthomas → cpu-thomas → lu). Pass the entry
  /// solver's own token to disable fallbacks entirely.
  std::vector<std::string> fallback_chain{};
};

/// One client request: an owned N-row system plus its SLO.
struct SolveRequest {
  tridiag::TridiagSystem<double> system;
  /// Wall-clock budget in microseconds from submit(); 0 = no deadline.
  double deadline_us = 0.0;
  /// Higher priority admits first when a window oversubscribes — and
  /// survives reject_lowest_priority shedding under overload.
  int priority = 0;
};

/// What a client gets back, one per request.
struct SolveResult {
  tridiag::SolveCode code = tridiag::SolveCode::ok;
  /// Solution vector (length N). For requests that never ran (expired
  /// in-queue, shed, rejected, failed launch) this is the pristine rhs —
  /// the service never hands back partially-eliminated garbage.
  std::vector<double> x;
  double latency_us = 0.0;   ///< submit → fulfillment, wall
  double queue_us = 0.0;     ///< submit → admission, wall (== latency_us
                             ///< for requests that expired in-queue)
  double solve_us = 0.0;     ///< simulated time of the dispatches it rode
  std::uint64_t batch_id = 0;  ///< 1-based; 0 = never admitted
  std::size_t batch_size = 0;  ///< occupancy of its coalesced launch
  double pivot_growth = 1.0;   ///< per-system guard estimate (1.0 unguarded)
  /// Dispatch attempts that touched this request, across retries,
  /// fallback stages and bisection re-dispatches (0 = never dispatched).
  std::uint32_t attempts = 0;
  /// A failure or flag was detected on some attempt, but a retry,
  /// fallback stage or bisection still delivered this clean result.
  bool recovered = false;
  /// Solved by the open circuit breaker's host-Thomas degrade path
  /// instead of the configured solver (correct, but host-speed and
  /// outside the simulated-GPU cost model).
  bool degraded = false;
};

/// Layout the batcher assembles a coalesced M x N batch in: interleaved
/// when the planned transition point is k = 0 (pure p-Thomas wants
/// coalesced columns), contiguous when tiled PCR leads — the same rule
/// the paper-reproduction benches use. Exposed so tests can build the
/// exact twin batch for bitwise comparison.
[[nodiscard]] tridiag::Layout coalesced_layout(std::size_t m, std::size_t n);

class SolveService {
 public:
  explicit SolveService(ServiceConfig cfg = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Empty when the config validated; otherwise the reason every
  /// submit() is being rejected with bad_argument.
  [[nodiscard]] const std::string& config_error() const noexcept {
    return config_error_;
  }

  /// Enqueue one request. Returns immediately; the future is fulfilled
  /// by the batcher. After shutdown() (or with an invalid config) the
  /// request is rejected: the future is ready at once with
  /// SolveCode::bad_argument and the pristine rhs. Empty systems are
  /// rejected with SolveCode::bad_size. When an admission bound is hit,
  /// the shed policy picks a victim (this request or a queued one) and
  /// resolves it with SolveCode::overloaded and its pristine rhs.
  std::future<SolveResult> submit(SolveRequest req);

  /// Launch the batcher thread (no-op when already running or when the
  /// config was rejected). Only needed with auto_start = false.
  void start();

  /// Stop intake, drain every queued request (all futures fulfilled),
  /// join the batcher. Idempotent; also run by the destructor.
  void shutdown();

  /// Lifetime tallies of this instance (the registry metrics aggregate
  /// across instances; tests want per-service numbers).
  [[nodiscard]] std::uint64_t batches_launched() const noexcept;
  [[nodiscard]] std::uint64_t requests_completed() const noexcept;
  [[nodiscard]] std::uint64_t requests_expired() const noexcept;
  [[nodiscard]] std::uint64_t requests_shed() const noexcept;
  [[nodiscard]] std::uint64_t requests_retried() const noexcept;
  [[nodiscard]] std::uint64_t requests_degraded() const noexcept;
  [[nodiscard]] std::uint64_t requests_quarantined() const noexcept;
  [[nodiscard]] std::uint64_t batches_bisected() const noexcept;

  /// High-water mark of admitted-but-undispatched requests; never
  /// exceeds cfg.admission.max_queue when that bound is set.
  [[nodiscard]] std::size_t peak_queue_depth() const noexcept;

  [[nodiscard]] const CircuitBreaker& breaker() const noexcept {
    return breaker_;
  }
  [[nodiscard]] const AdmissionController& admission() const noexcept {
    return admission_;
  }

 private:
  struct Pending;
  struct Shard;

  void batcher_main();
  void drain_shards(std::vector<Pending>& backlog);
  void expire_overdue(std::vector<Pending>& backlog,
                      std::chrono::steady_clock::time_point now);
  /// Breaker gate, then the configured dispatch path. Bisection halves
  /// re-enter here, so an ongoing fault storm trips the breaker
  /// mid-recovery instead of hammering a failing engine.
  void dispatch(std::vector<Pending> group);
  void dispatch_batch(std::vector<Pending> group);
  void dispatch_degraded(std::vector<Pending> group);
  void fulfill_unran(Pending& p, tridiag::SolveCode code);
  void shed(Pending& p);
  /// Evict the lowest-priority queued request strictly below
  /// `incoming_priority` (newest among ties); all shard locks held in
  /// index order for the scan. Returns false when no such victim exists.
  bool evict_lowest_priority(int incoming_priority);
  /// Evict the queued request with the least deadline headroom whose
  /// estimated wait already exceeds it (brownout victim search).
  bool evict_doomed(std::chrono::steady_clock::time_point now);

  ServiceConfig cfg_;
  std::string config_error_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_{false};

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::thread batcher_;
  std::mutex lifecycle_mu_;  ///< serializes start()/shutdown()

  AdmissionController admission_;
  CircuitBreaker breaker_;

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> retried_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> bisections_{0};

  // Metric handles resolved once (hot submit/dispatch paths).
  obs::MetricsRegistry::Counter m_submitted_, m_completed_, m_expired_,
      m_rejected_, m_shed_, m_retried_, m_degraded_, m_quarantined_,
      m_batches_, m_solo_batches_, m_bisected_batches_;
  obs::MetricsRegistry::Histogram h_latency_, h_queue_, h_batch_size_,
      h_solve_us_;
};

}  // namespace tridsolve::service
