#pragma once
// Bounded admission for the solve service: queue-depth / queue-bytes
// bounds plus the shedding policy that decides who pays when a bound is
// hit. The controller owns only the accounting and the decision logic;
// SolveService owns the queues and performs the actual eviction, so the
// two stay independently testable.
//
// Policies (docs/SERVICE.md § Overload & degradation):
//  * reject_newest — the incoming request is shed; everything already
//    queued keeps its slot. The cheapest policy and the default.
//  * reject_lowest_priority — the lowest-priority queued request
//    (newest among ties) is evicted to make room, provided it ranks
//    strictly below the incoming one; otherwise the incoming request is
//    shed. Paid traffic displaces best-effort traffic under pressure.
//  * brownout — deadline-aware: a request whose *estimated* queue delay
//    already exceeds its remaining deadline is shed up front (it could
//    only expire in queue; shedding is honest and refuses the queueing
//    cost), and at the bound a deadline-doomed queued victim is evicted
//    before the incoming request is considered. The delay estimate is
//    an EWMA of recent batch wall latency scaled by the number of batch
//    waves ahead in the queue.
//
// Every shed resolves the victim's future with SolveCode::overloaded and
// the pristine right-hand side — never a blocked or lost future, and
// never partial elimination garbage (the request was untouched).
//
// Accounting contract: try_reserve() / release() form a strict
// reservation protocol — depth/bytes count *admitted* requests only, so
// the configured bounds are hard: the queue never holds more than
// max_queue requests (peak_depth() proves it). Thread-safe; lock-free on
// the admit path (one fetch_add per bound).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tridsolve::service {

/// Who gets shed when an admission bound is exceeded.
enum class ShedPolicy {
  reject_newest,
  reject_lowest_priority,
  brownout,
};

[[nodiscard]] constexpr const char* shed_policy_name(ShedPolicy p) noexcept {
  switch (p) {
    case ShedPolicy::reject_newest: return "reject-newest";
    case ShedPolicy::reject_lowest_priority: return "reject-lowest-priority";
    case ShedPolicy::brownout: return "brownout";
  }
  return "?";
}

/// Parse a policy token ("reject-newest", "reject-lowest-priority",
/// "brownout"; underscores accepted). Throws std::invalid_argument on
/// anything else — CLI parsing is strict everywhere in this repo.
[[nodiscard]] ShedPolicy parse_shed_policy(std::string_view tok);

/// Admission bounds and policy (part of ServiceConfig).
struct AdmissionConfig {
  /// Max queued (admitted, not yet dispatched) requests; 0 = unbounded.
  std::size_t max_queue = 0;
  /// Max queued bytes (4 coefficient arrays per request); 0 = unbounded.
  std::size_t max_queue_bytes = 0;
  ShedPolicy policy = ShedPolicy::reject_newest;
  /// EWMA smoothing for the batch-latency estimate in (0, 1]: weight of
  /// the newest sample. 1.0 = last batch only.
  double ewma_alpha = 0.2;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {}

  [[nodiscard]] const AdmissionConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] bool bounded() const noexcept {
    return cfg_.max_queue > 0 || cfg_.max_queue_bytes > 0;
  }

  /// Reserve one queue slot (+ `bytes`) for an incoming request. Returns
  /// false — with the reservation fully rolled back — when either bound
  /// would be exceeded; the caller then applies the shed policy.
  [[nodiscard]] bool try_reserve(std::size_t bytes) noexcept;

  /// Release one slot (+ `bytes`): the request left the queue (drained
  /// into the batcher, or evicted by a shedding decision).
  void release(std::size_t bytes) noexcept;

  /// Fold one dispatched batch's wall latency (admission → futures
  /// resolved) into the EWMA the brownout estimate is built on.
  void observe_batch_latency(double us) noexcept;

  /// Estimated in-queue delay for a request arriving now: the EWMA batch
  /// latency times the number of batch waves ahead of it (depth /
  /// max_batch, plus the wave it joins). 0 until a first batch lands.
  [[nodiscard]] double estimated_delay_us(std::size_t max_batch) const noexcept;

  [[nodiscard]] std::size_t depth() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  /// High-water mark of *admitted* depth — never exceeds max_queue when
  /// a depth bound is set (the chaos soak asserts exactly this).
  [[nodiscard]] std::size_t peak_depth() const noexcept {
    return peak_depth_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double ewma_batch_us() const noexcept {
    return ewma_us_.load(std::memory_order_relaxed);
  }

 private:
  AdmissionConfig cfg_;
  std::atomic<std::size_t> depth_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<std::size_t> peak_depth_{0};
  std::atomic<double> ewma_us_{0.0};
};

}  // namespace tridsolve::service
