#include "service/admission.hpp"

#include <algorithm>

namespace tridsolve::service {

ShedPolicy parse_shed_policy(std::string_view tok) {
  std::string norm(tok);
  std::replace(norm.begin(), norm.end(), '_', '-');
  if (norm == "reject-newest") return ShedPolicy::reject_newest;
  if (norm == "reject-lowest-priority") return ShedPolicy::reject_lowest_priority;
  if (norm == "brownout") return ShedPolicy::brownout;
  throw std::invalid_argument(
      "unknown shed policy \"" + std::string(tok) +
      "\" (expected reject-newest|reject-lowest-priority|brownout)");
}

bool AdmissionController::try_reserve(std::size_t bytes) noexcept {
  if (cfg_.max_queue > 0) {
    const std::size_t prev = depth_.fetch_add(1, std::memory_order_acq_rel);
    if (prev >= cfg_.max_queue) {
      depth_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    // prev + 1 counts only admitted requests, so the recorded peak is a
    // proof the depth bound held (transient fetch_add overshoot from
    // concurrent losers never lands here).
    std::size_t peak = peak_depth_.load(std::memory_order_relaxed);
    while (prev + 1 > peak && !peak_depth_.compare_exchange_weak(
                                  peak, prev + 1, std::memory_order_relaxed)) {
    }
  } else {
    const std::size_t now = depth_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::size_t peak = peak_depth_.load(std::memory_order_relaxed);
    while (now > peak && !peak_depth_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  if (cfg_.max_queue_bytes > 0) {
    const std::size_t prev = bytes_.fetch_add(bytes, std::memory_order_acq_rel);
    if (prev + bytes > cfg_.max_queue_bytes) {
      bytes_.fetch_sub(bytes, std::memory_order_acq_rel);
      depth_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
  } else {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  return true;
}

void AdmissionController::release(std::size_t bytes) noexcept {
  depth_.fetch_sub(1, std::memory_order_acq_rel);
  bytes_.fetch_sub(bytes, std::memory_order_acq_rel);
}

void AdmissionController::observe_batch_latency(double us) noexcept {
  if (!(us >= 0.0)) return;
  const double alpha = std::clamp(cfg_.ewma_alpha, 0.0, 1.0);
  const double prev = ewma_us_.load(std::memory_order_relaxed);
  const double next = prev <= 0.0 ? us : alpha * us + (1.0 - alpha) * prev;
  // The batcher is the only writer; a plain store is race-free and keeps
  // concurrent submit-side readers tear-free.
  ewma_us_.store(next, std::memory_order_relaxed);
}

double AdmissionController::estimated_delay_us(
    std::size_t max_batch) const noexcept {
  const double ewma = ewma_us_.load(std::memory_order_relaxed);
  if (ewma <= 0.0) return 0.0;
  const std::size_t cap = std::max<std::size_t>(1, max_batch);
  const std::size_t waves = 1 + depth_.load(std::memory_order_relaxed) / cap;
  return ewma * static_cast<double>(waves);
}

}  // namespace tridsolve::service
