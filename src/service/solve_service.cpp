#include "service/solve_service.hpp"

#include <algorithm>
#include <deque>
#include <utility>

#include "gpu_solvers/transition.hpp"
#include "obs/span_tracer.hpp"

namespace tridsolve::service {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double us_between(Clock::time_point t0,
                                Clock::time_point t1) noexcept {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// How far before the earliest member deadline a deadline-driven window
/// closes. Closing at exactly the deadline is self-defeating: the wait
/// wakes at >= deadline and the next loop iteration expires the member
/// before the admission check ever runs, so the request that shrank the
/// window is deterministically returned SolveCode::deadline even under
/// zero load. The margin must cover condition-variable wake latency plus
/// one drain/expire pass; requests whose whole deadline is shorter than
/// the margin simply dispatch on the first iteration that sees them.
constexpr auto kDeadlineDispatchMargin = std::chrono::microseconds(200);

}  // namespace

tridiag::Layout coalesced_layout(std::size_t m, std::size_t n) {
  // Same rule the paper-reproduction benches use (bench_common):
  // heuristic k = 0 means pure p-Thomas leads, which wants the
  // coalescing-friendly interleaved columns; any tiled-PCR prefix works
  // on contiguous systems.
  return gpu::heuristic_k(m, n) == 0 ? tridiag::Layout::interleaved
                                     : tridiag::Layout::contiguous;
}

/// One accepted request waiting for (or riding) a batch.
struct SolveService::Pending {
  std::uint64_t seq = 0;
  SolveRequest req;
  std::promise<SolveResult> promise;
  Clock::time_point arrival{};
  Clock::time_point deadline{};  ///< meaningful only when has_deadline
  bool has_deadline = false;
  /// Submit timestamp on the tracer's wall clock; < 0 when tracing was
  /// off at submit time (child spans then start at batch start).
  double wall_submit_us = -1.0;
};

struct SolveService::Shard {
  std::mutex mu;
  std::deque<Pending> q;
};

SolveService::SolveService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      m_submitted_(obs::counter_handle("service.requests.submitted")),
      m_completed_(obs::counter_handle("service.requests.completed")),
      m_expired_(obs::counter_handle("service.requests.expired")),
      m_rejected_(obs::counter_handle("service.requests.rejected")),
      m_batches_(obs::counter_handle("service.batches")),
      m_solo_batches_(obs::counter_handle("service.batches.solo")),
      h_latency_(obs::histogram_handle("service.request.latency_us")),
      h_queue_(obs::histogram_handle("service.request.queue_us")),
      h_batch_size_(obs::histogram_handle("service.batch.size")),
      h_solve_us_(obs::histogram_handle("service.batch.solve_us")) {
  if (cfg_.shards == 0) cfg_.shards = 1;
  if (cfg_.max_batch == 0) cfg_.max_batch = 1;
  if (cfg_.batch_window_us < 0.0) cfg_.batch_window_us = 0.0;
  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  accepting_.store(true, std::memory_order_release);
  if (cfg_.auto_start) start();
}

SolveService::~SolveService() { shutdown(); }

std::future<SolveResult> SolveService::submit(SolveRequest req) {
  std::promise<SolveResult> promise;
  auto future = promise.get_future();

  if (req.system.size() == 0) {
    m_rejected_.add();
    SolveResult r;
    r.code = tridiag::SolveCode::bad_size;
    promise.set_value(std::move(r));
    return future;
  }

  Pending p;
  p.req = std::move(req);
  p.promise = std::move(promise);
  p.arrival = Clock::now();
  if (p.req.deadline_us > 0.0) {
    p.has_deadline = true;
    p.deadline = p.arrival + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::micro>(
                                     p.req.deadline_us));
  }
  auto& tracer = obs::SpanTracer::instance();
  if (tracer.enabled()) p.wall_submit_us = tracer.now_wall_us();

  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  p.seq = seq;
  Shard& shard = *shards_[seq % shards_.size()];
  {
    std::lock_guard lk(shard.mu);
    // accepting_ is checked under the shard lock; shutdown() flips it and
    // then passes through every shard lock, so after that barrier no
    // submit can still be mid-push — the drain loop sees everything.
    if (!accepting_.load(std::memory_order_acquire)) {
      m_rejected_.add();
      SolveResult r;
      r.code = tridiag::SolveCode::bad_argument;
      r.x.assign(p.req.system.d().begin(), p.req.system.d().end());
      p.promise.set_value(std::move(r));
      return future;
    }
    shard.q.push_back(std::move(p));
  }
  queued_.fetch_add(1, std::memory_order_release);
  m_submitted_.add();
  {
    // Pass through wake_mu_ between the queued_ update and the notify so
    // the increment cannot slip between the batcher's predicate check and
    // its block — without this the notify can be missed and a lone
    // request waits for the next submit (lost wakeup).
    std::lock_guard wake_lk(wake_mu_);
  }
  wake_cv_.notify_one();
  return future;
}

void SolveService::start() {
  std::lock_guard lk(lifecycle_mu_);
  if (batcher_.joinable() || stop_.load(std::memory_order_acquire)) return;
  batcher_ = std::thread([this] { batcher_main(); });
}

void SolveService::shutdown() {
  std::lock_guard lk(lifecycle_mu_);
  if (!accepting_.exchange(false, std::memory_order_acq_rel) &&
      !batcher_.joinable()) {
    return;  // already shut down
  }
  // Barrier: any submit that saw accepting_ == true holds a shard lock
  // until its push lands; passing through every lock here means the
  // queues are final before the drain begins.
  for (auto& s : shards_) {
    std::lock_guard shard_lk(s->mu);
  }
  stop_.store(true, std::memory_order_release);
  {
    // Same lost-wakeup guard as submit(): the stop_ store must not land
    // between the batcher's predicate check and its (untimed) block, or
    // join() below hangs forever.
    std::lock_guard wake_lk(wake_mu_);
  }
  wake_cv_.notify_all();
  if (batcher_.joinable()) {
    batcher_.join();
  } else {
    // Never started (auto_start = false and start() never called): drain
    // inline so every accepted future is still fulfilled.
    batcher_main();
  }
}

std::uint64_t SolveService::batches_launched() const noexcept {
  return batches_.load(std::memory_order_relaxed);
}
std::uint64_t SolveService::requests_completed() const noexcept {
  return completed_.load(std::memory_order_relaxed);
}
std::uint64_t SolveService::requests_expired() const noexcept {
  return expired_.load(std::memory_order_relaxed);
}

void SolveService::drain_shards(std::vector<Pending>& backlog) {
  for (auto& s : shards_) {
    std::lock_guard lk(s->mu);
    while (!s->q.empty()) {
      backlog.push_back(std::move(s->q.front()));
      s->q.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void SolveService::fulfill_unran(Pending& p, tridiag::SolveCode code) {
  const auto now = Clock::now();
  SolveResult r;
  r.code = code;
  r.x.assign(p.req.system.d().begin(), p.req.system.d().end());
  r.latency_us = us_between(p.arrival, now);
  r.queue_us = r.latency_us;
  h_queue_.record(r.queue_us);
  h_latency_.record(r.latency_us);
  p.promise.set_value(std::move(r));
}

void SolveService::expire_overdue(std::vector<Pending>& backlog,
                                  Clock::time_point now) {
  auto dead = std::stable_partition(
      backlog.begin(), backlog.end(),
      [now](const Pending& p) { return !p.has_deadline || now < p.deadline; });
  for (auto it = dead; it != backlog.end(); ++it) {
    // Tally before fulfilling: a client woken by the future must already
    // see itself in requests_expired().
    m_expired_.add();
    expired_.fetch_add(1, std::memory_order_relaxed);
    fulfill_unran(*it, tridiag::SolveCode::deadline);
  }
  backlog.erase(dead, backlog.end());
}

void SolveService::dispatch(std::vector<Pending> group) {
  const std::size_t m = group.size();
  const std::size_t n = group.front().req.system.size();
  const std::uint64_t batch_id =
      batches_.fetch_add(1, std::memory_order_relaxed) + 1;
  m_batches_.add();
  if (m == 1) m_solo_batches_.add();
  h_batch_size_.record(static_cast<double>(m));
  obs::gauge("service.batch.occupancy", static_cast<double>(m));

  auto& tracer = obs::SpanTracer::instance();
  obs::SpanScope batch_span("service.batch");
  batch_span.attr("n", obs::JsonValue(static_cast<double>(n)));
  batch_span.attr("occupancy", obs::JsonValue(static_cast<double>(m)));
  batch_span.attr("solver", obs::JsonValue(gpu::solver_name(cfg_.solver)));

  const auto admit = Clock::now();
  const tridiag::Layout layout = coalesced_layout(m, n);
  tridiag::SystemBatch<double> batch(m, n, layout);
  for (std::size_t j = 0; j < m; ++j) {
    const auto& sys = group[j].req.system;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = batch.index(j, i);
      batch.a()[at] = sys.a()[i];
      batch.b()[at] = sys.b()[i];
      batch.c()[at] = sys.c()[i];
      batch.d()[at] = sys.d()[i];
    }
  }

  gpu::SolverRunOptions opts;
  opts.guard = cfg_.guard;
  opts.fallback = cfg_.fallback;
  tridiag::SystemBatch<double> solution;  // written only if a solve ran
  const auto outcome =
      gpu::run_solver(cfg_.solver, cfg_.device, batch, opts, &solution);
  // run_solver hands out a solution whenever the solve actually ran —
  // including functional_only runs that report supported == false for
  // lack of timing. A pristine (empty) solution batch means the
  // configuration was rejected or the launch failed before running.
  const bool solved = solution.num_systems() == m;
  const tridiag::SolveCode unran_code =
      outcome.launch_failed ? tridiag::SolveCode::launch_failed
                            : tridiag::SolveCode::bad_argument;
  h_solve_us_.record(outcome.time_us);

  const auto done = Clock::now();
  for (std::size_t j = 0; j < m; ++j) {
    Pending& p = group[j];
    SolveResult r;
    r.batch_id = batch_id;
    r.batch_size = m;
    r.solve_us = outcome.time_us;
    r.queue_us = us_between(p.arrival, admit);
    r.latency_us = us_between(p.arrival, done);
    if (solved) {
      const auto x = solution.system(j).d;
      r.x.resize(n);
      for (std::size_t i = 0; i < n; ++i) r.x[i] = x[i];
      if (outcome.status.size() == m) {
        r.code = outcome.status[j].code;
        r.pivot_growth = outcome.status[j].pivot_growth;
      }
    } else {
      r.code = unran_code;
      r.x.assign(p.req.system.d().begin(), p.req.system.d().end());
    }
    // In-flight expiry: the answer is delivered but late — upgrade an ok
    // verdict to timed_out; a more severe per-system code is kept.
    if (p.has_deadline && done >= p.deadline &&
        tridiag::solve_code_severity(r.code) <
            tridiag::solve_code_severity(tridiag::SolveCode::timed_out)) {
      r.code = tridiag::SolveCode::timed_out;
    }
    h_queue_.record(r.queue_us);
    h_latency_.record(r.latency_us);
    m_completed_.add();
    completed_.fetch_add(1, std::memory_order_relaxed);

    if (tracer.enabled() && batch_span.id() != 0) {
      obs::Span child;
      child.id = tracer.reserve_id();
      child.parent = batch_span.id();
      child.name = "service.request";
      child.wall_t0_us = p.wall_submit_us >= 0.0
                             ? p.wall_submit_us
                             : tracer.now_wall_us() - r.latency_us;
      child.wall_t1_us = tracer.now_wall_us();
      child.sim_t0_us = tracer.sim_now();
      child.sim_t1_us = tracer.sim_now();
      child.thread_ordinal = tracer.thread_ordinal();
      child.attrs.emplace_back("seq",
                               obs::JsonValue(static_cast<double>(p.seq)));
      child.attrs.emplace_back("code",
                               obs::JsonValue(tridiag::solve_code_name(r.code)));
      tracer.emit(std::move(child));
    }
    p.promise.set_value(std::move(r));
  }
}

void SolveService::batcher_main() {
  std::vector<Pending> backlog;
  const auto window = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::micro>(cfg_.batch_window_us));
  for (;;) {
    drain_shards(backlog);
    const auto now = Clock::now();
    expire_overdue(backlog, now);
    obs::gauge("service.queue.depth", static_cast<double>(backlog.size()));

    if (backlog.empty()) {
      if (stop_.load(std::memory_order_acquire) &&
          queued_.load(std::memory_order_acquire) == 0) {
        break;
      }
      std::unique_lock lk(wake_mu_);
      wake_cv_.wait(lk, [this] {
        return queued_.load(std::memory_order_acquire) > 0 ||
               stop_.load(std::memory_order_acquire);
      });
      continue;
    }

    // Open the batch at the oldest pending request; every compatible
    // (same N) request joins its group.
    const auto oldest = std::min_element(
        backlog.begin(), backlog.end(),
        [](const Pending& a, const Pending& b) { return a.seq < b.seq; });
    const std::size_t n = oldest->req.system.size();
    std::size_t group_size = 0;
    auto close = oldest->arrival + window;
    for (const Pending& p : backlog) {
      if (p.req.system.size() != n) continue;
      ++group_size;
      // Deadline-aware admission: never hold the window past the point
      // where a member would expire in-queue. Close a dispatch margin
      // early so the member is launched, not expired, when the wait
      // wakes (see kDeadlineDispatchMargin).
      if (p.has_deadline) {
        const auto latest = p.deadline - kDeadlineDispatchMargin;
        if (latest < close) close = latest;
      }
    }

    const bool admit = stop_.load(std::memory_order_acquire) ||
                       group_size >= cfg_.max_batch || now >= close;
    if (!admit) {
      std::unique_lock lk(wake_mu_);
      wake_cv_.wait_until(lk, close, [this] {
        return queued_.load(std::memory_order_acquire) > 0 ||
               stop_.load(std::memory_order_acquire);
      });
      continue;
    }

    // Pull the group out of the backlog (stable: preserves drain order),
    // then order admission by (priority desc, submission order) and cap
    // at max_batch; overflow members stay queued for the next batch.
    std::vector<Pending> group;
    group.reserve(group_size);
    auto keep = backlog.begin();
    for (auto it = backlog.begin(); it != backlog.end(); ++it) {
      if (it->req.system.size() == n) {
        group.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    backlog.erase(keep, backlog.end());
    std::sort(group.begin(), group.end(), [](const Pending& a,
                                             const Pending& b) {
      if (a.req.priority != b.req.priority) {
        return a.req.priority > b.req.priority;
      }
      return a.seq < b.seq;
    });
    while (group.size() > cfg_.max_batch) {
      backlog.push_back(std::move(group.back()));
      group.pop_back();
    }
    dispatch(std::move(group));
  }
}

}  // namespace tridsolve::service
