#include "service/solve_service.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <utility>

#include "gpu_solvers/transition.hpp"
#include "obs/span_tracer.hpp"
#include "tridiag/resilient_solve.hpp"

namespace tridsolve::service {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] double us_between(Clock::time_point t0,
                                Clock::time_point t1) noexcept {
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

/// How far before the earliest member deadline a deadline-driven window
/// closes. Closing at exactly the deadline is self-defeating: the wait
/// wakes at >= deadline and the next loop iteration expires the member
/// before the admission check ever runs, so the request that shrank the
/// window is deterministically returned SolveCode::deadline even under
/// zero load. The margin must cover condition-variable wake latency plus
/// one drain/expire pass — including on a loaded machine under
/// sanitizer instrumentation, where a wake can take well over 200us to
/// reach the expiry check; requests whose whole deadline is shorter
/// than the margin simply dispatch on the first iteration that sees
/// them. Closing early is always safe (the batch merely coalesces a
/// hair less); expiring a dispatchable request is not.
constexpr auto kDeadlineDispatchMargin = std::chrono::microseconds(1000);

/// Queue-bytes charged per request: the four coefficient arrays it holds
/// until dispatch gathers them into the coalesced batch.
[[nodiscard]] std::size_t queued_bytes(std::size_t n) noexcept {
  return 4 * n * sizeof(double);
}

}  // namespace

tridiag::Layout coalesced_layout(std::size_t m, std::size_t n) {
  // Same rule the paper-reproduction benches use (bench_common):
  // heuristic k = 0 means pure p-Thomas leads, which wants the
  // coalescing-friendly interleaved columns; any tiled-PCR prefix works
  // on contiguous systems.
  return gpu::heuristic_k(m, n) == 0 ? tridiag::Layout::interleaved
                                     : tridiag::Layout::contiguous;
}

/// One accepted request waiting for (or riding) a batch.
struct SolveService::Pending {
  std::uint64_t seq = 0;
  SolveRequest req;
  std::promise<SolveResult> promise;
  Clock::time_point arrival{};
  Clock::time_point deadline{};  ///< meaningful only when has_deadline
  bool has_deadline = false;
  /// Admission reservation held (released at dispatch extraction,
  /// expiry, or eviction — never while still queued, so the depth bound
  /// also covers the batcher's backlog).
  std::size_t bytes = 0;
  /// Provenance carried across bisection re-dispatches: attempts and
  /// simulated time already spent on this request by earlier failed
  /// dispatches, and whether any of them failed (feeds
  /// SolveResult::recovered when a later dispatch succeeds).
  std::uint32_t prior_attempts = 0;
  double prior_solve_us = 0.0;
  bool saw_failure = false;
  /// Submit timestamp on the tracer's wall clock; < 0 when tracing was
  /// off at submit time (child spans then start at batch start).
  double wall_submit_us = -1.0;
};

struct SolveService::Shard {
  std::mutex mu;
  std::deque<Pending> q;
};

SolveService::SolveService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      admission_(cfg_.admission),
      breaker_(cfg_.breaker),
      m_submitted_(obs::counter_handle("service.requests.submitted")),
      m_completed_(obs::counter_handle("service.requests.completed")),
      m_expired_(obs::counter_handle("service.requests.expired")),
      m_rejected_(obs::counter_handle("service.requests.rejected")),
      m_shed_(obs::counter_handle("service.requests.shed")),
      m_retried_(obs::counter_handle("service.requests.retried")),
      m_degraded_(obs::counter_handle("service.requests.degraded")),
      m_quarantined_(obs::counter_handle("service.requests.quarantined")),
      m_batches_(obs::counter_handle("service.batches")),
      m_solo_batches_(obs::counter_handle("service.batches.solo")),
      m_bisected_batches_(obs::counter_handle("service.batches.bisected")),
      h_latency_(obs::histogram_handle("service.request.latency_us")),
      h_queue_(obs::histogram_handle("service.request.queue_us")),
      h_batch_size_(obs::histogram_handle("service.batch.size")),
      h_solve_us_(obs::histogram_handle("service.batch.solve_us")) {
  if (cfg_.shards == 0) cfg_.shards = 1;
  // Structural validation: a nonsensical knob must reject loudly, not be
  // silently rewritten into a service the operator did not configure.
  if (cfg_.max_batch == 0) {
    config_error_ = "ServiceConfig.max_batch must be >= 1";
  } else if (!(cfg_.batch_window_us >= 0.0)) {
    config_error_ = "ServiceConfig.batch_window_us must be >= 0";
  } else if (!(cfg_.admission.ewma_alpha > 0.0) ||
             cfg_.admission.ewma_alpha > 1.0) {
    config_error_ = "AdmissionConfig.ewma_alpha must be in (0, 1]";
  }
  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (!config_error_.empty()) return;  // rejecting state: never accepts
  accepting_.store(true, std::memory_order_release);
  if (cfg_.auto_start) start();
}

SolveService::~SolveService() { shutdown(); }

std::future<SolveResult> SolveService::submit(SolveRequest req) {
  std::promise<SolveResult> promise;
  auto future = promise.get_future();

  if (!config_error_.empty()) {
    m_rejected_.add();
    SolveResult r;
    r.code = tridiag::SolveCode::bad_argument;
    r.x.assign(req.system.d().begin(), req.system.d().end());
    promise.set_value(std::move(r));
    return future;
  }
  if (req.system.size() == 0) {
    m_rejected_.add();
    SolveResult r;
    r.code = tridiag::SolveCode::bad_size;
    promise.set_value(std::move(r));
    return future;
  }

  Pending p;
  p.req = std::move(req);
  p.promise = std::move(promise);
  p.arrival = Clock::now();
  p.bytes = queued_bytes(p.req.system.size());
  if (p.req.deadline_us > 0.0) {
    p.has_deadline = true;
    p.deadline = p.arrival + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double, std::micro>(
                                     p.req.deadline_us));
  }
  auto& tracer = obs::SpanTracer::instance();
  if (tracer.enabled()) p.wall_submit_us = tracer.now_wall_us();

  // Admission (docs/SERVICE.md § Overload & degradation). Brownout sheds
  // up front when the estimated queue delay already eats the whole
  // deadline: the request could only expire in-queue, and refusing it now
  // is honest about that (and free).
  if (cfg_.admission.policy == ShedPolicy::brownout && p.has_deadline &&
      admission_.estimated_delay_us(cfg_.max_batch) > p.req.deadline_us) {
    shed(p);
    return future;
  }
  if (!admission_.try_reserve(p.bytes)) {
    bool evicted = false;
    switch (cfg_.admission.policy) {
      case ShedPolicy::reject_newest:
        break;
      case ShedPolicy::reject_lowest_priority:
        evicted = evict_lowest_priority(p.req.priority);
        break;
      case ShedPolicy::brownout:
        evicted = evict_doomed(p.arrival);
        break;
    }
    // The freed slot races against concurrent submitters; losing that
    // race counts as a full queue again (bounds stay hard).
    if (!evicted || !admission_.try_reserve(p.bytes)) {
      p.bytes = 0;  // no reservation held
      shed(p);
      return future;
    }
  }

  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  p.seq = seq;
  Shard& shard = *shards_[seq % shards_.size()];
  {
    std::lock_guard lk(shard.mu);
    // accepting_ is checked under the shard lock; shutdown() flips it and
    // then passes through every shard lock, so after that barrier no
    // submit can still be mid-push — the drain loop sees everything.
    if (!accepting_.load(std::memory_order_acquire)) {
      admission_.release(p.bytes);
      m_rejected_.add();
      SolveResult r;
      r.code = tridiag::SolveCode::bad_argument;
      r.x.assign(p.req.system.d().begin(), p.req.system.d().end());
      p.promise.set_value(std::move(r));
      return future;
    }
    shard.q.push_back(std::move(p));
  }
  queued_.fetch_add(1, std::memory_order_release);
  m_submitted_.add();
  {
    // Pass through wake_mu_ between the queued_ update and the notify so
    // the increment cannot slip between the batcher's predicate check and
    // its block — without this the notify can be missed and a lone
    // request waits for the next submit (lost wakeup).
    std::lock_guard wake_lk(wake_mu_);
  }
  wake_cv_.notify_one();
  return future;
}

void SolveService::start() {
  std::lock_guard lk(lifecycle_mu_);
  if (!config_error_.empty()) return;
  if (batcher_.joinable() || stop_.load(std::memory_order_acquire)) return;
  batcher_ = std::thread([this] { batcher_main(); });
}

void SolveService::shutdown() {
  std::lock_guard lk(lifecycle_mu_);
  if (!accepting_.exchange(false, std::memory_order_acq_rel) &&
      !batcher_.joinable()) {
    return;  // already shut down (or never accepted: rejected config)
  }
  // Barrier: any submit that saw accepting_ == true holds a shard lock
  // until its push lands; passing through every lock here means the
  // queues are final before the drain begins.
  for (auto& s : shards_) {
    std::lock_guard shard_lk(s->mu);
  }
  stop_.store(true, std::memory_order_release);
  {
    // Same lost-wakeup guard as submit(): the stop_ store must not land
    // between the batcher's predicate check and its (untimed) block, or
    // join() below hangs forever.
    std::lock_guard wake_lk(wake_mu_);
  }
  wake_cv_.notify_all();
  if (batcher_.joinable()) {
    batcher_.join();
  } else {
    // Never started (auto_start = false and start() never called): drain
    // inline so every accepted future is still fulfilled.
    batcher_main();
  }
}

std::uint64_t SolveService::batches_launched() const noexcept {
  return batches_.load(std::memory_order_relaxed);
}
std::uint64_t SolveService::requests_completed() const noexcept {
  return completed_.load(std::memory_order_relaxed);
}
std::uint64_t SolveService::requests_expired() const noexcept {
  return expired_.load(std::memory_order_relaxed);
}
std::uint64_t SolveService::requests_shed() const noexcept {
  return shed_.load(std::memory_order_relaxed);
}
std::uint64_t SolveService::requests_retried() const noexcept {
  return retried_.load(std::memory_order_relaxed);
}
std::uint64_t SolveService::requests_degraded() const noexcept {
  return degraded_.load(std::memory_order_relaxed);
}
std::uint64_t SolveService::requests_quarantined() const noexcept {
  return quarantined_.load(std::memory_order_relaxed);
}
std::uint64_t SolveService::batches_bisected() const noexcept {
  return bisections_.load(std::memory_order_relaxed);
}
std::size_t SolveService::peak_queue_depth() const noexcept {
  return admission_.peak_depth();
}

void SolveService::drain_shards(std::vector<Pending>& backlog) {
  for (auto& s : shards_) {
    std::lock_guard lk(s->mu);
    while (!s->q.empty()) {
      backlog.push_back(std::move(s->q.front()));
      s->q.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void SolveService::fulfill_unran(Pending& p, tridiag::SolveCode code) {
  const auto now = Clock::now();
  SolveResult r;
  r.code = code;
  r.x.assign(p.req.system.d().begin(), p.req.system.d().end());
  r.latency_us = us_between(p.arrival, now);
  r.queue_us = r.latency_us;
  r.attempts = p.prior_attempts;
  r.solve_us = p.prior_solve_us;
  h_queue_.record(r.queue_us);
  h_latency_.record(r.latency_us);
  p.promise.set_value(std::move(r));
}

void SolveService::shed(Pending& p) {
  // Tally before fulfilling: a client woken by the future must already
  // see itself in requests_shed().
  m_shed_.add();
  shed_.fetch_add(1, std::memory_order_relaxed);
  fulfill_unran(p, tridiag::SolveCode::overloaded);
}

bool SolveService::evict_lowest_priority(int incoming_priority) {
  // The only multi-shard lock site, always in index order — cannot
  // deadlock against single-shard submit pushes or the batcher's
  // one-shard-at-a-time drain.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& s : shards_) locks.emplace_back(s->mu);
  Shard* vs = nullptr;
  std::size_t vi = 0;
  const Pending* victim = nullptr;
  for (auto& s : shards_) {
    for (std::size_t i = 0; i < s->q.size(); ++i) {
      const Pending& c = s->q[i];
      if (c.req.priority >= incoming_priority) continue;
      if (victim == nullptr || c.req.priority < victim->req.priority ||
          (c.req.priority == victim->req.priority && c.seq > victim->seq)) {
        vs = s.get();
        vi = i;
        victim = &c;
      }
    }
  }
  if (victim == nullptr) return false;
  Pending evictee = std::move(vs->q[vi]);
  vs->q.erase(vs->q.begin() +
              static_cast<std::deque<Pending>::difference_type>(vi));
  locks.clear();  // fulfill outside the shard locks
  queued_.fetch_sub(1, std::memory_order_release);
  admission_.release(evictee.bytes);
  shed(evictee);
  return true;
}

bool SolveService::evict_doomed(Clock::time_point now) {
  const double est = admission_.estimated_delay_us(cfg_.max_batch);
  if (est <= 0.0) return false;  // no latency signal yet — nobody is doomed
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& s : shards_) locks.emplace_back(s->mu);
  Shard* vs = nullptr;
  std::size_t vi = 0;
  const Pending* victim = nullptr;
  double victim_headroom = 0.0;
  for (auto& s : shards_) {
    for (std::size_t i = 0; i < s->q.size(); ++i) {
      const Pending& c = s->q[i];
      if (!c.has_deadline) continue;
      const double headroom = us_between(now, c.deadline);
      if (headroom >= est) continue;  // still expected to make it
      if (victim == nullptr || headroom < victim_headroom) {
        vs = s.get();
        vi = i;
        victim = &c;
        victim_headroom = headroom;
      }
    }
  }
  if (victim == nullptr) return false;
  Pending evictee = std::move(vs->q[vi]);
  vs->q.erase(vs->q.begin() +
              static_cast<std::deque<Pending>::difference_type>(vi));
  locks.clear();
  queued_.fetch_sub(1, std::memory_order_release);
  admission_.release(evictee.bytes);
  shed(evictee);
  return true;
}

void SolveService::expire_overdue(std::vector<Pending>& backlog,
                                  Clock::time_point now) {
  auto dead = std::stable_partition(
      backlog.begin(), backlog.end(),
      [now](const Pending& p) { return !p.has_deadline || now < p.deadline; });
  for (auto it = dead; it != backlog.end(); ++it) {
    admission_.release(it->bytes);
    // Tally before fulfilling: a client woken by the future must already
    // see itself in requests_expired().
    m_expired_.add();
    expired_.fetch_add(1, std::memory_order_relaxed);
    fulfill_unran(*it, tridiag::SolveCode::deadline);
  }
  backlog.erase(dead, backlog.end());
}

void SolveService::dispatch(std::vector<Pending> group) {
  // Bisection halves re-enter here too, so a fault storm that trips the
  // breaker mid-recovery degrades (or sheds) the remaining halves
  // instead of hammering a failing engine — bounded work, structured
  // results either way.
  switch (breaker_.admit(Clock::now())) {
    case CircuitBreaker::Gate::pass:
      dispatch_batch(std::move(group));
      return;
    case CircuitBreaker::Gate::degrade:
      dispatch_degraded(std::move(group));
      return;
    case CircuitBreaker::Gate::shed:
      for (Pending& p : group) shed(p);
      return;
  }
}

void SolveService::dispatch_batch(std::vector<Pending> group) {
  const std::size_t m = group.size();
  const std::size_t n = group.front().req.system.size();
  const std::uint64_t batch_id =
      batches_.fetch_add(1, std::memory_order_relaxed) + 1;
  m_batches_.add();
  if (m == 1) m_solo_batches_.add();
  h_batch_size_.record(static_cast<double>(m));
  obs::gauge("service.batch.occupancy", static_cast<double>(m));

  auto& tracer = obs::SpanTracer::instance();
  obs::SpanScope batch_span("service.batch");
  batch_span.attr("n", obs::JsonValue(static_cast<double>(n)));
  batch_span.attr("occupancy", obs::JsonValue(static_cast<double>(m)));
  batch_span.attr("solver", obs::JsonValue(gpu::solver_name(cfg_.solver)));

  const auto admit = Clock::now();
  const tridiag::Layout layout = coalesced_layout(m, n);
  tridiag::SystemBatch<double> batch(m, n, layout);
  for (std::size_t j = 0; j < m; ++j) {
    const auto& sys = group[j].req.system;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = batch.index(j, i);
      batch.a()[at] = sys.a()[i];
      batch.b()[at] = sys.b()[i];
      batch.c()[at] = sys.c()[i];
      batch.d()[at] = sys.d()[i];
    }
  }

  gpu::SolverRunOptions opts;
  opts.guard = cfg_.guard;
  opts.fallback = cfg_.fallback;
  tridiag::SystemBatch<double> solution;  // written only if a solve ran
  tridiag::BatchStatus status;
  bool solved = false;
  double solve_us = 0.0;
  bool dispatch_failed = false;
  tridiag::SolveCode unran_code = tridiag::SolveCode::bad_argument;

  if (cfg_.resilient) {
    tridiag::ResiliencePolicy policy = gpu::engine_resilience_policy();
    if (cfg_.max_retries >= 0) policy.max_retries = cfg_.max_retries;
    if (!cfg_.fallback_chain.empty()) {
      policy.fallback_chain = cfg_.fallback_chain;
    }
    // Budget from the earliest member deadline: recovery must not keep
    // burning simulated time past the point where the batch's most
    // urgent rider is already late. (Engine --deadline-us still applies
    // when it is tighter.)
    for (const Pending& p : group) {
      if (!p.has_deadline) continue;
      const double remaining = std::max(1.0, us_between(admit, p.deadline));
      if (policy.deadline_us <= 0.0 || remaining < policy.deadline_us) {
        policy.deadline_us = remaining;
      }
    }
    auto res = gpu::run_solver_resilient(cfg_.solver, cfg_.device, batch,
                                         opts, policy, &solution);
    // The resilient pipeline always hands out the assembled batch:
    // solved d for every recovered system, pristine d otherwise.
    solved = solution.num_systems() == m;
    solve_us = res.outcome.time_us;
    status = std::move(res.outcome.status);
    for (const auto& a : res.report.attempts) {
      if (a.reason == tridiag::SolveCode::launch_failed) {
        dispatch_failed = true;
        break;
      }
    }
  } else {
    const auto outcome =
        gpu::run_solver(cfg_.solver, cfg_.device, batch, opts, &solution);
    // run_solver hands out a solution whenever the solve actually ran —
    // including functional_only runs that report supported == false for
    // lack of timing. A pristine (empty) solution batch means the
    // configuration was rejected or the launch failed before running.
    solved = solution.num_systems() == m;
    solve_us = outcome.time_us;
    status = outcome.status;
    dispatch_failed = outcome.launch_failed;
    unran_code = outcome.launch_failed ? tridiag::SolveCode::launch_failed
                                       : tridiag::SolveCode::bad_argument;
  }
  if (dispatch_failed) {
    breaker_.record_failure(Clock::now());
  } else {
    breaker_.record_success();
  }
  h_solve_us_.record(solve_us);
  const bool has_status = status.size() == m;

  const auto done = Clock::now();
  // Feed the brownout delay estimate before fulfilling any future, so a
  // caller that observes a completed request is guaranteed to also
  // observe an EWMA that accounts for its batch.
  admission_.observe_batch_latency(us_between(admit, done));

  std::vector<Pending> redisp;  // launch-failed members to bisect
  for (std::size_t j = 0; j < m; ++j) {
    Pending& p = group[j];
    const tridiag::SolveStatus live =
        solved && has_status ? status[j] : tridiag::SolveStatus{};
    const std::uint32_t own_attempts =
        has_status && status.has_provenance() ? status.attempts(j)
                                              : std::uint32_t{1};

    if (cfg_.resilient && m > 1 &&
        live.code == tridiag::SolveCode::launch_failed) {
      // Blast-radius isolation: this member's launches kept failing
      // inside the coalesced batch. Re-dispatch it in bisected halves
      // from its pristine inputs so one poisoned request cannot fail its
      // co-batched riders; a request that still fails alone is
      // quarantined below on its solo pass.
      p.prior_attempts += own_attempts;
      p.prior_solve_us += solve_us;
      p.saw_failure = true;
      redisp.push_back(std::move(p));
      continue;
    }

    SolveResult r;
    r.batch_id = batch_id;
    r.batch_size = m;
    r.solve_us = p.prior_solve_us + solve_us;
    r.queue_us = us_between(p.arrival, admit);
    r.latency_us = us_between(p.arrival, done);
    r.attempts = p.prior_attempts + own_attempts;
    if (solved) {
      const auto x = solution.system(j).d;
      r.x.resize(n);
      for (std::size_t i = 0; i < n; ++i) r.x[i] = x[i];
      if (has_status) {
        r.code = live.code;
        r.pivot_growth = live.pivot_growth;
        const tridiag::SolveCode det = status.detected(j).code;
        r.recovered = live.code == tridiag::SolveCode::ok &&
                      (p.saw_failure || tridiag::solve_code_severity(det) >
                                            tridiag::solve_code_severity(
                                                live.code));
      }
    } else {
      r.code = unran_code;
      r.x.assign(p.req.system.d().begin(), p.req.system.d().end());
    }
    if (cfg_.resilient && r.code == tridiag::SolveCode::launch_failed) {
      // Solo and still failing after every retry and fallback stage:
      // quarantined — pristine inputs go back with the structured code.
      m_quarantined_.add();
      quarantined_.fetch_add(1, std::memory_order_relaxed);
    }
    if (r.attempts > 1) {
      m_retried_.add();
      retried_.fetch_add(1, std::memory_order_relaxed);
    }
    // In-flight expiry: the answer is delivered but late — upgrade an ok
    // verdict to timed_out; a more severe per-system code is kept.
    if (p.has_deadline && done >= p.deadline &&
        tridiag::solve_code_severity(r.code) <
            tridiag::solve_code_severity(tridiag::SolveCode::timed_out)) {
      r.code = tridiag::SolveCode::timed_out;
    }
    h_queue_.record(r.queue_us);
    h_latency_.record(r.latency_us);
    m_completed_.add();
    completed_.fetch_add(1, std::memory_order_relaxed);

    if (tracer.enabled() && batch_span.id() != 0) {
      obs::Span child;
      child.id = tracer.reserve_id();
      child.parent = batch_span.id();
      child.name = "service.request";
      child.wall_t0_us = p.wall_submit_us >= 0.0
                             ? p.wall_submit_us
                             : tracer.now_wall_us() - r.latency_us;
      child.wall_t1_us = tracer.now_wall_us();
      child.sim_t0_us = tracer.sim_now();
      child.sim_t1_us = tracer.sim_now();
      child.thread_ordinal = tracer.thread_ordinal();
      child.attrs.emplace_back("seq",
                               obs::JsonValue(static_cast<double>(p.seq)));
      child.attrs.emplace_back("code",
                               obs::JsonValue(tridiag::solve_code_name(r.code)));
      tracer.emit(std::move(child));
    }
    p.promise.set_value(std::move(r));
  }

  if (!redisp.empty()) {
    m_bisected_batches_.add();
    bisections_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t half = (redisp.size() + 1) / 2;
    std::vector<Pending> lo, hi;
    lo.reserve(half);
    hi.reserve(redisp.size() - half);
    for (std::size_t j = 0; j < redisp.size(); ++j) {
      (j < half ? lo : hi).push_back(std::move(redisp[j]));
    }
    // Strictly shrinking groups (half < m), so the recursion bottoms out
    // at solo dispatches — which quarantine instead of re-splitting.
    dispatch(std::move(lo));
    if (!hi.empty()) dispatch(std::move(hi));
  }
}

void SolveService::dispatch_degraded(std::vector<Pending> group) {
  const std::size_t m = group.size();
  const std::size_t n = group.front().req.system.size();
  const std::uint64_t batch_id =
      batches_.fetch_add(1, std::memory_order_relaxed) + 1;
  m_batches_.add();
  if (m == 1) m_solo_batches_.add();
  h_batch_size_.record(static_cast<double>(m));
  obs::gauge("service.batch.occupancy", static_cast<double>(m));

  auto& tracer = obs::SpanTracer::instance();
  obs::SpanScope batch_span("service.batch");
  batch_span.attr("n", obs::JsonValue(static_cast<double>(n)));
  batch_span.attr("occupancy", obs::JsonValue(static_cast<double>(m)));
  batch_span.attr("solver", obs::JsonValue("cpu-thomas"));
  batch_span.attr("degraded", obs::JsonValue(true));

  const auto admit = Clock::now();
  const tridiag::Layout layout = coalesced_layout(m, n);
  tridiag::SystemBatch<double> batch(m, n, layout);
  for (std::size_t j = 0; j < m; ++j) {
    const auto& sys = group[j].req.system;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t at = batch.index(j, i);
      batch.a()[at] = sys.a()[i];
      batch.b()[at] = sys.b()[i];
      batch.c()[at] = sys.c()[i];
      batch.d()[at] = sys.d()[i];
    }
  }

  // Open breaker: the simulated GPU is presumed down, so solve on the
  // host-Thomas stage — fault-immune, residual-gated, zero simulated
  // time — and mark every result degraded.
  tridiag::SystemBatch<double> dst = batch.clone();
  tridiag::BatchStatus status(m);
  std::vector<std::size_t> all(m);
  std::iota(all.begin(), all.end(), std::size_t{0});
  tridiag::host_thomas_stage<double>(batch, all, dst, status);
  h_solve_us_.record(0.0);

  const auto done = Clock::now();
  for (std::size_t j = 0; j < m; ++j) {
    Pending& p = group[j];
    SolveResult r;
    r.batch_id = batch_id;
    r.batch_size = m;
    r.solve_us = p.prior_solve_us;  // host stage charges no simulated time
    r.queue_us = us_between(p.arrival, admit);
    r.latency_us = us_between(p.arrival, done);
    r.attempts = p.prior_attempts + status.attempts(j);
    r.code = status[j].code;
    r.pivot_growth = status[j].pivot_growth;
    r.degraded = true;
    r.recovered = r.code == tridiag::SolveCode::ok && p.saw_failure;
    const auto x = dst.system(j).d;
    r.x.resize(n);
    for (std::size_t i = 0; i < n; ++i) r.x[i] = x[i];
    if (r.attempts > 1) {
      m_retried_.add();
      retried_.fetch_add(1, std::memory_order_relaxed);
    }
    if (p.has_deadline && done >= p.deadline &&
        tridiag::solve_code_severity(r.code) <
            tridiag::solve_code_severity(tridiag::SolveCode::timed_out)) {
      r.code = tridiag::SolveCode::timed_out;
    }
    h_queue_.record(r.queue_us);
    h_latency_.record(r.latency_us);
    m_completed_.add();
    completed_.fetch_add(1, std::memory_order_relaxed);
    m_degraded_.add();
    degraded_.fetch_add(1, std::memory_order_relaxed);

    if (tracer.enabled() && batch_span.id() != 0) {
      obs::Span child;
      child.id = tracer.reserve_id();
      child.parent = batch_span.id();
      child.name = "service.request";
      child.wall_t0_us = p.wall_submit_us >= 0.0
                             ? p.wall_submit_us
                             : tracer.now_wall_us() - r.latency_us;
      child.wall_t1_us = tracer.now_wall_us();
      child.sim_t0_us = tracer.sim_now();
      child.sim_t1_us = tracer.sim_now();
      child.thread_ordinal = tracer.thread_ordinal();
      child.attrs.emplace_back("seq",
                               obs::JsonValue(static_cast<double>(p.seq)));
      child.attrs.emplace_back("code",
                               obs::JsonValue(tridiag::solve_code_name(r.code)));
      tracer.emit(std::move(child));
    }
    p.promise.set_value(std::move(r));
  }
  admission_.observe_batch_latency(us_between(admit, done));
}

void SolveService::batcher_main() {
  std::vector<Pending> backlog;
  const auto window = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::micro>(cfg_.batch_window_us));
  for (;;) {
    // Timestamp before draining: the drain walks every shard mutex, and
    // charging that walk against queued deadlines would eat into the
    // dispatch margin (expiry with a slightly stale clock only ever errs
    // toward dispatching, never toward expiring early).
    const auto now = Clock::now();
    drain_shards(backlog);
    expire_overdue(backlog, now);
    obs::gauge("service.queue.depth", static_cast<double>(backlog.size()));

    if (backlog.empty()) {
      if (stop_.load(std::memory_order_acquire) &&
          queued_.load(std::memory_order_acquire) == 0) {
        break;
      }
      std::unique_lock lk(wake_mu_);
      wake_cv_.wait(lk, [this] {
        return queued_.load(std::memory_order_acquire) > 0 ||
               stop_.load(std::memory_order_acquire);
      });
      continue;
    }

    // Open the batch at the oldest pending request; every compatible
    // (same N) request joins its group.
    const auto oldest = std::min_element(
        backlog.begin(), backlog.end(),
        [](const Pending& a, const Pending& b) { return a.seq < b.seq; });
    const std::size_t n = oldest->req.system.size();
    std::size_t group_size = 0;
    auto close = oldest->arrival + window;
    for (const Pending& p : backlog) {
      if (p.req.system.size() != n) continue;
      ++group_size;
      // Deadline-aware admission: never hold the window past the point
      // where a member would expire in-queue. Close a dispatch margin
      // early so the member is launched, not expired, when the wait
      // wakes (see kDeadlineDispatchMargin).
      if (p.has_deadline) {
        const auto latest = p.deadline - kDeadlineDispatchMargin;
        if (latest < close) close = latest;
      }
    }

    const bool admit = stop_.load(std::memory_order_acquire) ||
                       group_size >= cfg_.max_batch || now >= close;
    if (!admit) {
      std::unique_lock lk(wake_mu_);
      wake_cv_.wait_until(lk, close, [this] {
        return queued_.load(std::memory_order_acquire) > 0 ||
               stop_.load(std::memory_order_acquire);
      });
      continue;
    }

    // Pull the group out of the backlog (stable: preserves drain order),
    // then order admission by (priority desc, submission order) and cap
    // at max_batch; overflow members stay queued for the next batch.
    std::vector<Pending> group;
    group.reserve(group_size);
    auto keep = backlog.begin();
    for (auto it = backlog.begin(); it != backlog.end(); ++it) {
      if (it->req.system.size() == n) {
        group.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    backlog.erase(keep, backlog.end());
    std::sort(group.begin(), group.end(), [](const Pending& a,
                                             const Pending& b) {
      if (a.req.priority != b.req.priority) {
        return a.req.priority > b.req.priority;
      }
      return a.seq < b.seq;
    });
    while (group.size() > cfg_.max_batch) {
      backlog.push_back(std::move(group.back()));
      group.pop_back();
    }
    // The members leave the bounded queue here — release their admission
    // reservations only now, so the depth bound also covered the time
    // they sat in this backlog (a hard cap, not a shard-queue-only one).
    for (Pending& p : group) {
      admission_.release(p.bytes);
      p.bytes = 0;
    }
    dispatch(std::move(group));
  }
}

}  // namespace tridsolve::service
