#pragma once
// Circuit breaker for the solve service's dispatch path.
//
// A dispatch-level failure (a coalesced launch that stayed launch_failed
// after the resilient pipeline's retries) costs the whole batch wall
// time; under a fault storm, re-launching batch after batch into a
// failing engine turns one fault into a latency catastrophe for every
// rider. The breaker bounds that blast radius with the classical three
// states:
//
//   closed ──(threshold consecutive failures)──► open
//     ▲                                            │ cooldown elapses
//     └──(probe succeeds)── half_open ◄────────────┘
//              │ probe fails: back to open, fresh cooldown
//
// While open, batches never reach the simulated GPU: they are either
// degraded to the host-Thomas fallback stage (degrade = true, the
// default — answers keep flowing at host speed, marked `degraded`) or
// shed with SolveCode::overloaded and pristine inputs (degrade = false).
// When the cooldown expires the next batch is admitted as a half-open
// probe; one success closes the breaker, one failure re-opens it.
//
// Observability: gauge `service.breaker.state` (0 = closed, 1 =
// half_open, 2 = open) updated on every transition, counters
// `service.breaker.trips` / `service.breaker.resets`.
//
// Thread-safety: the batcher thread is the only caller of admit()/
// record_*() (dispatches are serialized), but all state is behind a
// mutex so tests and metrics readers may inspect it concurrently.

#include <chrono>
#include <cstdint>
#include <mutex>

#include "obs/metrics.hpp"

namespace tridsolve::service {

struct BreakerConfig {
  /// Consecutive dispatch failures that trip the breaker; 0 disables it
  /// (admit() always passes).
  int threshold = 0;
  /// Wall-clock cooldown in the open state before a half-open probe.
  double cooldown_us = 5000.0;
  /// Open-state behavior: true = degrade batches to the host-Thomas
  /// fallback (fault-immune, no simulated launches), false = shed them
  /// with SolveCode::overloaded.
  bool degrade = true;
};

enum class BreakerState { closed, half_open, open };

[[nodiscard]] constexpr const char* breaker_state_name(
    BreakerState s) noexcept {
  switch (s) {
    case BreakerState::closed: return "closed";
    case BreakerState::half_open: return "half_open";
    case BreakerState::open: return "open";
  }
  return "?";
}

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(BreakerConfig cfg);

  /// What the dispatcher should do with the next batch.
  enum class Gate { pass, degrade, shed };

  /// Consult the breaker before a dispatch. In the open state this
  /// transitions to half_open once the cooldown has elapsed (the caller's
  /// batch becomes the probe); otherwise it returns the configured
  /// open-state action.
  [[nodiscard]] Gate admit(Clock::time_point now);

  /// Outcome of a dispatch that admit() passed. A success closes a
  /// half-open breaker and clears the consecutive-failure run; a failure
  /// extends the run and trips (or re-trips) the breaker.
  void record_success();
  void record_failure(Clock::time_point now);

  [[nodiscard]] BreakerState state() const;
  [[nodiscard]] std::uint64_t trips() const;
  [[nodiscard]] std::uint64_t resets() const;
  [[nodiscard]] int consecutive_failures() const;

 private:
  void set_state_locked(BreakerState next);

  BreakerConfig cfg_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::closed;
  int consecutive_ = 0;
  Clock::time_point open_until_{};
  std::uint64_t trips_ = 0;
  std::uint64_t resets_ = 0;
  obs::MetricsRegistry::Counter m_trips_, m_resets_;
};

}  // namespace tridsolve::service
