#include "service/breaker.hpp"

namespace tridsolve::service {

namespace {

/// Gauge encoding documented in docs/SERVICE.md: ordered by how broken
/// the dispatch path is, so dashboards can alert on `> 0`.
[[nodiscard]] double state_gauge_value(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::closed: return 0.0;
    case BreakerState::half_open: return 1.0;
    case BreakerState::open: return 2.0;
  }
  return 0.0;
}

}  // namespace

CircuitBreaker::CircuitBreaker(BreakerConfig cfg)
    : cfg_(cfg),
      m_trips_(obs::counter_handle("service.breaker.trips")),
      m_resets_(obs::counter_handle("service.breaker.resets")) {
  obs::gauge("service.breaker.state", state_gauge_value(state_));
}

void CircuitBreaker::set_state_locked(BreakerState next) {
  if (state_ == next) return;
  state_ = next;
  obs::gauge("service.breaker.state", state_gauge_value(next));
}

CircuitBreaker::Gate CircuitBreaker::admit(Clock::time_point now) {
  if (cfg_.threshold <= 0) return Gate::pass;
  std::lock_guard lk(mu_);
  switch (state_) {
    case BreakerState::closed:
    case BreakerState::half_open:
      // half_open admits the probe batch; its record_* call settles the
      // state before the (serialized) next dispatch consults us again.
      return Gate::pass;
    case BreakerState::open:
      if (now >= open_until_) {
        set_state_locked(BreakerState::half_open);
        return Gate::pass;
      }
      return cfg_.degrade ? Gate::degrade : Gate::shed;
  }
  return Gate::pass;
}

void CircuitBreaker::record_success() {
  if (cfg_.threshold <= 0) return;
  std::lock_guard lk(mu_);
  consecutive_ = 0;
  if (state_ == BreakerState::half_open) {
    ++resets_;
    m_resets_.add();
  }
  set_state_locked(BreakerState::closed);
}

void CircuitBreaker::record_failure(Clock::time_point now) {
  if (cfg_.threshold <= 0) return;
  std::lock_guard lk(mu_);
  ++consecutive_;
  const bool trip = state_ == BreakerState::half_open ||  // failed probe
                    consecutive_ >= cfg_.threshold;
  if (!trip) return;
  open_until_ = now + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::micro>(
                              cfg_.cooldown_us));
  if (state_ != BreakerState::open) {
    ++trips_;
    m_trips_.add();
  }
  set_state_locked(BreakerState::open);
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lk(mu_);
  return state_;
}
std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard lk(mu_);
  return trips_;
}
std::uint64_t CircuitBreaker::resets() const {
  std::lock_guard lk(mu_);
  return resets_;
}
int CircuitBreaker::consecutive_failures() const {
  std::lock_guard lk(mu_);
  return consecutive_;
}

}  // namespace tridsolve::service
