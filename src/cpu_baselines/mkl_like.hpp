#pragma once
// CPU baseline: an MKL-?gtsv-like batched tridiagonal solver.
//
// Two halves:
//  * a *real* solver (`solve_batch`) — LU with partial pivoting per system,
//    the same routine the correctness tests referee against — so the CPU
//    path of every example genuinely runs;
//  * a *timing model* (`CpuModel`) for the paper's Intel i7-975 baseline.
//    This environment has one CPU core and no MKL, so the sequential /
//    multithreaded MKL series of Figs. 12-13 are priced analytically:
//    time = M * (rows * cost_per_row + call overhead) [/ effective threads].
//    The paper itself observes the CPU series is "perfectly linear" in the
//    input size, so a linear model reproduces its shape exactly; the
//    constants are calibrated so the headline double-precision ratios at
//    (M=16K, N=512) match the paper's 49x (sequential) and 8.3x
//    (multithreaded) — see DESIGN.md and EXPERIMENTS.md.

#include <cstddef>

#include "tridiag/layout.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::cpu {

/// The paper's CPU: Intel Core i7-975, 3.33 GHz, 4 cores / 8 threads.
struct CpuSpec {
  const char* name = "i7-975";
  double clock_ghz = 3.33;
  int cores = 4;
  int smt_threads = 8;
  /// Effective parallel speedup of the multithreaded MKL path: the paper's
  /// own ratio of sequential to multithreaded speedups (49/8.3).
  double effective_mt_speedup = 5.9;
  /// Calibrated ?gtsv cost per matrix row, in cycles (LAPACK-style branchy
  /// pivoting loop). Doubles: 66.5; floats run ~15% cheaper.
  double gtsv_cycles_per_row_f64 = 66.5;
  double gtsv_cycles_per_row_f32 = 56.5;
  /// Per-system call overhead (dispatch, workspace setup), microseconds.
  double call_overhead_us = 0.4;
  /// One-off threading fork/join overhead for the multithreaded path.
  double mt_fork_overhead_us = 10.0;
};

/// Timing model for the MKL-like baseline.
class CpuModel {
 public:
  explicit CpuModel(CpuSpec spec = {}) : spec_(spec) {}

  /// Sequential solve time for M systems of n rows, microseconds.
  [[nodiscard]] double sequential_us(std::size_t m, std::size_t n,
                                     bool fp64) const noexcept;

  /// Multithreaded solve time. MKL's out-of-the-box gtsv is not threaded
  /// (paper §IV): parallelism only comes from solving independent systems
  /// on different threads, so M = 1 degenerates to the sequential path.
  [[nodiscard]] double multithreaded_us(std::size_t m, std::size_t n,
                                        bool fp64) const noexcept;

  [[nodiscard]] const CpuSpec& spec() const noexcept { return spec_; }

 private:
  CpuSpec spec_;
};

/// Really solve every system of the batch (solution in d), via LU with
/// partial pivoting. Returns the first non-ok status encountered.
template <typename T>
tridiag::SolveStatus solve_batch(tridiag::SystemBatch<T>& batch);

extern template tridiag::SolveStatus solve_batch<float>(tridiag::SystemBatch<float>&);
extern template tridiag::SolveStatus solve_batch<double>(tridiag::SystemBatch<double>&);

}  // namespace tridsolve::cpu
