#include "cpu_baselines/mkl_like.hpp"

#include <algorithm>

#include "tridiag/lu_pivot.hpp"
#include "util/aligned_buffer.hpp"

namespace tridsolve::cpu {

double CpuModel::sequential_us(std::size_t m, std::size_t n, bool fp64) const noexcept {
  const double cycles_per_row =
      fp64 ? spec_.gtsv_cycles_per_row_f64 : spec_.gtsv_cycles_per_row_f32;
  const double per_system_us =
      static_cast<double>(n) * cycles_per_row / (spec_.clock_ghz * 1e3) +
      spec_.call_overhead_us;
  return static_cast<double>(m) * per_system_us;
}

double CpuModel::multithreaded_us(std::size_t m, std::size_t n, bool fp64) const noexcept {
  if (m < 2) return sequential_us(m, n, fp64);  // gtsv itself is not threaded
  const double speedup =
      std::min(spec_.effective_mt_speedup, static_cast<double>(m));
  return sequential_us(m, n, fp64) / speedup + spec_.mt_fork_overhead_us;
}

template <typename T>
tridiag::SolveStatus solve_batch(tridiag::SystemBatch<T>& batch) {
  const std::size_t n = batch.system_size();
  util::AlignedBuffer<T> scratch(4 * n);
  util::AlignedBuffer<T> x(n);
  tridiag::GtsvWorkspace<T> ws{
      scratch.span().subspan(0, n), scratch.span().subspan(n, n),
      scratch.span().subspan(2 * n, n), scratch.span().subspan(3 * n, n)};

  tridiag::SolveStatus first_bad;
  for (std::size_t m = 0; m < batch.num_systems(); ++m) {
    auto sys = batch.system(m);
    const auto st =
        tridiag::lu_gtsv<T>(sys, tridiag::StridedView<T>(x.span()), ws);
    if (!st.ok() && first_bad.ok()) first_bad = st;
    for (std::size_t i = 0; i < n; ++i) sys.d[i] = x[i];
  }
  return first_bad;
}

template tridiag::SolveStatus solve_batch<float>(tridiag::SystemBatch<float>&);
template tridiag::SolveStatus solve_batch<double>(tridiag::SystemBatch<double>&);

}  // namespace tridsolve::cpu
