#include "apps/adi.hpp"

#include <chrono>
#include <stdexcept>

namespace tridsolve::apps {

template <typename T>
AdiIntegrator<T>::AdiIntegrator(gpusim::DeviceSpec dev, std::size_t nx,
                                std::size_t ny, AdiOptions opts)
    : dev_(std::move(dev)), nx_(nx), ny_(ny), opts_(opts), scratch_(nx * ny) {
  if (nx_ == 0 || ny_ == 0) {
    throw std::invalid_argument("AdiIntegrator: empty grid");
  }
}

template <typename T>
void AdiIntegrator<T>::build_sweep_rhs(std::span<const T> field, bool x_sweep,
                                       tridiag::SystemBatch<T>& batch) const {
  // `field` is row-major (lines x line_len) in the sweep's own
  // orientation: lines are the systems, the cross direction supplies the
  // explicit half (I + r D2) with zero Dirichlet boundaries.
  const std::size_t lines = x_sweep ? ny_ : nx_;
  const std::size_t len = x_sweep ? nx_ : ny_;
  const T r = static_cast<T>(opts_.r);
  for (std::size_t line = 0; line < lines; ++line) {
    auto sys = batch.system(line);
    for (std::size_t i = 0; i < len; ++i) {
      const T u_c = field[line * len + i];
      const T u_lo = line > 0 ? field[(line - 1) * len + i] : T(0);
      const T u_hi = line + 1 < lines ? field[(line + 1) * len + i] : T(0);
      sys.d[i] = u_c + r * (u_lo - T(2) * u_c + u_hi);
    }
  }
}

template <typename T>
void AdiIntegrator<T>::plan_sweep(bool x_sweep, std::span<const T> in,
                                  std::span<T> out, AdiStepReport& report) {
  auto& batch = x_sweep ? xbatch_ : ybatch_;
  const auto& plan = x_sweep ? xplan_ : yplan_;
  const std::size_t lines = x_sweep ? ny_ : nx_;
  const std::size_t len = x_sweep ? nx_ : ny_;
  const auto t0 = std::chrono::steady_clock::now();
  build_sweep_rhs(in, x_sweep, batch);
  plan.solve(batch.d(), batch.d());
  for (std::size_t m = 0; m < lines; ++m) {
    for (std::size_t i = 0; i < len; ++i) {
      out[m * len + i] = batch.d()[batch.index(m, i)];
    }
  }
  const double us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  report.timeline.add_fixed(x_sweep ? "sweep-x:plan" : "sweep-y:plan", us);
}

template <typename T>
AdiStepReport AdiIntegrator<T>::step(std::vector<T>& field) {
  if (field.size() != nx_ * ny_) {
    throw std::invalid_argument("AdiIntegrator::step: field size mismatch");
  }
  AdiStepReport report;
  const T r = static_cast<T>(opts_.r);

  auto make_batch = [&](std::size_t lines, std::size_t len,
                        tridiag::Layout layout) {
    tridiag::SystemBatch<T> batch(lines, len, layout);
    for (std::size_t m = 0; m < lines; ++m) {
      auto sys = batch.system(m);
      for (std::size_t i = 0; i < len; ++i) {
        sys.a[i] = i == 0 ? T(0) : -r;
        sys.b[i] = T(1) + T(2) * r;
        sys.c[i] = i + 1 == len ? T(0) : -r;
      }
    }
    return batch;
  };

  if (opts_.reuse_plans && !plans_ready_) {
    // The sweep matrices never change: factor both once, interleaved so
    // the plan's batched sweeps run lane-contiguous. Later steps only
    // rebuild d — tridiag.plan.batch_factors stays flat while
    // tridiag.plan.batch_solves climbs two per step.
    xbatch_ = make_batch(ny_, nx_, tridiag::Layout::interleaved);
    ybatch_ = make_batch(nx_, ny_, tridiag::Layout::interleaved);
    xplan_.factor(xbatch_);
    yplan_.factor(ybatch_);
    if (!xplan_.ok() || !yplan_.ok()) {
      throw std::runtime_error("AdiIntegrator: sweep matrix factoring failed");
    }
    plans_ready_ = true;
  }

  // --- x sweep: one system per row -----------------------------------
  if (opts_.reuse_plans) {
    plan_sweep(/*x_sweep=*/true, field, field, report);
  } else {
    auto batch = make_batch(ny_, nx_, tridiag::Layout::contiguous);
    build_sweep_rhs(field, /*x_sweep=*/true, batch);
    auto rep = gpu::hybrid_solve(dev_, batch, opts_.solver);
    for (const auto& seg : rep.timeline.segments()) {
      report.timeline.add("sweep-x:" + seg.label, seg.stats);
    }
    for (std::size_t m = 0; m < ny_; ++m) {
      for (std::size_t i = 0; i < nx_; ++i) {
        field[m * nx_ + i] = batch.d()[batch.index(m, i)];
      }
    }
  }

  // --- transpose so the y sweep's systems are contiguous too ----------
  report.timeline.add(
      "transpose:fwd",
      gpu::transpose<T>(dev_, field.data(), scratch_.data(), ny_, nx_,
                        opts_.transpose));

  // --- y sweep on the transposed field (nx lines of ny cells) ---------
  if (opts_.reuse_plans) {
    plan_sweep(/*x_sweep=*/false,
               std::span<const T>(scratch_.data(), nx_ * ny_),
               std::span<T>(scratch_.data(), nx_ * ny_), report);
  } else {
    auto batch = make_batch(nx_, ny_, tridiag::Layout::contiguous);
    build_sweep_rhs(std::span<const T>(scratch_.data(), nx_ * ny_),
                    /*x_sweep=*/false, batch);
    auto rep = gpu::hybrid_solve(dev_, batch, opts_.solver);
    for (const auto& seg : rep.timeline.segments()) {
      report.timeline.add("sweep-y:" + seg.label, seg.stats);
    }
    for (std::size_t m = 0; m < nx_; ++m) {
      for (std::size_t i = 0; i < ny_; ++i) {
        scratch_[m * ny_ + i] = batch.d()[batch.index(m, i)];
      }
    }
  }

  report.timeline.add(
      "transpose:back",
      gpu::transpose<T>(dev_, scratch_.data(), field.data(), nx_, ny_,
                        opts_.transpose));
  return report;
}

template class AdiIntegrator<float>;
template class AdiIntegrator<double>;

}  // namespace tridsolve::apps
