#pragma once
// 2-D ADI (Peaceman-Rachford) diffusion integrator over the simulated
// GPU — the full pipeline the paper's fluid-dynamics applications
// ([2][4][5]) run per time step:
//
//   1. implicit x-sweep: M = ny batched tridiagonal systems of nx
//      unknowns, rows contiguous -> hybrid solver;
//   2. tiled transpose of the field (keeps step 3's systems contiguous
//      and its solves coalesced);
//   3. implicit y-sweep: M = nx systems of ny unknowns;
//   4. transpose back.
//
// The per-step timeline charges every kernel (two batched solves + two
// transposes), so the bench/example level can report where ADI time
// actually goes. Matrices are constant across steps; the right-hand
// sides are rebuilt on the host (they depend on the current field).

#include <cstddef>
#include <span>
#include <vector>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/transpose_kernel.hpp"
#include "gpusim/device_spec.hpp"
#include "tridiag/thomas_plan.hpp"
#include "util/aligned_buffer.hpp"

namespace tridsolve::apps {

struct AdiOptions {
  double r = 0.4;  ///< alpha * dt / h^2 (same spacing both directions)
  gpu::HybridOptions solver;
  gpu::TransposeOptions transpose;
  /// Factor the two sweep matrices once (they are constant across steps)
  /// and run every subsequent sweep through the cached BatchThomasPlan
  /// host path instead of re-eliminating on the device: each step then
  /// only rebuilds right-hand sides. Sweep segments appear as host
  /// (`add_fixed`) timeline entries; transposes still run on the device.
  bool reuse_plans = false;
};

struct AdiStepReport {
  gpusim::Timeline timeline;
  /// Throws std::logic_error when the step ran functional_only — see
  /// Timeline.
  [[nodiscard]] double total_us() const { return timeline.total_us(); }
  [[nodiscard]] double solve_us() const { return timeline.time_with_prefix("sweep"); }
  [[nodiscard]] double transpose_us() const {
    return timeline.time_with_prefix("transpose");
  }
};

/// ADI integrator for u_t = alpha (u_xx + u_yy) on an nx x ny interior
/// grid with homogeneous Dirichlet boundaries.
template <typename T>
class AdiIntegrator {
 public:
  AdiIntegrator(gpusim::DeviceSpec dev, std::size_t nx, std::size_t ny,
                AdiOptions opts = {});

  /// Advance `field` (row-major ny x nx, interior points) one full step.
  AdiStepReport step(std::vector<T>& field);

  [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
  [[nodiscard]] std::size_t ny() const noexcept { return ny_; }

 private:
  void build_sweep_rhs(std::span<const T> field, bool x_sweep,
                       tridiag::SystemBatch<T>& batch) const;
  void plan_sweep(bool x_sweep, std::span<const T> in, std::span<T> out,
                  AdiStepReport& report);

  gpusim::DeviceSpec dev_;
  std::size_t nx_, ny_;
  AdiOptions opts_;
  util::AlignedBuffer<T> scratch_;  ///< transposed field staging
  // Plan-reuse cache (reuse_plans): constant-matrix batches factored once
  // on first step; later steps only rebuild d and run the cached sweeps.
  tridiag::SystemBatch<T> xbatch_, ybatch_;
  tridiag::BatchThomasPlan<T> xplan_, yplan_;
  bool plans_ready_ = false;
};

extern template class AdiIntegrator<float>;
extern template class AdiIntegrator<double>;

}  // namespace tridsolve::apps
