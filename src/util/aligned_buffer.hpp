#pragma once
// Cache-line / SIMD aligned heap buffer.
//
// Batched tridiagonal kernels stream long contiguous arrays; allocating them
// on a 64-byte boundary keeps every row of the SoA layout on its own cache
// line start and makes the simulated 128-byte memory-transaction accounting
// in gpusim deterministic (a segment never straddles an allocation edge).

#include <cstddef>
#include <memory>
#include <span>

namespace tridsolve::util {

/// Default alignment for numeric arrays: the simulated GPU's 128-byte
/// memory-transaction segment (cudaMalloc guarantees at least this on
/// real devices), which is also two x86 cache lines.
inline constexpr std::size_t kDefaultAlignment = 128;

/// Owning, aligned, fixed-size array of trivially-destructible T.
///
/// A minimal RAII vector replacement: never reallocates, never default-
/// initializes more than requested, and exposes itself as std::span.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer is for plain numeric types");

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count, T fill = T{})
      : size_(count), data_(allocate(count)) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = fill;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_.get(), size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_.get(), size_};
  }

  [[nodiscard]] T* begin() noexcept { return data_.get(); }
  [[nodiscard]] T* end() noexcept { return data_.get() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_.get(); }
  [[nodiscard]] const T* end() const noexcept { return data_.get() + size_; }

 private:
  struct Deleter {
    void operator()(T* p) const noexcept { ::operator delete[](p, std::align_val_t{kDefaultAlignment}); }
  };

  static std::unique_ptr<T[], Deleter> allocate(std::size_t count) {
    if (count == 0) return nullptr;
    auto* raw = static_cast<T*>(
        ::operator new[](count * sizeof(T), std::align_val_t{kDefaultAlignment}));
    return std::unique_ptr<T[], Deleter>(raw);
  }

  std::size_t size_ = 0;
  std::unique_ptr<T[], Deleter> data_;
};

/// True if `p` is aligned to `alignment` bytes.
bool is_aligned(const void* p, std::size_t alignment) noexcept;

}  // namespace tridsolve::util
