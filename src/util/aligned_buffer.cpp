#include "util/aligned_buffer.hpp"

#include <cstdint>

namespace tridsolve::util {

bool is_aligned(const void* p, std::size_t alignment) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % alignment == 0;
}

}  // namespace tridsolve::util
