#pragma once
// Minimal command-line flag parser for the bench/example binaries.
//
// Supports `--name=value` and `--name value` forms plus boolean switches.
// Unknown flags are an error so bench sweeps fail loudly instead of
// silently running the default configuration. `--help` prints the
// accepted flags (one per line, machine-parseable — tools/check_docs
// cross-checks them against the README flag reference) and exits 0.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tridsolve::util {

/// Parsed command line: flag map plus positional arguments.
class Cli {
 public:
  /// Parse argv. `known_flags` lists every accepted flag name (without
  /// the leading dashes); anything else throws std::invalid_argument.
  Cli(int argc, const char* const* argv, std::vector<std::string> known_flags);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// The observability flags every bench/example accepts on top of its own:
///   --json <path>         append one JSONL telemetry record per config
///   --trace-json <path>   write a Chrome trace-event (Perfetto) file
///   --metrics-json <path> dump the metrics registry at exit
///   --metrics-prom <path> dump the registry in Prometheus text format
///   --spans-json <path>   enable causal span tracing; write spans JSONL
///   --format {ascii,csv,json}  table output format
///   --csv                 legacy alias for --format csv
///   --sim-threads N       simulator worker threads (0 = default)
///   --instrument MODE     exact | sampled | functional_only
///   --vector {on,off}     vectorized lane fast path for non-instrumented
///                         blocks (default on; off = scalar raw twins)
///   --repeat N            repetitions per configuration (with warmup)
///   --check-hazards [MODE] shared-memory hazard detection: detect | fatal
///   --fault-seed N        fault-injection seed (deterministic site choice)
///   --fault-rate R        per-site injection probability in [0,1]
///   --fault-kinds LIST    comma list: flip,shared,nan,launch,timeout | all
///   --deadline-us US      resilient-solve simulated-time budget (0 = off)
///   --max-retries N       resilient-solve re-dispatches per stage
///   --plan-file FILE      preload a plan-cache calibration file
///                         (bench_autotune --out format)
///   --autotune [on|off]   measure candidate plans for cold shapes
///                         instead of trusting the Table III heuristic
/// Returns `flags` with those names appended, for the Cli constructor.
[[nodiscard]] std::vector<std::string> with_obs_flags(
    std::vector<std::string> flags);

}  // namespace tridsolve::util
