#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace tridsolve::util {

Cli::Cli(int argc, const char* const* argv,
         std::vector<std::string> known_flags) {
  auto is_known = [&known_flags](const std::string& name) {
    return std::find(known_flags.begin(), known_flags.end(), name) !=
           known_flags.end();
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    if (arg == "help") {
      // One flag per line, sorted: tools/check_docs parses this output to
      // cross-check the README flag reference, so keep the format stable.
      std::vector<std::string> sorted = known_flags;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      std::printf("usage: %s [--flag[=value]]...\nflags:\n",
                  argc > 0 ? argv[0] : "prog");
      for (const std::string& f : sorted) std::printf("  --%s\n", f.c_str());
      std::exit(0);
    }
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--flag value` form: consume the next token unless it is a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";  // boolean switch
      }
    }
    if (!is_known(name))
      throw std::invalid_argument("unknown flag: --" + name);
    flags_[name] = std::move(value);
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) > 0; }

std::optional<std::string> Cli::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto v = get(name);
  return v ? std::stoll(*v) : fallback;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  return v ? std::stod(*v) : fallback;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::string> with_obs_flags(std::vector<std::string> flags) {
  for (const char* name :
       {"json", "trace-json", "metrics-json", "metrics-prom", "spans-json",
        "format", "csv", "sim-threads", "instrument", "vector", "repeat",
        "check-hazards", "fault-seed", "fault-rate", "fault-kinds",
        "deadline-us", "max-retries", "plan-file", "autotune"}) {
    if (std::find(flags.begin(), flags.end(), name) == flags.end()) {
      flags.emplace_back(name);
    }
  }
  return flags;
}

}  // namespace tridsolve::util
