#pragma once
// Deterministic, seedable PRNG utilities for workload generation.
//
// xoshiro256++ is used instead of std::mt19937 because it is an order of
// magnitude faster for bulk array fills and has a trivially splittable seed
// sequence, which keeps multi-array workload generation reproducible across
// platforms and standard-library versions (std distributions are not
// implementation-portable).

#include <cstdint>
#include <span>

namespace tridsolve::util {

/// xoshiro256++ engine (public-domain algorithm by Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Jump ahead by 2^128 steps: used to derive independent streams.
  void long_jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Uniform double in [lo, hi).
double uniform(Xoshiro256& rng, double lo, double hi) noexcept;

/// Uniform integer in [lo, hi] (inclusive).
std::int64_t uniform_int(Xoshiro256& rng, std::int64_t lo,
                         std::int64_t hi) noexcept;

/// Fill `out` with uniforms in [lo, hi).
void fill_uniform(Xoshiro256& rng, std::span<float> out, float lo, float hi) noexcept;
void fill_uniform(Xoshiro256& rng, std::span<double> out, double lo, double hi) noexcept;

}  // namespace tridsolve::util
