#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tridsolve::util {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);

  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(sq / static_cast<double>(s.count - 1)) : 0.0;

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

namespace {

template <typename T>
double max_abs_diff_impl(std::span<const T> a, std::span<const T> b) {
  assert(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return worst;
}

template <typename T>
double max_rel_diff_impl(std::span<const T> a, std::span<const T> b) {
  assert(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ref = std::max(1.0, std::abs(static_cast<double>(b[i])));
    worst = std::max(
        worst, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])) / ref);
  }
  return worst;
}

}  // namespace

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  return max_abs_diff_impl(a, b);
}
double max_abs_diff(std::span<const float> a, std::span<const float> b) {
  return max_abs_diff_impl(a, b);
}
double max_rel_diff(std::span<const double> a, std::span<const double> b) {
  return max_rel_diff_impl(a, b);
}
double max_rel_diff(std::span<const float> a, std::span<const float> b) {
  return max_rel_diff_impl(a, b);
}

double l2_norm(std::span<const double> v) {
  double sq = 0.0;
  for (double x : v) sq += x * x;
  return std::sqrt(sq);
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace tridsolve::util
