#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tridsolve::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::to_ascii() const {
  // Column widths from header + all rows.
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&width](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&out, &width](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << cell << std::string(width[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_json() const {
  // Local JSON string quoting; util sits below the obs library.
  auto quote = [](std::string_view s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  };
  auto emit_row = [&quote](std::ostringstream& out,
                           const std::vector<std::string>& row) {
    out << '[';
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << quote(row[i]);
    }
    out << ']';
  };

  std::ostringstream out;
  out << "{\"title\":" << quote(title_) << ",\"header\":";
  emit_row(out, header_);
  out << ",\"rows\":[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r) out << ',';
    emit_row(out, rows_[r]);
  }
  out << "]}";
  return out.str();
}

std::string csv_escape(std::string_view cell) {
  if (cell.find_first_of(",\"\n") == std::string_view::npos)
    return std::string(cell);
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace tridsolve::util
