#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace tridsolve::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) { return std::to_string(v); }

std::string Table::to_ascii() const {
  // Column widths from header + all rows.
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&width](const std::vector<std::string>& row) {
    if (row.size() > width.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&out, &width](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << cell << std::string(width[i] - cell.size() + 2, ' ');
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string csv_escape(std::string_view cell) {
  if (cell.find_first_of(",\"\n") == std::string_view::npos)
    return std::string(cell);
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace tridsolve::util
