#pragma once
// ASCII table / CSV emitter used by every bench binary to print
// paper-style rows ("the same rows/series the paper reports").

#include <string>
#include <string_view>
#include <vector>

namespace tridsolve::util {

/// Column-aligned text table with an optional title, printable as ASCII
/// or CSV. Cells are strings; numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Set the header row. Resets nothing else.
  void set_header(std::vector<std::string> header);

  /// Append a fully-formed row.
  void add_row(std::vector<std::string> row);

  /// Format helpers.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);

  /// Render with aligned columns and a rule under the header.
  [[nodiscard]] std::string to_ascii() const;

  /// Render as CSV (no alignment, comma-separated, quoted when needed).
  [[nodiscard]] std::string to_csv() const;

  /// Render as a JSON object: {"title": ..., "header": [...], "rows":
  /// [[...], ...]}. Cells stay strings — the table holds pre-formatted
  /// text, and lossy re-parsing into numbers is the reader's decision.
  [[nodiscard]] std::string to_json() const;

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a CSV cell if it contains a comma, quote or newline.
std::string csv_escape(std::string_view cell);

}  // namespace tridsolve::util
