#include "util/random.hpp"

namespace tridsolve::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: seeds the xoshiro state from a single 64-bit value, as
// recommended by the xoshiro authors (avoids correlated low-entropy states).
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  for (auto& word : s_) word = splitmix64(seed);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double uniform(Xoshiro256& rng, double lo, double hi) noexcept {
  // 53 high bits -> [0,1) with full double resolution.
  const double unit = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

std::int64_t uniform_int(Xoshiro256& rng, std::int64_t lo,
                         std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(rng() % range);
}

void fill_uniform(Xoshiro256& rng, std::span<float> out, float lo, float hi) noexcept {
  for (auto& v : out) v = static_cast<float>(uniform(rng, lo, hi));
}

void fill_uniform(Xoshiro256& rng, std::span<double> out, double lo, double hi) noexcept {
  for (auto& v : out) v = uniform(rng, lo, hi);
}

}  // namespace tridsolve::util
