#pragma once
// Small statistics helpers used by benches and accuracy reports.

#include <cstddef>
#include <span>

namespace tridsolve::util {

/// Summary of a sample of real values.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double median = 0.0;
};

/// Compute a Summary; copies the input to find the median.
Summary summarize(std::span<const double> values);

/// max_i |a[i] - b[i]|; spans must be the same length.
double max_abs_diff(std::span<const double> a, std::span<const double> b);
double max_abs_diff(std::span<const float> a, std::span<const float> b);

/// max_i |a[i] - b[i]| / max(1, |b[i]|)  (mixed relative/absolute error).
double max_rel_diff(std::span<const double> a, std::span<const double> b);
double max_rel_diff(std::span<const float> a, std::span<const float> b);

/// Euclidean norm.
double l2_norm(std::span<const double> v);

/// Geometric mean; values must be positive.
double geomean(std::span<const double> values);

}  // namespace tridsolve::util
