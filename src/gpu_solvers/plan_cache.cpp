#include "gpu_solvers/plan_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "gpu_solvers/transition.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"

namespace tridsolve::gpu {

namespace {

// FNV-1a over the key's fields, byte by byte — field-wise so struct
// padding never leaks into the hash.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
}

[[nodiscard]] std::uint64_t key_hash(const PlanKey& k) noexcept {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, k.device);
  fnv_mix(h, k.m);
  fnv_mix(h, k.n);
  fnv_mix(h, k.elem_size);
  fnv_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(k.force_k)));
  fnv_mix(h, static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(k.pthomas_threads)));
  fnv_mix(h, k.sub_tile_c);
  fnv_mix(h, k.blocks_per_system);
  fnv_mix(h, k.systems_per_block);
  fnv_mix(h, (std::uint64_t{k.variant} << 16) |
                 (std::uint64_t{k.use_cost_model} << 8) | k.fuse);
  return h;
}

/// The kernel's own hard cap (tiled_pcr_kernel.cpp kMaxK), re-stated here
/// so a forced k is rejected at plan time with a structured error instead
/// of deep inside the launch path.
constexpr unsigned kKernelMaxK = 16;

void validate_forced_k(int force_k, std::size_t n,
                       const gpusim::DeviceSpec& dev) {
  const auto fail = [&](const char* why) {
    std::ostringstream os;
    os << "plan_hybrid: forced k=" << force_k << " invalid for N=" << n
       << " on " << dev.name << ": " << why;
    throw std::invalid_argument(os.str());
  };
  const auto k = static_cast<unsigned>(force_k);
  if (k == 0) return;  // k = 0 is always legal: skip PCR, p-Thomas only
  if (k > kKernelMaxK) fail("k exceeds the kernel maximum (16)");
  const std::size_t threads = std::size_t{1} << k;
  if (threads > static_cast<std::size_t>(dev.max_threads_per_block)) {
    fail("2^k threads exceed the device block limit");
  }
  if (threads > n) fail("2^k exceeds the system size");
}

struct PlanMetrics {
  obs::MetricsRegistry::Counter clamped =
      obs::counter_handle("transition.clamped");

  static PlanMetrics& instance() {
    static PlanMetrics m;
    return m;
  }
};

}  // namespace

std::size_t PlanKeyHash::operator()(const PlanKey& k) const noexcept {
  return static_cast<std::size_t>(key_hash(k));
}

PlanKey make_plan_key(const gpusim::DeviceSpec& dev, std::size_t m,
                      std::size_t n, std::size_t elem_size,
                      const HybridOptions& opts) {
  PlanKey key;
  key.device = dev.fingerprint();
  key.m = m;
  key.n = n;
  key.elem_size = static_cast<std::uint32_t>(elem_size);
  key.force_k = opts.force_k;
  key.pthomas_threads = opts.pthomas_block_threads;
  key.sub_tile_c = std::max<std::uint64_t>(1, opts.sub_tile_c);
  key.blocks_per_system = opts.blocks_per_system;
  key.systems_per_block = opts.systems_per_block;
  key.variant = static_cast<std::uint8_t>(opts.variant);
  key.use_cost_model = opts.use_cost_model ? 1 : 0;
  key.fuse = opts.fuse ? 1 : 0;
  return key;
}

SolvePlan plan_hybrid(const gpusim::DeviceSpec& dev, std::size_t m,
                      std::size_t n, std::size_t elem_size,
                      const HybridOptions& opts) {
  (void)elem_size;  // planning is shape-driven; elem_size only keys the cache
  SolvePlan plan;
  plan.c = std::max<std::size_t>(1, opts.sub_tile_c);
  plan.pthomas_block_threads = opts.pthomas_block_threads;
  if (opts.force_k >= 0) {
    plan.source = PlanSource::forced;
  } else if (opts.use_cost_model) {
    plan.source = PlanSource::cost_model;
  } else {
    plan.source = PlanSource::heuristic;
  }
  if (m == 0 || n == 0) return plan;  // degenerate batch: nothing to plan

  // --- transition point (Table III / Table II / forced) --------------------
  unsigned k = 0;
  if (opts.force_k >= 0) {
    validate_forced_k(opts.force_k, n, dev);
    k = static_cast<unsigned>(opts.force_k);
  } else if (opts.use_cost_model) {
    k = model_best_k(m, n, dev);
  } else {
    k = heuristic_k(m, n);
  }
  if (opts.force_k < 0) {
    // Non-forced sources clamp instead of throwing: the model can pick
    // 2^k > N for non-power-of-two N (bit_width rounds n up).
    unsigned fitted = k;
    while (fitted > 0 && (std::size_t{1} << fitted) > n) --fitted;
    if (fitted != k) PlanMetrics::instance().clamped.add();
    k = fitted;
  }
  plan.k = k;

  if (k == 0) {
    plan.variant = WindowVariant::one_block_per_system;  // p-Thomas only
    return plan;
  }

  // --- window variant + launch geometry (Fig. 11) --------------------------
  WindowVariant variant =
      opts.variant == WindowVariant::auto_select
          ? (m < static_cast<std::size_t>(2 * dev.num_sms)
                 ? WindowVariant::split_system
                 : WindowVariant::one_block_per_system)
          : opts.variant;
  if (opts.fuse && variant == WindowVariant::split_system) {
    variant = WindowVariant::one_block_per_system;  // fusion needs whole systems
  }
  plan.variant = variant;

  if (variant == WindowVariant::split_system) {
    std::size_t regions = opts.blocks_per_system;
    if (regions == 0) {
      const std::size_t sub_tile = plan.c << k;
      const std::size_t target_blocks =
          static_cast<std::size_t>(4 * dev.num_sms);
      const std::size_t max_regions =
          std::max<std::size_t>(1, n / std::max<std::size_t>(1, 4 * sub_tile));
      regions = std::clamp<std::size_t>((target_blocks + m - 1) / m, 1,
                                        max_regions);
    }
    plan.blocks_per_system = regions;
  } else if (variant == WindowVariant::multi_system_per_block) {
    plan.systems_per_block = opts.systems_per_block == 0
                                 ? std::min<std::size_t>(4, m)
                                 : opts.systems_per_block;
  }
  return plan;
}

PlanCache& PlanCache::instance() {
  static PlanCache cache;
  return cache;
}

PlanCache::PlanCache() {
  if (const char* path = std::getenv("TRIDSOLVE_PLAN_FILE")) {
    try {
      load_calibration(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "warning: TRIDSOLVE_PLAN_FILE ignored: %s\n",
                   e.what());
    }
  }
}

PlanCache::Shard& PlanCache::shard_for(const PlanKey& key) const noexcept {
  return shards_[key_hash(key) % kShards];
}

void PlanCache::publish_size() const noexcept {
  obs::gauge("gpu.plan_cache.size", static_cast<double>(size()));
}

PlanCache::Result PlanCache::plan(const PlanKey& key,
                                  const std::function<SolvePlan()>& make) {
  if (ScopedBypass::active()) return {make(), false};
  {
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lk(sh.mu);
    auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      it->second.last_use = ++sh.tick;
      hits_.add();
      return {it->second.plan, true};
    }
  }
  misses_.add();
  // Compute outside the lock: planning (and under --autotune, a candidate
  // measurement sweep) can be slow. Two threads racing on the same cold
  // key both compute the deterministic plan; one insert wins.
  const SolvePlan computed = make();
  insert(key, computed);
  return {computed, false};
}

std::optional<SolvePlan> PlanCache::lookup(const PlanKey& key) const {
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lk(sh.mu);
  auto it = sh.map.find(key);
  if (it == sh.map.end()) return std::nullopt;
  if (!it->second.plan.fits(key.n)) {
    // Should be unreachable (insert shape-checks) — defense against a
    // future mutation path handing out a plan that cannot run.
    sh.map.erase(it);
    rejected_.add();
    return std::nullopt;
  }
  it->second.last_use = ++sh.tick;
  return it->second.plan;
}

bool PlanCache::insert(const PlanKey& key, const SolvePlan& plan) {
  if (!plan.fits(key.n) ||
      (key.force_k >= 0 && plan.k != static_cast<unsigned>(key.force_k))) {
    rejected_.add();
    return false;
  }
  {
    Shard& sh = shard_for(key);
    std::lock_guard<std::mutex> lk(sh.mu);
    auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      it->second.plan = plan;
      it->second.last_use = ++sh.tick;
      return true;
    }
    if (sh.map.size() >= kCapacityPerShard) {
      auto victim = sh.map.begin();
      for (auto cand = sh.map.begin(); cand != sh.map.end(); ++cand) {
        if (cand->second.last_use < victim->second.last_use) victim = cand;
      }
      sh.map.erase(victim);
      evictions_.add();
    }
    sh.map.emplace(key, Entry{plan, ++sh.tick});
    insertions_.add();
  }
  publish_size();
  return true;
}

std::size_t PlanCache::load_calibration(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("plan cache: cannot open calibration file: " +
                             path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto doc = obs::JsonValue::parse(buf.str());
  if (!doc || !doc->is_object()) {
    throw std::runtime_error("plan cache: calibration file is not JSON: " +
                             path);
  }
  const auto* schema = doc->find("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "tridsolve-plan-v1") {
    throw std::runtime_error(
        "plan cache: calibration schema is not tridsolve-plan-v1: " + path);
  }
  // The fingerprint is a decimal *string*: it uses all 64 bits and a JSON
  // number (double) round-trip would corrupt it above 2^53.
  const auto* fp = doc->find("fingerprint");
  const auto* plans = doc->find("plans");
  if (!fp || !fp->is_string() || !plans || !plans->is_array()) {
    throw std::runtime_error(
        "plan cache: calibration file missing fingerprint/plans: " + path);
  }
  std::uint64_t fingerprint = 0;
  try {
    fingerprint = std::stoull(fp->as_string());
  } catch (const std::exception&) {
    throw std::runtime_error("plan cache: calibration fingerprint is not a "
                             "decimal string: " + path);
  }

  const auto num = [&path](const obs::JsonValue& entry, const char* field,
                           double fallback, bool required) {
    const auto* v = entry.find(field);
    if (!v || !v->is_number()) {
      if (required) {
        throw std::runtime_error(std::string("plan cache: calibration entry "
                                             "missing numeric field '") +
                                 field + "': " + path);
      }
      return fallback;
    }
    return v->as_number();
  };

  std::size_t accepted = 0;
  for (const auto& entry : plans->as_array()) {
    if (!entry.is_object()) {
      throw std::runtime_error("plan cache: calibration entry is not an "
                               "object: " + path);
    }
    PlanKey key;  // calibration plans answer the *default* plan request
    key.device = fingerprint;
    key.m = static_cast<std::uint64_t>(num(entry, "m", 0, true));
    key.n = static_cast<std::uint64_t>(num(entry, "n", 0, true));
    key.elem_size =
        static_cast<std::uint32_t>(num(entry, "elem_size", 8, false));

    SolvePlan plan;
    plan.k = static_cast<unsigned>(num(entry, "k", 0, true));
    plan.c = static_cast<std::size_t>(num(entry, "c", 1, false));
    plan.blocks_per_system =
        static_cast<std::size_t>(num(entry, "blocks_per_system", 0, false));
    plan.systems_per_block =
        static_cast<std::size_t>(num(entry, "systems_per_block", 1, false));
    plan.source = PlanSource::calibrated;
    plan.tuned_us = num(entry, "tuned_us", 0.0, false);

    const auto* variant = entry.find("variant");
    const auto parsed = variant && variant->is_string()
                            ? window_variant_from_name(variant->as_string())
                            : std::nullopt;
    if (!parsed || *parsed == WindowVariant::auto_select) {
      rejected_.add();  // unknown/auto variant: entry cannot pin a plan
      continue;
    }
    plan.variant = *parsed;
    if (insert(key, plan)) ++accepted;  // insert() rejects unfit shapes
  }
  return accepted;
}

void PlanCache::clear() {
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.map.clear();
    sh.tick = 0;
  }
  publish_size();
}

std::size_t PlanCache::size() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    total += sh.map.size();
  }
  return total;
}

void configure_plan_cache_from_cli(const util::Cli& cli) {
  if (const auto path = cli.get("plan-file")) {
    PlanCache::instance().load_calibration(*path);
  }
  if (cli.has("autotune")) {
    PlanCache::instance().set_autotune(cli.get_bool("autotune", true));
  }
}

}  // namespace tridsolve::gpu
