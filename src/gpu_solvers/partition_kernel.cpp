#include "gpu_solvers/partition_kernel.hpp"

#include <stdexcept>
#include <vector>

#include "util/aligned_buffer.hpp"

namespace tridsolve::gpu {

namespace {

template <typename T>
struct M2 {
  T m00, m01, m10, m11;
};
template <typename T>
struct V2 {
  T v0, v1;
};

template <typename T>
M2<T> mul_mm(const M2<T>& a, const M2<T>& b) {
  return {a.m00 * b.m00 + a.m01 * b.m10, a.m00 * b.m01 + a.m01 * b.m11,
          a.m10 * b.m00 + a.m11 * b.m10, a.m10 * b.m01 + a.m11 * b.m11};
}
template <typename T>
V2<T> mul_mv(const M2<T>& a, const V2<T>& v) {
  return {a.m00 * v.v0 + a.m01 * v.v1, a.m10 * v.v0 + a.m11 * v.v1};
}

}  // namespace

template <typename T>
PartitionGpuReport partition_solve_gpu(const gpusim::DeviceSpec& dev,
                                       tridiag::SystemBatch<T>& batch,
                                       const PartitionGpuOptions& opts) {
  const std::size_t m_count = batch.num_systems();
  const std::size_t n = batch.system_size();
  const std::size_t p = opts.packet;
  if (p < 2) throw std::invalid_argument("partition_solve_gpu: packet < 2");
  if (p > 64) throw std::invalid_argument("partition_solve_gpu: packet > 64");
  PartitionGpuReport report;
  if (m_count == 0 || n == 0) return report;

  const std::size_t packets = (n + p - 1) / p;
  const std::size_t total_packets = m_count * packets;

  // Global workspace (device arrays on hardware).
  util::AlignedBuffer<T> cl(m_count * n), al(m_count * n), dl(m_count * n);
  util::AlignedBuffer<T> au(total_packets), cu(total_packets), du(total_packets);
  util::AlignedBuffer<T> xf(total_packets), xl(total_packets);  // boundary x

  const int bt = opts.block_threads;
  auto grid_for = [&](std::size_t items) {
    return (items + static_cast<std::size_t>(bt) - 1) / static_cast<std::size_t>(bt);
  };

  // ---- stage 1: per-packet register sweeps ------------------------------
  const auto sweeps = gpusim::launch(dev, {grid_for(total_packets), bt},
                                     [&](gpusim::BlockContext& ctx) {
    ctx.phase([&](gpusim::ThreadCtx& t) {
      const std::size_t id = ctx.block_id() * static_cast<std::size_t>(bt) +
                             static_cast<std::size_t>(t.tid());
      if (id >= total_packets) return;
      const std::size_t m = id / packets;
      const std::size_t pk = id % packets;
      const std::size_t s = pk * p;
      const std::size_t e = std::min(s + p, n);
      auto sys = batch.system(m);

      // Register packing: the packet's rows live in thread-local storage.
      T ra[64], rb[64], rc[64], rd[64];  // p <= 64 enforced below
      for (std::size_t j = s; j < e; ++j) {
        ra[j - s] = t.load(sys.a.ptr(j));
        rb[j - s] = t.load(sys.b.ptr(j));
        rc[j - s] = t.load(sys.c.ptr(j));
        rd[j - s] = t.load(sys.d.ptr(j));
      }
      t.end_round();

      // Downward elimination: x_j = dl - cl x_{j+1} - al x_{s-1}.
      T cl_prev{}, al_prev{}, dl_prev{};
      for (std::size_t j = 0; j < e - s; ++j) {
        T inv;
        if (j == 0) {
          inv = T(1) / rb[0];
          cl_prev = rc[0] * inv;
          al_prev = ra[0] * inv;
          dl_prev = rd[0] * inv;
          t.flops<T>(3);
          t.divs<T>(1);
        } else {
          const T denom = rb[j] - ra[j] * cl_prev;
          inv = T(1) / denom;
          cl_prev = rc[j] * inv;
          al_prev = -ra[j] * al_prev * inv;
          dl_prev = (rd[j] - ra[j] * dl_prev) * inv;
          t.flops<T>(8);
          t.divs<T>(1);
        }
        t.store(cl.data() + m * n + s + j, cl_prev);
        t.store(al.data() + m * n + s + j, al_prev);
        t.store(dl.data() + m * n + s + j, dl_prev);
      }

      // Upward elimination: x_s = du - au x_{s-1} - cu x_e.
      T au_nx{}, cu_nx{}, du_nx{};
      for (std::size_t jj = e - s; jj-- > 0;) {
        if (jj == e - s - 1) {
          const T inv = T(1) / rb[jj];
          au_nx = ra[jj] * inv;
          cu_nx = rc[jj] * inv;
          du_nx = rd[jj] * inv;
          t.flops<T>(3);
          t.divs<T>(1);
        } else {
          const T denom = rb[jj] - rc[jj] * au_nx;
          const T inv = T(1) / denom;
          du_nx = (rd[jj] - rc[jj] * du_nx) * inv;
          cu_nx = -rc[jj] * cu_nx * inv;
          au_nx = ra[jj] * inv;
          t.flops<T>(8);
          t.divs<T>(1);
        }
      }
      t.store(au.data() + id, au_nx);
      t.store(cu.data() + id, cu_nx);
      t.store(du.data() + id, du_nx);
      t.end_round();
    });
  });
  report.timeline.add("packet-sweeps", sweeps);

  // ---- stage 2: reduced 2x2-block Thomas, one thread per system ---------
  const auto reduced = gpusim::launch(dev, {grid_for(m_count), bt},
                                      [&](gpusim::BlockContext& ctx) {
    ctx.phase([&](gpusim::ThreadCtx& t) {
      const std::size_t m = ctx.block_id() * static_cast<std::size_t>(bt) +
                            static_cast<std::size_t>(t.tid());
      if (m >= m_count) return;
      // Forward block sweep; Cp/Fp spill to the xf/xl arrays' roles is
      // avoided by keeping them in (modeled) local memory.
      std::vector<M2<T>> cp(packets);
      std::vector<V2<T>> fp(packets);
      M2<T> cp_prev{T(0), T(0), T(0), T(0)};
      V2<T> fp_prev{T(0), T(0)};
      for (std::size_t pk = 0; pk < packets; ++pk) {
        const std::size_t last = std::min(pk * p + p, n) - 1;
        const T au_t = t.load(au.data() + m * packets + pk);
        const T cu_t = t.load(cu.data() + m * packets + pk);
        const T du_t = t.load(du.data() + m * packets + pk);
        const T al_l = t.load(al.data() + m * n + last);
        const T cl_l = t.load(cl.data() + m * n + last);
        const T dl_l = t.load(dl.data() + m * n + last);
        const M2<T> at{T(0), au_t, T(0), al_l};
        const M2<T> ct = pk + 1 < packets ? M2<T>{cu_t, T(0), cl_l, T(0)}
                                          : M2<T>{T(0), T(0), T(0), T(0)};
        const V2<T> ft{du_t, dl_l};
        const M2<T> acp = mul_mm(at, cp_prev);
        const M2<T> denom{T(1) - acp.m00, -acp.m01, -acp.m10, T(1) - acp.m11};
        const T det = denom.m00 * denom.m11 - denom.m01 * denom.m10;
        const T inv = T(1) / det;
        const M2<T> denom_inv{denom.m11 * inv, -denom.m01 * inv,
                              -denom.m10 * inv, denom.m00 * inv};
        cp[pk] = mul_mm(denom_inv, ct);
        const V2<T> afp = mul_mv(at, fp_prev);
        fp[pk] = mul_mv(denom_inv, V2<T>{ft.v0 - afp.v0, ft.v1 - afp.v1});
        cp_prev = cp[pk];
        fp_prev = fp[pk];
        t.flops<T>(40);
        t.divs<T>(1);
        t.end_round();
      }
      V2<T> u_next{T(0), T(0)};
      for (std::size_t pk = packets; pk-- > 0;) {
        const V2<T> cun = mul_mv(cp[pk], u_next);
        u_next = V2<T>{fp[pk].v0 - cun.v0, fp[pk].v1 - cun.v1};
        t.store(xf.data() + m * packets + pk, u_next.v0);
        t.store(xl.data() + m * packets + pk, u_next.v1);
        t.flops<T>(8);
        t.end_round();
      }
    });
  });
  report.timeline.add("reduced-solve", reduced);

  // ---- stage 3: per-packet back-substitution -----------------------------
  const auto backsub = gpusim::launch(dev, {grid_for(total_packets), bt},
                                      [&](gpusim::BlockContext& ctx) {
    ctx.phase([&](gpusim::ThreadCtx& t) {
      const std::size_t id = ctx.block_id() * static_cast<std::size_t>(bt) +
                             static_cast<std::size_t>(t.tid());
      if (id >= total_packets) return;
      const std::size_t m = id / packets;
      const std::size_t pk = id % packets;
      const std::size_t s = pk * p;
      const std::size_t e = std::min(s + p, n);
      auto sys = batch.system(m);

      const T x_left = pk > 0 ? t.load(xl.data() + id - 1) : T(0);
      const T x_first = t.load(xf.data() + id);
      const T x_last = t.load(xl.data() + id);
      t.end_round();
      t.store(sys.d.ptr(s), x_first);
      t.store(sys.d.ptr(e - 1), x_last);
      T x_next = x_last;
      for (std::size_t j = e - 1; j-- > s + 1;) {
        const T x = t.load(dl.data() + m * n + j) -
                    t.load(cl.data() + m * n + j) * x_next -
                    t.load(al.data() + m * n + j) * x_left;
        t.flops<T>(4);
        t.store(sys.d.ptr(j), x);
        x_next = x;
        t.end_round();
      }
    });
  });
  report.timeline.add("back-substitution", backsub);
  return report;
}

template PartitionGpuReport partition_solve_gpu<float>(const gpusim::DeviceSpec&,
                                                       tridiag::SystemBatch<float>&,
                                                       const PartitionGpuOptions&);
template PartitionGpuReport partition_solve_gpu<double>(
    const gpusim::DeviceSpec&, tridiag::SystemBatch<double>&,
    const PartitionGpuOptions&);

}  // namespace tridsolve::gpu
