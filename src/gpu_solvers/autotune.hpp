#pragma once
// Empirical plan autotuner (ROADMAP item 4, the §V auto-tuning remark
// turned into infrastructure): instead of trusting the paper's static
// Table III heuristic, measure candidate (k, window variant, sub-tile c)
// plans for one (M, N) cell in the simulator and keep the fastest.
//
// Measurement discipline: every candidate runs on a freshly synthesized
// deterministic diagonally-dominant batch under exact instrumentation
// with faults and hazard checking off and the PlanCache bypassed
// (PlanCache::ScopedBypass), so simulated times are reproducible and the
// sweep leaves no cache/metric residue on the steady-state path. The
// default-request (heuristic) plan is always in the candidate set, so
// `best_us <= heuristic_us` holds by construction; a candidate only
// replaces the incumbent on strictly smaller simulated time, making the
// winner deterministic.
//
// Consumers: bench_autotune sweeps cells offline and writes a
// tridsolve-plan-v1 calibration JSON for PlanCache::load_calibration;
// `--autotune` lets hybrid_solve run one cell sweep online at first
// sight of a cold default-request shape.

#include <cstddef>
#include <vector>

#include "gpu_solvers/plan_cache.hpp"
#include "gpusim/device_spec.hpp"

namespace tridsolve::gpu {

/// One measured candidate (for reporting; `plan` is fully resolved).
struct AutotuneCandidate {
  SolvePlan plan;
  double time_us = 0.0;
};

struct AutotuneResult {
  /// Fastest plan found; source = PlanSource::autotuned, tuned_us set.
  SolvePlan best;
  double best_us = 0.0;
  unsigned heuristic_k = 0;     ///< what Table III would have chosen
  double heuristic_us = 0.0;    ///< its simulated time (>= best_us)
  std::vector<AutotuneCandidate> candidates;  ///< every plan measured
};

/// Sweep candidate plans for an M x N batch of element type T on `dev`.
/// Deterministic: same (dev, m, n, T) always returns the same winner.
/// Requires m >= 1 and n >= 1 (nothing to measure otherwise).
template <typename T>
AutotuneResult autotune_cell(const gpusim::DeviceSpec& dev, std::size_t m,
                             std::size_t n);

extern template AutotuneResult autotune_cell<float>(const gpusim::DeviceSpec&,
                                                    std::size_t, std::size_t);
extern template AutotuneResult autotune_cell<double>(const gpusim::DeviceSpec&,
                                                     std::size_t, std::size_t);

}  // namespace tridsolve::gpu
