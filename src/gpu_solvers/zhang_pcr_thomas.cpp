#include "gpu_solvers/zhang_pcr_thomas.hpp"

#include <stdexcept>

#include "gpu_solvers/inshared_block.hpp"

namespace tridsolve::gpu {

std::size_t zhang_max_rows(const gpusim::DeviceSpec& dev, std::size_t elem_size) {
  return dev.shared_mem_per_block / (4 * elem_size);
}

bool zhang_fits(const gpusim::DeviceSpec& dev, std::size_t n, std::size_t elem_size) {
  return n <= zhang_max_rows(dev, elem_size);
}

template <typename T>
gpusim::LaunchStats zhang_solve(const gpusim::DeviceSpec& dev,
                                tridiag::SystemBatch<T>& batch,
                                int block_threads) {
  const std::size_t n = batch.system_size();
  if (!zhang_fits(dev, n, sizeof(T))) {
    throw std::invalid_argument(
        "zhang_solve: system does not fit in shared memory (n=" +
        std::to_string(n) + ", max=" +
        std::to_string(zhang_max_rows(dev, sizeof(T))) + ")");
  }

  return gpusim::launch(dev, {batch.num_systems(), block_threads},
                        [&](gpusim::BlockContext& ctx) {
    auto rows = ctx.shared<ShRow<T>>(n);
    auto sys = batch.system(ctx.block_id());
    const auto tcount = static_cast<std::size_t>(block_threads);

    // Coalesced load of the whole system.
    ctx.phase([&](gpusim::ThreadCtx& t) {
      for (std::size_t i = static_cast<std::size_t>(t.tid()); i < n; i += tcount) {
        rows[i] = ShRow<T>{t.load(sys.a.ptr(i)), t.load(sys.b.ptr(i)),
                           t.load(sys.c.ptr(i)), t.load(sys.d.ptr(i))};
      }
    });

    std::size_t split = 1;
    while (split < tcount && split < n) {
      inshared_pcr_step(ctx, std::span<ShRow<T>>(rows.data(), n), split);
      split *= 2;
    }
    inshared_pthomas(ctx, std::span<ShRow<T>>(rows.data(), n),
                     std::min(split, n));

    ctx.phase([&](gpusim::ThreadCtx& t) {
      for (std::size_t i = static_cast<std::size_t>(t.tid()); i < n; i += tcount) {
        t.store(sys.d.ptr(i), rows[i].d);
      }
    });
  });
}

template gpusim::LaunchStats zhang_solve<float>(const gpusim::DeviceSpec&,
                                                tridiag::SystemBatch<float>&, int);
template gpusim::LaunchStats zhang_solve<double>(const gpusim::DeviceSpec&,
                                                 tridiag::SystemBatch<double>&, int);

}  // namespace tridsolve::gpu
