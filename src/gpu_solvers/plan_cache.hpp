#pragma once
// Plan cache for the hybrid solver (ROADMAP item 4): memoize the outcome
// of planning — transition point k, window variant, sub-tile c, launch
// geometry — per (device, shape, request) so repeated-shape workloads
// plan once and solve many times, and so an offline autotuner
// (gpu_solvers/autotune.hpp, bench_autotune) can preload empirically
// measured plans from a calibration file.
//
// Contracts:
//  * Thread-safe: the cache is shard-locked (16 shards, per-shard mutex);
//    lookups and inserts from concurrent solves never block each other on
//    different shards. Planning itself runs outside the locks — two
//    threads racing on the same cold key both compute the (deterministic)
//    plan and one insert wins; both solves use identical plans.
//  * Bit-transparent: a cached SolvePlan pins exactly the values cold
//    planning computes, so cache-hit solves are bitwise-identical to
//    cold solves, in solution and in simulated time (pinned by
//    tests/test_plan_cache.cpp across the whole solver registry).
//  * Shape-checked: insert() and lookup() reject any plan that does not
//    fit its key (stale calibration entry, corrupted file) — a SolvePlan
//    can never be applied to a mismatched PlanKey. Rejections count in
//    gpu.plan_cache.rejected.
//  * Metrics: gpu.plan_cache.{hits,misses,evictions,insertions,rejected}
//    counters plus a gpu.plan_cache.size gauge.
//
// Calibration files (written by bench_autotune --out, schema-checked by
// tools/validate_telemetry --plan) preload plans for the *default*
// request (no forced k, no explicit variant/c) via --plan-file on any
// bench/example or the TRIDSOLVE_PLAN_FILE environment variable.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpusim/device_spec.hpp"
#include "obs/metrics.hpp"

namespace tridsolve::util {
class Cli;
}

namespace tridsolve::gpu {

/// Identity of one planning problem: device fingerprint, batch shape,
/// element size and the full plan-affecting request signature from
/// HybridOptions. Two solves with equal keys are guaranteed to plan
/// identically, so a cached plan is exact, never approximate.
struct PlanKey {
  std::uint64_t device = 0;  ///< gpusim::DeviceSpec::fingerprint()
  std::uint64_t m = 0;       ///< number of systems
  std::uint64_t n = 0;       ///< system size
  std::uint32_t elem_size = sizeof(double);

  // Request signature (every HybridOptions field that can change a plan).
  std::int32_t force_k = -1;
  std::int32_t pthomas_threads = 128;
  std::uint64_t sub_tile_c = 1;
  std::uint64_t blocks_per_system = 0;
  std::uint64_t systems_per_block = 0;
  std::uint8_t variant = 0;  ///< WindowVariant as an integer
  std::uint8_t use_cost_model = 0;
  std::uint8_t fuse = 0;

  [[nodiscard]] bool operator==(const PlanKey&) const noexcept = default;
};

struct PlanKeyHash {
  [[nodiscard]] std::size_t operator()(const PlanKey& k) const noexcept;
};

/// A fully resolved plan: everything hybrid_solve derives before touching
/// the batch. `variant` is never auto_select here.
struct SolvePlan {
  unsigned k = 0;
  WindowVariant variant = WindowVariant::one_block_per_system;
  std::size_t c = 1;                  ///< sub-tile multiplier, S = c * 2^k
  std::size_t blocks_per_system = 0;  ///< split_system region count (else 0)
  std::size_t systems_per_block = 1;  ///< windows per block (multi variant)
  int pthomas_block_threads = 128;
  PlanSource source = PlanSource::heuristic;
  double tuned_us = 0.0;  ///< autotuner's measured simulated time (0 = n/a)

  /// Shape check: can this plan legally solve an (m, n) batch? 2^k
  /// reduced systems need at least one row each.
  [[nodiscard]] bool fits(std::uint64_t n) const noexcept {
    return k < 31 && (n >> k) >= 1;
  }
};

/// The plan-affecting request key for a batch shape and options set.
[[nodiscard]] PlanKey make_plan_key(const gpusim::DeviceSpec& dev,
                                    std::size_t m, std::size_t n,
                                    std::size_t elem_size,
                                    const HybridOptions& opts);

/// Pure planning function: replicates exactly what hybrid_solve used to
/// derive inline (Table III heuristic / Table II model / forced k, the
/// Fig. 11 variant pick, split-system region count, multi-system windows
/// per block). Throws std::invalid_argument when a *forced* k is out of
/// range for the shape or device (2^k > N, or 2^k threads exceed a
/// block); non-forced sources clamp instead (transition.clamped counts).
[[nodiscard]] SolvePlan plan_hybrid(const gpusim::DeviceSpec& dev,
                                    std::size_t m, std::size_t n,
                                    std::size_t elem_size,
                                    const HybridOptions& opts);

/// Process-wide, shard-locked plan cache. See file header for contracts.
class PlanCache {
 public:
  struct Result {
    SolvePlan plan;
    bool hit = false;  ///< plan came from the cache (or a calibration file)
  };

  static PlanCache& instance();

  /// The steady-state entry point: return the cached plan for `key`, or
  /// compute one with `make`, insert it, and return it. Under an active
  /// ScopedBypass the cache is not consulted or touched (the autotuner
  /// measures candidates without polluting steady-state metrics).
  Result plan(const PlanKey& key, const std::function<SolvePlan()>& make);

  /// Shape-checked lookup; nullopt on miss (does not count hit/miss
  /// metrics — plan() is the metered path).
  [[nodiscard]] std::optional<SolvePlan> lookup(const PlanKey& key) const;

  /// Shape-checked insert; returns false (and counts
  /// gpu.plan_cache.rejected) when the plan does not fit the key.
  bool insert(const PlanKey& key, const SolvePlan& plan);

  /// Preload plans from a calibration JSON file (bench_autotune --out
  /// format). Entries are keyed for the default request of the file's
  /// device fingerprint; entries that fail the shape check are rejected
  /// (counted, not fatal). Returns the number of plans accepted. Throws
  /// std::runtime_error on an unreadable or malformed file.
  std::size_t load_calibration(const std::string& path);

  void clear();
  [[nodiscard]] std::size_t size() const;

  /// --autotune: plan cold tunable shapes by measuring candidates in the
  /// simulator instead of trusting the Table III heuristic.
  void set_autotune(bool on) noexcept {
    autotune_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool autotune_enabled() const noexcept {
    return autotune_.load(std::memory_order_relaxed);
  }

  /// While alive on this thread, plan() computes without reading or
  /// writing the cache. The autotuner wraps candidate measurements in
  /// this so they neither hit preloaded plans nor count as misses.
  class ScopedBypass {
   public:
    ScopedBypass() noexcept { ++depth(); }
    ~ScopedBypass() { --depth(); }
    ScopedBypass(const ScopedBypass&) = delete;
    ScopedBypass& operator=(const ScopedBypass&) = delete;

    [[nodiscard]] static bool active() noexcept { return depth() > 0; }

   private:
    static int& depth() noexcept {
      thread_local int d = 0;
      return d;
    }
  };

 private:
  PlanCache();

  struct Entry {
    SolvePlan plan;
    std::uint64_t last_use = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<PlanKey, Entry, PlanKeyHash> map;
    std::uint64_t tick = 0;
  };

  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kCapacityPerShard = 256;

  [[nodiscard]] Shard& shard_for(const PlanKey& key) const noexcept;
  void publish_size() const noexcept;

  mutable Shard shards_[kShards];
  std::atomic<bool> autotune_{false};

  obs::MetricsRegistry::Counter hits_ =
      obs::counter_handle("gpu.plan_cache.hits");
  obs::MetricsRegistry::Counter misses_ =
      obs::counter_handle("gpu.plan_cache.misses");
  obs::MetricsRegistry::Counter evictions_ =
      obs::counter_handle("gpu.plan_cache.evictions");
  obs::MetricsRegistry::Counter insertions_ =
      obs::counter_handle("gpu.plan_cache.insertions");
  obs::MetricsRegistry::Counter rejected_ =
      obs::counter_handle("gpu.plan_cache.rejected");
};

/// Apply the shared plan flags: --plan-file PATH preloads a calibration
/// file into the PlanCache; --autotune {on,off} switches online
/// autotuning for cold tunable shapes. Called by bench::Telemetry and
/// quickstart alongside gpusim::configure_engine_from_cli.
void configure_plan_cache_from_cli(const util::Cli& cli);

}  // namespace tridsolve::gpu
