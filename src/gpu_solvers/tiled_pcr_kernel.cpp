#include "gpu_solvers/tiled_pcr_kernel.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "gpusim/vector_engine.hpp"
#include "tridiag/pcr.hpp"

namespace tridsolve::gpu {

namespace {

/// Upper bound on cfg.k used to size per-window tail arrays. 2^16 block
/// threads is far beyond any DeviceSpec block limit, so this never bites
/// real configurations; it exists so window state is trivially copyable
/// (fixed-size tail array) and can live in pooled launch scratch.
constexpr unsigned kMaxK = 16;

/// One row in simulated shared memory.
template <typename T>
struct SRow {
  T a, b, c, d;
};

template <typename T>
constexpr SRow<T> identity_srow() noexcept {
  return {T(0), T(1), T(0), T(0)};
}

/// Guard check for one PCR elimination in shared memory: wraps the shared
/// tridiag::detail::guard_pcr_combine on SRow operands. Read-only.
template <typename T>
inline void guard_srow_combine(tridiag::SolveStatus& st, const SRow<T>& lo,
                               const SRow<T>& mid, const SRow<T>& hi,
                               std::size_t pos) noexcept {
  tridiag::detail::guard_pcr_combine(
      st, tridiag::Row<T>{lo.a, lo.b, lo.c, lo.d},
      tridiag::Row<T>{mid.a, mid.b, mid.c, mid.d},
      tridiag::Row<T>{hi.a, hi.b, hi.c, hi.d}, pos);
}

/// Guard check for one fused Thomas-forward pivot (same rule as the
/// p-Thomas kernel): zero/NaN/Inf denominator flags zero_pivot at `pos`
/// (first offence wins); otherwise the growth estimate absorbs the row.
template <typename T>
inline void guard_fused_pivot(tridiag::SolveStatus& st, const SRow<T>& row,
                              T denom, std::size_t pos) noexcept {
  if (!(denom != T(0)) || !std::isfinite(static_cast<double>(denom))) {
    if (st.code == tridiag::SolveCode::ok) {
      st.code = tridiag::SolveCode::zero_pivot;
      st.index = pos;
    }
    return;
  }
  const double scale = std::max({std::abs(static_cast<double>(row.a)),
                                 std::abs(static_cast<double>(row.b)),
                                 std::abs(static_cast<double>(row.c))});
  const double ratio = scale / std::abs(static_cast<double>(denom));
  if (ratio > st.pivot_growth) st.pivot_growth = ratio;
}

}  // namespace

std::size_t tiled_pcr_window_shared_bytes(unsigned k, std::size_t c,
                                          std::size_t elem_size) {
  const std::size_t s = c << k;
  const std::size_t rows = 2 * s + 2 * tridiag::pcr_halo(k);
  return rows * 4 * elem_size;
}

template <typename T>
TiledPcrStats tiled_pcr_kernel(const gpusim::DeviceSpec& dev,
                               std::span<const TiledPcrWork<T>> work,
                               const TiledPcrConfig& cfg,
                               std::span<tridiag::SolveStatus> window_guard) {
  if (cfg.k == 0) throw std::invalid_argument("tiled_pcr_kernel: k must be >= 1");
  if (cfg.k > kMaxK) {
    throw std::invalid_argument("tiled_pcr_kernel: k exceeds supported maximum");
  }
  if (!window_guard.empty() && window_guard.size() != work.size()) {
    throw std::invalid_argument(
        "tiled_pcr_kernel: window_guard/work size mismatch");
  }
  const bool guarding = !window_guard.empty();
  const int threads = 1 << cfg.k;
  if (threads > dev.max_threads_per_block) {
    throw std::invalid_argument("tiled_pcr_kernel: 2^k exceeds block limit");
  }
  const std::size_t S = cfg.c << cfg.k;                       // sub-tile rows
  const std::ptrdiff_t halo = static_cast<std::ptrdiff_t>(tridiag::pcr_halo(cfg.k));
  const std::size_t warm = (static_cast<std::size_t>(halo) + S - 1) / S;

  if (cfg.fuse_thomas_forward) {
    for (const auto& w : work) {
      if (w.r0 != 0 || w.r1 != w.sys.size()) {
        throw std::invalid_argument(
            "tiled_pcr_kernel: fusion requires whole-system windows");
      }
    }
  }
  for (const auto& w : work) {
    const bool aliases = w.out.a.data() == w.sys.a.data();
    if (aliases && (w.r0 != 0 || w.r1 != w.sys.size())) {
      throw std::invalid_argument(
          "tiled_pcr_kernel: split-system windows must not write in place "
          "(halo data race)");
    }
  }

  const std::size_t G = std::max<std::size_t>(1, cfg.systems_per_block);
  const std::size_t grid = (work.size() + G - 1) / G;

  TiledPcrStats stats;
  stats.windows = work.size();
  for (const auto& w : work) {
    const std::size_t len = w.r1 - w.r0;
    stats.rows_total += len;
    const std::size_t tiles = (len + S - 1) / S;
    if (tiles > 1) stats.sub_tile_boundaries += tiles - 1;
  }
  stats.halo_loads_avoided =
      stats.sub_tile_boundaries * tridiag::pcr_halo(cfg.k);
  stats.redundant_elims_avoided =
      stats.sub_tile_boundaries * tridiag::pcr_redundant_elims(cfg.k);

  stats.launch = gpusim::launch(dev, {grid, threads}, [&](gpusim::BlockContext& ctx) {
    // ---- Window state for this block -----------------------------------
    struct Window {
      TiledPcrWork<T> w{};
      std::ptrdiff_t P = 0;     // load cursor (start of current sub-tile)
      std::size_t iters = 0;    // total iterations for this window
      std::span<SRow<T>> buf[2]{};         // ping-pong level batches
      // tails[j]: level-j tail, 2^{j+1} rows. Fixed-size array (not a
      // vector) so Window is trivially copyable and can live in the
      // per-launch lane pool instead of a heap vector.
      std::array<std::span<SRow<T>>, kMaxK> tails{};
      tridiag::SolveStatus guard_st{};     // per-window pivot guard (if guarding)
    };
    const std::size_t first = ctx.block_id() * G;
    const std::size_t count = std::min(G, work.size() - std::min(work.size(), first));
    if (count == 0 || first >= work.size()) return;

    // Blocks run concurrently; accumulate locally and publish once at
    // block end (commutative integer adds keep the totals deterministic).
    std::size_t block_row_loads = 0;
    std::size_t block_eliminations = 0;

    if (!ctx.recording() && !ctx.hazard_checking() && !ctx.fault_checking() &&
        !guarding && ctx.vector_enabled()) {
      // Vectorized raw twin: windows of a block share no data, so each
      // runs to completion as straight-line loops over the whole sub-tile
      // batch — no per-thread phase dispatch. Element order within every
      // loop matches the instrumented path's (idx ascending enumerates the
      // same (cc, tid) work items; the fused forward recurrence per tid
      // still sees its rows in ascending order), all reads come from the
      // opposite ping-pong buffer or the tail cache, and the arithmetic is
      // untouched — outputs and the row-load/elimination tallies are
      // bit-identical to the recorded path (tests/test_vector_engine.cpp).
      gpusim::detail::note_vector_blocks(1.0);
      for (std::size_t g = 0; g < count; ++g) {
        const TiledPcrWork<T>& w = work[first + g];
        std::ptrdiff_t P = static_cast<std::ptrdiff_t>(w.r0) -
                           static_cast<std::ptrdiff_t>(warm * S);
        const std::size_t len = w.r1 - w.r0;
        const std::size_t iters =
            warm + (len + static_cast<std::size_t>(halo) + S - 1) / S;
        const std::span<SRow<T>> buf[2] = {ctx.shared<SRow<T>>(S),
                                           ctx.shared<SRow<T>>(S)};
        std::array<std::span<SRow<T>>, kMaxK> tails{};
        for (unsigned j = 0; j < cfg.k; ++j) {
          tails[j] = ctx.shared<SRow<T>>(std::size_t{2} << j);
          for (SRow<T>& r : tails[j]) r = identity_srow<T>();
        }
        const std::span<T> cp = ctx.lane_buffer<T>(
            cfg.fuse_thomas_forward ? static_cast<std::size_t>(threads) : 0);
        const std::span<T> dp = ctx.lane_buffer<T>(
            cfg.fuse_thomas_forward ? static_cast<std::size_t>(threads) : 0);
        const auto n = static_cast<std::ptrdiff_t>(w.sys.size());
        for (std::size_t iter = 0; iter < iters; ++iter) {
          // LOAD: level-0 batch into buf[0].
          {
            SRow<T>* const b0 = buf[0].data();
            for (std::size_t idx = 0; idx < S; ++idx) {
              const std::ptrdiff_t pos = P + static_cast<std::ptrdiff_t>(idx);
              if (pos >= 0 && pos < n) {
                const auto u = static_cast<std::size_t>(pos);
                b0[idx] = SRow<T>{*w.sys.a.ptr(u), *w.sys.b.ptr(u),
                                  *w.sys.c.ptr(u), *w.sys.d.ptr(u)};
                ++block_row_loads;
              } else {
                b0[idx] = identity_srow<T>();
              }
            }
          }
          // k PCR levels: combine, then save the level j-1 tail.
          for (unsigned j = 1; j <= cfg.k; ++j) {
            const std::size_t reach = std::size_t{1} << (j - 1);
            const std::size_t span_j = std::size_t{2} << (j - 1);
            const std::span<SRow<T>> src = buf[(j - 1) & 1u];
            const std::span<SRow<T>> dst = buf[j & 1u];
            const std::span<SRow<T>> tail = tails[j - 1];
            auto read = [&](std::ptrdiff_t rel) -> const SRow<T>& {
              return rel >= 0 ? src[static_cast<std::size_t>(rel)]
                              : tail[static_cast<std::size_t>(
                                    rel + static_cast<std::ptrdiff_t>(span_j))];
            };
            for (std::size_t i = 0; i < S; ++i) {
              const auto idx = static_cast<std::ptrdiff_t>(i);
              const SRow<T>& lo = read(idx - static_cast<std::ptrdiff_t>(span_j));
              const SRow<T>& mid = read(idx - static_cast<std::ptrdiff_t>(reach));
              const SRow<T>& hi = read(idx);
              const std::ptrdiff_t pos =
                  P - (static_cast<std::ptrdiff_t>(span_j) - 1) + idx;
              const T k1 = mid.a / lo.b;
              const T k2 = mid.c / hi.b;
              dst[i] = SRow<T>{-lo.a * k1, mid.b - lo.c * k1 - hi.a * k2,
                               -hi.c * k2, mid.d - lo.d * k1 - hi.d * k2};
              if (pos >= 0 && pos < n) ++block_eliminations;
            }
            for (std::size_t tid = 0; tid < span_j; ++tid) {
              tail[tid] = src[S - span_j + tid];
            }
          }
          // STORE: level-k batch back to global (or fused forward).
          {
            const std::span<SRow<T>> out = buf[cfg.k & 1u];
            const auto r0 = static_cast<std::ptrdiff_t>(w.r0);
            const auto r1 = static_cast<std::ptrdiff_t>(w.r1);
            for (std::size_t idx = 0; idx < S; ++idx) {
              const std::ptrdiff_t pos =
                  P - halo + static_cast<std::ptrdiff_t>(idx);
              if (pos < r0 || pos >= r1) continue;
              const auto u = static_cast<std::size_t>(pos);
              const SRow<T>& row = out[idx];
              if (cfg.fuse_thomas_forward) {
                const std::size_t tid = idx % static_cast<std::size_t>(threads);
                const T denom = row.b - cp[tid] * row.a;
                const T inv = T(1) / denom;
                cp[tid] = row.c * inv;
                dp[tid] = (row.d - dp[tid] * row.a) * inv;
                *w.out.c.ptr(u) = cp[tid];
                *w.out.d.ptr(u) = dp[tid];
              } else {
                *w.out.a.ptr(u) = row.a;
                *w.out.b.ptr(u) = row.b;
                *w.out.c.ptr(u) = row.c;
                *w.out.d.ptr(u) = row.d;
              }
            }
          }
          P += static_cast<std::ptrdiff_t>(S);
        }
      }
      std::atomic_ref<std::size_t>(stats.row_loads)
          .fetch_add(block_row_loads, std::memory_order_relaxed);
      std::atomic_ref<std::size_t>(stats.eliminations)
          .fetch_add(block_eliminations, std::memory_order_relaxed);
      return;
    }

    const std::span<Window> win = ctx.lane_buffer<Window>(count);
    std::size_t max_iters = 0;
    for (std::size_t g = 0; g < count; ++g) {
      auto& wd = win[g];
      wd.w = work[first + g];
      wd.P = static_cast<std::ptrdiff_t>(wd.w.r0) -
             static_cast<std::ptrdiff_t>(warm * S);
      const std::size_t len = wd.w.r1 - wd.w.r0;
      wd.iters = warm + (len + static_cast<std::size_t>(halo) + S - 1) / S;
      wd.buf[0] = ctx.shared<SRow<T>>(S);
      wd.buf[1] = ctx.shared<SRow<T>>(S);
      for (unsigned j = 0; j < cfg.k; ++j) {
        wd.tails[j] = ctx.shared<SRow<T>>(std::size_t{2} << j);
      }
      max_iters = std::max(max_iters, wd.iters);
    }

    // "Registers" of the fused Thomas forward: per thread, per window.
    // Pool-backed: zero-filled by lane_buffer, matching the T(0) carries.
    const std::span<T> fwd_cp =
        ctx.lane_buffer<T>(count * static_cast<std::size_t>(threads));
    const std::span<T> fwd_dp =
        ctx.lane_buffer<T>(count * static_cast<std::size_t>(threads));

    // ---- Init: identity tails (lead-in state of Fig. 10) ----------------
    ctx.phase([&](gpusim::ThreadCtx& t) {
      for (std::size_t g = 0; g < count; ++g) {
        for (unsigned j = 0; j < cfg.k; ++j) {
          auto tail = win[g].tails[j];
          for (std::size_t i = static_cast<std::size_t>(t.tid()); i < tail.size();
               i += static_cast<std::size_t>(threads)) {
            t.note_swrite(tail[i]);
            tail[i] = identity_srow<T>();
          }
        }
      }
    });

    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      // ---- LOAD: level-0 batch into buf[0]; one memory round ------------
      ctx.phase([&](gpusim::ThreadCtx& t) {
        for (std::size_t g = 0; g < count; ++g) {
          auto& wd = win[g];
          if (iter >= wd.iters) continue;
          const auto n = static_cast<std::ptrdiff_t>(wd.w.sys.size());
          for (std::size_t cc = 0; cc < cfg.c; ++cc) {
            const std::size_t idx = cc * static_cast<std::size_t>(threads) +
                                    static_cast<std::size_t>(t.tid());
            const std::ptrdiff_t pos = wd.P + static_cast<std::ptrdiff_t>(idx);
            t.note_swrite(wd.buf[0][idx]);
            if (pos >= 0 && pos < n) {
              const auto u = static_cast<std::size_t>(pos);
              wd.buf[0][idx] = SRow<T>{t.load(wd.w.sys.a.ptr(u)),
                                       t.load(wd.w.sys.b.ptr(u)),
                                       t.load(wd.w.sys.c.ptr(u)),
                                       t.load(wd.w.sys.d.ptr(u))};
              ++block_row_loads;
            } else {
              wd.buf[0][idx] = identity_srow<T>();
            }
          }
        }
      });

      // ---- k PCR levels, each: combine phase + tail-save phase ----------
      for (unsigned j = 1; j <= cfg.k; ++j) {
        const std::size_t reach = std::size_t{1} << (j - 1);  // 2^{j-1}
        const std::size_t span_j = std::size_t{2} << (j - 1); // 2^j
        const unsigned src_sel = (j - 1) & 1u;
        const unsigned dst_sel = j & 1u;

        ctx.phase([&](gpusim::ThreadCtx& t) {
          for (std::size_t g = 0; g < count; ++g) {
            auto& wd = win[g];
            if (iter >= wd.iters) continue;
            auto src = wd.buf[src_sel];
            auto dst = wd.buf[dst_sel];
            auto tail = wd.tails[j - 1];
            // Read level j-1 at batch-relative index `rel`; rel < 0 comes
            // from the tail cache holding the previous sub-tile's last
            // 2^j values.
            auto read = [&](std::ptrdiff_t rel) -> const SRow<T>& {
              return rel >= 0 ? src[static_cast<std::size_t>(rel)]
                              : tail[static_cast<std::size_t>(
                                    rel + static_cast<std::ptrdiff_t>(span_j))];
            };
            for (std::size_t cc = 0; cc < cfg.c; ++cc) {
              const auto idx = static_cast<std::ptrdiff_t>(
                  cc * static_cast<std::size_t>(threads) +
                  static_cast<std::size_t>(t.tid()));
              const SRow<T>& lo = read(idx - static_cast<std::ptrdiff_t>(span_j));
              const SRow<T>& mid = read(idx - static_cast<std::ptrdiff_t>(reach));
              const SRow<T>& hi = read(idx);
              t.note_sread(lo);
              t.note_sread(mid);
              t.note_sread(hi);
              // Position of the row this elimination produces (used for the
              // redundancy bookkeeping and guard attribution below).
              const std::ptrdiff_t pos =
                  wd.P - (static_cast<std::ptrdiff_t>(span_j) - 1) + idx;
              const bool real_row =
                  pos >= 0 && pos < static_cast<std::ptrdiff_t>(wd.w.sys.size());
              if (guarding && real_row) {
                // Read-only divisor check; the elimination below is unchanged.
                guard_srow_combine(wd.guard_st, lo, mid, hi,
                                   static_cast<std::size_t>(pos));
              }
              // PCR elimination (Eqs. 5-6).
              const T k1 = mid.a / lo.b;
              const T k2 = mid.c / hi.b;
              t.note_swrite(dst[static_cast<std::size_t>(idx)]);
              dst[static_cast<std::size_t>(idx)] =
                  SRow<T>{-lo.a * k1, mid.b - lo.c * k1 - hi.a * k2, -hi.c * k2,
                          mid.d - lo.d * k1 - hi.d * k2};
              t.flops<T>(10);
              t.divs<T>(2);
              // Count only eliminations of real rows for the redundancy
              // bookkeeping (identity warm-up/drain rows are free lanes).
              if (real_row) {
                ++block_eliminations;
              }
            }
          }
        });

        // Save the level j-1 tail for the next sub-tile before buffer
        // (j-1)&1 is overwritten by level j+1.
        ctx.phase([&](gpusim::ThreadCtx& t) {
          for (std::size_t g = 0; g < count; ++g) {
            auto& wd = win[g];
            if (iter >= wd.iters) continue;
            const auto tid = static_cast<std::size_t>(t.tid());
            if (tid < span_j) {
              t.note_sread(wd.buf[src_sel][S - span_j + tid]);
              t.note_swrite(wd.tails[j - 1][tid]);
              wd.tails[j - 1][tid] = wd.buf[src_sel][S - span_j + tid];
            }
          }
        });
      }

      // ---- STORE: level-k batch back to global (or fused forward) -------
      ctx.phase([&](gpusim::ThreadCtx& t) {
        for (std::size_t g = 0; g < count; ++g) {
          auto& wd = win[g];
          if (iter >= wd.iters) continue;
          auto out = wd.buf[cfg.k & 1u];
          for (std::size_t cc = 0; cc < cfg.c; ++cc) {
            const std::size_t idx = cc * static_cast<std::size_t>(threads) +
                                    static_cast<std::size_t>(t.tid());
            const std::ptrdiff_t pos = wd.P - halo + static_cast<std::ptrdiff_t>(idx);
            if (pos < static_cast<std::ptrdiff_t>(wd.w.r0) ||
                pos >= static_cast<std::ptrdiff_t>(wd.w.r1)) {
              continue;
            }
            const auto u = static_cast<std::size_t>(pos);
            const SRow<T>& row = out[idx];
            t.note_sread(row);
            if (cfg.fuse_thomas_forward) {
              // Thomas forward reduction of reduced system r(t), entirely
              // from shared/registers: store only (c', d').
              T& cp = fwd_cp[g * static_cast<std::size_t>(threads) +
                             static_cast<std::size_t>(t.tid())];
              T& dp = fwd_dp[g * static_cast<std::size_t>(threads) +
                             static_cast<std::size_t>(t.tid())];
              const T denom = row.b - cp * row.a;
              if (guarding) guard_fused_pivot(wd.guard_st, row, denom, u);
              const T inv = T(1) / denom;
              cp = row.c * inv;
              dp = (row.d - dp * row.a) * inv;
              t.flops<T>(6);
              t.divs<T>(1);
              t.store(wd.w.out.c.ptr(u), cp);
              t.store(wd.w.out.d.ptr(u), dp);
            } else {
              t.store(wd.w.out.a.ptr(u), row.a);
              t.store(wd.w.out.b.ptr(u), row.b);
              t.store(wd.w.out.c.ptr(u), row.c);
              t.store(wd.w.out.d.ptr(u), row.d);
            }
          }
        }
      });

      for (auto& wd : win) wd.P += static_cast<std::ptrdiff_t>(S);
    }

    std::atomic_ref<std::size_t>(stats.row_loads)
        .fetch_add(block_row_loads, std::memory_order_relaxed);
    std::atomic_ref<std::size_t>(stats.eliminations)
        .fetch_add(block_eliminations, std::memory_order_relaxed);
    if (guarding) {
      // Slots [first, first + count) belong to this block alone.
      for (std::size_t g = 0; g < count; ++g) {
        window_guard[first + g] = win[g].guard_st;
      }
    }
  });

  return stats;
}

template TiledPcrStats tiled_pcr_kernel<float>(const gpusim::DeviceSpec&,
                                               std::span<const TiledPcrWork<float>>,
                                               const TiledPcrConfig&,
                                               std::span<tridiag::SolveStatus>);
template TiledPcrStats tiled_pcr_kernel<double>(const gpusim::DeviceSpec&,
                                                std::span<const TiledPcrWork<double>>,
                                                const TiledPcrConfig&,
                                                std::span<tridiag::SolveStatus>);

}  // namespace tridsolve::gpu
