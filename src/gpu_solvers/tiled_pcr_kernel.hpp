#pragma once
// Tiled PCR kernel (paper §III.A, Figs. 8-11) on the simulated GPU.
//
// Each *window* streams one region of one system through k PCR steps using
// a shared-memory buffered sliding window:
//   * two ping-pong work buffers of S = c * 2^k rows (the "middle"/"bottom"
//     buffers of Fig. 9 — each level's batch of S rows is produced from the
//     previous level's batch in the other buffer),
//   * per-level tail caches of 2^{j+1} rows (the "top" buffer / dependency
//     cache of Fig. 8(b)): the trailing values level j+1 still needs when
//     the window slides by one sub-tile.
// Total shared footprint: (2S + 2*f(k)) rows of 4 values — the paper's
// 3*f(k) cache + S bottom buffer for c = 1 (Table I).
//
// A thread block owns `systems_per_block` windows (Fig. 11(c): multiplexed
// windows issue their loads in the same round, hiding more latency), with
// 2^k threads; each thread performs c eliminations per level per sub-tile
// (Table I: c*k eliminations per thread per sub-tile). Large systems may
// instead be split across `blocks_per_system` blocks (Fig. 11(b)), each
// region paying warm-up halo loads at its leading edge (the variant's
// redundant-load cost, which the stats expose).
//
// With `fuse_thomas_forward` (§III.C) the final-level store phase feeds the
// reduced rows straight into the per-thread Thomas forward recurrence and
// stores (c', d') instead of raw rows — saving 2 stores + 4 loads per row
// and one kernel launch; afterwards only pthomas_backward is needed. The
// price: the p-Thomas forward work inherits this kernel's shared-memory
// occupancy, which is the fusion caveat the paper warns about.

#include <cstddef>
#include <span>

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::gpu {

/// One window assignment: produce k-step-reduced rows for positions
/// [r0, r1) of `sys`, written to `out`.
///
/// `out` may alias `sys` only for whole-system windows (the window writes
/// strictly behind its own load frontier). Split-system windows
/// (Fig. 11(b)) MUST use a separate output: concurrent blocks re-load halo
/// rows their neighbour may already have overwritten — a real data race on
/// hardware too, which is why that variant double-buffers.
template <typename T>
struct TiledPcrWork {
  tridiag::SystemRef<T> sys;
  tridiag::SystemRef<T> out;
  std::size_t r0 = 0;
  std::size_t r1 = 0;
  std::size_t system_id = 0;  ///< caller's batch index (guard merge key)
};

struct TiledPcrConfig {
  unsigned k = 4;                     ///< PCR steps; block threads = 2^k
  std::size_t c = 1;                  ///< sub-tile multiplier, S = c * 2^k
  std::size_t systems_per_block = 1;  ///< windows multiplexed per block
  bool fuse_thomas_forward = false;   ///< §III.C kernel fusion
};

struct TiledPcrStats {
  gpusim::LaunchStats launch;
  std::size_t eliminations = 0;  ///< PCR row eliminations performed
  std::size_t row_loads = 0;     ///< real input rows loaded (incl. halo redundancy)
  std::size_t rows_total = 0;    ///< sum of region lengths (useful rows)

  // The paper's redundancy model (Eqs. 8-9): a naive halo-tiled kernel
  // with the same sub-tile size S re-loads f(k) = 2^k - 1 rows and
  // re-eliminates g(k) = k*2^k - 2^{k+1} + 2 rows at every interior
  // sub-tile boundary. The sliding window pays neither; these counters
  // quantify exactly what it avoided.
  std::size_t windows = 0;              ///< window assignments executed
  std::size_t sub_tile_boundaries = 0;  ///< interior boundaries, all windows
  std::size_t halo_loads_avoided = 0;       ///< f(k) per boundary (Eq. 8)
  std::size_t redundant_elims_avoided = 0;  ///< g(k) per boundary (Eq. 9)

  [[nodiscard]] std::size_t redundant_loads() const noexcept {
    return row_loads - rows_total;
  }
};

/// Run the kernel over all windows. Each block takes `systems_per_block`
/// consecutive entries of `work`. Requires k >= 1 (k = 0 means "skip PCR").
///
/// If `window_guard` is non-empty it must parallel `work`: every window
/// writes one SolveStatus slot flagging zero/non-finite PCR divisors (and,
/// under fusion, Thomas-forward pivots) seen while producing that window's
/// rows, plus the pivot-growth estimate. Blocks own disjoint slot ranges,
/// so the writes are race-free and deterministic; callers merge slots into
/// per-system status via TiledPcrWork::system_id. Detection is read-only —
/// no recorded costs, no arithmetic changes — so guarded runs stay
/// bit-identical (outputs and timing) to unguarded ones.
template <typename T>
TiledPcrStats tiled_pcr_kernel(const gpusim::DeviceSpec& dev,
                               std::span<const TiledPcrWork<T>> work,
                               const TiledPcrConfig& cfg,
                               std::span<tridiag::SolveStatus> window_guard = {});

/// Helper: the shared-memory bytes one window needs (for occupancy
/// reasoning and Table I/III checks).
[[nodiscard]] std::size_t tiled_pcr_window_shared_bytes(unsigned k, std::size_t c,
                                                        std::size_t elem_size);

extern template TiledPcrStats tiled_pcr_kernel<float>(
    const gpusim::DeviceSpec&, std::span<const TiledPcrWork<float>>,
    const TiledPcrConfig&, std::span<tridiag::SolveStatus>);
extern template TiledPcrStats tiled_pcr_kernel<double>(
    const gpusim::DeviceSpec&, std::span<const TiledPcrWork<double>>,
    const TiledPcrConfig&, std::span<tridiag::SolveStatus>);

}  // namespace tridsolve::gpu
