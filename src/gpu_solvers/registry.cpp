#include "gpu_solvers/registry.hpp"

#include <bit>
#include <stdexcept>

#include "gpu_solvers/cr_kernel.hpp"
#include "gpusim/launch.hpp"
#include "gpu_solvers/davidson.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/partition_kernel.hpp"
#include "gpu_solvers/zhang_pcr_thomas.hpp"

namespace tridsolve::gpu {

const char* solver_name(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::hybrid: return "hybrid(tiledPCR+pThomas)";
    case SolverKind::hybrid_fused: return "hybrid(fused)";
    case SolverKind::pthomas_only: return "p-Thomas only";
    case SolverKind::zhang: return "Zhang in-shared";
    case SolverKind::cr: return "CR in-shared";
    case SolverKind::davidson: return "Davidson stepped";
    case SolverKind::partition: return "register-packed partition";
  }
  return "?";
}

std::vector<SolverKind> all_solver_kinds() {
  return {SolverKind::hybrid, SolverKind::hybrid_fused, SolverKind::pthomas_only,
          SolverKind::zhang, SolverKind::cr, SolverKind::davidson,
          SolverKind::partition};
}

namespace {

/// Solvers that report a single launch's timing directly (no Timeline)
/// get the same functional_only protection Timeline::total_us provides.
void require_timed(const gpusim::LaunchStats& stats) {
  if (!stats.timed) {
    throw std::logic_error(
        "solver ran functional_only (no recorded costs); re-run with "
        "--instrument exact|sampled for timing");
  }
}

}  // namespace

template <typename T>
SolveOutcome run_solver(SolverKind kind, const gpusim::DeviceSpec& dev,
                        const tridiag::SystemBatch<T>& batch,
                        const SolverRunOptions& run_opts,
                        tridiag::SystemBatch<T>* solution) {
  SolveOutcome out;
  auto copy = batch.clone();
  std::optional<gpusim::ScopedInstrumentMode> instrument_guard;
  if (run_opts.instrument) instrument_guard.emplace(*run_opts.instrument);
  try {
    switch (kind) {
      case SolverKind::hybrid:
      case SolverKind::hybrid_fused:
      case SolverKind::pthomas_only: {
        HybridOptions opts;
        if (kind == SolverKind::hybrid_fused) opts.fuse = true;
        if (kind == SolverKind::pthomas_only) opts.force_k = 0;
        const auto rep = hybrid_solve(dev, copy, opts);
        out.supported = true;
        out.time_us = rep.total_us();
        out.launches = rep.timeline.segments().size();
        out.detail = "k=" + std::to_string(rep.k);
        break;
      }
      case SolverKind::zhang: {
        if (!zhang_fits(dev, batch.system_size(), sizeof(T))) {
          out.detail = "system exceeds shared memory";
          return out;
        }
        const auto stats = zhang_solve(dev, copy);
        require_timed(stats);
        out.supported = true;
        out.time_us = stats.timing.time_us;
        out.launches = 1;
        break;
      }
      case SolverKind::cr: {
        if (!zhang_fits(dev, std::bit_ceil(batch.system_size()), sizeof(T))) {
          out.detail = "padded system exceeds shared memory";
          return out;
        }
        const auto stats = cr_kernel_solve(dev, copy);
        require_timed(stats);
        out.supported = true;
        out.time_us = stats.timing.time_us;
        out.launches = 1;
        break;
      }
      case SolverKind::davidson: {
        const auto rep = davidson_solve(dev, copy);
        out.supported = true;
        out.time_us = rep.total_us();
        out.launches = rep.timeline.segments().size();
        out.detail = std::to_string(rep.global_steps) + " global steps";
        break;
      }
      case SolverKind::partition: {
        const auto rep = partition_solve_gpu(dev, copy, {});
        out.supported = true;
        out.time_us = rep.total_us();
        out.launches = rep.timeline.segments().size();
        break;
      }
    }
  } catch (const std::exception& e) {
    out.supported = false;
    out.detail = e.what();
  }
  if (out.supported && solution != nullptr) *solution = std::move(copy);
  return out;
}

template SolveOutcome run_solver<float>(SolverKind, const gpusim::DeviceSpec&,
                                        const tridiag::SystemBatch<float>&,
                                        const SolverRunOptions&,
                                        tridiag::SystemBatch<float>*);
template SolveOutcome run_solver<double>(SolverKind, const gpusim::DeviceSpec&,
                                         const tridiag::SystemBatch<double>&,
                                         const SolverRunOptions&,
                                         tridiag::SystemBatch<double>*);

}  // namespace tridsolve::gpu
