#include "gpu_solvers/registry.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>

#include "gpu_solvers/cr_kernel.hpp"
#include "gpusim/launch.hpp"
#include "gpu_solvers/davidson.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/partition_kernel.hpp"
#include "gpu_solvers/plan_cache.hpp"
#include "gpu_solvers/transition.hpp"
#include "gpu_solvers/zhang_pcr_thomas.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/residual.hpp"

namespace tridsolve::gpu {

const char* solver_name(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::hybrid: return "hybrid(tiledPCR+pThomas)";
    case SolverKind::hybrid_fused: return "hybrid(fused)";
    case SolverKind::pthomas_only: return "p-Thomas only";
    case SolverKind::zhang: return "Zhang in-shared";
    case SolverKind::cr: return "CR in-shared";
    case SolverKind::davidson: return "Davidson stepped";
    case SolverKind::partition: return "register-packed partition";
  }
  return "?";
}

std::vector<SolverKind> all_solver_kinds() {
  return {SolverKind::hybrid, SolverKind::hybrid_fused, SolverKind::pthomas_only,
          SolverKind::zhang, SolverKind::cr, SolverKind::davidson,
          SolverKind::partition};
}

namespace {

/// Solvers that report a single launch's timing directly (no Timeline)
/// get the same functional_only protection Timeline::total_us provides.
void require_timed(const gpusim::LaunchStats& stats) {
  if (!stats.timed) {
    throw std::logic_error(
        "solver ran functional_only (no recorded costs); re-run with "
        "--instrument exact|sampled for timing");
  }
}

/// Post-hoc guard over a solved batch: flags systems whose solution holds
/// non-finite entries (zero_pivot at the first bad row) or fails a
/// relative-residual gate against the pristine inputs (near_singular).
/// This is solver-agnostic — it catches breakdowns even in kernels that
/// have no built-in pivot guard (Zhang, CR, Davidson, partition).
template <typename T>
void posthoc_scan(const tridiag::SystemBatch<T>& pristine,
                  const tridiag::SystemBatch<T>& solved,
                  tridiag::BatchStatus& status) {
  const double gate =
      std::sqrt(static_cast<double>(std::numeric_limits<T>::epsilon()));
  const std::size_t n = pristine.system_size();
  for (std::size_t m = 0; m < pristine.num_systems(); ++m) {
    const tridiag::StridedView<const T> x = solved.system(m).d;
    bool bad = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(static_cast<double>(x[i]))) {
        status.absorb(m, {tridiag::SolveCode::zero_pivot, i});
        bad = true;
        break;
      }
    }
    if (bad) continue;
    const double rel = tridiag::relative_residual(pristine.system(m), x);
    // NaN compares false against the gate both ways; !(rel <= gate) flags
    // it (a residual that cannot be evaluated is not a clean solve).
    if (!(rel <= gate)) {
      status.absorb(m, {tridiag::SolveCode::near_singular, 0});
    }
  }
}

/// Sum injected-fault tallies across every launch of a timeline.
[[nodiscard]] gpusim::FaultCounts timeline_faults(const gpusim::Timeline& tl) {
  gpusim::FaultCounts f;
  for (const auto& seg : tl.segments()) f.merge(seg.stats.faults);
  return f;
}

}  // namespace

template <typename T>
SolveOutcome run_solver(SolverKind kind, const gpusim::DeviceSpec& dev,
                        const tridiag::SystemBatch<T>& batch,
                        const SolverRunOptions& run_opts,
                        tridiag::SystemBatch<T>* solution) {
  SolveOutcome out;
  const bool fallback = run_opts.fallback || run_opts.refine;
  const bool guarding = run_opts.guard || fallback;
  // The solve itself completed (outputs in `copy` are valid) even if the
  // outcome is later demoted to supported == false — which is exactly
  // what functional_only does when the untimed timeline refuses to
  // report time_us. Solutions are handed out in either case.
  bool solved = false;
  auto copy = batch.clone();
  std::optional<gpusim::ScopedInstrumentMode> instrument_guard;
  if (run_opts.instrument) instrument_guard.emplace(*run_opts.instrument);
  std::optional<gpusim::ScopedHazardMode> hazard_guard;
  if (run_opts.hazards) hazard_guard.emplace(*run_opts.hazards);
  try {
    switch (kind) {
      case SolverKind::hybrid:
      case SolverKind::hybrid_fused:
      case SolverKind::pthomas_only: {
        HybridOptions opts;
        if (kind == SolverKind::hybrid_fused) opts.fuse = true;
        if (kind != SolverKind::pthomas_only && run_opts.force_k >= 0) {
          opts.force_k = run_opts.force_k;
        }
        if (kind == SolverKind::pthomas_only) opts.force_k = 0;
        // The hybrid's in-kernel guard supplies exact rows and pivot
        // growth; recovery stays here so all kinds share one LU path.
        opts.guard.detect = guarding;
        const auto rep = hybrid_solve(dev, copy, opts);
        solved = true;
        out.supported = true;
        out.time_us = rep.total_us();
        out.launches = rep.timeline.segments().size();
        out.detail = "k=" + std::to_string(rep.k);
        out.status = rep.status;
        out.k = static_cast<int>(rep.k);
        out.plan_source = plan_source_name(rep.plan_source);
        out.plan_cached = rep.plan_cached;
        out.faults = timeline_faults(rep.timeline);
        out.timeline = rep.timeline;
        break;
      }
      case SolverKind::zhang: {
        if (!zhang_fits(dev, batch.system_size(), sizeof(T))) {
          out.detail = "system exceeds shared memory";
          return out;
        }
        const auto stats = zhang_solve(dev, copy);
        solved = true;
        require_timed(stats);
        out.supported = true;
        out.time_us = stats.timing.time_us;
        out.launches = 1;
        out.faults = stats.faults;
        out.timeline.add("zhang", stats);
        break;
      }
      case SolverKind::cr: {
        if (!zhang_fits(dev, std::bit_ceil(batch.system_size()), sizeof(T))) {
          out.detail = "padded system exceeds shared memory";
          return out;
        }
        const auto stats = cr_kernel_solve(dev, copy);
        solved = true;
        require_timed(stats);
        out.supported = true;
        out.time_us = stats.timing.time_us;
        out.launches = 1;
        out.faults = stats.faults;
        out.timeline.add("cr", stats);
        break;
      }
      case SolverKind::davidson: {
        const auto rep = davidson_solve(dev, copy);
        solved = true;
        out.supported = true;
        out.time_us = rep.total_us();
        out.launches = rep.timeline.segments().size();
        out.detail = std::to_string(rep.global_steps) + " global steps";
        out.faults = timeline_faults(rep.timeline);
        out.timeline = rep.timeline;
        break;
      }
      case SolverKind::partition: {
        const auto rep = partition_solve_gpu(dev, copy, {});
        solved = true;
        out.supported = true;
        out.time_us = rep.total_us();
        out.launches = rep.timeline.segments().size();
        out.faults = timeline_faults(rep.timeline);
        out.timeline = rep.timeline;
        break;
      }
    }
  } catch (const gpusim::LaunchFailure& e) {
    // Retryable: the launch never ran. The resilient pipeline re-dispatches
    // instead of degrading straight down the fallback chain.
    out.supported = false;
    out.launch_failed = true;
    out.faults.launch_failures = 1;  // the throw bypassed LaunchStats
    out.detail = e.what();
  } catch (const std::invalid_argument& e) {
    // Structured rejection of caller-supplied options (forced 2^k > N,
    // over the block limit, ...): never retryable, never silent garbage.
    out.supported = false;
    out.bad_argument = true;
    out.detail = e.what();
  } catch (const std::exception& e) {
    out.supported = false;
    out.detail = e.what();
  }

  if (out.supported && guarding) {
    static const auto flagged_ctr = obs::counter_handle("solver.guard.flagged");
    static const auto fallback_ctr =
        obs::counter_handle("solver.guard.fallback");
    static const auto refined_ctr = obs::counter_handle("solver.guard.refined");
    static const auto guard_hist =
        obs::histogram_handle("solver.guard.wall_us");
    const auto guard_t0 = std::chrono::steady_clock::now();
    // resize() wipes to fresh statuses — only size up guard-less kinds,
    // never the hybrid family's kernel-reported rows and pivot growth.
    if (out.status.size() != batch.num_systems()) {
      out.status.resize(batch.num_systems());
    }
    // The hybrid family already counted its kernel-reported flags in
    // solver.guard.flagged; only the scan's *new* flags are added here so
    // the taxonomy counters stay exact per system.
    const std::size_t kernel_flagged = out.status.flagged_count();
    posthoc_scan(batch, copy, out.status);
    out.flagged = out.status.flagged_count();
    flagged_ctr.add(static_cast<double>(out.flagged - kernel_flagged));
    if (fallback && out.flagged > 0) {
      tridiag::RecoverOptions ropts;
      ropts.refine = run_opts.refine;
      const auto rstats =
          tridiag::lu_recover_flagged(batch, copy, out.status, ropts);
      out.fallback_solves = rstats.fallback_solves;
      out.refine_steps = rstats.refine_steps;
      fallback_ctr.add(static_cast<double>(rstats.fallback_solves));
      refined_ctr.add(static_cast<double>(rstats.refine_steps));
    }
    guard_hist.record(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - guard_t0)
                          .count());
  }

  if ((out.supported || solved) && solution != nullptr) {
    *solution = std::move(copy);
  }
  return out;
}

template SolveOutcome run_solver<float>(SolverKind, const gpusim::DeviceSpec&,
                                        const tridiag::SystemBatch<float>&,
                                        const SolverRunOptions&,
                                        tridiag::SystemBatch<float>*);
template SolveOutcome run_solver<double>(SolverKind, const gpusim::DeviceSpec&,
                                         const tridiag::SystemBatch<double>&,
                                         const SolverRunOptions&,
                                         tridiag::SystemBatch<double>*);

namespace {

/// One stage of the resilient fallback chain: a registry solver kind or
/// a fault-immune host stage (cpu-thomas / lu).
struct StageSpec {
  std::string name;
  bool host = false;
  bool is_lu = false;
  SolverKind kind = SolverKind::hybrid;
};

[[nodiscard]] const char* stage_token(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::hybrid: return "hybrid";
    case SolverKind::hybrid_fused: return "hybrid-fused";
    case SolverKind::pthomas_only: return "pthomas";
    case SolverKind::zhang: return "zhang";
    case SolverKind::cr: return "cr";
    case SolverKind::davidson: return "davidson";
    case SolverKind::partition: return "partition";
  }
  return "?";
}

[[nodiscard]] StageSpec resolve_stage(const std::string& tok) {
  for (const SolverKind k : all_solver_kinds()) {
    if (tok == stage_token(k)) return {tok, false, false, k};
  }
  if (tok == "cpu-thomas") return {tok, true, false, SolverKind::hybrid};
  if (tok == "lu") return {tok, true, true, SolverKind::hybrid};
  throw std::invalid_argument(
      "unknown fallback stage \"" + tok +
      "\" (expected a solver token or cpu-thomas|lu)");
}

}  // namespace

std::vector<std::string> default_fallback_chain(SolverKind entry) {
  std::vector<std::string> chain;
  const std::string entry_tok = stage_token(entry);
  for (const char* s : {"pthomas", "cpu-thomas", "lu"}) {
    if (entry_tok != s) chain.emplace_back(s);
  }
  return chain;
}

tridiag::ResiliencePolicy engine_resilience_policy() {
  tridiag::ResiliencePolicy policy;
  const gpusim::ExecutionEngine& engine = gpusim::ExecutionEngine::instance();
  policy.max_retries = engine.default_max_retries();
  policy.deadline_us = engine.default_deadline_us();
  return policy;
}

template <typename T>
ResilientOutcome run_solver_resilient(SolverKind kind,
                                      const gpusim::DeviceSpec& dev,
                                      const tridiag::SystemBatch<T>& batch,
                                      const SolverRunOptions& run_opts,
                                      const tridiag::ResiliencePolicy& policy,
                                      tridiag::SystemBatch<T>* solution) {
  static const auto retries_ctr =
      obs::counter_handle("solver.resilience.retries");
  static const auto fallback_ctr =
      obs::counter_handle("solver.resilience.fallback_stages");
  static const auto partial_ctr =
      obs::counter_handle("solver.resilience.partial");
  static const auto deadline_ctr =
      obs::counter_handle("solver.resilience.deadline_exceeded");
  static const auto attempt_hist =
      obs::histogram_handle("solver.resilience.attempt_us");

  // Root of the solve's span tree: every stage attempt (and, through the
  // thread-local span stack, every launch those attempts perform) becomes
  // a descendant. All no-ops when tracing is off.
  obs::SpanScope root_span("resilient_solve");
  root_span.attr("solver", obs::JsonValue(solver_name(kind)));
  root_span.attr("systems", obs::JsonValue(batch.num_systems()));
  root_span.attr("n", obs::JsonValue(batch.system_size()));

  ResilientOutcome ro;
  SolveOutcome& out = ro.outcome;
  tridiag::ResilienceReport& rep = ro.report;
  const std::size_t num_systems = batch.num_systems();
  const std::size_t n = batch.system_size();
  // The assembled result: pristine inputs, d overwritten per recovered
  // system. Unrecovered systems keep their pristine d (never garbage).
  tridiag::SystemBatch<T> work = batch.clone();
  out.status.resize(num_systems);
  out.supported = true;

  // Stage list: the entry solver, then the fallback chain (resolved up
  // front so an unknown stage name fails before any work is done).
  std::vector<StageSpec> stages;
  stages.push_back(resolve_stage(stage_token(kind)));
  const std::vector<std::string> chain = policy.fallback_chain.empty()
                                             ? default_fallback_chain(kind)
                                             : policy.fallback_chain;
  for (const std::string& tok : chain) {
    StageSpec st = resolve_stage(tok);
    if (st.name != stages.back().name) stages.push_back(std::move(st));
  }

  SolverRunOptions sub_opts = run_opts;
  sub_opts.guard = true;  // recovery is the resilient pipeline's job
  sub_opts.fallback = false;
  sub_opts.refine = false;

  int force_k = run_opts.force_k;
  const std::size_t chunk_cap = std::max<std::size_t>(1, policy.retry_chunk);
  std::vector<std::size_t> pending(num_systems);
  std::iota(pending.begin(), pending.end(), std::size_t{0});

  const auto out_of_budget = [&] {
    return policy.deadline_us > 0.0 && rep.spent_us >= policy.deadline_us;
  };

  bool budget_hit = false;
  for (std::size_t si = 0; si < stages.size() && !pending.empty() && !budget_hit;
       ++si) {
    const StageSpec& st = stages[si];
    const bool hybrid_family =
        !st.host &&
        (st.kind == SolverKind::hybrid || st.kind == SolverKind::hybrid_fused);
    // Pin the hybrid's PCR depth to what a fault-free run over the *full*
    // batch would plan, so chunked retries and fallback re-dispatches
    // repeat that run's exact arithmetic (planned k depends on batch
    // size, and a retry chunk is smaller than the original batch). Going
    // through the PlanCache means a calibrated/autotuned plan pins its k
    // here too, and repeated resilient solves of one shape plan once.
    if (hybrid_family && force_k < 0) {
      HybridOptions plan_opts;
      plan_opts.fuse = st.kind == SolverKind::hybrid_fused;
      const PlanKey pk =
          make_plan_key(dev, num_systems, n, sizeof(T), plan_opts);
      const PlanCache::Result planned = PlanCache::instance().plan(
          pk, [&] { return plan_hybrid(dev, num_systems, n, sizeof(T),
                                       plan_opts); });
      force_k = static_cast<int>(planned.plan.k);
    }
    bool entered = false;
    // Host stages are deterministic and fault-immune: one pass is enough.
    const int max_attempts = st.host ? 1 : policy.max_retries + 1;
    for (int attempt = 0; attempt < max_attempts && !pending.empty();
         ++attempt) {
      if (out_of_budget()) {
        budget_hit = true;
        break;
      }
      if (attempt > 0) {
        rep.spent_us += policy.backoff_us;
        ++rep.retries;
        retries_ctr.add();
      }
      entered = true;

      if (st.host) {
        tridiag::AttemptRecord ar;
        ar.stage = st.name;
        ar.attempt = attempt;
        ar.systems = pending.size();
        std::vector<std::size_t> still;
        {
          obs::SpanScope attempt_span("attempt");
          attempt_span.attr("stage", obs::JsonValue(st.name));
          attempt_span.attr("attempt", obs::JsonValue(attempt));
          attempt_span.attr("systems", obs::JsonValue(ar.systems));
          ar.recovered = st.is_lu ? tridiag::host_lu_stage<T>(batch, pending,
                                                              work, out.status)
                                  : tridiag::host_thomas_stage<T>(
                                        batch, pending, work, out.status);
          for (const std::size_t m : pending) {
            if (!out.status[m].ok()) still.push_back(m);
          }
          ar.still_flagged = still.size();
          attempt_span.attr(
              "code", obs::JsonValue(tridiag::solve_code_name(ar.reason)));
          attempt_span.attr("recovered", obs::JsonValue(ar.recovered));
          attempt_span.attr("still_flagged", obs::JsonValue(ar.still_flagged));
        }
        rep.attempts.push_back(std::move(ar));
        pending.swap(still);
        break;
      }

      // GPU stage: chunked re-dispatch from pristine inputs. The entry
      // stage's first dispatch runs the whole batch in one go; retries
      // and fallback stages go chunk by chunk so one poisoned system
      // cannot force full-batch re-solves.
      const std::size_t chunk =
          (si == 0 && attempt == 0) ? pending.size() : chunk_cap;
      std::vector<std::size_t> still;
      bool rejected = false;
      for (std::size_t first = 0; first < pending.size(); first += chunk) {
        if (out_of_budget()) {
          budget_hit = true;
          for (std::size_t r = first; r < pending.size(); ++r) {
            still.push_back(pending[r]);
          }
          break;
        }
        const std::size_t count = std::min(chunk, pending.size() - first);
        const std::span<const std::size_t> systems(pending.data() + first,
                                                   count);
        const tridiag::SystemBatch<T> sub =
            tridiag::extract_systems<T>(batch, systems);
        SolverRunOptions chunk_opts = sub_opts;
        if (hybrid_family && force_k >= 0) chunk_opts.force_k = force_k;
        tridiag::SystemBatch<T> subsol;
        // Child span per dispatch: the launches run_solver performs parent
        // under it via the thread-local span stack, and the attempt's
        // outcome (SolveCode cause, recovery counts) is attached before
        // the scope closes — including on the early-discard path.
        obs::SpanScope attempt_span("attempt");
        attempt_span.attr("stage", obs::JsonValue(st.name));
        attempt_span.attr("attempt", obs::JsonValue(attempt));
        attempt_span.attr("systems", obs::JsonValue(count));
        const SolveOutcome so = run_solver<T>(st.kind, dev, sub, chunk_opts,
                                              &subsol);
        rep.spent_us += so.time_us;
        out.launches += so.launches;
        out.faults.merge(so.faults);
        attempt_hist.record(so.time_us);
        const auto tag_attempt = [&attempt_span](
                                     const tridiag::AttemptRecord& a) {
          attempt_span.attr(
              "code", obs::JsonValue(tridiag::solve_code_name(a.reason)));
          attempt_span.attr("recovered", obs::JsonValue(a.recovered));
          attempt_span.attr("still_flagged", obs::JsonValue(a.still_flagged));
        };

        tridiag::AttemptRecord ar;
        ar.stage = st.name;
        ar.attempt = attempt;
        ar.systems = count;
        ar.time_us = so.time_us;
        if (so.launch_failed) {
          ar.reason = tridiag::SolveCode::launch_failed;
        } else if (!so.supported) {
          // Configuration rejected (size cap, functional_only, bad
          // caller options, ...): retrying the identical dispatch cannot
          // succeed — degrade.
          ar.reason = so.bad_argument ? tridiag::SolveCode::bad_argument
                                      : tridiag::SolveCode::bad_size;
          rejected = true;
        } else if (so.faults.timeouts > 0) {
          ar.reason = tridiag::SolveCode::timed_out;
        }
        if (ar.reason != tridiag::SolveCode::ok) {
          // The whole dispatch is discarded; its systems stay pending.
          const tridiag::SolveStatus fail{ar.reason, 0};
          for (const std::size_t m : systems) {
            out.status.record_attempt(m, fail);
            still.push_back(m);
          }
          ar.still_flagged = count;
          tag_attempt(ar);
          rep.attempts.push_back(std::move(ar));
          continue;
        }
        for (std::size_t j = 0; j < count; ++j) {
          const std::size_t m = systems[j];
          const tridiag::SolveStatus verdict = so.status[j];
          out.status.record_attempt(m, verdict);
          if (verdict.ok()) {
            const tridiag::StridedView<T> x = subsol.system(j).d;
            const tridiag::StridedView<T> dst = work.system(m).d;
            for (std::size_t i = 0; i < n; ++i) dst[i] = x[i];
            ++ar.recovered;
          } else {
            still.push_back(m);
            ++ar.still_flagged;
          }
        }
        tag_attempt(ar);
        rep.attempts.push_back(std::move(ar));
      }
      pending.swap(still);
      if (rejected || budget_hit) break;
    }
    if (entered && si > 0) {
      ++rep.fallback_stages;
      fallback_ctr.add();
    }
  }

  if (!pending.empty()) {
    if (budget_hit) {
      rep.deadline_exceeded = true;
      deadline_ctr.add();
      for (const std::size_t m : pending) {
        out.status.record_attempt(m, {tridiag::SolveCode::deadline, 0});
      }
    }
    rep.partial = true;
    partial_ctr.add();
  }
  out.flagged = out.status.flagged_count();
  int worst_sev = 0;
  for (std::size_t m = 0; m < num_systems; ++m) {
    const tridiag::SolveCode c = out.status[m].code;
    if (tridiag::solve_code_severity(c) > worst_sev) {
      worst_sev = tridiag::solve_code_severity(c);
      rep.worst = c;
    }
  }
  out.time_us = rep.spent_us;
  out.k = force_k;
  out.detail = std::to_string(rep.attempts.size()) + " attempts, " +
               std::to_string(rep.fallback_stages) + " fallback stages, " +
               std::to_string(rep.retries) + " retries";
  if (solution != nullptr) *solution = std::move(work);
  return ro;
}

template ResilientOutcome run_solver_resilient<float>(
    SolverKind, const gpusim::DeviceSpec&, const tridiag::SystemBatch<float>&,
    const SolverRunOptions&, const tridiag::ResiliencePolicy&,
    tridiag::SystemBatch<float>*);
template ResilientOutcome run_solver_resilient<double>(
    SolverKind, const gpusim::DeviceSpec&, const tridiag::SystemBatch<double>&,
    const SolverRunOptions&, const tridiag::ResiliencePolicy&,
    tridiag::SystemBatch<double>*);

}  // namespace tridsolve::gpu
