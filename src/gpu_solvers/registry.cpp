#include "gpu_solvers/registry.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "gpu_solvers/cr_kernel.hpp"
#include "gpusim/launch.hpp"
#include "gpu_solvers/davidson.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/partition_kernel.hpp"
#include "gpu_solvers/zhang_pcr_thomas.hpp"
#include "obs/metrics.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/residual.hpp"

namespace tridsolve::gpu {

const char* solver_name(SolverKind kind) noexcept {
  switch (kind) {
    case SolverKind::hybrid: return "hybrid(tiledPCR+pThomas)";
    case SolverKind::hybrid_fused: return "hybrid(fused)";
    case SolverKind::pthomas_only: return "p-Thomas only";
    case SolverKind::zhang: return "Zhang in-shared";
    case SolverKind::cr: return "CR in-shared";
    case SolverKind::davidson: return "Davidson stepped";
    case SolverKind::partition: return "register-packed partition";
  }
  return "?";
}

std::vector<SolverKind> all_solver_kinds() {
  return {SolverKind::hybrid, SolverKind::hybrid_fused, SolverKind::pthomas_only,
          SolverKind::zhang, SolverKind::cr, SolverKind::davidson,
          SolverKind::partition};
}

namespace {

/// Solvers that report a single launch's timing directly (no Timeline)
/// get the same functional_only protection Timeline::total_us provides.
void require_timed(const gpusim::LaunchStats& stats) {
  if (!stats.timed) {
    throw std::logic_error(
        "solver ran functional_only (no recorded costs); re-run with "
        "--instrument exact|sampled for timing");
  }
}

/// Post-hoc guard over a solved batch: flags systems whose solution holds
/// non-finite entries (zero_pivot at the first bad row) or fails a
/// relative-residual gate against the pristine inputs (near_singular).
/// This is solver-agnostic — it catches breakdowns even in kernels that
/// have no built-in pivot guard (Zhang, CR, Davidson, partition).
template <typename T>
void posthoc_scan(const tridiag::SystemBatch<T>& pristine,
                  const tridiag::SystemBatch<T>& solved,
                  tridiag::BatchStatus& status) {
  const double gate =
      std::sqrt(static_cast<double>(std::numeric_limits<T>::epsilon()));
  const std::size_t n = pristine.system_size();
  for (std::size_t m = 0; m < pristine.num_systems(); ++m) {
    const tridiag::StridedView<const T> x = solved.system(m).d;
    bool bad = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(static_cast<double>(x[i]))) {
        status.absorb(m, {tridiag::SolveCode::zero_pivot, i});
        bad = true;
        break;
      }
    }
    if (bad) continue;
    const double rel = tridiag::relative_residual(pristine.system(m), x);
    // NaN compares false against the gate both ways; !(rel <= gate) flags
    // it (a residual that cannot be evaluated is not a clean solve).
    if (!(rel <= gate)) {
      status.absorb(m, {tridiag::SolveCode::near_singular, 0});
    }
  }
}

}  // namespace

template <typename T>
SolveOutcome run_solver(SolverKind kind, const gpusim::DeviceSpec& dev,
                        const tridiag::SystemBatch<T>& batch,
                        const SolverRunOptions& run_opts,
                        tridiag::SystemBatch<T>* solution) {
  SolveOutcome out;
  const bool fallback = run_opts.fallback || run_opts.refine;
  const bool guarding = run_opts.guard || fallback;
  auto copy = batch.clone();
  std::optional<gpusim::ScopedInstrumentMode> instrument_guard;
  if (run_opts.instrument) instrument_guard.emplace(*run_opts.instrument);
  std::optional<gpusim::ScopedHazardMode> hazard_guard;
  if (run_opts.hazards) hazard_guard.emplace(*run_opts.hazards);
  try {
    switch (kind) {
      case SolverKind::hybrid:
      case SolverKind::hybrid_fused:
      case SolverKind::pthomas_only: {
        HybridOptions opts;
        if (kind == SolverKind::hybrid_fused) opts.fuse = true;
        if (kind == SolverKind::pthomas_only) opts.force_k = 0;
        // The hybrid's in-kernel guard supplies exact rows and pivot
        // growth; recovery stays here so all kinds share one LU path.
        opts.guard.detect = guarding;
        const auto rep = hybrid_solve(dev, copy, opts);
        out.supported = true;
        out.time_us = rep.total_us();
        out.launches = rep.timeline.segments().size();
        out.detail = "k=" + std::to_string(rep.k);
        out.status = rep.status;
        break;
      }
      case SolverKind::zhang: {
        if (!zhang_fits(dev, batch.system_size(), sizeof(T))) {
          out.detail = "system exceeds shared memory";
          return out;
        }
        const auto stats = zhang_solve(dev, copy);
        require_timed(stats);
        out.supported = true;
        out.time_us = stats.timing.time_us;
        out.launches = 1;
        break;
      }
      case SolverKind::cr: {
        if (!zhang_fits(dev, std::bit_ceil(batch.system_size()), sizeof(T))) {
          out.detail = "padded system exceeds shared memory";
          return out;
        }
        const auto stats = cr_kernel_solve(dev, copy);
        require_timed(stats);
        out.supported = true;
        out.time_us = stats.timing.time_us;
        out.launches = 1;
        break;
      }
      case SolverKind::davidson: {
        const auto rep = davidson_solve(dev, copy);
        out.supported = true;
        out.time_us = rep.total_us();
        out.launches = rep.timeline.segments().size();
        out.detail = std::to_string(rep.global_steps) + " global steps";
        break;
      }
      case SolverKind::partition: {
        const auto rep = partition_solve_gpu(dev, copy, {});
        out.supported = true;
        out.time_us = rep.total_us();
        out.launches = rep.timeline.segments().size();
        break;
      }
    }
  } catch (const std::exception& e) {
    out.supported = false;
    out.detail = e.what();
  }

  if (out.supported && guarding) {
    static const auto flagged_ctr = obs::counter_handle("solver.guard.flagged");
    static const auto fallback_ctr =
        obs::counter_handle("solver.guard.fallback");
    static const auto refined_ctr = obs::counter_handle("solver.guard.refined");
    // resize() wipes to fresh statuses — only size up guard-less kinds,
    // never the hybrid family's kernel-reported rows and pivot growth.
    if (out.status.size() != batch.num_systems()) {
      out.status.resize(batch.num_systems());
    }
    // The hybrid family already counted its kernel-reported flags in
    // solver.guard.flagged; only the scan's *new* flags are added here so
    // the taxonomy counters stay exact per system.
    const std::size_t kernel_flagged = out.status.flagged_count();
    posthoc_scan(batch, copy, out.status);
    out.flagged = out.status.flagged_count();
    flagged_ctr.add(static_cast<double>(out.flagged - kernel_flagged));
    if (fallback && out.flagged > 0) {
      tridiag::RecoverOptions ropts;
      ropts.refine = run_opts.refine;
      const auto rstats =
          tridiag::lu_recover_flagged(batch, copy, out.status, ropts);
      out.fallback_solves = rstats.fallback_solves;
      out.refine_steps = rstats.refine_steps;
      fallback_ctr.add(static_cast<double>(rstats.fallback_solves));
      refined_ctr.add(static_cast<double>(rstats.refine_steps));
    }
  }

  if (out.supported && solution != nullptr) *solution = std::move(copy);
  return out;
}

template SolveOutcome run_solver<float>(SolverKind, const gpusim::DeviceSpec&,
                                        const tridiag::SystemBatch<float>&,
                                        const SolverRunOptions&,
                                        tridiag::SystemBatch<float>*);
template SolveOutcome run_solver<double>(SolverKind, const gpusim::DeviceSpec&,
                                         const tridiag::SystemBatch<double>&,
                                         const SolverRunOptions&,
                                         tridiag::SystemBatch<double>*);

}  // namespace tridsolve::gpu
