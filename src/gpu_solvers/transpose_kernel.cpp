#include "gpu_solvers/transpose_kernel.hpp"

#include <stdexcept>

namespace tridsolve::gpu {

template <typename T>
gpusim::LaunchStats transpose(const gpusim::DeviceSpec& dev, const T* in, T* out,
                              std::size_t rows, std::size_t cols,
                              const TransposeOptions& opts) {
  const std::size_t tile = opts.tile;
  const std::size_t rpt = opts.rows_per_thread;
  if (tile == 0 || rpt == 0 || tile % rpt != 0) {
    throw std::invalid_argument("transpose: tile must be a multiple of rows_per_thread");
  }
  const std::size_t rows_per_pass = tile / rpt;  // ty range
  const int block_threads = static_cast<int>(tile * rows_per_pass);
  const std::size_t pitch = tile + (opts.pad_shared ? 1 : 0);

  const std::size_t tiles_x = (cols + tile - 1) / tile;
  const std::size_t tiles_y = (rows + tile - 1) / tile;

  return gpusim::launch(dev, {tiles_x * tiles_y, block_threads},
                        [&](gpusim::BlockContext& ctx) {
    const std::size_t tile_x = ctx.block_id() % tiles_x;
    const std::size_t tile_y = ctx.block_id() / tiles_x;
    auto sh = ctx.shared<T>(pitch * tile);

    // Stage: coalesced global reads, row-major shared stores.
    ctx.phase([&](gpusim::ThreadCtx& t) {
      const auto tid = static_cast<std::size_t>(t.tid());
      const std::size_t tx = tid % tile;
      const std::size_t ty = tid / tile;
      for (std::size_t j = 0; j < rpt; ++j) {
        const std::size_t y = ty + j * rows_per_pass;
        const std::size_t row = tile_y * tile + y;
        const std::size_t col = tile_x * tile + tx;
        if (row < rows && col < cols) {
          t.sstore(&sh[y * pitch + tx], t.load(&in[row * cols + col]));
        }
      }
    });

    // Drain: shared column reads (the bank-conflict hot spot when
    // unpadded), coalesced global writes of the transposed patch.
    ctx.phase([&](gpusim::ThreadCtx& t) {
      const auto tid = static_cast<std::size_t>(t.tid());
      const std::size_t tx = tid % tile;
      const std::size_t ty = tid / tile;
      for (std::size_t j = 0; j < rpt; ++j) {
        const std::size_t y = ty + j * rows_per_pass;
        const std::size_t out_row = tile_x * tile + y;   // transposed coords
        const std::size_t out_col = tile_y * tile + tx;
        if (out_row < cols && out_col < rows) {
          const T v = t.sload(&sh[tx * pitch + y]);
          t.store(&out[out_row * rows + out_col], v);
        }
      }
    });
  });
}

template gpusim::LaunchStats transpose<float>(const gpusim::DeviceSpec&,
                                              const float*, float*, std::size_t,
                                              std::size_t, const TransposeOptions&);
template gpusim::LaunchStats transpose<double>(const gpusim::DeviceSpec&,
                                               const double*, double*, std::size_t,
                                               std::size_t, const TransposeOptions&);

}  // namespace tridsolve::gpu
