#include "gpu_solvers/periodic_gpu.hpp"

#include <stdexcept>
#include <vector>

namespace tridsolve::gpu {

template <typename T>
PeriodicReport periodic_solve_gpu(const gpusim::DeviceSpec& dev,
                                  tridiag::SystemBatch<T>& batch,
                                  std::span<const PeriodicCorners<T>> corners,
                                  const HybridOptions& opts) {
  const std::size_t m_count = batch.num_systems();
  const std::size_t n = batch.system_size();
  if (corners.size() != m_count) {
    throw std::invalid_argument("periodic_solve_gpu: corners/batch mismatch");
  }
  if (n < 3) {
    throw std::invalid_argument("periodic_solve_gpu: system too small");
  }

  // Build the doubled batch: system 2m solves A' y = d, system 2m+1
  // solves A' z = u. Doubling M improves (never hurts) the hybrid's
  // parallelism and keeps the paired systems adjacent in memory.
  tridiag::SystemBatch<T> doubled(2 * m_count, n, batch.layout());
  std::vector<T> gamma(m_count);
  for (std::size_t m = 0; m < m_count; ++m) {
    auto src = batch.system(m);
    gamma[m] = tridiag::periodic_correct_matrix(src, corners[m].alpha,
                                                corners[m].beta);
    auto yd = doubled.system(2 * m);
    auto zu = doubled.system(2 * m + 1);
    for (std::size_t i = 0; i < n; ++i) {
      yd.a[i] = zu.a[i] = src.a[i];
      yd.b[i] = zu.b[i] = src.b[i];
      yd.c[i] = zu.c[i] = src.c[i];
      yd.d[i] = src.d[i];
      zu.d[i] = T(0);
    }
    zu.d[0] = gamma[m];
    zu.d[n - 1] = corners[m].beta;
  }

  PeriodicReport report;
  report.hybrid = hybrid_solve(dev, doubled, opts);

  // Sherman-Morrison combine (host): x = y - z (v.y)/(1 + v.z).
  for (std::size_t m = 0; m < m_count; ++m) {
    auto y = doubled.system(2 * m).d;
    auto z = doubled.system(2 * m + 1).d;
    const auto st = tridiag::periodic_combine(
        y, tridiag::StridedView<const T>(z.data(), z.size(), z.stride()),
        corners[m].alpha, gamma[m]);
    if (!st.ok() && report.status.ok()) report.status = st;
    auto out = batch.system(m);
    for (std::size_t i = 0; i < n; ++i) out.d[i] = y[i];
  }
  return report;
}

template PeriodicReport periodic_solve_gpu<float>(
    const gpusim::DeviceSpec&, tridiag::SystemBatch<float>&,
    std::span<const PeriodicCorners<float>>, const HybridOptions&);
template PeriodicReport periodic_solve_gpu<double>(
    const gpusim::DeviceSpec&, tridiag::SystemBatch<double>&,
    std::span<const PeriodicCorners<double>>, const HybridOptions&);

}  // namespace tridsolve::gpu
