#include "gpu_solvers/davidson.hpp"

#include <algorithm>
#include <bit>
#include <optional>
#include <vector>

#include "gpu_solvers/inshared_block.hpp"

namespace tridsolve::gpu {

namespace {

/// One stepped-global-PCR launch: dst[m,i] = combine(src[m,i-s], src[m,i],
/// src[m,i+s]). A full pass over every row, 12 loads + 4 stores each.
template <typename T>
gpusim::LaunchStats global_pcr_step(const gpusim::DeviceSpec& dev,
                                    tridiag::SystemBatch<T>& src,
                                    tridiag::SystemBatch<T>& dst,
                                    std::size_t stride) {
  const std::size_t m_count = src.num_systems();
  const std::size_t n = src.system_size();
  const std::size_t total = m_count * n;
  const int block_threads = 256;
  const std::size_t grid =
      (total + static_cast<std::size_t>(block_threads) - 1) /
      static_cast<std::size_t>(block_threads);

  return gpusim::launch(dev, {grid, block_threads}, [&](gpusim::BlockContext& ctx) {
    ctx.phase([&](gpusim::ThreadCtx& t) {
      const std::size_t flat =
          ctx.block_id() * static_cast<std::size_t>(block_threads) +
          static_cast<std::size_t>(t.tid());
      if (flat >= total) return;
      const std::size_t m = flat / n;
      const std::size_t i = flat % n;
      auto s = src.system(m);
      auto d = dst.system(m);

      auto read_row = [&](std::ptrdiff_t pos) -> ShRow<T> {
        if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(n)) {
          return ShRow<T>{T(0), T(1), T(0), T(0)};
        }
        const auto u = static_cast<std::size_t>(pos);
        return ShRow<T>{t.load(s.a.ptr(u)), t.load(s.b.ptr(u)),
                        t.load(s.c.ptr(u)), t.load(s.d.ptr(u))};
      };
      const auto ip = static_cast<std::ptrdiff_t>(i);
      const auto sp = static_cast<std::ptrdiff_t>(stride);
      const ShRow<T> lo = read_row(ip - sp);
      const ShRow<T> mid = read_row(ip);
      const ShRow<T> hi = read_row(ip + sp);
      const T k1 = mid.a / lo.b;
      const T k2 = mid.c / hi.b;
      t.flops<T>(10);
      t.divs<T>(2);
      t.store(d.a.ptr(i), -lo.a * k1);
      t.store(d.b.ptr(i), mid.b - lo.c * k1 - hi.a * k2);
      t.store(d.c.ptr(i), -hi.c * k2);
      t.store(d.d.ptr(i), mid.d - lo.d * k1 - hi.d * k2);
    });
  });
}

}  // namespace

template <typename T>
DavidsonReport davidson_solve(const gpusim::DeviceSpec& dev,
                              tridiag::SystemBatch<T>& batch,
                              const DavidsonOptions& opts) {
  DavidsonReport report;
  const std::size_t m_count = batch.num_systems();
  const std::size_t n = batch.system_size();
  if (m_count == 0 || n == 0) return report;

  // The auto-tuned original sizes its shared tile to the device; clamp the
  // requested tile to what a block can actually host (4 values per row).
  const std::size_t shared_rows = std::min(
      opts.shared_rows, dev.shared_mem_per_block / (4 * sizeof(T)));

  // Global PCR until each stride-2^k subsystem fits the shared tile.
  unsigned k_global = 0;
  while ((n >> k_global) > shared_rows) ++k_global;
  report.global_steps = k_global;

  std::optional<tridiag::SystemBatch<T>> scratch;
  if (k_global > 0) scratch.emplace(m_count, n, batch.layout());
  tridiag::SystemBatch<T>* src = &batch;
  tridiag::SystemBatch<T>* dst = scratch ? &*scratch : &batch;
  for (unsigned s = 0; s < k_global; ++s) {
    report.timeline.add("global-pcr:step" + std::to_string(s),
                        global_pcr_step(dev, *src, *dst, std::size_t{1} << s));
    std::swap(src, dst);
  }

  // Final kernel: one block per (m, r) subsystem, coarse shared tile.
  const std::size_t sub_stride = std::size_t{1} << k_global;
  const std::size_t grid = m_count * sub_stride;
  const int threads = opts.final_block_threads;
  tridiag::SystemBatch<T>& in = *src;

  const auto final_stats = gpusim::launch(dev, {grid, threads}, [&](gpusim::BlockContext& ctx) {
    const std::size_t m = ctx.block_id() / sub_stride;
    const std::size_t r = ctx.block_id() % sub_stride;
    if (r >= n) return;
    const std::size_t q = (n - r + sub_stride - 1) / sub_stride;
    auto rows = ctx.shared<ShRow<T>>(q);
    auto sys_in = in.system(m);
    auto sys_out = batch.system(m);  // x must land in the caller's d

    // Load the subsystem into shared: stride-2^k addresses, so for
    // k_global > 0 this is heavily uncoalesced (Davidson's layout cost).
    const auto tcount = static_cast<std::size_t>(threads);
    ctx.phase([&](gpusim::ThreadCtx& t) {
      for (std::size_t j = static_cast<std::size_t>(t.tid()); j < q; j += tcount) {
        const std::size_t pos = r + j * sub_stride;
        rows[j] = ShRow<T>{t.load(sys_in.a.ptr(pos)), t.load(sys_in.b.ptr(pos)),
                           t.load(sys_in.c.ptr(pos)), t.load(sys_in.d.ptr(pos))};
      }
    });

    // In-shared PCR, one barrier-synchronized step at a time, until there
    // is one subsystem per thread; then thread-parallel Thomas in shared.
    std::size_t split = 1;
    while (split < tcount && split < q) {
      inshared_pcr_step(ctx, std::span<ShRow<T>>(rows.data(), q), split);
      split *= 2;
    }
    inshared_pthomas(ctx, std::span<ShRow<T>>(rows.data(), q), std::min(split, q));

    ctx.phase([&](gpusim::ThreadCtx& t) {
      for (std::size_t j = static_cast<std::size_t>(t.tid()); j < q; j += tcount) {
        const std::size_t pos = r + j * sub_stride;
        t.store(sys_out.d.ptr(pos), rows[j].d);
      }
    });
  });
  report.timeline.add("final-pcr-thomas", final_stats);
  return report;
}

template DavidsonReport davidson_solve<float>(const gpusim::DeviceSpec&,
                                              tridiag::SystemBatch<float>&,
                                              const DavidsonOptions&);
template DavidsonReport davidson_solve<double>(const gpusim::DeviceSpec&,
                                               tridiag::SystemBatch<double>&,
                                               const DavidsonOptions&);

}  // namespace tridsolve::gpu
