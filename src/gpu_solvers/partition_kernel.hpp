#pragma once
// Register-packed block-partition solver on the simulated GPU — the GPU
// form of tridiag/partition.hpp and the structure of Davidson & Owens'
// register-packed CR [18] / cuSPARSE gtsv:
//
//   stage 1  one thread per packet: load the packet's p rows into
//            registers, run the downward and upward eliminations there,
//            store the per-row downward coefficients (needed later for
//            back-substitution) and the packet's boundary relations;
//   stage 2  one thread per system: 2x2 block Thomas over the packets'
//            boundary unknowns (the reduced system);
//   stage 3  one thread per packet: local back-substitution, x into d.
//
// Three launches with global traffic ~7 accesses/row — an interesting
// contrast to the hybrid in the solver-family ablation: no shared memory
// at all (occupancy never shared-limited), but packet-contiguous reads
// coalesce poorly in a contiguous batch layout, and the reduced stage has
// only M-way parallelism.

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/layout.hpp"

namespace tridsolve::gpu {

struct PartitionGpuOptions {
  std::size_t packet = 8;   ///< rows per thread ("register packing" factor)
  int block_threads = 128;
};

struct PartitionGpuReport {
  gpusim::Timeline timeline;
  /// Throws std::logic_error when the solve ran functional_only — see
  /// Timeline.
  [[nodiscard]] double total_us() const { return timeline.total_us(); }
};

/// Solve every system of `batch` in place (solution in d).
template <typename T>
PartitionGpuReport partition_solve_gpu(const gpusim::DeviceSpec& dev,
                                       tridiag::SystemBatch<T>& batch,
                                       const PartitionGpuOptions& opts = {});

extern template PartitionGpuReport partition_solve_gpu<float>(
    const gpusim::DeviceSpec&, tridiag::SystemBatch<float>&,
    const PartitionGpuOptions&);
extern template PartitionGpuReport partition_solve_gpu<double>(
    const gpusim::DeviceSpec&, tridiag::SystemBatch<double>&,
    const PartitionGpuOptions&);

}  // namespace tridsolve::gpu
