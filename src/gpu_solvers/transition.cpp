#include "gpu_solvers/transition.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/metrics.hpp"

namespace tridsolve::gpu {

namespace {

[[nodiscard]] double pow2(unsigned e) noexcept {
  return static_cast<double>(std::size_t{1} << e);
}

}  // namespace

double cost_thomas(std::size_t m, unsigned n, double p) noexcept {
  const double md = static_cast<double>(m);
  const double steps = 2.0 * pow2(n) - 1.0;
  // M systems = M-way parallelism: below saturation the span is one
  // system's steps; above it, total work amortizes over P lanes.
  return md > p ? md / p * steps : steps;
}

double cost_pcr(std::size_t m, unsigned n, double p) noexcept {
  const double md = static_cast<double>(m);
  // PCR exposes row-level parallelism at every step, so work always
  // divides by P (Table II gives the same expression for both regimes).
  return md / p * (static_cast<double>(n) * pow2(n) + 1.0);
}

double cost_hybrid(std::size_t m, unsigned n, double p, unsigned k) noexcept {
  const double md = static_cast<double>(m);
  const double kd = static_cast<double>(k);
  const double pcr_part = kd * pow2(n);          // k * 2^n eliminations/system
  const double thomas_part = 2.0 * (pow2(n) - pow2(std::min(k, n)));
  if (md > p) {
    return md / p * (pcr_part + thomas_part);
  }
  // PCR still amortizes over P; whether p-Thomas does depends on whether
  // the 2^k * M reduced systems saturate the machine.
  const double reduced = pow2(std::min(k, n)) * md;
  if (reduced > p) {
    return md / p * pcr_part + md / p * thomas_part;
  }
  return md / p * pcr_part + thomas_part;
}

unsigned model_best_k(std::size_t m, std::size_t system_size,
                      const gpusim::DeviceSpec& dev) noexcept {
  if (system_size <= 1 || m == 0) return 0;
  const auto n = static_cast<unsigned>(std::bit_width(system_size - 1));
  const double p = machine_parallelism(dev);
  const unsigned k_cap = std::min(
      n, static_cast<unsigned>(std::bit_width(
             static_cast<std::size_t>(dev.max_threads_per_block)) - 1));
  unsigned best = 0;
  double best_cost = cost_hybrid(m, n, p, 0);
  for (unsigned k = 1; k <= k_cap; ++k) {
    const double cost = cost_hybrid(m, n, p, k);
    if (cost < best_cost) {
      best_cost = cost;
      best = k;
    }
  }
  obs::gauge("transition.model_k", best);
  return best;
}

unsigned heuristic_k(std::size_t m, std::size_t system_size) noexcept {
  unsigned k = 0;
  if (m < 16) {
    k = 8;
  } else if (m < 32) {
    k = 7;
  } else if (m < 512) {
    k = 6;
  } else if (m < 1024) {
    k = 5;
  } else {
    k = 0;
  }
  // A system must still have at least a couple of rows per reduced system
  // for the split to pay off; clamp 2^k <= system_size / 2.
  const unsigned table_k = k;
  while (k > 0 && (std::size_t{1} << k) > system_size / 2) --k;
  if (k != table_k) {
    static const auto clamped = obs::counter_handle("transition.clamped");
    clamped.add();
  }
  obs::gauge("transition.heuristic_k", k);
  return k;
}

double machine_parallelism(const gpusim::DeviceSpec& dev) noexcept {
  return static_cast<double>(dev.num_sms) *
         static_cast<double>(dev.max_threads_per_sm);
}

}  // namespace tridsolve::gpu
