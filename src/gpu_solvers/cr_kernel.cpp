#include "gpu_solvers/cr_kernel.hpp"

#include <bit>
#include <stdexcept>

#include "gpu_solvers/zhang_pcr_thomas.hpp"

namespace tridsolve::gpu {

namespace {

/// Index padding a la Göddeke & Strzodka: insert one padding element per
/// half-warp of entries so power-of-two strides stop aliasing to the same
/// banks. (bank = word % 32; doubles occupy 2 words, hence the /16.)
constexpr std::size_t pad_index(std::size_t i, bool enabled,
                                std::size_t elems_per_conflict_period) noexcept {
  return enabled ? i + i / elems_per_conflict_period : i;
}

}  // namespace

template <typename T>
gpusim::LaunchStats cr_kernel_solve(const gpusim::DeviceSpec& dev,
                                    tridiag::SystemBatch<T>& batch,
                                    const CrKernelOptions& opts) {
  const std::size_t n = batch.system_size();
  const std::size_t npad = std::bit_ceil(std::max<std::size_t>(n, 1));
  // Elements per conflict period: a full set of banks' worth of elements.
  const std::size_t period =
      static_cast<std::size_t>(dev.shared_banks) *
      static_cast<std::size_t>(dev.shared_bank_width) / sizeof(T);
  const std::size_t storage =
      pad_index(npad - 1, opts.pad_shared, period) + 1;
  if (storage * 4 * sizeof(T) > dev.shared_mem_per_block) {
    throw std::invalid_argument("cr_kernel_solve: padded system (" +
                                std::to_string(storage) +
                                " rows) does not fit in shared memory");
  }
  const auto levels = static_cast<unsigned>(std::bit_width(npad) - 1);

  return gpusim::launch(dev, {batch.num_systems(), opts.block_threads},
                        [&](gpusim::BlockContext& ctx) {
    // SoA shared arrays, as a real CR kernel lays them out.
    auto sa = ctx.shared<T>(storage);
    auto sb = ctx.shared<T>(storage);
    auto sc = ctx.shared<T>(storage);
    auto sd = ctx.shared<T>(storage);
    auto sys = batch.system(ctx.block_id());
    const auto tcount = static_cast<std::size_t>(opts.block_threads);
    auto idx = [&](std::size_t i) { return pad_index(i, opts.pad_shared, period); };

    // Coalesced load; identity rows pad to the next power of two.
    ctx.phase([&](gpusim::ThreadCtx& t) {
      for (std::size_t i = static_cast<std::size_t>(t.tid()); i < npad; i += tcount) {
        const std::size_t s = idx(i);
        if (i < n) {
          t.sstore(&sa[s], t.load(sys.a.ptr(i)));
          t.sstore(&sb[s], t.load(sys.b.ptr(i)));
          t.sstore(&sc[s], t.load(sys.c.ptr(i)));
          t.sstore(&sd[s], t.load(sys.d.ptr(i)));
        } else {
          t.sstore(&sa[s], T(0));
          t.sstore(&sb[s], T(1));
          t.sstore(&sc[s], T(0));
          t.sstore(&sd[s], T(0));
        }
      }
    });

    // Forward reduction: level L eliminates rows p == 2^{L+1}-1 (mod
    // 2^{L+1}) against neighbours at +-2^L. In place: neighbours belong to
    // the other residue class and are not written this level. Active rows
    // halve per level while each level still costs a full barrier — and
    // the stride-2^L shared accesses produce the bank conflicts the
    // padding option removes.
    for (unsigned level = 0; level < levels; ++level) {
      const std::size_t step = std::size_t{2} << level;  // 2^{L+1}
      const std::size_t reach = std::size_t{1} << level;
      ctx.phase([&](gpusim::ThreadCtx& t) {
        for (std::size_t p = step - 1 + static_cast<std::size_t>(t.tid()) * step;
             p < npad; p += tcount * step) {
          const std::size_t sm = idx(p);
          const std::size_t sl = idx(p - reach);
          const T a_m = t.sload(&sa[sm]), b_m = t.sload(&sb[sm]);
          const T c_m = t.sload(&sc[sm]), d_m = t.sload(&sd[sm]);
          const T a_l = t.sload(&sa[sl]), b_l = t.sload(&sb[sl]);
          const T c_l = t.sload(&sc[sl]), d_l = t.sload(&sd[sl]);
          T a_h = T(0), b_h = T(1), c_h = T(0), d_h = T(0);
          if (p + reach < npad) {
            const std::size_t sh = idx(p + reach);
            a_h = t.sload(&sa[sh]);
            b_h = t.sload(&sb[sh]);
            c_h = t.sload(&sc[sh]);
            d_h = t.sload(&sd[sh]);
          }
          const T k1 = a_m / b_l;
          const T k2 = c_m / b_h;
          t.sstore(&sa[sm], -a_l * k1);
          t.sstore(&sb[sm], b_m - c_l * k1 - a_h * k2);
          t.sstore(&sc[sm], -c_h * k2);
          t.sstore(&sd[sm], d_m - d_l * k1 - d_h * k2);
          t.flops<T>(10);
          t.divs<T>(2);
        }
      });
    }

    // Backward substitution: x overwrites d for solved rows.
    for (unsigned level = levels + 1; level-- > 0;) {
      const std::size_t reach = std::size_t{1} << level;
      const std::size_t step = reach * 2;
      ctx.phase([&](gpusim::ThreadCtx& t) {
        for (std::size_t p = reach - 1 + static_cast<std::size_t>(t.tid()) * step;
             p < npad; p += tcount * step) {
          const std::size_t sm = idx(p);
          const T x_lo = p >= reach ? t.sload(&sd[idx(p - reach)]) : T(0);
          const T x_hi = p + reach < npad ? t.sload(&sd[idx(p + reach)]) : T(0);
          const T x = (t.sload(&sd[sm]) - t.sload(&sa[sm]) * x_lo -
                       t.sload(&sc[sm]) * x_hi) /
                      t.sload(&sb[sm]);
          t.sstore(&sd[sm], x);
          t.flops<T>(4);
          t.divs<T>(1);
        }
      });
    }

    ctx.phase([&](gpusim::ThreadCtx& t) {
      for (std::size_t i = static_cast<std::size_t>(t.tid()); i < n; i += tcount) {
        t.store(sys.d.ptr(i), t.sload(&sd[idx(i)]));
      }
    });
  });
}

template gpusim::LaunchStats cr_kernel_solve<float>(const gpusim::DeviceSpec&,
                                                    tridiag::SystemBatch<float>&,
                                                    const CrKernelOptions&);
template gpusim::LaunchStats cr_kernel_solve<double>(const gpusim::DeviceSpec&,
                                                     tridiag::SystemBatch<double>&,
                                                     const CrKernelOptions&);

}  // namespace tridsolve::gpu
