#pragma once
// Baseline: Davidson, Zhang & Owens [19]-style auto-tuned PCR-Thomas
// hybrid, reimplemented from the paper's §V description for the Fig. 14
// comparison.
//
// Structure (per §V):
//  * *stepped global PCR*: each PCR step runs as its own kernel over the
//    whole input, ping-ponging between two global buffers — a grid-wide
//    synchronization per step, paying kernel relaunch overhead and full
//    global traffic (12 loads + 4 stores per row per step);
//  * once each reduced subsystem fits in shared memory, a final kernel
//    maps one subsystem per block ("coarse-grained tiles ... maximally
//    occupy shared memory"), finishes the reduction in shared with a
//    barrier per step, and solves with thread-parallel Thomas in shared.
//
// The contrasts with our method that §V calls out all fall out of the
// model: large shared footprint -> 1 block/SM occupancy; one kernel +
// full array traffic per PCR step vs. a single streaming pass; strided
// (uncoalesced) subsystem loads in the final stage.

#include <cstddef>

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/layout.hpp"

namespace tridsolve::gpu {

struct DavidsonOptions {
  std::size_t shared_rows = 1024;  ///< subsystem rows the final kernel tiles
  int final_block_threads = 128;   ///< p-Thomas lanes in the final kernel
};

struct DavidsonReport {
  unsigned global_steps = 0;  ///< stepped-PCR kernel launches
  gpusim::Timeline timeline;
  /// Throws std::logic_error when the solve ran functional_only — see
  /// Timeline.
  [[nodiscard]] double total_us() const { return timeline.total_us(); }
};

/// Solve every system of `batch` (contiguous layout) in place; the
/// solution lands in d.
template <typename T>
DavidsonReport davidson_solve(const gpusim::DeviceSpec& dev,
                              tridiag::SystemBatch<T>& batch,
                              const DavidsonOptions& opts = {});

extern template DavidsonReport davidson_solve<float>(const gpusim::DeviceSpec&,
                                                     tridiag::SystemBatch<float>&,
                                                     const DavidsonOptions&);
extern template DavidsonReport davidson_solve<double>(const gpusim::DeviceSpec&,
                                                      tridiag::SystemBatch<double>&,
                                                      const DavidsonOptions&);

}  // namespace tridsolve::gpu
