#pragma once
// A small registry over every GPU solver in the library, so benches,
// examples and what-if studies can sweep solver families uniformly and
// handle per-solver applicability (e.g. in-shared methods' size cap)
// without bespoke glue.

#include <optional>
#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/batch_status.hpp"
#include "tridiag/layout.hpp"
#include "tridiag/resilient_solve.hpp"

namespace tridsolve::gpu {

enum class SolverKind {
  hybrid,        ///< the paper's tiled-PCR + p-Thomas (Table III heuristic)
  hybrid_fused,  ///< same with §III.C kernel fusion
  pthomas_only,  ///< force k = 0 (pure p-Thomas)
  zhang,         ///< in-shared PCR-Thomas [16][17]
  cr,            ///< in-shared cyclic reduction [3][10]
  davidson,      ///< stepped global PCR + in-shared finish [19]
  partition,     ///< register-packed block partition (SPIKE-style, [18])
};

[[nodiscard]] const char* solver_name(SolverKind kind) noexcept;
[[nodiscard]] std::vector<SolverKind> all_solver_kinds();

/// Outcome of running one solver on one batch.
struct SolveOutcome {
  bool supported = false;     ///< false: configuration rejected (with why)
  double time_us = 0.0;       ///< simulated execution time
  std::size_t launches = 0;   ///< kernel launches performed
  std::string detail;         ///< rejection reason or extra info

  /// Per-phase launch breakdown of the run (labels like "pcr",
  /// "thomas-fwd"; single-launch solvers report one segment named after
  /// the solver token). Empty when supported == false. This is what the
  /// roofline profiler (obs::attribute_timeline / bench_profile)
  /// attributes phase by phase.
  gpusim::Timeline timeline;

  /// Per-system guard outcome, sized num_systems when guarding was
  /// requested (empty otherwise). Codes are the detection record: a
  /// flagged system keeps its code even after LU fallback replaced its
  /// solution with a good one.
  tridiag::BatchStatus status;
  std::size_t flagged = 0;          ///< systems with a non-ok status
  std::size_t fallback_solves = 0;  ///< flagged systems LU re-solved
  std::size_t refine_steps = 0;     ///< refinement iterations performed

  /// Injected-fault tallies summed over every launch of the run (all
  /// zero without an active FaultPlan). `faults.timeouts > 0` means the
  /// run overran its per-block budget — time_us includes the stall and
  /// the resilient pipeline treats the results as suspect.
  gpusim::FaultCounts faults;
  /// True when supported == false because a kernel launch itself failed
  /// (injected LaunchFailure) — a *retryable* condition, unlike a
  /// configuration rejection.
  bool launch_failed = false;
  /// True when supported == false because the caller's options were
  /// invalid for the shape (e.g. a forced 2^k > N) — a structured
  /// bad-argument rejection, never retryable.
  bool bad_argument = false;
  /// PCR step count the hybrid family actually used (-1 for other
  /// kinds). Retries pin this via SolverRunOptions::force_k so chunked
  /// re-dispatches repeat the exact arithmetic of the first attempt.
  int k = -1;
  /// Where the hybrid family's plan came from ("heuristic", "cost_model",
  /// "forced", "calibrated", "autotuned"; empty for other kinds) and
  /// whether it was a PlanCache hit.
  std::string plan_source;
  bool plan_cached = false;
};

/// Per-run knobs threaded through the registry into the launch engine.
struct SolverRunOptions {
  /// Instrumentation mode for every launch of the run; empty = engine
  /// default. functional_only runs report supported = false (no timing).
  std::optional<gpusim::InstrumentMode> instrument{};
  /// Shared-memory hazard detection for every launch of the run; empty =
  /// engine default (off unless --check-hazards). Detection is read-only:
  /// outputs and simulated time are bit-identical with it on. In fatal
  /// mode a flagged launch surfaces as supported = false with the finding
  /// in `detail`.
  std::optional<gpusim::HazardMode> hazards{};
  /// Collect a per-system SolveStatus: hybrid-family kernels report their
  /// own pivot guards; every solver additionally gets a post-hoc scan
  /// (non-finite solution entries, then a relative-residual gate) so even
  /// guard-less kernels cannot return silent garbage.
  bool guard = false;
  /// Re-solve flagged systems with partial-pivoting LU from the pristine
  /// input (implies guard).
  bool fallback = false;
  /// Residual-gated iterative refinement after the LU fallback (implies
  /// fallback).
  bool refine = false;
  /// Force the hybrid family's PCR step count (ignored by other kinds
  /// and by pthomas_only, which is k = 0 by definition). The resilient
  /// pipeline uses this to make sub-batch retries bit-identical to the
  /// full-batch first attempt, whose planned k depends on batch size.
  /// Out-of-range values (2^k > N, or 2^k threads over the device block
  /// limit) are rejected up front: run_solver returns supported = false
  /// with bad_argument = true instead of reaching the kernels.
  int force_k = -1;
};

/// Run `kind` over a fresh copy of `batch` (the input is not modified).
/// Unsupported configurations return supported = false instead of
/// throwing, so sweeps can tabulate applicability. When `solution` is
/// non-null it receives the solved copy (solution in d), letting callers
/// compare solver outputs without re-running; functional_only runs —
/// supported == false only because no timing exists — still hand out
/// their solution (tests/test_vector_engine.cpp sweeps outputs this way).
template <typename T>
SolveOutcome run_solver(SolverKind kind, const gpusim::DeviceSpec& dev,
                        const tridiag::SystemBatch<T>& batch,
                        const SolverRunOptions& opts = {},
                        tridiag::SystemBatch<T>* solution = nullptr);

extern template SolveOutcome run_solver<float>(SolverKind,
                                               const gpusim::DeviceSpec&,
                                               const tridiag::SystemBatch<float>&,
                                               const SolverRunOptions&,
                                               tridiag::SystemBatch<float>*);
extern template SolveOutcome run_solver<double>(SolverKind,
                                                const gpusim::DeviceSpec&,
                                                const tridiag::SystemBatch<double>&,
                                                const SolverRunOptions&,
                                                tridiag::SystemBatch<double>*);

/// Result of a resilient solve: the final (possibly partial) outcome —
/// supported is always true, per-system verdicts live in outcome.status
/// — plus the full attempt-by-attempt report.
struct ResilientOutcome {
  SolveOutcome outcome;
  tridiag::ResilienceReport report;
};

/// The default degradation order for `entry`: the entry solver itself,
/// then pthomas → cpu-thomas → lu (duplicates of the entry elided).
[[nodiscard]] std::vector<std::string> default_fallback_chain(SolverKind entry);

/// A ResiliencePolicy seeded from the engine's --deadline-us /
/// --max-retries CLI defaults (everything else at its default).
[[nodiscard]] tridiag::ResiliencePolicy engine_resilience_policy();

/// Run `kind` over `batch` under a resilience policy: guarded solve,
/// chunked sub-batch retries from pristine inputs, degradation down the
/// fallback chain, and a deadline budget — returning a partial result
/// with a severity-ordered taxonomy (never throwing, never silent
/// garbage). Recovered systems are bit-identical to a fault-free run of
/// the stage that recovered them. `opts.guard` is implied; `solution`
/// receives the assembled batch (solution in d for every recovered
/// system, pristine d for unrecovered ones).
template <typename T>
ResilientOutcome run_solver_resilient(
    SolverKind kind, const gpusim::DeviceSpec& dev,
    const tridiag::SystemBatch<T>& batch, const SolverRunOptions& opts = {},
    const tridiag::ResiliencePolicy& policy = {},
    tridiag::SystemBatch<T>* solution = nullptr);

extern template ResilientOutcome run_solver_resilient<float>(
    SolverKind, const gpusim::DeviceSpec&, const tridiag::SystemBatch<float>&,
    const SolverRunOptions&, const tridiag::ResiliencePolicy&,
    tridiag::SystemBatch<float>*);
extern template ResilientOutcome run_solver_resilient<double>(
    SolverKind, const gpusim::DeviceSpec&, const tridiag::SystemBatch<double>&,
    const SolverRunOptions&, const tridiag::ResiliencePolicy&,
    tridiag::SystemBatch<double>*);

}  // namespace tridsolve::gpu
