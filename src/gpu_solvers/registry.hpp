#pragma once
// A small registry over every GPU solver in the library, so benches,
// examples and what-if studies can sweep solver families uniformly and
// handle per-solver applicability (e.g. in-shared methods' size cap)
// without bespoke glue.

#include <optional>
#include <string>
#include <vector>

#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "tridiag/batch_status.hpp"
#include "tridiag/layout.hpp"

namespace tridsolve::gpu {

enum class SolverKind {
  hybrid,        ///< the paper's tiled-PCR + p-Thomas (Table III heuristic)
  hybrid_fused,  ///< same with §III.C kernel fusion
  pthomas_only,  ///< force k = 0 (pure p-Thomas)
  zhang,         ///< in-shared PCR-Thomas [16][17]
  cr,            ///< in-shared cyclic reduction [3][10]
  davidson,      ///< stepped global PCR + in-shared finish [19]
  partition,     ///< register-packed block partition (SPIKE-style, [18])
};

[[nodiscard]] const char* solver_name(SolverKind kind) noexcept;
[[nodiscard]] std::vector<SolverKind> all_solver_kinds();

/// Outcome of running one solver on one batch.
struct SolveOutcome {
  bool supported = false;     ///< false: configuration rejected (with why)
  double time_us = 0.0;       ///< simulated execution time
  std::size_t launches = 0;   ///< kernel launches performed
  std::string detail;         ///< rejection reason or extra info

  /// Per-system guard outcome, sized num_systems when guarding was
  /// requested (empty otherwise). Codes are the detection record: a
  /// flagged system keeps its code even after LU fallback replaced its
  /// solution with a good one.
  tridiag::BatchStatus status;
  std::size_t flagged = 0;          ///< systems with a non-ok status
  std::size_t fallback_solves = 0;  ///< flagged systems LU re-solved
  std::size_t refine_steps = 0;     ///< refinement iterations performed
};

/// Per-run knobs threaded through the registry into the launch engine.
struct SolverRunOptions {
  /// Instrumentation mode for every launch of the run; empty = engine
  /// default. functional_only runs report supported = false (no timing).
  std::optional<gpusim::InstrumentMode> instrument{};
  /// Shared-memory hazard detection for every launch of the run; empty =
  /// engine default (off unless --check-hazards). Detection is read-only:
  /// outputs and simulated time are bit-identical with it on. In fatal
  /// mode a flagged launch surfaces as supported = false with the finding
  /// in `detail`.
  std::optional<gpusim::HazardMode> hazards{};
  /// Collect a per-system SolveStatus: hybrid-family kernels report their
  /// own pivot guards; every solver additionally gets a post-hoc scan
  /// (non-finite solution entries, then a relative-residual gate) so even
  /// guard-less kernels cannot return silent garbage.
  bool guard = false;
  /// Re-solve flagged systems with partial-pivoting LU from the pristine
  /// input (implies guard).
  bool fallback = false;
  /// Residual-gated iterative refinement after the LU fallback (implies
  /// fallback).
  bool refine = false;
};

/// Run `kind` over a fresh copy of `batch` (the input is not modified).
/// Unsupported configurations return supported = false instead of
/// throwing, so sweeps can tabulate applicability. When `solution` is
/// non-null it receives the solved copy (solution in d), letting callers
/// compare solver outputs without re-running.
template <typename T>
SolveOutcome run_solver(SolverKind kind, const gpusim::DeviceSpec& dev,
                        const tridiag::SystemBatch<T>& batch,
                        const SolverRunOptions& opts = {},
                        tridiag::SystemBatch<T>* solution = nullptr);

extern template SolveOutcome run_solver<float>(SolverKind,
                                               const gpusim::DeviceSpec&,
                                               const tridiag::SystemBatch<float>&,
                                               const SolverRunOptions&,
                                               tridiag::SystemBatch<float>*);
extern template SolveOutcome run_solver<double>(SolverKind,
                                                const gpusim::DeviceSpec&,
                                                const tridiag::SystemBatch<double>&,
                                                const SolverRunOptions&,
                                                tridiag::SystemBatch<double>*);

}  // namespace tridsolve::gpu
