#pragma once
// Baseline: cyclic-reduction GPU kernel in the style of Sengupta et al. [3]
// and Göddeke & Strzodka [10] — one block per system, the whole system in
// shared memory (SoA arrays), forward reduction halving the active thread
// count each level, then backward substitution doubling it again.
//
// CR's stride-2^L shared accesses hit power-of-two bank patterns, so the
// naive layout serializes badly as the reduction deepens; [10]'s fix is
// index padding (one padding element per `banks/2` entries), which this
// kernel implements behind `pad_shared`. All shared accesses are routed
// through the simulator's bank tracker, so the conflict counts (and their
// time impact) are measured by the banks ablation bench rather than
// asserted.

#include <cstddef>

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/layout.hpp"

namespace tridsolve::gpu {

struct CrKernelOptions {
  int block_threads = 128;
  bool pad_shared = false;  ///< Göddeke-style bank-conflict-avoiding padding
};

/// Solve every system of `batch` in place (solution in d). Requires the
/// padded system (next power of two, plus padding if enabled) to fit in
/// shared memory.
template <typename T>
gpusim::LaunchStats cr_kernel_solve(const gpusim::DeviceSpec& dev,
                                    tridiag::SystemBatch<T>& batch,
                                    const CrKernelOptions& opts = {});

/// Back-compat convenience: default options with a custom block size.
template <typename T>
gpusim::LaunchStats cr_kernel_solve(const gpusim::DeviceSpec& dev,
                                    tridiag::SystemBatch<T>& batch,
                                    int block_threads) {
  CrKernelOptions opts;
  opts.block_threads = block_threads;
  return cr_kernel_solve(dev, batch, opts);
}

extern template gpusim::LaunchStats cr_kernel_solve<float>(
    const gpusim::DeviceSpec&, tridiag::SystemBatch<float>&,
    const CrKernelOptions&);
extern template gpusim::LaunchStats cr_kernel_solve<double>(
    const gpusim::DeviceSpec&, tridiag::SystemBatch<double>&,
    const CrKernelOptions&);

}  // namespace tridsolve::gpu
