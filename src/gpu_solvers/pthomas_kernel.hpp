#pragma once
// p-Thomas kernel (paper §III.B): one thread per independent system, each
// running the classic Thomas algorithm over strided global memory.
//
// The systems are handed in as strided views, so the same kernel serves
//  * the post-tiled-PCR stage (system (m, r) at base m*N + r, stride 2^k —
//    consecutive threads touch consecutive addresses: coalesced), and
//  * the k = 0 path on an interleaved batch (base m, stride M — likewise
//    coalesced), and
//  * deliberately bad layouts in ablations (contiguous k = 0), where the
//    recorded transaction counts show the coalescing collapse.
//
// The solve is in place: c becomes c', d becomes d' and finally x.

#include <span>
#include <stdexcept>

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/types.hpp"

namespace tridsolve::gpu {

/// Forward+backward sweeps as two kernel launches (the backward pass is a
/// separate grid pass in real implementations as well: it needs the
/// forward pass complete for its own system only, but splitting keeps the
/// code one-phase-per-launch). Returns both launches' stats.
struct PthomasStats {
  gpusim::LaunchStats forward;
  gpusim::LaunchStats backward;
  /// Throws std::logic_error for functional_only launches, whose timing
  /// fields are meaningless.
  [[nodiscard]] double total_us() const {
    if (!forward.timed || !backward.timed) {
      throw std::logic_error(
          "PthomasStats::total_us: launch ran functional_only");
    }
    return forward.timing.time_us + backward.timing.time_us;
  }
};

/// Solve `systems` in place on the simulated device.
/// `block_threads` is the CUDA-style block size (threads are padded with
/// idle lanes in the last block). If `xout` is non-empty it must parallel
/// `systems`; the backward pass then writes the solution there instead of
/// overwriting d (used when the reduced systems live in a scratch buffer
/// but the solution belongs in the caller's batch).
///
/// If `guard` is non-empty it must parallel `systems`: the forward sweep
/// checks every elimination pivot and writes a per-system SolveStatus
/// (zero_pivot at the first zero/non-finite denominator, plus the
/// pivot-growth estimate). Each system is owned by exactly one lane, so
/// the writes are race-free and deterministic. Detection is read-only:
/// it records no costs and changes no arithmetic, so guarded runs stay
/// bit-identical (outputs and timing) to unguarded ones. Entries for
/// empty systems are left untouched — pre-initialize them.
template <typename T>
PthomasStats pthomas_solve(const gpusim::DeviceSpec& dev,
                           std::span<const tridiag::SystemRef<T>> systems,
                           std::span<const tridiag::StridedView<T>> xout = {},
                           int block_threads = 128,
                           std::span<tridiag::SolveStatus> guard = {});

/// Backward sweep only, for the fused hybrid (whose PCR kernel already
/// performed the forward elimination, leaving c', d' in c, d).
template <typename T>
gpusim::LaunchStats pthomas_backward(const gpusim::DeviceSpec& dev,
                                     std::span<const tridiag::SystemRef<T>> systems,
                                     std::span<const tridiag::StridedView<T>> xout = {},
                                     int block_threads = 128);

extern template PthomasStats pthomas_solve<float>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<float>>,
    std::span<const tridiag::StridedView<float>>, int,
    std::span<tridiag::SolveStatus>);
extern template PthomasStats pthomas_solve<double>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<double>>,
    std::span<const tridiag::StridedView<double>>, int,
    std::span<tridiag::SolveStatus>);
extern template gpusim::LaunchStats pthomas_backward<float>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<float>>,
    std::span<const tridiag::StridedView<float>>, int);
extern template gpusim::LaunchStats pthomas_backward<double>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<double>>,
    std::span<const tridiag::StridedView<double>>, int);

}  // namespace tridsolve::gpu
