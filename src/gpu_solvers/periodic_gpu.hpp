#pragma once
// Batched periodic tridiagonal solves on the simulated GPU.
//
// Sherman-Morrison turns each periodic system into two plain solves with
// a shared corrected matrix (see tridiag/periodic.hpp). For a batch of M
// periodic systems we build one 2M-system batch (each matrix duplicated,
// rhs = d for the first copy and the rank-one column u for the second),
// run the paper's hybrid solver once, and combine on the host — i.e. the
// extension composes entirely out of the public API, and doubling M only
// helps the hybrid's parallelism.

#include <span>

#include "gpu_solvers/hybrid_solver.hpp"
#include "tridiag/periodic.hpp"

namespace tridsolve::gpu {

/// Per-system corner entries of the periodic batch.
template <typename T>
struct PeriodicCorners {
  T alpha;  ///< A[0][n-1]
  T beta;   ///< A[n-1][0]
};

struct PeriodicReport {
  HybridReport hybrid;            ///< the one batched hybrid solve (2M systems)
  tridiag::SolveStatus status;    ///< combine-phase status
};

/// Solve M periodic systems in place: `batch` holds the band (a, b, c, d)
/// and `corners[m]` the two corner entries of system m. The solution
/// lands in batch.d(). Requires system_size >= 3.
template <typename T>
PeriodicReport periodic_solve_gpu(const gpusim::DeviceSpec& dev,
                                  tridiag::SystemBatch<T>& batch,
                                  std::span<const PeriodicCorners<T>> corners,
                                  const HybridOptions& opts = {});

extern template PeriodicReport periodic_solve_gpu<float>(
    const gpusim::DeviceSpec&, tridiag::SystemBatch<float>&,
    std::span<const PeriodicCorners<float>>, const HybridOptions&);
extern template PeriodicReport periodic_solve_gpu<double>(
    const gpusim::DeviceSpec&, tridiag::SystemBatch<double>&,
    std::span<const PeriodicCorners<double>>, const HybridOptions&);

}  // namespace tridsolve::gpu
