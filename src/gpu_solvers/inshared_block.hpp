#pragma once
// Block-level building blocks for solvers that keep a whole (sub)system in
// shared memory: in-shared PCR steps and thread-parallel Thomas.
//
// Used by the Zhang-style small-system solver [16][17] and by the final
// stage of the Davidson-style baseline [19]. An in-shared PCR step is done
// in place with the usual read-into-registers / barrier / write-back
// discipline (two phases = two barriers per step).

#include <cstddef>
#include <span>
#include <vector>

#include "gpusim/block_context.hpp"

namespace tridsolve::gpu {

/// One row in simulated shared memory (matches the kernels' layout).
template <typename T>
struct ShRow {
  T a, b, c, d;
};

/// One in-place PCR step at `stride` over shared rows[0..q): every thread
/// handles rows tid, tid+threads, ...; results are staged in registers and
/// written back after a barrier. Out-of-range neighbours act as identity.
template <typename T>
void inshared_pcr_step(gpusim::BlockContext& ctx, std::span<ShRow<T>> rows,
                       std::size_t stride) {
  const std::size_t q = rows.size();
  const auto threads = static_cast<std::size_t>(ctx.block_threads());
  // Per-thread staging registers, indexed like the row ownership pattern.
  std::vector<ShRow<T>> staged(q);

  ctx.phase([&](gpusim::ThreadCtx& t) {
    for (std::size_t i = static_cast<std::size_t>(t.tid()); i < q; i += threads) {
      const ShRow<T> mid = rows[i];
      const ShRow<T> lo =
          i >= stride ? rows[i - stride] : ShRow<T>{T(0), T(1), T(0), T(0)};
      const ShRow<T> hi =
          i + stride < q ? rows[i + stride] : ShRow<T>{T(0), T(1), T(0), T(0)};
      t.note_sread(rows[i]);
      if (i >= stride) t.note_sread(rows[i - stride]);
      if (i + stride < q) t.note_sread(rows[i + stride]);
      const T k1 = mid.a / lo.b;
      const T k2 = mid.c / hi.b;
      staged[i] = ShRow<T>{-lo.a * k1, mid.b - lo.c * k1 - hi.a * k2, -hi.c * k2,
                           mid.d - lo.d * k1 - hi.d * k2};
      t.flops<T>(10);
      t.divs<T>(2);
    }
  });
  ctx.phase([&](gpusim::ThreadCtx& t) {
    for (std::size_t i = static_cast<std::size_t>(t.tid()); i < q; i += threads) {
      t.note_swrite(rows[i]);
      rows[i] = staged[i];
    }
  });
}

/// Thread-parallel Thomas entirely in shared memory: rows already reduced
/// to `num_subsystems` interleaved subsystems (coupling stride ==
/// num_subsystems); each thread solves subsystems tid, tid+threads, ...
/// The solution overwrites rows[i].d.
template <typename T>
void inshared_pthomas(gpusim::BlockContext& ctx, std::span<ShRow<T>> rows,
                      std::size_t num_subsystems) {
  const std::size_t q = rows.size();
  const auto threads = static_cast<std::size_t>(ctx.block_threads());
  ctx.phase([&](gpusim::ThreadCtx& t) {
    for (std::size_t r = static_cast<std::size_t>(t.tid()); r < num_subsystems;
         r += threads) {
      // Forward.
      T cp = T(0), dp = T(0);
      for (std::size_t i = r; i < q; i += num_subsystems) {
        t.note_sread(rows[i]);
        t.note_swrite(rows[i].c);
        t.note_swrite(rows[i].d);
        const T denom = rows[i].b - cp * rows[i].a;
        const T inv = T(1) / denom;
        cp = rows[i].c * inv;
        dp = (rows[i].d - dp * rows[i].a) * inv;
        rows[i].c = cp;
        rows[i].d = dp;
        t.flops<T>(6);
        t.divs<T>(1);
      }
      // Backward.
      T x_next = T(0);
      bool first = true;
      const std::size_t count = r < q ? (q - r + num_subsystems - 1) / num_subsystems : 0;
      for (std::size_t jj = count; jj-- > 0;) {
        const std::size_t i = r + jj * num_subsystems;
        t.note_sread(rows[i].d);
        t.note_sread(rows[i].c);
        t.note_swrite(rows[i].d);
        const T x = first ? rows[i].d : rows[i].d - rows[i].c * x_next;
        first = false;
        rows[i].d = x;
        x_next = x;
        t.flops<T>(2);
      }
    }
  });
}

}  // namespace tridsolve::gpu
