#include "gpu_solvers/autotune.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/transition.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/fault_injector.hpp"
#include "tridiag/layout.hpp"

namespace tridsolve::gpu {

namespace {

/// Deterministic diagonally dominant cell batch: b = 4, a = c = -1 off the
/// ends, and a small exact-in-binary rhs ramp so candidate measurements
/// never depend on libm or platform rounding.
template <typename T>
tridiag::SystemBatch<T> make_cell_batch(std::size_t m, std::size_t n,
                                        tridiag::Layout layout) {
  tridiag::SystemBatch<T> batch(m, n, layout);
  for (std::size_t s = 0; s < m; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx = batch.index(s, i);
      batch.a()[idx] = i == 0 ? T(0) : T(-1);
      batch.b()[idx] = T(4);
      batch.c()[idx] = i + 1 == n ? T(0) : T(-1);
      batch.d()[idx] = T(1) + T((i * 7 + s * 13) % 17) * T(0.0625);
    }
  }
  return batch;
}

/// Simulated time of one candidate on a fresh batch, with every
/// nondeterminism source pinned: exact instrumentation, faults and hazard
/// checking off, PlanCache bypassed.
template <typename T>
double measure_candidate(const gpusim::DeviceSpec& dev, std::size_t m,
                         std::size_t n, tridiag::Layout layout,
                         const HybridOptions& opts) {
  gpusim::ScopedInstrumentMode instrument(gpusim::InstrumentMode::exact);
  gpusim::ScopedHazardMode hazards(gpusim::HazardMode::off);
  gpusim::ScopedFaultPlan faults(gpusim::FaultPlan{});
  PlanCache::ScopedBypass bypass;
  auto batch = make_cell_batch<T>(m, n, layout);
  const HybridReport report = hybrid_solve<T>(dev, batch, opts);
  return report.total_us();
}

}  // namespace

template <typename T>
AutotuneResult autotune_cell(const gpusim::DeviceSpec& dev, std::size_t m,
                             std::size_t n) {
  if (m == 0 || n == 0) {
    throw std::invalid_argument("autotune_cell: m and n must be >= 1");
  }
  AutotuneResult result;

  // The plan the default request would get today (Table III + Fig. 11
  // auto-pick), measured on the layout that request would use — every
  // candidate shares the layout so comparisons are apples to apples.
  const HybridOptions default_opts;
  SolvePlan heuristic_plan;
  {
    PlanCache::ScopedBypass bypass;
    heuristic_plan = plan_hybrid(dev, m, n, sizeof(T), default_opts);
  }
  const tridiag::Layout layout = heuristic_plan.k >= 1
                                     ? tridiag::Layout::contiguous
                                     : tridiag::Layout::interleaved;
  result.heuristic_k = heuristic_plan.k;
  result.heuristic_us = measure_candidate<T>(dev, m, n, layout, default_opts);

  // Seed the incumbent with the heuristic plan so best_us <= heuristic_us
  // by construction; candidates only win on strictly smaller time.
  result.best = heuristic_plan;
  result.best.source = PlanSource::autotuned;
  result.best.tuned_us = result.heuristic_us;
  result.best_us = result.heuristic_us;
  result.candidates.push_back({result.best, result.heuristic_us});

  // Candidate grid: every feasible k, all three Fig. 11 variants, c in
  // {1, 2}. k = 0 (pure p-Thomas) is one candidate.
  const unsigned cap = std::min<unsigned>(
      {16u, static_cast<unsigned>(std::bit_width(n) - 1),
       static_cast<unsigned>(
           std::bit_width(
               static_cast<std::size_t>(dev.max_threads_per_block)) -
           1)});
  const WindowVariant variants[] = {WindowVariant::one_block_per_system,
                                    WindowVariant::split_system,
                                    WindowVariant::multi_system_per_block};

  auto consider = [&](const HybridOptions& opts) {
    SolvePlan plan;
    double us = 0.0;
    try {
      {
        PlanCache::ScopedBypass bypass;
        plan = plan_hybrid(dev, m, n, sizeof(T), opts);
      }
      us = measure_candidate<T>(dev, m, n, layout, opts);
    } catch (const std::exception&) {
      return;  // infeasible candidate (shared memory, block limits, ...)
    }
    plan.source = PlanSource::autotuned;
    plan.tuned_us = us;
    result.candidates.push_back({plan, us});
    if (us < result.best_us) {
      result.best = plan;
      result.best_us = us;
    }
  };

  {
    HybridOptions opts;
    opts.force_k = 0;
    consider(opts);
  }
  for (unsigned k = 1; k <= cap; ++k) {
    for (const WindowVariant variant : variants) {
      for (std::size_t c = 1; c <= 2; ++c) {
        HybridOptions opts;
        opts.force_k = static_cast<int>(k);
        opts.variant = variant;
        opts.sub_tile_c = c;
        consider(opts);
      }
    }
  }
  result.best.tuned_us = result.best_us;
  return result;
}

template AutotuneResult autotune_cell<float>(const gpusim::DeviceSpec&,
                                             std::size_t, std::size_t);
template AutotuneResult autotune_cell<double>(const gpusim::DeviceSpec&,
                                              std::size_t, std::size_t);

}  // namespace tridsolve::gpu
