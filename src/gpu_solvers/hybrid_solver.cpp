#include "gpu_solvers/hybrid_solver.hpp"

#include <algorithm>
#include <vector>

#include "gpu_solvers/autotune.hpp"
#include "gpu_solvers/plan_cache.hpp"
#include "gpu_solvers/pthomas_kernel.hpp"
#include "gpu_solvers/transition.hpp"
#include "obs/metrics.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/pcr.hpp"

namespace tridsolve::gpu {

const char* window_variant_name(WindowVariant v) noexcept {
  switch (v) {
    case WindowVariant::auto_select: return "auto";
    case WindowVariant::one_block_per_system: return "one_block_per_system";
    case WindowVariant::split_system: return "split_system";
    case WindowVariant::multi_system_per_block: return "multi_system_per_block";
  }
  return "unknown";
}

std::optional<WindowVariant> window_variant_from_name(
    std::string_view name) noexcept {
  if (name == "auto") return WindowVariant::auto_select;
  if (name == "one_block_per_system") return WindowVariant::one_block_per_system;
  if (name == "split_system") return WindowVariant::split_system;
  if (name == "multi_system_per_block") {
    return WindowVariant::multi_system_per_block;
  }
  return std::nullopt;
}

const char* plan_source_name(PlanSource s) noexcept {
  switch (s) {
    case PlanSource::heuristic: return "heuristic";
    case PlanSource::cost_model: return "cost_model";
    case PlanSource::forced: return "forced";
    case PlanSource::calibrated: return "calibrated";
    case PlanSource::autotuned: return "autotuned";
  }
  return "unknown";
}

namespace {

/// A request the autotuner may answer: nothing pinned by the caller, so
/// swapping the plan is legal and the calibration-file key matches.
bool is_tunable_request(const HybridOptions& opts) noexcept {
  return opts.force_k < 0 && !opts.use_cost_model &&
         opts.variant == WindowVariant::auto_select && opts.sub_tile_c <= 1 &&
         opts.blocks_per_system == 0 && opts.systems_per_block == 0 &&
         !opts.fuse && opts.pthomas_block_threads == 128;
}

/// Views of the 2^k interleaved reduced systems inside `batch`-shaped
/// arrays (which may be a scratch copy), ordered so that consecutive
/// p-Thomas threads touch consecutive addresses. When `owners` is non-null
/// it receives, parallel to the views, the batch system index each reduced
/// system came from (the guard's merge key).
template <typename T>
std::vector<tridiag::SystemRef<T>> reduced_system_views(
    tridiag::SystemBatch<T>& batch, unsigned k,
    std::vector<std::size_t>* owners = nullptr) {
  const std::size_t m_count = batch.num_systems();
  const std::size_t n = batch.system_size();
  const std::size_t stride_sys = std::size_t{1} << k;
  std::vector<tridiag::SystemRef<T>> views;
  views.reserve(m_count * stride_sys);

  const bool contiguous = batch.layout() == tridiag::Layout::contiguous;
  const std::ptrdiff_t elem_stride = static_cast<std::ptrdiff_t>(
      contiguous ? stride_sys : stride_sys * m_count);

  auto push = [&](std::size_t m, std::size_t r) {
    if (r >= n) return;  // degenerate: system smaller than 2^k
    const std::size_t base = batch.index(m, r);
    const std::size_t count = (n - r + stride_sys - 1) / stride_sys;
    views.push_back(tridiag::SystemRef<T>{
        tridiag::StridedView<T>(batch.a().data() + base, count, elem_stride),
        tridiag::StridedView<T>(batch.b().data() + base, count, elem_stride),
        tridiag::StridedView<T>(batch.c().data() + base, count, elem_stride),
        tridiag::StridedView<T>(batch.d().data() + base, count, elem_stride)});
    if (owners != nullptr) owners->push_back(m);
  };

  if (contiguous) {
    // sid = m * 2^k + r: consecutive r -> consecutive addresses.
    for (std::size_t m = 0; m < m_count; ++m) {
      for (std::size_t r = 0; r < stride_sys; ++r) push(m, r);
    }
  } else {
    // sid = r * M + m: consecutive m -> consecutive addresses.
    for (std::size_t r = 0; r < stride_sys; ++r) {
      for (std::size_t m = 0; m < m_count; ++m) push(m, r);
    }
  }
  return views;
}

/// Counter handles for the per-solve hot path, resolved once per process
/// (registry slots are stable across obs resets).
struct HybridMetrics {
  obs::MetricsRegistry::Counter solve_time_us =
      obs::counter_handle("hybrid.solve.time_us");
  obs::MetricsRegistry::Counter solve_calls =
      obs::counter_handle("hybrid.solve.calls");
  obs::MetricsRegistry::Counter solves = obs::counter_handle("hybrid.solves");
  obs::MetricsRegistry::Counter source_forced =
      obs::counter_handle("transition.source.forced");
  obs::MetricsRegistry::Counter source_model =
      obs::counter_handle("transition.source.model");
  obs::MetricsRegistry::Counter source_heuristic =
      obs::counter_handle("transition.source.heuristic");
  obs::MetricsRegistry::Counter source_calibrated =
      obs::counter_handle("transition.source.calibrated");
  obs::MetricsRegistry::Counter source_autotuned =
      obs::counter_handle("transition.source.autotuned");
  obs::MetricsRegistry::Counter pcr_windows =
      obs::counter_handle("pcr.windows");
  obs::MetricsRegistry::Counter pcr_boundaries =
      obs::counter_handle("pcr.sub_tile_boundaries");
  obs::MetricsRegistry::Counter pcr_loads_avoided =
      obs::counter_handle("pcr.redundant_loads_avoided");
  obs::MetricsRegistry::Counter pcr_elims_avoided =
      obs::counter_handle("pcr.redundant_elims_avoided");
  obs::MetricsRegistry::Counter pcr_redundant_loads =
      obs::counter_handle("pcr.redundant_loads");
  obs::MetricsRegistry::Counter pcr_eliminations =
      obs::counter_handle("pcr.eliminations");
  obs::MetricsRegistry::Counter variant_pthomas_only =
      obs::counter_handle("hybrid.variant.pthomas_only");
  obs::MetricsRegistry::Counter guard_flagged =
      obs::counter_handle("solver.guard.flagged");
  obs::MetricsRegistry::Counter guard_fallback =
      obs::counter_handle("solver.guard.fallback");
  obs::MetricsRegistry::Counter guard_refined =
      obs::counter_handle("solver.guard.refined");

  [[nodiscard]] obs::MetricsRegistry::Counter& variant(WindowVariant v) {
    switch (v) {
      case WindowVariant::split_system: return variant_split;
      case WindowVariant::multi_system_per_block: return variant_multi;
      default: return variant_one_block;
    }
  }

  static HybridMetrics& instance() {
    static HybridMetrics m;
    return m;
  }

 private:
  obs::MetricsRegistry::Counter variant_one_block =
      obs::counter_handle("hybrid.variant.one_block_per_system");
  obs::MetricsRegistry::Counter variant_split =
      obs::counter_handle("hybrid.variant.split_system");
  obs::MetricsRegistry::Counter variant_multi =
      obs::counter_handle("hybrid.variant.multi_system_per_block");
};

}  // namespace

template <typename T>
HybridReport hybrid_solve(const gpusim::DeviceSpec& dev,
                          tridiag::SystemBatch<T>& batch,
                          const HybridOptions& opts) {
  HybridReport report;
  const std::size_t m_count = batch.num_systems();
  const std::size_t n = batch.system_size();
  if (m_count == 0 || n == 0) return report;

  HybridMetrics& metrics = HybridMetrics::instance();
  const obs::ScopedTimer host_timer(metrics.solve_time_us, metrics.solve_calls);
  metrics.solves.add();

  // --- 1. plan (transition point, variant, geometry) — cache-mediated ------
  // A forced k out of range for (N, device) makes plan_hybrid throw
  // std::invalid_argument here, before any guard snapshot or launch.
  const PlanKey plan_key = make_plan_key(dev, m_count, n, sizeof(T), opts);
  const PlanCache::Result planned =
      PlanCache::instance().plan(plan_key, [&]() -> SolvePlan {
        if (!PlanCache::ScopedBypass::active() &&
            PlanCache::instance().autotune_enabled() &&
            is_tunable_request(opts)) {
          // Online autotune: first sight of this shape pays one candidate
          // sweep; every later solve hits the cached winner.
          return autotune_cell<T>(dev, m_count, n).best;
        }
        return plan_hybrid(dev, m_count, n, sizeof(T), opts);
      });
  const SolvePlan& plan = planned.plan;
  const unsigned k = plan.k;
  switch (plan.source) {
    case PlanSource::forced: metrics.source_forced.add(); break;
    case PlanSource::cost_model: metrics.source_model.add(); break;
    case PlanSource::heuristic: metrics.source_heuristic.add(); break;
    case PlanSource::calibrated: metrics.source_calibrated.add(); break;
    case PlanSource::autotuned: metrics.source_autotuned.add(); break;
  }
  report.k = k;
  report.plan_source = plan.source;
  report.plan_cached = planned.hit;
  report.plan_c = plan.c;
  // Most-recent-planning-event gauge only — see transition.hpp; the
  // per-solve truth is HybridReport / the plan_* JSONL block.
  obs::gauge("transition.k", k);

  const GuardPolicy& guard = opts.guard;
  if (guard.detect) report.status.resize(m_count);
  // LU fallback needs the untouched inputs; the solve below consumes them.
  std::optional<tridiag::SystemBatch<T>> pristine;
  if (guard.detect && guard.fallback) pristine.emplace(batch.clone());

  // --- 2. tiled PCR ---------------------------------------------------------
  std::optional<tridiag::SystemBatch<T>> scratch;  // split-system double buffer
  tridiag::SystemBatch<T>* reduced = &batch;

  if (k >= 1) {
    // Everything below comes from the plan, never recomputed: a cache hit
    // therefore executes bit-identically to the cold solve that planned.
    TiledPcrConfig cfg;
    cfg.k = k;
    cfg.c = plan.c;
    cfg.systems_per_block = plan.systems_per_block;
    cfg.fuse_thomas_forward = opts.fuse;

    const WindowVariant variant = plan.variant;
    report.variant = variant;

    std::vector<TiledPcrWork<T>> work;
    if (variant == WindowVariant::split_system) {
      const std::size_t regions = plan.blocks_per_system;
      scratch.emplace(m_count, n, batch.layout());
      reduced = &*scratch;
      for (std::size_t m = 0; m < m_count; ++m) {
        const std::size_t per = (n + regions - 1) / regions;
        for (std::size_t r = 0; r < regions; ++r) {
          const std::size_t r0 = r * per;
          const std::size_t r1 = std::min(n, r0 + per);
          if (r0 >= r1) break;
          work.push_back(
              TiledPcrWork<T>{batch.system(m), scratch->system(m), r0, r1, m});
        }
      }
    } else {
      for (std::size_t m = 0; m < m_count; ++m) {
        work.push_back(
            TiledPcrWork<T>{batch.system(m), batch.system(m), 0, n, m});
      }
    }

    std::vector<tridiag::SolveStatus> window_guard(
        guard.detect ? work.size() : 0);
    const auto pcr_stats = tiled_pcr_kernel<T>(
        dev, work, cfg, std::span<tridiag::SolveStatus>(window_guard));
    if (guard.detect) {
      // Window slots are written in per-block private ranges; merging here
      // in window order keeps the per-system result deterministic.
      for (std::size_t w = 0; w < work.size(); ++w) {
        report.status.absorb(work[w].system_id, window_guard[w]);
      }
    }
    report.timeline.add(opts.fuse ? "pcr+thomas-fwd" : "pcr", pcr_stats.launch);
    report.eliminations_pcr = pcr_stats.eliminations;
    report.redundant_loads = pcr_stats.redundant_loads();
    report.pcr_shared_bytes = pcr_stats.launch.costs.shared_peak_bytes;

    // The paper's redundancy model (Eqs. 8-9), as first-class metrics.
    metrics.pcr_windows.add(static_cast<double>(pcr_stats.windows));
    metrics.pcr_boundaries.add(
        static_cast<double>(pcr_stats.sub_tile_boundaries));
    metrics.pcr_loads_avoided.add(
        static_cast<double>(pcr_stats.halo_loads_avoided));
    metrics.pcr_elims_avoided.add(
        static_cast<double>(pcr_stats.redundant_elims_avoided));
    metrics.pcr_redundant_loads.add(
        static_cast<double>(pcr_stats.redundant_loads()));
    metrics.pcr_eliminations.add(static_cast<double>(pcr_stats.eliminations));
    metrics.variant(report.variant).add();
  } else {
    report.variant = WindowVariant::one_block_per_system;
    metrics.variant_pthomas_only.add();
  }

  // --- 3. p-Thomas over the reduced systems ---------------------------------
  std::vector<std::size_t> owners;
  auto systems = reduced_system_views(*reduced, k, &owners);
  report.reduced_systems = systems.size();

  std::vector<tridiag::StridedView<T>> xout;
  if (reduced != &batch) {
    // Solutions belong in the caller's d array, not the scratch buffer.
    xout.reserve(systems.size());
    auto originals = reduced_system_views(batch, k);
    for (const auto& sys : originals) xout.push_back(sys.d);
  }

  if (opts.fuse && k >= 1) {
    // The forward sweep (and its pivot detection) already ran inside the
    // fused PCR kernel; the backward pass has no divisions to guard.
    const auto bwd = pthomas_backward<T>(dev, systems, xout,
                                         opts.pthomas_block_threads);
    report.timeline.add("thomas-bwd", bwd);
  } else {
    std::vector<tridiag::SolveStatus> sys_guard(guard.detect ? systems.size()
                                                             : 0);
    const auto th =
        pthomas_solve<T>(dev, systems, xout, opts.pthomas_block_threads,
                         std::span<tridiag::SolveStatus>(sys_guard));
    report.timeline.add("thomas-fwd", th.forward);
    report.timeline.add("thomas-bwd", th.backward);
    if (guard.detect) {
      for (std::size_t v = 0; v < systems.size(); ++v) {
        report.status.absorb(owners[v], sys_guard[v]);
      }
    }
  }

  // --- 4. guard policy: growth limit, taxonomy, recovery --------------------
  if (guard.detect) {
    report.status.apply_growth_limit(
        guard.growth_limit > 0.0 ? guard.growth_limit
                                 : tridiag::default_growth_limit<T>());
    report.flagged = report.status.flagged_count();
    metrics.guard_flagged.add(static_cast<double>(report.flagged));
    if (guard.fallback && report.flagged > 0) {
      tridiag::RecoverOptions ropts;
      ropts.refine = guard.refine;
      ropts.refine_gate = guard.refine_gate;
      const auto rstats =
          tridiag::lu_recover_flagged(*pristine, batch, report.status, ropts);
      report.fallback_solves = rstats.fallback_solves;
      report.refine_steps = rstats.refine_steps;
      metrics.guard_fallback.add(static_cast<double>(rstats.fallback_solves));
      metrics.guard_refined.add(static_cast<double>(rstats.refine_steps));
    }
  }

  // Split-system scratch: x was routed to batch.d via xout; nothing to copy.
  return report;
}

template HybridReport hybrid_solve<float>(const gpusim::DeviceSpec&,
                                          tridiag::SystemBatch<float>&,
                                          const HybridOptions&);
template HybridReport hybrid_solve<double>(const gpusim::DeviceSpec&,
                                           tridiag::SystemBatch<double>&,
                                           const HybridOptions&);

}  // namespace tridsolve::gpu
