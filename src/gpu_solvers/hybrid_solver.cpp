#include "gpu_solvers/hybrid_solver.hpp"

#include <algorithm>
#include <vector>

#include "gpu_solvers/pthomas_kernel.hpp"
#include "gpu_solvers/transition.hpp"
#include "obs/metrics.hpp"
#include "tridiag/pcr.hpp"

namespace tridsolve::gpu {

const char* window_variant_name(WindowVariant v) noexcept {
  switch (v) {
    case WindowVariant::auto_select: return "auto";
    case WindowVariant::one_block_per_system: return "one_block_per_system";
    case WindowVariant::split_system: return "split_system";
    case WindowVariant::multi_system_per_block: return "multi_system_per_block";
  }
  return "unknown";
}

namespace {

template <typename T>
WindowVariant pick_variant(const gpusim::DeviceSpec& dev,
                           const tridiag::SystemBatch<T>& batch) {
  // Few systems: not enough whole-system windows to fill the device, so
  // split each system across a block group (Fig. 11(b)). Otherwise one
  // window per block is already plenty of blocks.
  return batch.num_systems() < static_cast<std::size_t>(2 * dev.num_sms)
             ? WindowVariant::split_system
             : WindowVariant::one_block_per_system;
}

/// Views of the 2^k interleaved reduced systems inside `batch`-shaped
/// arrays (which may be a scratch copy), ordered so that consecutive
/// p-Thomas threads touch consecutive addresses.
template <typename T>
std::vector<tridiag::SystemRef<T>> reduced_system_views(
    tridiag::SystemBatch<T>& batch, unsigned k) {
  const std::size_t m_count = batch.num_systems();
  const std::size_t n = batch.system_size();
  const std::size_t stride_sys = std::size_t{1} << k;
  std::vector<tridiag::SystemRef<T>> views;
  views.reserve(m_count * stride_sys);

  const bool contiguous = batch.layout() == tridiag::Layout::contiguous;
  const std::ptrdiff_t elem_stride = static_cast<std::ptrdiff_t>(
      contiguous ? stride_sys : stride_sys * m_count);

  auto push = [&](std::size_t m, std::size_t r) {
    if (r >= n) return;  // degenerate: system smaller than 2^k
    const std::size_t base = batch.index(m, r);
    const std::size_t count = (n - r + stride_sys - 1) / stride_sys;
    views.push_back(tridiag::SystemRef<T>{
        tridiag::StridedView<T>(batch.a().data() + base, count, elem_stride),
        tridiag::StridedView<T>(batch.b().data() + base, count, elem_stride),
        tridiag::StridedView<T>(batch.c().data() + base, count, elem_stride),
        tridiag::StridedView<T>(batch.d().data() + base, count, elem_stride)});
  };

  if (contiguous) {
    // sid = m * 2^k + r: consecutive r -> consecutive addresses.
    for (std::size_t m = 0; m < m_count; ++m) {
      for (std::size_t r = 0; r < stride_sys; ++r) push(m, r);
    }
  } else {
    // sid = r * M + m: consecutive m -> consecutive addresses.
    for (std::size_t r = 0; r < stride_sys; ++r) {
      for (std::size_t m = 0; m < m_count; ++m) push(m, r);
    }
  }
  return views;
}

}  // namespace

template <typename T>
HybridReport hybrid_solve(const gpusim::DeviceSpec& dev,
                          tridiag::SystemBatch<T>& batch,
                          const HybridOptions& opts) {
  HybridReport report;
  const std::size_t m_count = batch.num_systems();
  const std::size_t n = batch.system_size();
  if (m_count == 0 || n == 0) return report;

  const obs::ScopedTimer host_timer("hybrid.solve");
  obs::count("hybrid.solves");

  // --- 1. transition point -------------------------------------------------
  unsigned k;
  if (opts.force_k >= 0) {
    k = static_cast<unsigned>(opts.force_k);
    obs::count("transition.source.forced");
  } else if (opts.use_cost_model) {
    k = model_best_k(m_count, n, dev);
    obs::count("transition.source.model");
  } else {
    k = heuristic_k(m_count, n);
    obs::count("transition.source.heuristic");
  }
  report.k = k;
  obs::gauge("transition.k", k);

  // --- 2. tiled PCR ---------------------------------------------------------
  std::optional<tridiag::SystemBatch<T>> scratch;  // split-system double buffer
  tridiag::SystemBatch<T>* reduced = &batch;

  if (k >= 1) {
    TiledPcrConfig cfg;
    cfg.k = k;
    cfg.c = std::max<std::size_t>(1, opts.sub_tile_c);
    cfg.fuse_thomas_forward = opts.fuse;

    WindowVariant variant = opts.variant == WindowVariant::auto_select
                                ? pick_variant(dev, batch)
                                : opts.variant;
    if (opts.fuse && variant == WindowVariant::split_system) {
      variant = WindowVariant::one_block_per_system;  // fusion needs whole systems
    }
    report.variant = variant;

    std::vector<TiledPcrWork<T>> work;
    if (variant == WindowVariant::split_system) {
      std::size_t regions = opts.blocks_per_system;
      if (regions == 0) {
        const std::size_t sub_tile = cfg.c << k;
        const std::size_t target_blocks =
            static_cast<std::size_t>(4 * dev.num_sms);
        const std::size_t max_regions =
            std::max<std::size_t>(1, n / std::max<std::size_t>(1, 4 * sub_tile));
        regions = std::clamp<std::size_t>(
            (target_blocks + m_count - 1) / m_count, 1, max_regions);
      }
      scratch.emplace(m_count, n, batch.layout());
      reduced = &*scratch;
      for (std::size_t m = 0; m < m_count; ++m) {
        const std::size_t per = (n + regions - 1) / regions;
        for (std::size_t r = 0; r < regions; ++r) {
          const std::size_t r0 = r * per;
          const std::size_t r1 = std::min(n, r0 + per);
          if (r0 >= r1) break;
          work.push_back(
              TiledPcrWork<T>{batch.system(m), scratch->system(m), r0, r1});
        }
      }
    } else {
      if (variant == WindowVariant::multi_system_per_block) {
        cfg.systems_per_block = opts.systems_per_block == 0
                                    ? std::min<std::size_t>(4, m_count)
                                    : opts.systems_per_block;
      }
      for (std::size_t m = 0; m < m_count; ++m) {
        work.push_back(TiledPcrWork<T>{batch.system(m), batch.system(m), 0, n});
      }
    }

    const auto pcr_stats = tiled_pcr_kernel<T>(dev, work, cfg);
    report.timeline.add(opts.fuse ? "pcr+thomas-fwd" : "pcr", pcr_stats.launch);
    report.eliminations_pcr = pcr_stats.eliminations;
    report.redundant_loads = pcr_stats.redundant_loads();
    report.pcr_shared_bytes = pcr_stats.launch.costs.shared_peak_bytes;

    // The paper's redundancy model (Eqs. 8-9), as first-class metrics.
    obs::count("pcr.windows", static_cast<double>(pcr_stats.windows));
    obs::count("pcr.sub_tile_boundaries",
               static_cast<double>(pcr_stats.sub_tile_boundaries));
    obs::count("pcr.redundant_loads_avoided",
               static_cast<double>(pcr_stats.halo_loads_avoided));
    obs::count("pcr.redundant_elims_avoided",
               static_cast<double>(pcr_stats.redundant_elims_avoided));
    obs::count("pcr.redundant_loads",
               static_cast<double>(pcr_stats.redundant_loads()));
    obs::count("pcr.eliminations",
               static_cast<double>(pcr_stats.eliminations));
    obs::count(std::string("hybrid.variant.") +
               window_variant_name(report.variant));
  } else {
    report.variant = WindowVariant::one_block_per_system;
    obs::count("hybrid.variant.pthomas_only");
  }

  // --- 3. p-Thomas over the reduced systems ---------------------------------
  auto systems = reduced_system_views(*reduced, k);
  report.reduced_systems = systems.size();

  std::vector<tridiag::StridedView<T>> xout;
  if (reduced != &batch) {
    // Solutions belong in the caller's d array, not the scratch buffer.
    xout.reserve(systems.size());
    auto originals = reduced_system_views(batch, k);
    for (const auto& sys : originals) xout.push_back(sys.d);
  }

  if (opts.fuse && k >= 1) {
    const auto bwd = pthomas_backward<T>(dev, systems, xout,
                                         opts.pthomas_block_threads);
    report.timeline.add("thomas-bwd", bwd);
  } else {
    const auto th =
        pthomas_solve<T>(dev, systems, xout, opts.pthomas_block_threads);
    report.timeline.add("thomas-fwd", th.forward);
    report.timeline.add("thomas-bwd", th.backward);
  }

  // Split-system scratch: x was routed to batch.d via xout; nothing to copy.
  return report;
}

template HybridReport hybrid_solve<float>(const gpusim::DeviceSpec&,
                                          tridiag::SystemBatch<float>&,
                                          const HybridOptions&);
template HybridReport hybrid_solve<double>(const gpusim::DeviceSpec&,
                                           tridiag::SystemBatch<double>&,
                                           const HybridOptions&);

}  // namespace tridsolve::gpu
