#pragma once
// Tiled matrix transpose on the simulated GPU.
//
// ADI integrators alternate row sweeps and column sweeps; keeping the
// batched tridiagonal solves coalesced in both directions requires
// transposing the field between half-steps (the standard alternative to
// strided solves). The kernel is the canonical shared-memory tiled
// transpose: each block stages a TILE x TILE patch in shared memory so
// both the global read and the global write are unit-stride. Without the
// +1 padding column the shared stores/loads hit the same bank TILE ways —
// the textbook bank-conflict example, measurable here via the simulator's
// bank tracker.

#include <cstddef>

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"

namespace tridsolve::gpu {

struct TransposeOptions {
  std::size_t tile = 32;    ///< tile side (threads per block = tile * rows_per_thread ...)
  std::size_t rows_per_thread = 4;  ///< each thread copies tile/rows_per_thread rows
  bool pad_shared = true;   ///< +1 column padding (bank-conflict free)
};

/// out[c * rows + r] = in[r * cols + c] for an (rows x cols) row-major
/// matrix. Functional + fully cost-accounted.
template <typename T>
gpusim::LaunchStats transpose(const gpusim::DeviceSpec& dev, const T* in, T* out,
                              std::size_t rows, std::size_t cols,
                              const TransposeOptions& opts = {});

extern template gpusim::LaunchStats transpose<float>(const gpusim::DeviceSpec&,
                                                     const float*, float*,
                                                     std::size_t, std::size_t,
                                                     const TransposeOptions&);
extern template gpusim::LaunchStats transpose<double>(const gpusim::DeviceSpec&,
                                                      const double*, double*,
                                                      std::size_t, std::size_t,
                                                      const TransposeOptions&);

}  // namespace tridsolve::gpu
