#pragma once
// Baseline: Zhang/Cohen/Owens [16][17]-style in-shared-memory PCR-Thomas
// hybrid for small systems. One thread block holds one entire system in
// shared memory, runs PCR steps (one barrier-synchronized step at a time)
// until there is one subsystem per thread, then finishes with
// thread-parallel Thomas — all in shared.
//
// Its limitation is the paper's §I critique of [16][17]: "their methods
// store an entire input system in shared memory. As a result, the limited
// capacity of shared memory considerably limits their availability for
// real use." `zhang_fits` exposes that capacity bound, and zhang_solve
// throws when exceeded. Our tiled method reduces to this solver when the
// input fits (Fig. 11(a) note).

#include <cstddef>

#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/layout.hpp"

namespace tridsolve::gpu {

/// Largest system size a block can host in shared memory.
[[nodiscard]] std::size_t zhang_max_rows(const gpusim::DeviceSpec& dev,
                                         std::size_t elem_size);

[[nodiscard]] bool zhang_fits(const gpusim::DeviceSpec& dev, std::size_t n,
                              std::size_t elem_size);

/// Solve every system of `batch` in place (solution in d).
/// Throws std::invalid_argument if a system does not fit in shared memory.
template <typename T>
gpusim::LaunchStats zhang_solve(const gpusim::DeviceSpec& dev,
                                tridiag::SystemBatch<T>& batch,
                                int block_threads = 128);

extern template gpusim::LaunchStats zhang_solve<float>(const gpusim::DeviceSpec&,
                                                       tridiag::SystemBatch<float>&,
                                                       int);
extern template gpusim::LaunchStats zhang_solve<double>(const gpusim::DeviceSpec&,
                                                        tridiag::SystemBatch<double>&,
                                                        int);

}  // namespace tridsolve::gpu
