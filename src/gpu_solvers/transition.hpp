#pragma once
// Algorithm-transition logic (paper §III.D).
//
// The hybrid must decide how many PCR steps k to run before handing the
// 2^k * M independent systems to p-Thomas. Two mechanisms are provided:
//
//  * the analytic elimination-step cost model of Table II, parameterized
//    by M (number of systems), n (log2 of system size) and P (the
//    machine's usable parallelism) — used by `model_best_k`;
//  * the empirical GTX480 heuristic of Table III — used by `heuristic_k`
//    and as the default in the hybrid solver, exactly as in the paper
//    ("the closed-form solution cannot easily be expressed and found
//    during runtime. Instead, we present empirical heuristic values").
//
// Gauge contract: `transition.k` / `transition.heuristic_k` /
// `transition.model_k` are process-wide *most-recent-planning-event*
// gauges, nothing more — concurrent solves and chunked retries overwrite
// them last-writer-wins, so they are fine for "what did planning just
// decide" eyeballing but must never be read as per-solve truth. The
// per-solve record is HybridReport::{k, plan_source, plan_cached} and the
// plan_* JSONL block. `transition.clamped` counts every time a heuristic
// or cost-model k had to be reduced to fit the system size.

#include <cstddef>

#include "gpusim/device_spec.hpp"

namespace tridsolve::gpu {

/// Elimination-step cost of plain Thomas on M systems of 2^n rows with
/// P-way parallelism (Table II row 1).
[[nodiscard]] double cost_thomas(std::size_t m, unsigned n, double p) noexcept;

/// Cost of full PCR (Table II row 2).
[[nodiscard]] double cost_pcr(std::size_t m, unsigned n, double p) noexcept;

/// Cost of k-step (tiled) PCR followed by p-Thomas (Table II row 3).
[[nodiscard]] double cost_hybrid(std::size_t m, unsigned n, double p,
                                 unsigned k) noexcept;

/// argmin_k cost_hybrid for k in [0, n], capped so 2^k threads fit a block.
[[nodiscard]] unsigned model_best_k(std::size_t m, std::size_t system_size,
                                    const gpusim::DeviceSpec& dev) noexcept;

/// The paper's empirical GTX480 transition table (Table III):
///   M < 16 -> 8, 16 <= M < 32 -> 7, 32 <= M < 512 -> 6,
///   512 <= M < 1024 -> 5, M >= 1024 -> 0.
/// k is additionally clamped so 2^k does not exceed the system size.
[[nodiscard]] unsigned heuristic_k(std::size_t m, std::size_t system_size) noexcept;

/// An estimate of the machine's usable thread parallelism P for the cost
/// model (resident warps x warp width across SMs).
[[nodiscard]] double machine_parallelism(const gpusim::DeviceSpec& dev) noexcept;

}  // namespace tridsolve::gpu
