#include "gpu_solvers/pthomas_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "gpusim/vector_engine.hpp"

namespace tridsolve::gpu {

namespace {

// Both sweeps run lockstep (phase_rounds): one round per row, every lane
// of the block advancing together. That is how the warp executes on
// hardware, and on the simulator host it pipelines the per-row divide
// across the block's independent systems and turns the interleaved
// layout's accesses into contiguous row-major streams. Recorded costs are
// identical to the per-thread loop form (rounds, addresses and op counts
// are unchanged); per-thread carries (c', d', x_{i+1}) live in pooled
// lane arrays instead of registers.
//
// Non-instrumented blocks additionally split into two twins: the scalar
// raw twin (same loops, no instrumentation plumbing) and — when the
// engine's vector path is on and no guard spans are attached — the
// vectorized lane executor (gpusim/vector_engine.hpp), which batches
// affine runs of lanes into contiguous SIMD inner loops. All three paths
// are bit-identical (tests/test_sim_engine.cpp, tests/test_vector_engine.cpp).

/// Round count and lane count for one block of a thread-per-system grid.
template <typename T>
struct BlockLanes {
  std::size_t base = 0;   ///< first system id of the block
  std::size_t lanes = 0;  ///< live lanes (idle tail lanes do nothing)
  std::size_t rounds = 0; ///< max system size across live lanes

  BlockLanes(const gpusim::BlockContext& ctx,
             std::span<const tridiag::SystemRef<T>> systems, int block_threads) {
    const std::size_t bt = static_cast<std::size_t>(block_threads);
    base = ctx.block_id() * bt;
    lanes = std::min(bt, systems.size() - base);
    for (std::size_t l = 0; l < lanes; ++l) {
      rounds = std::max(rounds, systems[base + l].size());
    }
  }
};

template <typename T>
std::size_t grid_for(std::span<const tridiag::SystemRef<T>> systems,
                     int block_threads) {
  return (systems.size() + static_cast<std::size_t>(block_threads) - 1) /
         static_cast<std::size_t>(block_threads);
}

/// Extend the maximal affine lane segment starting at block lane `l0`:
/// consecutive systems of equal size whose a/b/c/d arrays share one row
/// stride and advance lane-to-lane by one common element step. Fills
/// `seg` and returns one past the last lane of the run; `ok = false`
/// means lane l0 itself has mismatched per-array strides (never produced
/// by SystemBatch views) and must run scalar.
template <typename T>
struct SegmentScan {
  std::size_t end = 0;
  bool ok = false;
};

template <typename T>
SegmentScan<T> affine_segment(std::span<const tridiag::SystemRef<T>> systems,
                              std::size_t base, std::size_t l0,
                              std::size_t lanes, gpusim::LaneSegment<T>& seg) {
  const tridiag::SystemRef<T>& s0 = systems[base + l0];
  const std::ptrdiff_t rs = s0.a.stride();
  if (s0.b.stride() != rs || s0.c.stride() != rs || s0.d.stride() != rs) {
    return {l0 + 1, false};
  }
  seg.a = s0.a.data();
  seg.b = s0.b.data();
  seg.c = s0.c.data();
  seg.d = s0.d.data();
  seg.row_step = rs;
  seg.rows = s0.size();
  seg.lane_step = 1;
  seg.lanes = 1;
  std::size_t l = l0 + 1;
  for (; l < lanes; ++l) {
    const tridiag::SystemRef<T>& p = systems[base + l - 1];
    const tridiag::SystemRef<T>& s = systems[base + l];
    if (s.size() != seg.rows || s.a.stride() != rs || s.b.stride() != rs ||
        s.c.stride() != rs || s.d.stride() != rs) {
      break;
    }
    const std::ptrdiff_t step = s.a.data() - p.a.data();
    if (s.b.data() - p.b.data() != step || s.c.data() - p.c.data() != step ||
        s.d.data() - p.d.data() != step) {
      break;
    }
    if (l == l0 + 1) {
      seg.lane_step = step;
    } else if (step != seg.lane_step) {
      break;
    }
    seg.lanes = l - l0 + 1;
  }
  return {l0 + seg.lanes, true};
}

/// Longest run of xout views starting at absolute lane `abs0` (at most
/// `max_lanes`) that stays affine: equal row stride, constant
/// lane-to-lane pointer step. Fills `out` and returns the run length.
template <typename T>
std::size_t xout_affine_run(std::span<const tridiag::StridedView<T>> xout,
                            std::size_t abs0, std::size_t max_lanes,
                            gpusim::LaneOutput<T>& out) {
  const tridiag::StridedView<T>& x0 = xout[abs0];
  out = {x0.data(), 1, x0.stride()};
  std::size_t xl = 1;
  for (; xl < max_lanes; ++xl) {
    const tridiag::StridedView<T>& p = xout[abs0 + xl - 1];
    const tridiag::StridedView<T>& s = xout[abs0 + xl];
    if (s.stride() != x0.stride()) break;
    const std::ptrdiff_t step = s.data() - p.data();
    if (xl == 1) {
      out.lane_step = step;
    } else if (step != out.lane_step) {
      break;
    }
  }
  return xl;
}

/// Shift an affine segment to its lanes [t0, t0 + w).
template <typename T>
gpusim::LaneSegment<T> sub_segment(const gpusim::LaneSegment<T>& seg,
                                   std::size_t t0, std::size_t w) {
  gpusim::LaneSegment<T> sub = seg;
  const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(t0) * seg.lane_step;
  sub.a += shift;
  sub.b += shift;
  sub.c += shift;
  sub.d += shift;
  sub.lanes = w;
  return sub;
}

/// Scalar fused Thomas solve of one system whose views are not affine
/// (per-array strides differ — never produced by SystemBatch, kept for
/// generality). Same arithmetic and order as the kernels.
template <typename T>
void scalar_fused_lane(const tridiag::SystemRef<T>& s,
                       const tridiag::StridedView<T>* xv) {
  const std::size_t n = s.size();
  T cpl = T(0);
  T dpl = T(0);
  for (std::size_t i = 0; i < n; ++i) {
    const T a = *s.a.ptr(i);
    const T denom = *s.b.ptr(i) - cpl * a;
    const T inv = T(1) / denom;
    cpl = *s.c.ptr(i) * inv;
    dpl = (*s.d.ptr(i) - dpl * a) * inv;
    *s.c.ptr(i) = cpl;
    *s.d.ptr(i) = dpl;
  }
  if (n == 0) return;
  T v = *s.d.ptr(n - 1);
  *(xv == nullptr ? s.d.ptr(n - 1) : xv->ptr(n - 1)) = v;
  for (std::size_t i = n - 1; i-- > 0;) {
    v = *s.d.ptr(i) - *s.c.ptr(i) * v;
    *(xv == nullptr ? s.d.ptr(i) : xv->ptr(i)) = v;
  }
}

/// Grid-wide vectorized sweep for the functional fast path (the launch
/// bodies become no-ops; see pthomas_solve). Walks maximal affine lane
/// segments across the WHOLE grid — not per 128-lane block, so streams
/// are megabytes long — and lane-tiles each segment (gpusim::lane_tile)
/// so that when `fuse_backward` is set the backward substitution re-reads
/// the forward sweep's c'/d' tile from cache instead of DRAM. Per-lane
/// arithmetic and order are exactly the per-block twins': bit-identical
/// outputs (pinned by tests/test_vector_engine.cpp).
template <typename T>
void grid_vector_sweep(std::span<const tridiag::SystemRef<T>> systems,
                       std::span<const tridiag::StridedView<T>> xout,
                       bool forward, bool fuse_backward) {
  gpusim::LanePool& pool = gpusim::host_lane_pool();
  pool.begin_block();
  const bool backward = fuse_backward || !forward;
  const std::size_t lanes = systems.size();
  std::size_t l0 = 0;
  while (l0 < lanes) {
    gpusim::LaneSegment<T> seg;
    auto scan = affine_segment(systems, 0, l0, lanes, seg);
    if (!scan.ok) {
      if (forward && backward) {
        scalar_fused_lane(systems[l0], xout.empty() ? nullptr : &xout[l0]);
      } else if (forward) {
        T cp = T(0);
        T dp = T(0);
        // Strides differ per array: fall back to the ptr() form.
        const tridiag::SystemRef<T>& s = systems[l0];
        for (std::size_t i = 0; i < s.size(); ++i) {
          const T a = *s.a.ptr(i);
          const T denom = *s.b.ptr(i) - cp * a;
          const T inv = T(1) / denom;
          cp = *s.c.ptr(i) * inv;
          dp = (*s.d.ptr(i) - dp * a) * inv;
          *s.c.ptr(i) = cp;
          *s.d.ptr(i) = dp;
        }
      } else {
        const tridiag::SystemRef<T>& s = systems[l0];
        const std::size_t n = s.size();
        if (n > 0) {
          const tridiag::StridedView<T>* xv =
              xout.empty() ? nullptr : &xout[l0];
          T v = *s.d.ptr(n - 1);
          *(xv == nullptr ? s.d.ptr(n - 1) : xv->ptr(n - 1)) = v;
          for (std::size_t i = n - 1; i-- > 0;) {
            v = *s.d.ptr(i) - *s.c.ptr(i) * v;
            *(xv == nullptr ? s.d.ptr(i) : xv->ptr(i)) = v;
          }
        }
      }
      l0 = scan.end;
      continue;
    }
    gpusim::LaneOutput<T> out{seg.d, seg.lane_step, seg.row_step};
    if (backward && !xout.empty()) {
      const std::size_t xl = xout_affine_run(xout, l0, seg.lanes, out);
      seg.lanes = xl;
      scan.end = l0 + xl;
    }
    const std::size_t tile =
        std::min(seg.lanes, gpusim::lane_tile(seg.rows, sizeof(T)));
    const std::span<T> cp = pool.take<T>(forward ? tile : 0);
    const std::span<T> dp = pool.take<T>(forward ? tile : 0);
    const std::span<T> xn = pool.take<T>(backward ? tile : 0);
    for (std::size_t t0 = 0; t0 < seg.lanes; t0 += tile) {
      const std::size_t w = std::min(tile, seg.lanes - t0);
      const gpusim::LaneSegment<T> sub = sub_segment(seg, t0, w);
      const gpusim::LaneOutput<T> osub{
          out.x + static_cast<std::ptrdiff_t>(t0) * out.lane_step,
          out.lane_step, out.row_step};
      if (forward) {
        std::fill(cp.begin(), cp.begin() + static_cast<std::ptrdiff_t>(w),
                  T(0));
        std::fill(dp.begin(), dp.begin() + static_cast<std::ptrdiff_t>(w),
                  T(0));
        gpusim::thomas_forward_lanes(sub, cp.data(), dp.data());
      }
      if (backward) {
        gpusim::thomas_backward_lanes(sub, osub, xn.data());
      }
    }
    l0 = scan.end;
  }
  std::size_t acquires = 0;
  std::size_t reuses = 0;
  pool.drain(acquires, reuses);
  gpusim::detail::note_scratch(acquires, reuses);
}

/// Per-lane pivot-guard accumulator for the forward sweep. Detection only:
/// it reads values the elimination already has in hand, records no costs,
/// and never alters the arithmetic — guarded and unguarded runs stay
/// bit-identical in both outputs and recorded timing.
struct GuardAcc {
  bool flagged = false;
  std::size_t row = 0;
  double growth = 1.0;
};

template <typename T>
inline void guard_check(GuardAcc& g, T a, T b, T c, T denom,
                        std::size_t i) noexcept {
  // !(denom != 0) also catches a NaN denominator.
  if (!(denom != T(0)) || !std::isfinite(static_cast<double>(denom))) {
    if (!g.flagged) {
      g.flagged = true;
      g.row = i;
    }
    return;
  }
  const double scale = std::max({std::abs(static_cast<double>(a)),
                                 std::abs(static_cast<double>(b)),
                                 std::abs(static_cast<double>(c))});
  const double ratio = scale / std::abs(static_cast<double>(denom));
  if (ratio > g.growth) g.growth = ratio;
}

inline tridiag::SolveStatus guard_status(const GuardAcc& g) noexcept {
  return g.flagged
             ? tridiag::SolveStatus{tridiag::SolveCode::zero_pivot, g.row,
                                    g.growth}
             : tridiag::SolveStatus{tridiag::SolveCode::ok, 0, g.growth};
}

}  // namespace

template <typename T>
PthomasStats pthomas_solve(const gpusim::DeviceSpec& dev,
                           std::span<const tridiag::SystemRef<T>> systems,
                           std::span<const tridiag::StridedView<T>> xout,
                           int block_threads,
                           std::span<tridiag::SolveStatus> guard) {
  if (!guard.empty() && guard.size() != systems.size()) {
    throw std::invalid_argument("pthomas_solve: guard/systems size mismatch");
  }
  if (!xout.empty() && xout.size() != systems.size()) {
    throw std::invalid_argument("pthomas_solve: xout/systems size mismatch");
  }
  PthomasStats stats;
  const bool guarding = !guard.empty();

  // Functional fast path: no instrumentation, hazards, faults or guards
  // active, so run one grid-wide fused sweep (forward + backward per lane
  // tile, cache-blocked) and issue the two launches with empty bodies —
  // launch accounting, timeline labels and grid shape stay exactly as in
  // the per-block execution. Guard spans force the per-block twins.
  if (!guarding && gpusim::ExecutionEngine::instance().functional_fast_path()) {
    grid_vector_sweep<T>(systems, xout, /*forward=*/true,
                         /*fuse_backward=*/true);
    const std::size_t grid = grid_for(systems, block_threads);
    gpusim::detail::note_vector_blocks(static_cast<double>(2 * grid));
    stats.forward =
        gpusim::launch(dev, {grid, block_threads}, [](gpusim::BlockContext&) {});
    stats.backward =
        gpusim::launch(dev, {grid, block_threads}, [](gpusim::BlockContext&) {});
    return stats;
  }

  // Forward reduction, in place: c <- c', d <- d'. One serialized memory
  // round per row (the loads of row i gate the elimination row i+1 needs).
  stats.forward = gpusim::launch(
      dev, {grid_for(systems, block_threads), block_threads},
      [&](gpusim::BlockContext& ctx) {
        const BlockLanes<T> blk(ctx, systems, block_threads);
        const std::span<T> cp = ctx.lane_buffer<T>(blk.lanes);
        const std::span<T> dp = ctx.lane_buffer<T>(blk.lanes);
        const std::span<GuardAcc> acc =
            ctx.lane_buffer<GuardAcc>(guarding ? blk.lanes : 0);
        // Each lane owns one system, so the guard slot write below is
        // race-free regardless of block scheduling order.
        auto guard_row = [&](std::size_t lane, const tridiag::SystemRef<T>& s,
                             T a, T b, T c, T denom, std::size_t i) {
          GuardAcc g = acc[lane];
          guard_check(g, a, b, c, denom, i);
          acc[lane] = g;
          if (i + 1 == s.size()) {
            guard[blk.base + lane] = guard_status(g);
          }
        };
        if (!ctx.recording() && !ctx.hazard_checking() && !ctx.fault_checking()) {
          if (!guarding && ctx.vector_enabled()) {
            // Vectorized lane twin: affine runs of systems execute as
            // contiguous SIMD inner loops. Per-lane arithmetic and order
            // are exactly the scalar twin's — bit-identical outputs.
            gpusim::detail::note_vector_blocks(1.0);
            std::size_t l0 = 0;
            while (l0 < blk.lanes) {
              gpusim::LaneSegment<T> seg;
              const auto scan =
                  affine_segment(systems, blk.base, l0, blk.lanes, seg);
              if (scan.ok) {
                gpusim::thomas_forward_lanes(seg, cp.data() + l0,
                                             dp.data() + l0);
              } else {
                const tridiag::SystemRef<T>& s = systems[blk.base + l0];
                for (std::size_t i = 0; i < s.size(); ++i) {
                  const T a = *s.a.ptr(i);
                  const T denom = *s.b.ptr(i) - cp[l0] * a;
                  const T inv = T(1) / denom;
                  cp[l0] = *s.c.ptr(i) * inv;
                  dp[l0] = (*s.d.ptr(i) - dp[l0] * a) * inv;
                  *s.c.ptr(i) = cp[l0];
                  *s.d.ptr(i) = dp[l0];
                }
              }
              l0 = scan.end;
            }
            return;
          }
          // Scalar raw twin (sampled / functional_only, or guarded /
          // --vector off): the same arithmetic in the same order —
          // bit-exact with the recorded path below, pinned by
          // tests/test_sim_engine.cpp — without the per-access
          // instrumentation plumbing. Hazard checking forces the
          // instrumented path so the detector sees every access.
          for (std::size_t i = 0; i < blk.rounds; ++i) {
            for (std::size_t lane = 0; lane < blk.lanes; ++lane) {
              const tridiag::SystemRef<T>& s = systems[blk.base + lane];
              if (i >= s.size()) continue;
              const T a = *s.a.ptr(i);
              const T b = *s.b.ptr(i);
              const T c = *s.c.ptr(i);
              const T d = *s.d.ptr(i);
              const T denom = b - cp[lane] * a;
              if (guarding) guard_row(lane, s, a, b, c, denom, i);
              const T inv = T(1) / denom;
              cp[lane] = c * inv;
              dp[lane] = (d - dp[lane] * a) * inv;
              *s.c.ptr(i) = cp[lane];
              *s.d.ptr(i) = dp[lane];
            }
          }
          return;
        }
        ctx.phase_rounds(blk.rounds, [&](gpusim::ThreadCtx& t, std::size_t i) {
          const std::size_t lane = static_cast<std::size_t>(t.tid());
          if (lane >= blk.lanes) return;
          const tridiag::SystemRef<T>& s = systems[blk.base + lane];
          if (i >= s.size()) return;
          const T a = t.load(s.a.ptr(i));
          const T b = t.load(s.b.ptr(i));
          const T c = t.load(s.c.ptr(i));
          const T d = t.load(s.d.ptr(i));
          const T denom = b - cp[lane] * a;
          if (guarding) guard_row(lane, s, a, b, c, denom, i);
          const T inv = T(1) / denom;
          cp[lane] = c * inv;
          dp[lane] = (d - dp[lane] * a) * inv;
          t.flops<T>(6);
          t.divs<T>(1);
          t.store(s.c.ptr(i), cp[lane]);
          t.store(s.d.ptr(i), dp[lane]);
        });
      });

  stats.backward = pthomas_backward(dev, systems, xout, block_threads);
  return stats;
}

template <typename T>
gpusim::LaunchStats pthomas_backward(const gpusim::DeviceSpec& dev,
                                     std::span<const tridiag::SystemRef<T>> systems,
                                     std::span<const tridiag::StridedView<T>> xout,
                                     int block_threads) {
  if (!xout.empty() && xout.size() != systems.size()) {
    throw std::invalid_argument("pthomas_backward: xout/systems size mismatch");
  }
  // Functional fast path (see pthomas_solve): one grid-wide vectorized
  // backward sweep, then an empty-bodied launch for the accounting.
  if (gpusim::ExecutionEngine::instance().functional_fast_path()) {
    grid_vector_sweep<T>(systems, xout, /*forward=*/false,
                         /*fuse_backward=*/false);
    const std::size_t grid = grid_for(systems, block_threads);
    gpusim::detail::note_vector_blocks(static_cast<double>(grid));
    return gpusim::launch(dev, {grid, block_threads},
                          [](gpusim::BlockContext&) {});
  }
  // Backward substitution: x_i = d'_i - c'_i x_{i+1}, walking rows from the
  // end; round r touches row n-1-r, x_{i+1} carries between rounds.
  return gpusim::launch(
      dev, {grid_for(systems, block_threads), block_threads},
      [&](gpusim::BlockContext& ctx) {
        const BlockLanes<T> blk(ctx, systems, block_threads);
        const std::span<T> x_next = ctx.lane_buffer<T>(blk.lanes);
        if (!ctx.recording() && !ctx.hazard_checking() && !ctx.fault_checking()) {
          if (ctx.vector_enabled()) {
            // Vectorized lane twin (see the forward sweep). A segment
            // additionally requires the solution views to stay affine
            // with the same run of lanes.
            gpusim::detail::note_vector_blocks(1.0);
            std::size_t l0 = 0;
            while (l0 < blk.lanes) {
              gpusim::LaneSegment<T> seg;
              auto scan = affine_segment(systems, blk.base, l0, blk.lanes, seg);
              gpusim::LaneOutput<T> out{seg.d, seg.lane_step, seg.row_step};
              if (scan.ok && !xout.empty()) {
                // Shrink the segment to the run the outputs also cover.
                const std::size_t xl = xout_affine_run(
                    xout, blk.base + l0, scan.end - l0, out);
                scan.end = l0 + xl;
                seg.lanes = xl;
              }
              if (scan.ok) {
                gpusim::thomas_backward_lanes(seg, out, x_next.data() + l0);
              } else {
                const tridiag::SystemRef<T>& s = systems[blk.base + l0];
                const std::size_t n = s.size();
                if (n > 0) {
                  T v = *s.d.ptr(n - 1);
                  T* xdst = xout.empty() ? s.d.ptr(n - 1)
                                         : xout[blk.base + l0].ptr(n - 1);
                  *xdst = v;
                  for (std::size_t i = n - 1; i-- > 0;) {
                    v = *s.d.ptr(i) - *s.c.ptr(i) * v;
                    xdst = xout.empty() ? s.d.ptr(i) : xout[blk.base + l0].ptr(i);
                    *xdst = v;
                  }
                  x_next[l0] = v;
                }
              }
              l0 = scan.end;
            }
            return;
          }
          // Bit-exact scalar raw twin of the recorded path below.
          for (std::size_t r = 0; r < blk.rounds; ++r) {
            for (std::size_t lane = 0; lane < blk.lanes; ++lane) {
              const tridiag::SystemRef<T>& s = systems[blk.base + lane];
              const std::size_t n = s.size();
              if (n == 0 || r >= n) continue;
              T* const xdst = xout.empty() ? s.d.ptr(n - 1 - r)
                                           : xout[blk.base + lane].ptr(n - 1 - r);
              if (r == 0) {
                const T x = *s.d.ptr(n - 1);
                *xdst = x;
                x_next[lane] = x;
                continue;
              }
              const std::size_t i = n - 1 - r;
              const T x = *s.d.ptr(i) - *s.c.ptr(i) * x_next[lane];
              *xdst = x;
              x_next[lane] = x;
            }
          }
          return;
        }
        ctx.phase_rounds(blk.rounds, [&](gpusim::ThreadCtx& t, std::size_t r) {
          const std::size_t lane = static_cast<std::size_t>(t.tid());
          if (lane >= blk.lanes) return;
          const tridiag::SystemRef<T>& s = systems[blk.base + lane];
          const std::size_t n = s.size();
          if (n == 0 || r >= n) return;
          auto x_at = [&](std::size_t i) {
            return xout.empty() ? s.d.ptr(i) : xout[blk.base + lane].ptr(i);
          };
          if (r == 0) {
            const T x = t.load(s.d.ptr(n - 1));  // x_{n-1} = d'_{n-1}
            t.store(x_at(n - 1), x);
            x_next[lane] = x;
            return;
          }
          const std::size_t i = n - 1 - r;
          const T cp = t.load(s.c.ptr(i));
          const T dp = t.load(s.d.ptr(i));
          const T x = dp - cp * x_next[lane];
          t.flops<T>(2);
          t.store(x_at(i), x);
          x_next[lane] = x;
        });
      });
}

template PthomasStats pthomas_solve<float>(const gpusim::DeviceSpec&,
                                           std::span<const tridiag::SystemRef<float>>,
                                           std::span<const tridiag::StridedView<float>>,
                                           int, std::span<tridiag::SolveStatus>);
template PthomasStats pthomas_solve<double>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<double>>,
    std::span<const tridiag::StridedView<double>>, int,
    std::span<tridiag::SolveStatus>);
template gpusim::LaunchStats pthomas_backward<float>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<float>>,
    std::span<const tridiag::StridedView<float>>, int);
template gpusim::LaunchStats pthomas_backward<double>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<double>>,
    std::span<const tridiag::StridedView<double>>, int);

}  // namespace tridsolve::gpu
