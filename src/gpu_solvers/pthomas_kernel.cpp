#include "gpu_solvers/pthomas_kernel.hpp"

#include <stdexcept>

namespace tridsolve::gpu {

namespace {

/// Global thread id -> system index; idle lanes past the end do nothing
/// (but still occupy warp slots, as on hardware).
template <typename T, typename F>
gpusim::LaunchStats launch_per_system(const gpusim::DeviceSpec& dev,
                                      std::span<const tridiag::SystemRef<T>> systems,
                                      int block_threads, F&& per_system) {
  const std::size_t total = systems.size();
  const std::size_t grid =
      (total + static_cast<std::size_t>(block_threads) - 1) /
      static_cast<std::size_t>(block_threads);
  return gpusim::launch(dev, {grid, block_threads}, [&](gpusim::BlockContext& ctx) {
    ctx.phase([&](gpusim::ThreadCtx& t) {
      const std::size_t sid =
          ctx.block_id() * static_cast<std::size_t>(block_threads) +
          static_cast<std::size_t>(t.tid());
      if (sid < total) per_system(t, sid);
    });
  });
}

}  // namespace

template <typename T>
PthomasStats pthomas_solve(const gpusim::DeviceSpec& dev,
                           std::span<const tridiag::SystemRef<T>> systems,
                           std::span<const tridiag::StridedView<T>> xout,
                           int block_threads) {
  PthomasStats stats;

  // Forward reduction, in place: c <- c', d <- d'. One serialized memory
  // round per row (the loads of row i gate the elimination row i+1 needs).
  stats.forward = launch_per_system<T>(
      dev, systems, block_threads, [&](gpusim::ThreadCtx& t, std::size_t sid) {
        const tridiag::SystemRef<T>& s = systems[sid];
        const std::size_t n = s.size();
        T cp = T(0);
        T dp = T(0);
        for (std::size_t i = 0; i < n; ++i) {
          const T a = t.load(s.a.ptr(i));
          const T b = t.load(s.b.ptr(i));
          const T c = t.load(s.c.ptr(i));
          const T d = t.load(s.d.ptr(i));
          const T denom = b - cp * a;
          const T inv = T(1) / denom;
          cp = c * inv;
          dp = (d - dp * a) * inv;
          t.flops<T>(6);
          t.divs<T>(1);
          t.store(s.c.ptr(i), cp);
          t.store(s.d.ptr(i), dp);
          t.end_round();
        }
      });

  stats.backward = pthomas_backward(dev, systems, xout, block_threads);
  return stats;
}

template <typename T>
gpusim::LaunchStats pthomas_backward(const gpusim::DeviceSpec& dev,
                                     std::span<const tridiag::SystemRef<T>> systems,
                                     std::span<const tridiag::StridedView<T>> xout,
                                     int block_threads) {
  if (!xout.empty() && xout.size() != systems.size()) {
    throw std::invalid_argument("pthomas_backward: xout/systems size mismatch");
  }
  // Backward substitution: x_i = d'_i - c'_i x_{i+1}, walking rows from the
  // end; x_{i+1} stays in a register between iterations.
  return launch_per_system<T>(
      dev, systems, block_threads, [&](gpusim::ThreadCtx& t, std::size_t sid) {
        const tridiag::SystemRef<T>& s = systems[sid];
        const std::size_t n = s.size();
        if (n == 0) return;
        auto x_at = [&](std::size_t i) {
          return xout.empty() ? s.d.ptr(i) : xout[sid].ptr(i);
        };
        T x_next = t.load(s.d.ptr(n - 1));  // x_{n-1} = d'_{n-1}
        t.store(x_at(n - 1), x_next);
        t.end_round();
        for (std::size_t i = n - 1; i-- > 0;) {
          const T cp = t.load(s.c.ptr(i));
          const T dp = t.load(s.d.ptr(i));
          const T x = dp - cp * x_next;
          t.flops<T>(2);
          t.store(x_at(i), x);
          x_next = x;
          t.end_round();
        }
      });
}

template PthomasStats pthomas_solve<float>(const gpusim::DeviceSpec&,
                                           std::span<const tridiag::SystemRef<float>>,
                                           std::span<const tridiag::StridedView<float>>,
                                           int);
template PthomasStats pthomas_solve<double>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<double>>,
    std::span<const tridiag::StridedView<double>>, int);
template gpusim::LaunchStats pthomas_backward<float>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<float>>,
    std::span<const tridiag::StridedView<float>>, int);
template gpusim::LaunchStats pthomas_backward<double>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<double>>,
    std::span<const tridiag::StridedView<double>>, int);

}  // namespace tridsolve::gpu
