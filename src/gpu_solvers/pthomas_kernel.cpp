#include "gpu_solvers/pthomas_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tridsolve::gpu {

namespace {

// Both sweeps run lockstep (phase_rounds): one round per row, every lane
// of the block advancing together. That is how the warp executes on
// hardware, and on the simulator host it pipelines the per-row divide
// across the block's independent systems and turns the interleaved
// layout's accesses into contiguous row-major streams. Recorded costs are
// identical to the per-thread loop form (rounds, addresses and op counts
// are unchanged); per-thread carries (c', d', x_{i+1}) live in lane
// arrays instead of registers.

/// Round count and lane count for one block of a thread-per-system grid.
template <typename T>
struct BlockLanes {
  std::size_t base = 0;   ///< first system id of the block
  std::size_t lanes = 0;  ///< live lanes (idle tail lanes do nothing)
  std::size_t rounds = 0; ///< max system size across live lanes

  BlockLanes(const gpusim::BlockContext& ctx,
             std::span<const tridiag::SystemRef<T>> systems, int block_threads) {
    const std::size_t bt = static_cast<std::size_t>(block_threads);
    base = ctx.block_id() * bt;
    lanes = std::min(bt, systems.size() - base);
    for (std::size_t l = 0; l < lanes; ++l) {
      rounds = std::max(rounds, systems[base + l].size());
    }
  }
};

template <typename T>
std::size_t grid_for(std::span<const tridiag::SystemRef<T>> systems,
                     int block_threads) {
  return (systems.size() + static_cast<std::size_t>(block_threads) - 1) /
         static_cast<std::size_t>(block_threads);
}

/// Per-lane pivot-guard accumulator for the forward sweep. Detection only:
/// it reads values the elimination already has in hand, records no costs,
/// and never alters the arithmetic — guarded and unguarded runs stay
/// bit-identical in both outputs and recorded timing.
struct GuardAcc {
  bool flagged = false;
  std::size_t row = 0;
  double growth = 1.0;
};

template <typename T>
inline void guard_check(GuardAcc& g, T a, T b, T c, T denom,
                        std::size_t i) noexcept {
  // !(denom != 0) also catches a NaN denominator.
  if (!(denom != T(0)) || !std::isfinite(static_cast<double>(denom))) {
    if (!g.flagged) {
      g.flagged = true;
      g.row = i;
    }
    return;
  }
  const double scale = std::max({std::abs(static_cast<double>(a)),
                                 std::abs(static_cast<double>(b)),
                                 std::abs(static_cast<double>(c))});
  const double ratio = scale / std::abs(static_cast<double>(denom));
  if (ratio > g.growth) g.growth = ratio;
}

inline tridiag::SolveStatus guard_status(const GuardAcc& g) noexcept {
  return g.flagged
             ? tridiag::SolveStatus{tridiag::SolveCode::zero_pivot, g.row,
                                    g.growth}
             : tridiag::SolveStatus{tridiag::SolveCode::ok, 0, g.growth};
}

}  // namespace

template <typename T>
PthomasStats pthomas_solve(const gpusim::DeviceSpec& dev,
                           std::span<const tridiag::SystemRef<T>> systems,
                           std::span<const tridiag::StridedView<T>> xout,
                           int block_threads,
                           std::span<tridiag::SolveStatus> guard) {
  if (!guard.empty() && guard.size() != systems.size()) {
    throw std::invalid_argument("pthomas_solve: guard/systems size mismatch");
  }
  PthomasStats stats;
  const bool guarding = !guard.empty();

  // Forward reduction, in place: c <- c', d <- d'. One serialized memory
  // round per row (the loads of row i gate the elimination row i+1 needs).
  stats.forward = gpusim::launch(
      dev, {grid_for(systems, block_threads), block_threads},
      [&](gpusim::BlockContext& ctx) {
        const BlockLanes<T> blk(ctx, systems, block_threads);
        std::vector<T> cp(blk.lanes, T(0));
        std::vector<T> dp(blk.lanes, T(0));
        std::vector<GuardAcc> acc(guarding ? blk.lanes : 0);
        // Each lane owns one system, so the guard slot write below is
        // race-free regardless of block scheduling order.
        auto guard_row = [&](std::size_t lane, const tridiag::SystemRef<T>& s,
                             T a, T b, T c, T denom, std::size_t i) {
          guard_check(acc[lane], a, b, c, denom, i);
          if (i + 1 == s.size()) {
            guard[blk.base + lane] = guard_status(acc[lane]);
          }
        };
        if (!ctx.recording() && !ctx.hazard_checking() && !ctx.fault_checking()) {
          // Non-instrumented blocks (sampled / functional_only): the same
          // arithmetic in the same order — bit-exact with the recorded
          // path below, pinned by tests/test_sim_engine.cpp — without the
          // per-access instrumentation plumbing. Hazard checking forces
          // the instrumented path so the detector sees every access.
          for (std::size_t i = 0; i < blk.rounds; ++i) {
            for (std::size_t lane = 0; lane < blk.lanes; ++lane) {
              const tridiag::SystemRef<T>& s = systems[blk.base + lane];
              if (i >= s.size()) continue;
              const T a = *s.a.ptr(i);
              const T b = *s.b.ptr(i);
              const T c = *s.c.ptr(i);
              const T d = *s.d.ptr(i);
              const T denom = b - cp[lane] * a;
              if (guarding) guard_row(lane, s, a, b, c, denom, i);
              const T inv = T(1) / denom;
              cp[lane] = c * inv;
              dp[lane] = (d - dp[lane] * a) * inv;
              *s.c.ptr(i) = cp[lane];
              *s.d.ptr(i) = dp[lane];
            }
          }
          return;
        }
        ctx.phase_rounds(blk.rounds, [&](gpusim::ThreadCtx& t, std::size_t i) {
          const std::size_t lane = static_cast<std::size_t>(t.tid());
          if (lane >= blk.lanes) return;
          const tridiag::SystemRef<T>& s = systems[blk.base + lane];
          if (i >= s.size()) return;
          const T a = t.load(s.a.ptr(i));
          const T b = t.load(s.b.ptr(i));
          const T c = t.load(s.c.ptr(i));
          const T d = t.load(s.d.ptr(i));
          const T denom = b - cp[lane] * a;
          if (guarding) guard_row(lane, s, a, b, c, denom, i);
          const T inv = T(1) / denom;
          cp[lane] = c * inv;
          dp[lane] = (d - dp[lane] * a) * inv;
          t.flops<T>(6);
          t.divs<T>(1);
          t.store(s.c.ptr(i), cp[lane]);
          t.store(s.d.ptr(i), dp[lane]);
        });
      });

  stats.backward = pthomas_backward(dev, systems, xout, block_threads);
  return stats;
}

template <typename T>
gpusim::LaunchStats pthomas_backward(const gpusim::DeviceSpec& dev,
                                     std::span<const tridiag::SystemRef<T>> systems,
                                     std::span<const tridiag::StridedView<T>> xout,
                                     int block_threads) {
  if (!xout.empty() && xout.size() != systems.size()) {
    throw std::invalid_argument("pthomas_backward: xout/systems size mismatch");
  }
  // Backward substitution: x_i = d'_i - c'_i x_{i+1}, walking rows from the
  // end; round r touches row n-1-r, x_{i+1} carries between rounds.
  return gpusim::launch(
      dev, {grid_for(systems, block_threads), block_threads},
      [&](gpusim::BlockContext& ctx) {
        const BlockLanes<T> blk(ctx, systems, block_threads);
        std::vector<T> x_next(blk.lanes, T(0));
        if (!ctx.recording() && !ctx.hazard_checking() && !ctx.fault_checking()) {
          // Bit-exact raw twin of the recorded path below (see forward).
          for (std::size_t r = 0; r < blk.rounds; ++r) {
            for (std::size_t lane = 0; lane < blk.lanes; ++lane) {
              const tridiag::SystemRef<T>& s = systems[blk.base + lane];
              const std::size_t n = s.size();
              if (n == 0 || r >= n) continue;
              T* const xdst = xout.empty() ? s.d.ptr(n - 1 - r)
                                           : xout[blk.base + lane].ptr(n - 1 - r);
              if (r == 0) {
                const T x = *s.d.ptr(n - 1);
                *xdst = x;
                x_next[lane] = x;
                continue;
              }
              const std::size_t i = n - 1 - r;
              const T x = *s.d.ptr(i) - *s.c.ptr(i) * x_next[lane];
              *xdst = x;
              x_next[lane] = x;
            }
          }
          return;
        }
        ctx.phase_rounds(blk.rounds, [&](gpusim::ThreadCtx& t, std::size_t r) {
          const std::size_t lane = static_cast<std::size_t>(t.tid());
          if (lane >= blk.lanes) return;
          const tridiag::SystemRef<T>& s = systems[blk.base + lane];
          const std::size_t n = s.size();
          if (n == 0 || r >= n) return;
          auto x_at = [&](std::size_t i) {
            return xout.empty() ? s.d.ptr(i) : xout[blk.base + lane].ptr(i);
          };
          if (r == 0) {
            const T x = t.load(s.d.ptr(n - 1));  // x_{n-1} = d'_{n-1}
            t.store(x_at(n - 1), x);
            x_next[lane] = x;
            return;
          }
          const std::size_t i = n - 1 - r;
          const T cp = t.load(s.c.ptr(i));
          const T dp = t.load(s.d.ptr(i));
          const T x = dp - cp * x_next[lane];
          t.flops<T>(2);
          t.store(x_at(i), x);
          x_next[lane] = x;
        });
      });
}

template PthomasStats pthomas_solve<float>(const gpusim::DeviceSpec&,
                                           std::span<const tridiag::SystemRef<float>>,
                                           std::span<const tridiag::StridedView<float>>,
                                           int, std::span<tridiag::SolveStatus>);
template PthomasStats pthomas_solve<double>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<double>>,
    std::span<const tridiag::StridedView<double>>, int,
    std::span<tridiag::SolveStatus>);
template gpusim::LaunchStats pthomas_backward<float>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<float>>,
    std::span<const tridiag::StridedView<float>>, int);
template gpusim::LaunchStats pthomas_backward<double>(
    const gpusim::DeviceSpec&, std::span<const tridiag::SystemRef<double>>,
    std::span<const tridiag::StridedView<double>>, int);

}  // namespace tridsolve::gpu
