#pragma once
// The paper's contribution: the scalable hybrid tiled-PCR + p-Thomas
// tridiagonal solver (§III), orchestrated over the simulated GPU.
//
// Pipeline:
//   1. choose the transition point k from (M, N, hardware) — Table III
//      heuristic by default, Table II cost model or a forced k on request;
//   2. k >= 1: run the tiled PCR kernel, which rewrites each system as
//      2^k independent interleaved systems (window variant per Fig. 11);
//   3. run p-Thomas over the 2^k * M reduced systems (or only its
//      backward pass when the forward sweep was fused into the PCR
//      kernel, §III.C);
//   4. the solution lands in the batch's d array.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "gpu_solvers/tiled_pcr_kernel.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/launch.hpp"
#include "tridiag/batch_status.hpp"
#include "tridiag/layout.hpp"

namespace tridsolve::gpu {

enum class WindowVariant {
  auto_select,            ///< pick from M and the device
  one_block_per_system,   ///< Fig. 11(a)
  split_system,           ///< Fig. 11(b): block group per system
  multi_system_per_block, ///< Fig. 11(c): several windows per block
};

/// Stable name for reports, metrics and telemetry records.
[[nodiscard]] const char* window_variant_name(WindowVariant v) noexcept;

/// Inverse of window_variant_name (calibration files name variants by
/// string). Returns nullopt for unknown names; "auto" maps to auto_select.
[[nodiscard]] std::optional<WindowVariant> window_variant_from_name(
    std::string_view name) noexcept;

/// Where a solve's plan (k, variant, c, geometry) came from. Reported
/// per solve via HybridReport::plan_source and the plan_* JSONL block —
/// unlike the transition.* gauges, which only hold the most recent
/// planning event (see transition.hpp).
enum class PlanSource : std::uint8_t {
  heuristic,   ///< Table III heuristic (the default)
  cost_model,  ///< Table II argmin (HybridOptions::use_cost_model)
  forced,      ///< HybridOptions::force_k / explicit variant request
  calibrated,  ///< preloaded from a --plan-file calibration file
  autotuned,   ///< measured online by the --autotune candidate sweep
};

/// Stable name for telemetry ("heuristic", "cost_model", "forced",
/// "calibrated", "autotuned").
[[nodiscard]] const char* plan_source_name(PlanSource s) noexcept;

/// Guarded-solve policy (see DESIGN.md "Guarded solve path").
///
/// Detection piggybacks on the kernels' own elimination values: it records
/// no simulated costs and changes no arithmetic, so the default policy
/// (detect only) keeps outputs bit-identical and timing unchanged versus
/// a guard-free build. Fallback and refinement are opt-in because they do
/// real extra work (an upfront batch snapshot plus LU solves of flagged
/// systems) on the host.
struct GuardPolicy {
  bool detect = true;    ///< collect per-system SolveStatus (read-only)
  bool fallback = false; ///< re-solve flagged systems with pivoting LU
  bool refine = false;   ///< residual-gated iterative refinement after LU
  double growth_limit = 0.0;  ///< flag ok-but-wild growth; 0 = 1/sqrt(eps_T)
  double refine_gate = 0.0;   ///< rel-residual trigger; 0 = sqrt(eps_T)
};

struct HybridOptions {
  int force_k = -1;             ///< >= 0 overrides the heuristic
  bool use_cost_model = false;  ///< Table II model instead of Table III
  std::size_t sub_tile_c = 1;   ///< S = c * 2^k
  WindowVariant variant = WindowVariant::auto_select;
  std::size_t blocks_per_system = 0;  ///< 0 = auto (split_system only)
  std::size_t systems_per_block = 0;  ///< 0 = auto (multi_system only)
  bool fuse = false;                  ///< fuse Thomas forward into PCR kernel
  int pthomas_block_threads = 128;
  GuardPolicy guard;                  ///< pivot guard / recovery policy
};

struct HybridReport {
  unsigned k = 0;
  WindowVariant variant = WindowVariant::one_block_per_system;
  gpusim::Timeline timeline;

  /// How the plan (k, variant, c, launch geometry) was chosen, and
  /// whether it came out of the PlanCache instead of being computed for
  /// this solve. Cache hits are bit-identical to cold solves — the plan
  /// pins exactly what cold planning would compute.
  PlanSource plan_source = PlanSource::heuristic;
  bool plan_cached = false;
  std::size_t plan_c = 1;  ///< sub-tile multiplier the plan selected

  std::size_t reduced_systems = 0;
  std::size_t eliminations_pcr = 0;
  std::size_t redundant_loads = 0;   ///< halo loads (split_system only)
  std::size_t pcr_shared_bytes = 0;  ///< window footprint per block

  /// Per-system guard outcome (empty when guard.detect is off). Codes are
  /// the detection record: a flagged system keeps its code even after a
  /// successful LU fallback replaced its solution.
  tridiag::BatchStatus status;
  std::size_t flagged = 0;          ///< systems with a non-ok status
  std::size_t fallback_solves = 0;  ///< flagged systems LU re-solved
  std::size_t refine_steps = 0;     ///< refinement iterations performed

  /// Throws std::logic_error when the solve ran functional_only (no
  /// recorded costs, hence no meaningful timing) — see Timeline.
  [[nodiscard]] double total_us() const { return timeline.total_us(); }
  [[nodiscard]] double pcr_us() const { return timeline.time_with_prefix("pcr"); }
  [[nodiscard]] double thomas_us() const {
    return timeline.time_with_prefix("thomas");
  }
  /// Fraction of the runtime spent in tiled PCR (§IV reports 6.25%, 36.2%,
  /// ~55% for M = 256, 16, 1).
  [[nodiscard]] double pcr_fraction() const {
    return total_us() > 0.0 ? pcr_us() / total_us() : 0.0;
  }
};

/// Solve every system of `batch` in place (solution in d) on the simulated
/// device. The batch layout determines the memory addresses the kernels
/// touch: use contiguous for k >= 1 (PCR interleaves in place, feeding
/// p-Thomas coalesced accesses) and interleaved for the k = 0 fast path,
/// as the paper's setup does.
template <typename T>
HybridReport hybrid_solve(const gpusim::DeviceSpec& dev,
                          tridiag::SystemBatch<T>& batch,
                          const HybridOptions& opts = {});

extern template HybridReport hybrid_solve<float>(const gpusim::DeviceSpec&,
                                                 tridiag::SystemBatch<float>&,
                                                 const HybridOptions&);
extern template HybridReport hybrid_solve<double>(const gpusim::DeviceSpec&,
                                                  tridiag::SystemBatch<double>&,
                                                  const HybridOptions&);

}  // namespace tridsolve::gpu
