// Table III reproduction: the empirical k-step transition point per M
// range on the GTX480. For each representative M we sweep every feasible k
// through the full simulated hybrid and report the fastest, next to the
// paper's heuristic (M<16 -> 8, <32 -> 7, <512 -> 6, <1024 -> 5, else 0).

#include <cstdio>
#include <limits>

#include "bench_common.hpp"
#include "gpu_solvers/transition.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"n", "quick"}));
  const auto dev = gpusim::gtx480();
  // System size chosen so every k in 0..8 is feasible; total work is kept
  // comparable across rows by shrinking N as M grows.
  const bool quick = cli.get_bool("quick", false);
  bench::Telemetry telemetry(cli, "table3");

  util::Table table("Table III: best k-step per M (simulated sweep vs paper)");
  table.set_header({"M", "N", "best k (sim)", "time[us] best", "paper k",
                    "time[us] paper k", "tile size 2^k", "model k (Table II)"});

  struct RowCfg {
    std::size_t m, n;
  };
  std::vector<RowCfg> rows{{1, 1 << 18}, {8, 1 << 16}, {16, 1 << 15},
                           {64, 1 << 13}, {512, 1 << 11}, {1024, 1 << 10},
                           {4096, 1 << 9}};
  if (quick) rows = {{8, 1 << 14}, {64, 1 << 12}, {2048, 1 << 9}};

  for (const auto cfg : rows) {
    unsigned best_k = 0;
    double best_t = std::numeric_limits<double>::infinity();
    double paper_t = 0.0;
    const unsigned paper_k = gpu::heuristic_k(cfg.m, cfg.n);
    for (unsigned k = 0; k <= 8; ++k) {
      if ((std::size_t{1} << k) > cfg.n / 2) break;
      gpu::HybridOptions opts;
      opts.force_k = static_cast<int>(k);
      const auto rep = bench::run_ours<double>(dev, cfg.m, cfg.n, opts);
      telemetry.record_hybrid(dev, cfg.m, cfg.n, rep);
      if (rep.total_us() < best_t) {
        best_t = rep.total_us();
        best_k = k;
      }
      if (k == paper_k) paper_t = rep.total_us();
    }
    table.add_row({util::Table::integer(static_cast<long long>(cfg.m)),
                   util::Table::integer(static_cast<long long>(cfg.n)),
                   std::to_string(best_k), bench::us(best_t),
                   std::to_string(paper_k), bench::us(paper_t),
                   std::to_string(std::size_t{1} << paper_k),
                   std::to_string(gpu::model_best_k(cfg.m, cfg.n, dev))});
  }
  bench::emit(table, cli);
  std::puts("paper Table III: M<16 -> k=8 (tile 256), 16<=M<32 -> 7, "
            "32<=M<512 -> 6, 512<=M<1024 -> 5, M>=1024 -> 0");
  return 0;
}
