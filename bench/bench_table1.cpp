// Table I reproduction: properties of the buffered sliding window for
// k-step PCR — sub-tile size, intermediate-results cache, threads per
// block, eliminations per thread / per sub-tile — with the *measured*
// values from the kernel run next to the formulas.

#include <cstdio>

#include "bench_common.hpp"
#include "gpu_solvers/tiled_pcr_kernel.hpp"
#include "tridiag/pcr.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"c"}));
  const auto dev = gpusim::gtx480();
  const std::size_t c = static_cast<std::size_t>(cli.get_int("c", 1));

  util::Table table("Table I: buffered sliding window properties (c=" +
                    std::to_string(c) + ", double)");
  table.set_header({"k", "subtile(c*2^k)", "cache<=3*f(k) rows",
                    "threads(2^k)", "elims/thread/subtile(ck)",
                    "elims/subtile(ck2^k)", "shared[B] measured",
                    "shared[B] window(4S)", "fits"});

  for (unsigned k = 1; k <= 8; ++k) {
    const std::size_t subtile = c << k;
    const std::size_t n = 16 * subtile;  // a few sub-tiles worth of system

    auto batch = workloads::make_batch<double>(workloads::Kind::random_dominant,
                                               1, n, tridiag::Layout::contiguous,
                                               k);
    std::vector<gpu::TiledPcrWork<double>> work{
        {batch.system(0), batch.system(0), 0, n}};
    gpu::TiledPcrConfig cfg;
    cfg.k = k;
    cfg.c = c;
    const auto stats = gpu::tiled_pcr_kernel<double>(dev, work, cfg);

    const std::size_t measured_shared = stats.launch.costs.shared_peak_bytes;
    // The paper's window (Fig. 9): top (1 sub-tile) + middle (2 sub-tiles)
    // + bottom (1 sub-tile) = 4 sub-tiles of 4 values per row.
    const std::size_t bound = 4 * subtile * 4 * sizeof(double);
    const std::size_t elims_per_subtile = c * k << k;

    table.add_row({std::to_string(k),
                   std::to_string(subtile),
                   std::to_string(3 * tridiag::pcr_halo(k)),
                   std::to_string(std::size_t{1} << k),
                   std::to_string(c * k),
                   std::to_string(elims_per_subtile),
                   std::to_string(measured_shared),
                   std::to_string(bound),
                   measured_shared <= dev.shared_mem_per_block &&
                           measured_shared <= bound
                       ? "yes"
                       : "NO"});
  }
  bench::emit(table, cli);
  std::puts("measured shared = (2*subtile + 2*f(k)) rows * 4 doubles: the\n"
            "implementation's ping-pong + tail-cache layout, always within\n"
            "the paper's 4-sub-tile window (top + 2x middle + bottom).");
  return 0;
}
