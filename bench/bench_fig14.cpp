// Figure 14 reproduction: our hybrid vs the Davidson et al. [19]-style
// auto-tuned PCR-Thomas baseline on the paper's four configurations
// (MxN = 1Kx1K, 2Kx2K, 4Kx4K, 1x2M), in double (a) and single (b)
// precision. The paper reports 2x-10x advantages for the proposed method;
// panel (b) also lists the numbers Davidson et al. reported themselves.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gpu_solvers/davidson.hpp"

using namespace tridsolve;

namespace {

struct Config {
  std::size_t m, n;
  const char* label;
  double paper_ours_ms;       // paper Fig. 14 left bars
  double paper_davidson_ms;   // paper Fig. 14 "our implementation of [19]"
  double davidson_reported;   // Fig. 14(b) only; <0 = not reported
};

template <typename T>
void panel(const gpusim::DeviceSpec& dev, const std::vector<Config>& configs,
           const util::Cli& cli, bench::Telemetry& telemetry) {
  const bool fp64 = sizeof(T) == 8;
  util::Table table(std::string("Fig.14") + (fp64 ? "(a) double" : "(b) single") +
                    ": Ours vs Davidson-style hybrid, execution time [ms]");
  std::vector<std::string> header{"MxN",          "Ours(sim)",  "Davidson(sim)",
                                  "sim advantage", "Ours(paper)", "Davidson(paper)"};
  if (!fp64) header.push_back("Davidson(reported)");
  table.set_header(header);

  for (const auto& cfg : configs) {
    const auto ours = bench::run_ours<T>(dev, cfg.m, cfg.n);
    obs::JsonValue extra = obs::JsonValue::object();
    extra["precision"] = fp64 ? "double" : "single";
    telemetry.record_hybrid(dev, cfg.m, cfg.n, ours, "hybrid",
                            std::move(extra));

    auto batch = workloads::make_batch<T>(workloads::Kind::random_dominant,
                                          cfg.m, cfg.n,
                                          tridiag::Layout::contiguous, 42);
    const auto dav = gpu::davidson_solve<T>(dev, batch);

    std::vector<std::string> row{
        cfg.label,
        bench::ms(ours.total_us()),
        bench::ms(dav.total_us()),
        bench::ratio(dav.total_us() / ours.total_us()),
        util::Table::num(cfg.paper_ours_ms, 2),
        util::Table::num(cfg.paper_davidson_ms, 2)};
    if (!fp64) {
      row.push_back(cfg.davidson_reported >= 0
                        ? util::Table::num(cfg.davidson_reported, 2)
                        : "-");
    }
    table.add_row(std::move(row));
  }
  bench::emit(table, cli);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"quick"}));
  const auto dev = gpusim::gtx480();
  const bool quick = cli.get_bool("quick", false);
  bench::Telemetry telemetry(cli, "fig14");

  // Paper values from Fig. 14 (a) and (b).
  std::vector<Config> dbl{{1024, 1024, "1Kx1K", 2.12, 4.87, -1},
                          {2048, 2048, "2Kx2K", 4.72, 22.76, -1},
                          {4096, 4096, "4Kx4K", 11.05, 104.39, -1},
                          {1, 2097152, "1x2M", 13.93, 38.22, -1}};
  std::vector<Config> flt{{1024, 1024, "1Kx1K", 1.02, 1.08, 0.96},
                          {2048, 2048, "2Kx2K", 2.27, 5.35, 5.52},
                          {4096, 4096, "4Kx4K", 5.60, 25.55, 27.92},
                          {1, 2097152, "1x2M", 4.96, 9.69, 50.40}};
  if (quick) {
    dbl.resize(2);
    flt.resize(2);
  }

  panel<double>(dev, dbl, cli, telemetry);
  panel<float>(dev, flt, cli, telemetry);
  return 0;
}
