// Offline empirical plan autotuner (the paper's §V auto-tuning remark):
// for each (M, N) cell, sweep candidate (k, window variant, sub-tile c)
// plans through the full simulated hybrid and keep the fastest, next to
// what the static Table III heuristic would have chosen. With --out the
// winners are written as a tridsolve-plan-v1 calibration file that any
// bench/example preloads via --plan-file (or TRIDSOLVE_PLAN_FILE), so
// production solves start from measured plans instead of the heuristic.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gpu_solvers/autotune.hpp"
#include "gpu_solvers/plan_cache.hpp"

using namespace tridsolve;

namespace {

/// Parse a comma-separated list of positive sizes ("1,16,1024").
std::vector<std::size_t> parse_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string tok = text.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(static_cast<std::size_t>(std::stoull(tok)));
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty size list: " + text);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags(
                                      {"quick", "smoke", "m-list", "n-list",
                                       "out"}));
  const auto dev = gpusim::gtx480();
  bench::Telemetry telemetry(cli, "autotune");

  // Cell grid: a Fig. 12-style sweep by default, pared down for CI.
  std::vector<std::size_t> ms{1, 4, 16, 64, 256, 1024};
  std::vector<std::size_t> ns{128, 512};
  if (cli.get_bool("quick", false)) {
    ms = {16, 256};
    ns = {512};
  }
  if (cli.get_bool("smoke", false)) {
    ms = {16};
    ns = {64};
  }
  if (const auto v = cli.get("m-list")) ms = parse_list(*v);
  if (const auto v = cli.get("n-list")) ns = parse_list(*v);

  util::Table table("Empirical plan autotuner vs Table III heuristic");
  table.set_header({"M", "N", "heur k", "tuned k", "variant", "c",
                    "heur[us]", "tuned[us]", "delta"});

  obs::JsonValue plans = obs::JsonValue::array();
  for (const std::size_t n : ns) {
    for (const std::size_t m : ms) {
      const gpu::AutotuneResult r = gpu::autotune_cell<double>(dev, m, n);
      const double delta =
          r.heuristic_us > 0.0 ? 100.0 * (r.heuristic_us - r.best_us) /
                                     r.heuristic_us
                               : 0.0;
      table.add_row({util::Table::integer(static_cast<long long>(m)),
                     util::Table::integer(static_cast<long long>(n)),
                     std::to_string(r.heuristic_k), std::to_string(r.best.k),
                     std::string(gpu::window_variant_name(r.best.variant)),
                     std::to_string(r.best.c), bench::us(r.heuristic_us),
                     bench::us(r.best_us), util::Table::num(delta, 1) + "%"});

      obs::JsonValue rec = obs::JsonValue::object();
      rec["solver"] = "autotune";
      rec["m"] = m;
      rec["n"] = n;
      rec["time_us"] = r.best_us;
      rec["plan_source"] = gpu::plan_source_name(r.best.source);
      rec["plan_cached"] = 0;
      rec["plan_k"] = r.best.k;
      rec["plan_variant"] = gpu::window_variant_name(r.best.variant);
      rec["plan_c"] = r.best.c;
      rec["heuristic_k"] = r.heuristic_k;
      rec["heuristic_us"] = r.heuristic_us;
      rec["candidates"] = r.candidates.size();
      telemetry.record_raw(std::move(rec));

      obs::JsonValue entry = obs::JsonValue::object();
      entry["m"] = m;
      entry["n"] = n;
      entry["elem_size"] = sizeof(double);
      entry["k"] = r.best.k;
      entry["variant"] = gpu::window_variant_name(r.best.variant);
      entry["c"] = r.best.c;
      entry["blocks_per_system"] = r.best.blocks_per_system;
      entry["systems_per_block"] = r.best.systems_per_block;
      entry["tuned_us"] = r.best_us;
      entry["heuristic_us"] = r.heuristic_us;
      plans.push_back(std::move(entry));

      // Warm this process's cache too, so a bench run that continues
      // after the sweep already solves with the measured plans.
      gpu::HybridOptions defaults;
      gpu::PlanCache::instance().insert(
          gpu::make_plan_key(dev, m, n, sizeof(double), defaults), r.best);
    }
  }
  bench::emit(table, cli);

  if (const auto out = cli.get("out")) {
    obs::JsonValue doc = obs::JsonValue::object();
    doc["schema"] = "tridsolve-plan-v1";
    doc["device"] = dev.name;
    // Decimal string, not a JSON number: the fingerprint uses all 64 bits
    // and a double round-trip would corrupt it above 2^53.
    doc["fingerprint"] = std::to_string(dev.fingerprint());
    doc["plans"] = std::move(plans);
    std::ofstream f(*out);
    if (!f) {
      std::fprintf(stderr, "bench_autotune: cannot write %s\n", out->c_str());
      return 1;
    }
    f << doc.dump(1) << "\n";
    std::printf("wrote %zu plans to %s\n", doc["plans"].size(), out->c_str());
  }
  return 0;
}
