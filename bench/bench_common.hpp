#pragma once
// Shared plumbing for the figure/table reproduction benches.

#include <cstdio>
#include <string>

#include "cpu_baselines/mkl_like.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/transition.hpp"
#include "gpusim/device_spec.hpp"
#include "tridiag/layout.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"

namespace tridsolve::bench {

/// Layout the hybrid wants for a given batch shape (the paper's setup):
/// interleaved when it will run pure p-Thomas (k = 0), contiguous when
/// tiled PCR leads.
inline tridiag::Layout preferred_layout(std::size_t m, std::size_t n) {
  return gpu::heuristic_k(m, n) == 0 ? tridiag::Layout::interleaved
                                     : tridiag::Layout::contiguous;
}

/// Run the full hybrid solve on a fresh random diagonally-dominant batch
/// and return the report (timings are simulated; the numerics are real).
template <typename T>
gpu::HybridReport run_ours(const gpusim::DeviceSpec& dev, std::size_t m,
                           std::size_t n, const gpu::HybridOptions& opts = {}) {
  auto batch = workloads::make_batch<T>(workloads::Kind::random_dominant, m, n,
                                        preferred_layout(m, n), /*seed=*/42);
  return gpu::hybrid_solve<T>(dev, batch, opts);
}

/// Print a table as ASCII (default) or CSV if --csv was passed.
inline void emit(const util::Table& table, const util::Cli& cli) {
  if (cli.get_bool("csv", false)) {
    std::fputs(table.to_csv().c_str(), stdout);
  } else {
    std::fputs(table.to_ascii().c_str(), stdout);
    std::fputs("\n", stdout);
  }
}

inline std::string us(double v) { return util::Table::num(v, 1); }
inline std::string ms(double v) { return util::Table::num(v / 1000.0, 2); }
inline std::string ratio(double v) { return util::Table::num(v, 1) + "x"; }

}  // namespace tridsolve::bench
