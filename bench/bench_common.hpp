#pragma once
// Shared plumbing for the figure/table reproduction benches.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cpu_baselines/mkl_like.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpu_solvers/plan_cache.hpp"
#include "gpu_solvers/transition.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/trace.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/span_tracer.hpp"
#include "obs/telemetry.hpp"
#include "tridiag/layout.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workloads/generators.hpp"

namespace tridsolve::bench {

/// Layout the hybrid wants for a given batch shape (the paper's setup):
/// interleaved when it will run pure p-Thomas (k = 0), contiguous when
/// tiled PCR leads.
inline tridiag::Layout preferred_layout(std::size_t m, std::size_t n) {
  return gpu::heuristic_k(m, n) == 0 ? tridiag::Layout::interleaved
                                     : tridiag::Layout::contiguous;
}

/// Run the full hybrid solve on a fresh random diagonally-dominant batch
/// and return the report (timings are simulated; the numerics are real).
template <typename T>
gpu::HybridReport run_ours(const gpusim::DeviceSpec& dev, std::size_t m,
                           std::size_t n, const gpu::HybridOptions& opts = {}) {
  auto batch = workloads::make_batch<T>(workloads::Kind::random_dominant, m, n,
                                        preferred_layout(m, n), /*seed=*/42);
  return gpu::hybrid_solve<T>(dev, batch, opts);
}

enum class Format { ascii, csv, json };

/// Table output format: --format {ascii,csv,json}, with --csv kept as a
/// backward-compatible alias for --format csv.
inline Format output_format(const util::Cli& cli) {
  if (cli.get_bool("csv", false)) return Format::csv;
  const std::string f = cli.get_string("format", "ascii");
  if (f == "ascii") return Format::ascii;
  if (f == "csv") return Format::csv;
  if (f == "json") return Format::json;
  throw std::invalid_argument("unknown --format: " + f +
                              " (expected ascii, csv or json)");
}

/// Host wall-time summary of repeated runs of one configuration.
struct WallStats {
  double min_us = 0.0;
  double median_us = 0.0;
  int repeats = 1;
};

/// Run `fn` under --repeat N semantics: one untimed warmup when N > 1,
/// then N timed repetitions; reports min and median host wall time. The
/// benches' *simulated* numbers are deterministic — this measures how
/// long the simulator itself takes, i.e. the quantity the execution
/// engine optimizes. `prep()` runs untimed before every `fn()` (warmup
/// included) — for benches that solve in place and must reset their
/// inputs between repeats without charging the reset to the kernel.
template <typename P, typename F>
WallStats repeat_wall(const util::Cli& cli, P&& prep, F&& fn) {
  const int repeats =
      std::max<int>(1, static_cast<int>(cli.get_int("repeat", 1)));
  if (repeats > 1) {  // warmup: populate scratch pools, page in data
    prep();
    fn();
  }
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    prep();
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(samples.begin(), samples.end());
  WallStats out;
  out.repeats = repeats;
  out.min_us = samples.front();
  const std::size_t mid = samples.size() / 2;
  out.median_us = samples.size() % 2 == 1
                      ? samples[mid]
                      : 0.5 * (samples[mid - 1] + samples[mid]);
  return out;
}

template <typename F>
WallStats repeat_wall(const util::Cli& cli, F&& fn) {
  return repeat_wall(
      cli, [] {}, std::forward<F>(fn));
}

/// Print a table in the format the command line selected.
inline void emit(const util::Table& table, const util::Cli& cli) {
  switch (output_format(cli)) {
    case Format::csv:
      std::fputs(table.to_csv().c_str(), stdout);
      break;
    case Format::json:
      std::fputs(table.to_json().c_str(), stdout);
      std::fputs("\n", stdout);
      break;
    case Format::ascii:
      std::fputs(table.to_ascii().c_str(), stdout);
      std::fputs("\n", stdout);
      break;
  }
}

/// Per-bench observability hub, driven by the shared flags
/// (util::with_obs_flags): a JSONL record sink (--json), a Chrome trace
/// accumulating every recorded timeline as its own track (--trace-json)
/// and a metrics-registry dump (--metrics-json). All three are inert
/// unless their flag was passed.
class Telemetry {
 public:
  Telemetry(const util::Cli& cli, std::string bench_name)
      : bench_(std::move(bench_name)),
        trace_(bench_),
        last_record_(std::chrono::steady_clock::now()) {
    // Every bench funnels through here, so this is the one place the
    // shared --sim-threads / --instrument / --check-hazards flags reach
    // the engine, and --plan-file / --autotune reach the plan cache.
    gpusim::configure_engine_from_cli(cli);
    gpu::configure_plan_cache_from_cli(cli);
    hazard_mode_ = gpusim::ExecutionEngine::instance().default_hazards();
    if (hazard_mode_ != gpusim::HazardMode::off) {
      for (auto& c : hazard_counters_) {
        c.handle = obs::counter_handle(c.metric);
        c.last = c.handle.value();
      }
    }
    fault_plan_ = gpusim::ExecutionEngine::instance().fault_plan();
    if (fault_plan_.active()) {
      for (auto& c : fault_counters_) {
        c.handle = obs::counter_handle(c.metric);
        c.last = c.handle.value();
      }
    }
    if (const auto path = cli.get("json")) sink_ = obs::JsonlSink(*path);
    trace_path_ = cli.get_string("trace-json", "");
    metrics_path_ = cli.get_string("metrics-json", "");
    prom_path_ = cli.get_string("metrics-prom", "");
    spans_path_ = cli.get_string("spans-json", "");
    if (!spans_path_.empty()) {
      // Opt-in: tracing stays off (and free) unless --spans-json asks
      // for it. Reset discards spans a previous Telemetry in the same
      // process may have left behind (tests construct several).
      obs::SpanTracer::instance().reset();
      obs::SpanTracer::instance().set_enabled(true);
    }
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  ~Telemetry() {
    if (!spans_path_.empty()) {
      obs::SpanTracer& tracer = obs::SpanTracer::instance();
      tracer.set_enabled(false);
      if (!tracer.write_jsonl(spans_path_)) {
        std::fprintf(stderr, "telemetry: cannot write %s\n",
                     spans_path_.c_str());
      }
      // The span tree also lands in the Chrome trace (pid 1) so the
      // causal view and the per-launch tracks open side by side.
      if (!trace_path_.empty()) trace_.add_spans(tracer.spans());
    }
    if (!trace_path_.empty()) trace_.write_file(trace_path_);
    if (!prom_path_.empty()) {
      obs::write_prometheus(obs::MetricsRegistry::instance(), prom_path_);
    }
    if (!metrics_path_.empty()) {
      if (std::FILE* f = std::fopen(metrics_path_.c_str(), "w")) {
        const std::string text =
            obs::MetricsRegistry::instance().to_json().dump(1);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "telemetry: cannot open %s\n",
                     metrics_path_.c_str());
      }
    }
  }

  [[nodiscard]] bool enabled() const noexcept {
    return sink_.enabled() || !trace_path_.empty();
  }

  /// Append one record for a solver run over an (m, n) batch: shape,
  /// solver, total time, per-phase split (one entry per segment label)
  /// and the timeline's aggregate totals. `extra` fields are merged in.
  /// The timeline also becomes one track of the Chrome trace.
  void record(const gpusim::DeviceSpec& dev, std::string_view solver,
              std::size_t m, std::size_t n, const gpusim::Timeline& timeline,
              obs::JsonValue extra = obs::JsonValue::object()) {
    if (!enabled()) return;
    if (!trace_path_.empty()) {
      trace_.add_timeline(dev, timeline,
                          std::string(solver) + " M=" + std::to_string(m) +
                              " N=" + std::to_string(n));
    }
    if (!sink_.enabled()) return;

    obs::JsonValue rec = std::move(extra);
    rec["bench"] = bench_;
    rec["solver"] = std::string(solver);
    rec["m"] = m;
    rec["n"] = n;
    rec["time_us"] = timeline.total_us();
    // Host wall time spent producing this record (since the previous one)
    // — the perf-trajectory signal BENCH_*.json files track. Benches that
    // measured more precisely (repeat_wall) pass wall_us via `extra`.
    if (!rec.find("wall_us")) rec["wall_us"] = take_wall_us();

    obs::JsonValue& phases = rec["phases"] = obs::JsonValue::object();
    std::map<std::string, double> by_label;
    for (const auto& seg : timeline.segments()) {
      by_label[seg.label] += seg.stats.timing.time_us;
    }
    for (const auto& [label, us] : by_label) phases[label] = us;

    const auto totals = gpusim::summarize_timeline(dev, timeline);
    rec["kernel_us"] = totals.kernel_us;
    rec["host_us"] = totals.host_us;
    rec["overhead_us"] = totals.overhead_us;
    rec["launches"] = totals.launches;
    rec["transactions"] = totals.transactions;
    rec["coalescing_efficiency"] = totals.coalescing_efficiency();
    annotate_hazards(rec);
    annotate_faults(rec);
    sink_.write(rec);
  }

  /// record() specialization for the hybrid solver's report: adds the
  /// transition point, window variant and redundancy bookkeeping.
  void record_hybrid(const gpusim::DeviceSpec& dev, std::size_t m,
                     std::size_t n, const gpu::HybridReport& report,
                     std::string_view solver = "hybrid",
                     obs::JsonValue extra = obs::JsonValue::object()) {
    if (!enabled()) return;
    extra["k"] = report.k;
    extra["variant"] = gpu::window_variant_name(report.variant);
    // Per-solve plan provenance (the transition.* gauges are only
    // most-recent; this is the record of truth). All-or-nothing group,
    // schema-checked by tools/validate_telemetry.
    extra["plan_source"] = gpu::plan_source_name(report.plan_source);
    extra["plan_cached"] = report.plan_cached ? 1 : 0;
    extra["plan_k"] = report.k;
    extra["plan_variant"] = gpu::window_variant_name(report.variant);
    extra["plan_c"] = report.plan_c;
    extra["reduced_systems"] = report.reduced_systems;
    extra["redundant_loads"] = report.redundant_loads;
    extra["pcr_us"] = report.pcr_us();
    extra["thomas_us"] = report.thomas_us();
    extra["pcr_fraction"] = report.pcr_fraction();
    // Guarded-solve taxonomy (all zero on healthy inputs; flagged > 0
    // means the pivot guard fired — see README troubleshooting).
    extra["guard_flagged"] = report.flagged;
    extra["guard_fallback"] = report.fallback_solves;
    extra["guard_refined"] = report.refine_steps;
    record(dev, solver, m, n, report.timeline, std::move(extra));
  }

  /// Append a caller-built record verbatim (plus the bench name and a
  /// wall_us default). For results without a usable timeline — e.g.
  /// functional_only runs, which have no timing to report. Callers must
  /// include the schema fields (solver, m, n, time_us) themselves.
  void record_raw(obs::JsonValue rec) {
    if (!rec.find("wall_us")) rec["wall_us"] = take_wall_us();
    if (!sink_.enabled()) return;
    rec["bench"] = bench_;
    annotate_hazards(rec);
    annotate_faults(rec);
    sink_.write(rec);
  }

 private:
  /// When hazard detection is on (--check-hazards), stamp the record with
  /// the mode and the per-record deltas of the gpusim.hazard.* counters —
  /// the findings attributable to the launches since the previous record.
  /// Schema-checked by tools/validate_telemetry.
  void annotate_hazards(obs::JsonValue& rec) {
    if (hazard_mode_ == gpusim::HazardMode::off) return;
    rec["hazard_mode"] = std::string(gpusim::hazard_mode_name(hazard_mode_));
    for (auto& c : hazard_counters_) {
      const double now = c.handle.value();
      rec[c.field] = now - c.last;
      c.last = now;
    }
  }
  /// When fault injection is armed (--fault-rate / --fault-seed /
  /// --fault-kinds), stamp the record with the plan's seed and rate plus
  /// the per-record deltas of the gpusim.fault.* counters — the
  /// injections attributable to the launches since the previous record.
  /// Schema-checked (all-or-nothing) by tools/validate_telemetry.
  void annotate_faults(obs::JsonValue& rec) {
    if (!fault_plan_.active()) return;
    rec["fault_seed"] = fault_plan_.seed;
    rec["fault_rate"] = fault_plan_.rate;
    for (auto& c : fault_counters_) {
      const double now = c.handle.value();
      rec[c.field] = now - c.last;
      c.last = now;
    }
  }
  /// Microseconds since the previous record (or construction).
  [[nodiscard]] double take_wall_us() noexcept {
    const auto now = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(now - last_record_).count();
    last_record_ = now;
    return us;
  }

  struct HazardCounter {
    const char* metric;
    const char* field;
    obs::MetricsRegistry::Counter handle;
    double last = 0.0;
  };

  std::string bench_;
  obs::JsonlSink sink_;
  obs::ChromeTraceBuilder trace_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string prom_path_;
  std::string spans_path_;
  std::chrono::steady_clock::time_point last_record_;
  gpusim::HazardMode hazard_mode_ = gpusim::HazardMode::off;
  HazardCounter hazard_counters_[5] = {
      {"gpusim.hazard.raw", "hazard_raw", {}, 0.0},
      {"gpusim.hazard.war", "hazard_war", {}, 0.0},
      {"gpusim.hazard.waw", "hazard_waw", {}, 0.0},
      {"gpusim.hazard.oob", "hazard_oob", {}, 0.0},
      {"gpusim.hazard.divergence", "hazard_divergence", {}, 0.0},
  };
  gpusim::FaultPlan fault_plan_;
  HazardCounter fault_counters_[5] = {
      {"gpusim.fault.bit_flips", "fault_bit_flips", {}, 0.0},
      {"gpusim.fault.shared_corruptions", "fault_shared_corruptions", {}, 0.0},
      {"gpusim.fault.nan_writes", "fault_nan_writes", {}, 0.0},
      {"gpusim.fault.launch_failures", "fault_launch_failures", {}, 0.0},
      {"gpusim.fault.timeouts", "fault_timeouts", {}, 0.0},
  };
};

inline std::string us(double v) { return util::Table::num(v, 1); }
inline std::string ms(double v) { return util::Table::num(v / 1000.0, 2); }
inline std::string ratio(double v) { return util::Table::num(v, 1) + "x"; }

}  // namespace tridsolve::bench
