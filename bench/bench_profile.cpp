// Roofline profiler: where does each solver's time go, and how close is
// each phase to the machine's roofs? For every registry solver and batch
// shape this bench attributes bytes moved (global + shared) and FLOPs to
// each timeline phase, prices them against the GTX480's peak bandwidth
// and peak GFLOP/s (obs::attribute_timeline), and reports the achieved
// fraction of roof plus the phase's binding resource.
//
// With --json each (solver, phase) becomes its own JSONL record — the
// unit tools/perfdiff compares across runs — followed by one per-solver
// total record carrying the phase split and the latency-histogram
// quantiles of the per-launch kernel times. All simulated numbers are
// deterministic; wall_us is the only noisy field.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "gpu_solvers/registry.hpp"
#include "obs/histogram.hpp"
#include "obs/roofline.hpp"

using namespace tridsolve;

namespace {

/// Deterministic per-launch kernel-time quantiles for one solve: the
/// timeline's kernel segments fed through the same log-bucketed histogram
/// the metrics registry uses, so JSONL and --metrics-json agree on
/// bucketing. Simulated times in, deterministic p50/p90/p99 out.
obs::JsonValue launch_hist_json(const gpusim::Timeline& timeline) {
  obs::LogHistogram hist;
  for (const auto& seg : timeline.segments()) {
    if (seg.is_host() || !seg.stats.timed) continue;
    hist.record(seg.stats.timing.time_us);
  }
  const obs::HistogramSnapshot snap = hist.snapshot();
  obs::JsonValue h = obs::JsonValue::object();
  h["count"] = snap.count;
  h["p50"] = snap.p50;
  h["p90"] = snap.p90;
  h["p99"] = snap.p99;
  h["max"] = snap.max;
  h["mean"] = snap.mean();
  return h;
}

void panel(const gpusim::DeviceSpec& dev, std::size_t m, std::size_t n,
           const util::Cli& cli, bench::Telemetry& telemetry) {
  util::Table table("Roofline attribution, M=" + std::to_string(m) +
                    " N=" + std::to_string(n) + " (double)");
  table.set_header({"solver", "phase", "time[us]", "GB/s", "GF/s",
                    "frac_bw", "frac_comp", "bound"});

  const auto batch = workloads::make_batch<double>(
      workloads::Kind::random_dominant, m, n, bench::preferred_layout(m, n),
      /*seed=*/42);
  const std::string solver_filter = cli.get_string("solvers", "");

  for (const gpu::SolverKind kind : gpu::all_solver_kinds()) {
    const std::string name = gpu::solver_name(kind);
    if (!solver_filter.empty() &&
        solver_filter.find(name) == std::string::npos) {
      continue;
    }
    const gpu::SolveOutcome out = gpu::run_solver<double>(kind, dev, batch);
    if (!out.supported) {
      std::fprintf(stderr, "profile: %s skipped at M=%zu N=%zu (%s)\n",
                   name.c_str(), m, n, out.detail.c_str());
      continue;
    }

    const auto roofs = obs::attribute_timeline(dev, out.timeline);
    for (const auto& [phase, attr] : roofs) {
      table.add_row({name, phase, bench::us(attr.time_us),
                     util::Table::num(attr.achieved_gbps, 1),
                     util::Table::num(attr.achieved_gflops, 1),
                     util::Table::num(attr.frac_bandwidth, 3),
                     util::Table::num(attr.frac_compute, 3), attr.bound});

      obs::JsonValue rec = attr.to_json();
      rec["solver"] = name;
      rec["m"] = m;
      rec["n"] = n;
      rec["phase"] = phase;
      telemetry.record_raw(std::move(rec));
    }

    obs::JsonValue extra = obs::JsonValue::object();
    extra["phase"] = "total";
    extra["launches"] = out.launches;
    extra["hist_launch_us"] = launch_hist_json(out.timeline);
    obs::JsonValue& roof = extra["roofline"] = obs::JsonValue::object();
    for (const auto& [phase, attr] : roofs) roof[phase] = attr.to_json();
    telemetry.record(dev, name, m, n, out.timeline, std::move(extra));
  }
  bench::emit(table, cli);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(
      argc, argv,
      util::with_obs_flags({"quick", "smoke", "m", "n", "solvers"}));
  const auto dev = gpusim::gtx480();
  bench::Telemetry telemetry(cli, "profile");

  std::vector<std::pair<std::size_t, std::size_t>> shapes;
  if (cli.has("m")) {
    shapes = {{static_cast<std::size_t>(cli.get_int("m", 1024)),
               static_cast<std::size_t>(cli.get_int("n", 512))}};
  } else if (cli.get_bool("smoke", false)) {
    shapes = {{64, 512}};
  } else if (cli.get_bool("quick", false)) {
    shapes = {{1024, 512}};
  } else {
    shapes = {{256, 512}, {4096, 512}, {16384, 512}};
  }
  for (const auto& [m, n] : shapes) panel(dev, m, n, cli, telemetry);
  return 0;
}
