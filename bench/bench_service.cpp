// Saturation curve for the solve service (ROADMAP item 1): sweep offered
// load through the async queue + batch coalescer and report p50/p99
// latency, batch occupancy, and the throughput of coalesced launches vs
// what the same requests would cost as per-request solo launches. The
// paper's Fig. 12 says simulated solve time is flat in M until the
// device saturates — so as load rises, occupancy rises, and the batched
// simulated time falls ever further below the solo sum. docs/SERVICE.md
// and EXPERIMENTS.md ("Reproducing BENCH_service.json") read this curve.
//
// --soak switches to the chaos soak harness instead: deterministic
// overload / fault-storm / breaker phases (under an injected
// rate-1.0 launch-fault plan, independent of the CLI fault flags)
// followed by live bursty traffic under whatever --fault-* plan the
// operator installed, asserting the service's robustness invariants —
// every submitted future resolves with a structured SolveCode, unfaulted
// results stay bitwise-identical to a direct run_solver, the bounded
// queue never exceeds its cap, and shedding / degradation / quarantine
// are observable in the metrics registry. Exit status is non-zero when
// any invariant fails, so CI can gate on it (label service-chaos).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/fault_injector.hpp"
#include "service/solve_service.hpp"
#include "workloads/traffic.hpp"

using namespace tridsolve;

namespace {

/// Parse a comma-separated list of positive rates ("2000,50000").
std::vector<double> parse_rates(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string tok = text.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(std::stod(tok));
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty rate list: " + text);
  return out;
}

gpu::SolverKind solver_from_token(const std::string& tok) {
  if (tok == "hybrid") return gpu::SolverKind::hybrid;
  if (tok == "hybrid-fused") return gpu::SolverKind::hybrid_fused;
  if (tok == "pthomas") return gpu::SolverKind::pthomas_only;
  if (tok == "zhang") return gpu::SolverKind::zhang;
  if (tok == "cr") return gpu::SolverKind::cr;
  if (tok == "davidson") return gpu::SolverKind::davidson;
  if (tok == "partition") return gpu::SolverKind::partition;
  throw std::invalid_argument(
      "unknown --solver: " + tok +
      " (expected hybrid, hybrid-fused, pthomas, zhang, cr, davidson or "
      "partition)");
}

/// Exact percentile of a sorted sample (nearest-rank).
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

// ---------------------------------------------------------------------------
// Chaos soak harness (--soak)

int g_soak_failures = 0;

void soak_check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what.c_str());
  if (!ok) ++g_soak_failures;
}

/// Every SolveCode the service may hand back is "structured": it has a
/// name in the taxonomy (never a stray integer or uninitialized enum).
bool structured(tridiag::SolveCode c) {
  const std::string name = tridiag::solve_code_name(c);
  return name != "?" && !name.empty();
}

/// Drain a staged (auto_start = false) service and collect every result.
/// shutdown() runs the batcher inline, so admission order — and with it
/// batch composition — is deterministic.
std::vector<service::SolveResult> drain(
    service::SolveService& svc,
    std::vector<std::future<service::SolveResult>>& futures) {
  svc.shutdown();
  std::vector<service::SolveResult> out;
  out.reserve(futures.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

struct SoakParams {
  std::size_t n = 64;
  gpu::SolverKind solver = gpu::SolverKind::hybrid;
  std::string solver_tok = "hybrid";
  std::uint64_t seed = 42;
  gpusim::DeviceSpec dev = gpusim::gtx480();
  // Live-phase knobs (CLI-driven).
  double window_us = 200.0;
  std::size_t max_batch = 4096;
  std::size_t shards = 8;
  std::size_t max_queue = 0;        ///< 0 → soak default (256)
  std::size_t max_queue_bytes = 0;
  service::ShedPolicy policy = service::ShedPolicy::reject_newest;
  int breaker_threshold = 0;        ///< 0 → soak default (4)
  double breaker_cooldown_us = 5000.0;
  double deadline_us = 0.0;         ///< per-request, from --deadline-us
  std::size_t requests = 200;
  double rate_rps = 50000.0;
  double burst = 4.0;
};

std::vector<tridiag::TridiagSystem<double>> make_population(
    std::size_t count, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<tridiag::TridiagSystem<double>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(workloads::make_request_system(
        workloads::Kind::random_dominant, n, rng));
  }
  return out;
}

/// Phase 0: with no faults and no pressure, the service is a pure
/// gather/scatter around run_solver — coalesced results must be
/// bitwise-identical to a direct solve of the twin batch.
void soak_phase_identity(const SoakParams& sp) {
  std::printf("phase 0: bitwise identity (no faults)\n");
  const std::size_t m = 3;
  const auto systems = make_population(m, sp.n, sp.seed);

  service::ServiceConfig scfg;
  scfg.auto_start = false;
  scfg.batch_window_us = 0.0;
  scfg.solver = sp.solver;
  scfg.device = sp.dev;
  service::SolveService svc(scfg);
  std::vector<std::future<service::SolveResult>> futures;
  for (const auto& sys : systems) {
    service::SolveRequest req;
    req.system = sys.clone();
    futures.push_back(svc.submit(std::move(req)));
  }
  const auto results = drain(svc, futures);

  tridiag::SystemBatch<double> twin(m, sp.n, service::coalesced_layout(m, sp.n));
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < sp.n; ++i) {
      const std::size_t at = twin.index(j, i);
      twin.a()[at] = systems[j].a()[i];
      twin.b()[at] = systems[j].b()[i];
      twin.c()[at] = systems[j].c()[i];
      twin.d()[at] = systems[j].d()[i];
    }
  }
  gpu::SolverRunOptions opts;
  opts.guard = true;
  tridiag::SystemBatch<double> expected;
  gpu::run_solver(sp.solver, sp.dev, twin, opts, &expected);
  bool identical = expected.num_systems() == m;
  if (identical) {
    for (std::size_t j = 0; j < m; ++j) {
      const auto x = expected.system(j).d;
      for (std::size_t i = 0; i < sp.n; ++i) {
        if (results[j].x[i] != x[i]) identical = false;
      }
    }
  }
  soak_check(identical, "coalesced batch bitwise-identical to direct run_solver");
  bool all_ok = true;
  for (const auto& r : results) all_ok &= r.code == tridiag::SolveCode::ok;
  soak_check(all_ok, "every unfaulted request returned ok");
}

/// Phase 1: hard overload against a depth bound — excess is shed with
/// SolveCode::overloaded and pristine inputs; the bound provably holds.
void soak_phase_overload(const SoakParams& sp) {
  std::printf("phase 1: overload shedding (bound 32, offered 64)\n");
  const std::size_t offered = 64, bound = 32;
  const auto systems = make_population(offered, sp.n, sp.seed + 1);

  service::ServiceConfig scfg;
  scfg.auto_start = false;  // staged: nothing drains until shutdown
  scfg.batch_window_us = 0.0;
  scfg.max_batch = 8;
  scfg.solver = sp.solver;
  scfg.device = sp.dev;
  scfg.admission.max_queue = bound;
  scfg.admission.policy = service::ShedPolicy::reject_newest;
  service::SolveService svc(scfg);

  std::vector<std::future<service::SolveResult>> futures;
  for (std::size_t i = 0; i < offered; ++i) {
    service::SolveRequest req;
    req.system = systems[i].clone();
    futures.push_back(svc.submit(std::move(req)));
  }
  const auto results = drain(svc, futures);

  std::size_t shed = 0, ok = 0;
  bool pristine = true, codes_fine = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    codes_fine &= structured(r.code);
    if (r.code == tridiag::SolveCode::overloaded) {
      ++shed;
      for (std::size_t k = 0; k < sp.n; ++k) {
        if (r.x[k] != systems[i].d()[k]) pristine = false;
      }
    } else if (r.code == tridiag::SolveCode::ok) {
      ++ok;
    }
  }
  soak_check(results.size() == offered, "every submitted future resolved");
  soak_check(shed == offered - bound && svc.requests_shed() == shed,
             "exactly " + std::to_string(offered - bound) +
                 " requests shed with overloaded (got " +
                 std::to_string(shed) + ")");
  soak_check(ok == bound, "every admitted request solved ok");
  soak_check(pristine, "shed requests carry their pristine rhs");
  soak_check(codes_fine, "only structured codes");
  soak_check(svc.peak_queue_depth() <= bound,
             "peak queue depth " + std::to_string(svc.peak_queue_depth()) +
                 " <= bound " + std::to_string(bound));
}

/// Phase 2a: total launch-fault storm, full fallback chain — the host
/// stages recover every rider; provenance shows the retries.
void soak_phase_storm_recovery(const SoakParams& sp) {
  std::printf("phase 2a: launch-fault storm, fallback chain recovers\n");
  gpusim::FaultPlan storm;
  storm.seed = sp.seed;
  storm.rate = 1.0;
  storm.kinds = gpusim::kFaultLaunchFail;
  gpusim::ScopedFaultPlan scoped(storm);

  const std::size_t m = 16;
  const auto systems = make_population(m, sp.n, sp.seed + 2);
  service::ServiceConfig scfg;
  scfg.auto_start = false;
  scfg.batch_window_us = 0.0;
  scfg.max_batch = m;
  scfg.solver = sp.solver;
  scfg.device = sp.dev;
  scfg.max_retries = 0;  // degrade straight down the chain
  service::SolveService svc(scfg);

  std::vector<std::future<service::SolveResult>> futures;
  for (const auto& sys : systems) {
    service::SolveRequest req;
    req.system = sys.clone();
    futures.push_back(svc.submit(std::move(req)));
  }
  const auto results = drain(svc, futures);

  bool all_ok = true, all_recovered = true, all_retried = true;
  for (const auto& r : results) {
    all_ok &= r.code == tridiag::SolveCode::ok;
    all_recovered &= r.recovered;
    all_retried &= r.attempts > 1;
  }
  soak_check(results.size() == m, "every submitted future resolved");
  soak_check(all_ok, "host fallback stages recovered every rider");
  soak_check(all_recovered, "results carry recovered = true provenance");
  soak_check(all_retried && svc.requests_retried() >= m,
             "every request shows > 1 attempt (service.requests.retried)");
}

/// Phase 2b: entry-only chain + consecutive failures — the breaker trips
/// open and degrades the rest of the drain to host-Thomas.
void soak_phase_breaker(const SoakParams& sp) {
  std::printf("phase 2b: breaker trips open, degrades to host-Thomas\n");
  gpusim::FaultPlan storm;
  storm.seed = sp.seed;
  storm.rate = 1.0;
  storm.kinds = gpusim::kFaultLaunchFail;
  gpusim::ScopedFaultPlan scoped(storm);

  const std::size_t m = 16;
  const auto systems = make_population(m, sp.n, sp.seed + 3);
  service::ServiceConfig scfg;
  scfg.auto_start = false;
  scfg.batch_window_us = 0.0;
  scfg.max_batch = 4;
  scfg.solver = gpu::SolverKind::pthomas_only;
  scfg.device = sp.dev;
  scfg.max_retries = 0;
  scfg.fallback_chain = {"pthomas"};  // entry-only: no recovery stages
  scfg.breaker.threshold = 2;
  scfg.breaker.cooldown_us = 60e6;  // stays open for the whole drain
  scfg.breaker.degrade = true;
  service::SolveService svc(scfg);

  std::vector<std::future<service::SolveResult>> futures;
  for (const auto& sys : systems) {
    service::SolveRequest req;
    req.system = sys.clone();
    futures.push_back(svc.submit(std::move(req)));
  }
  const auto results = drain(svc, futures);

  std::size_t degraded = 0;
  bool codes_fine = true;
  for (const auto& r : results) {
    codes_fine &= structured(r.code);
    if (r.degraded) ++degraded;
  }
  std::printf("  breaker: state=%s trips=%llu resets=%llu degraded=%zu\n",
              service::breaker_state_name(svc.breaker().state()),
              static_cast<unsigned long long>(svc.breaker().trips()),
              static_cast<unsigned long long>(svc.breaker().resets()),
              degraded);
  soak_check(results.size() == m, "every submitted future resolved");
  soak_check(svc.breaker().trips() >= 1, "breaker tripped at least once");
  soak_check(svc.breaker().state() == service::BreakerState::open,
             "breaker open after the storm");
  soak_check(degraded >= 1 && svc.requests_degraded() == degraded,
             "open breaker degraded requests to host-Thomas (" +
                 std::to_string(degraded) + ")");
  soak_check(codes_fine, "only structured codes");
}

/// Phase 2c: breaker disabled, entry-only chain — bisection walks the
/// poisoned batch down to solos and quarantines every offender.
void soak_phase_quarantine(const SoakParams& sp) {
  std::printf("phase 2c: bisection quarantines poisoned solos\n");
  gpusim::FaultPlan storm;
  storm.seed = sp.seed;
  storm.rate = 1.0;
  storm.kinds = gpusim::kFaultLaunchFail;
  gpusim::ScopedFaultPlan scoped(storm);

  const std::size_t m = 4;
  const auto systems = make_population(m, sp.n, sp.seed + 4);
  service::ServiceConfig scfg;
  scfg.auto_start = false;
  scfg.batch_window_us = 0.0;
  scfg.max_batch = m;
  scfg.solver = gpu::SolverKind::pthomas_only;
  scfg.device = sp.dev;
  scfg.max_retries = 0;
  scfg.fallback_chain = {"pthomas"};
  service::SolveService svc(scfg);

  std::vector<std::future<service::SolveResult>> futures;
  for (const auto& sys : systems) {
    service::SolveRequest req;
    req.system = sys.clone();
    futures.push_back(svc.submit(std::move(req)));
  }
  const auto results = drain(svc, futures);

  bool all_quarantined = true, pristine = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    all_quarantined &= r.code == tridiag::SolveCode::launch_failed;
    for (std::size_t k = 0; k < sp.n; ++k) {
      if (r.x[k] != systems[i].d()[k]) pristine = false;
    }
  }
  soak_check(results.size() == m, "every submitted future resolved");
  soak_check(all_quarantined && svc.requests_quarantined() == m,
             "all " + std::to_string(m) +
                 " poisoned solos quarantined launch_failed");
  soak_check(svc.batches_bisected() >= 1,
             "batch was bisected on the way down (" +
                 std::to_string(svc.batches_bisected()) + " bisections)");
  soak_check(pristine, "quarantined requests carry their pristine rhs");
}

/// Phase 3: live bursty traffic under the operator's --fault-* plan and
/// a bounded queue — invariants only (arrival timing is wall-clock).
void soak_phase_live(const SoakParams& sp, bench::Telemetry& telemetry) {
  const std::size_t bound = sp.max_queue > 0 ? sp.max_queue : 256;
  const int threshold = sp.breaker_threshold > 0 ? sp.breaker_threshold : 4;
  std::printf(
      "phase 3: live bursty traffic (%zu req @ %.0f rps burst %.1f, "
      "bound %zu, policy %s, breaker threshold %d)\n",
      sp.requests, sp.rate_rps, sp.burst, bound,
      service::shed_policy_name(sp.policy), threshold);

  const auto systems = make_population(sp.requests, sp.n, sp.seed + 5);
  workloads::TrafficConfig tcfg;
  tcfg.rate_rps = sp.rate_rps;
  tcfg.burst = sp.burst;
  tcfg.requests = sp.requests;
  tcfg.seed = sp.seed;
  const auto arrivals = workloads::arrival_times_us(tcfg);

  service::ServiceConfig scfg;
  scfg.batch_window_us = sp.window_us;
  scfg.max_batch = sp.max_batch;
  scfg.shards = sp.shards;
  scfg.solver = sp.solver;
  scfg.device = sp.dev;
  scfg.admission.max_queue = bound;
  scfg.admission.max_queue_bytes = sp.max_queue_bytes;
  scfg.admission.policy = sp.policy;
  scfg.breaker.threshold = threshold;
  scfg.breaker.cooldown_us = sp.breaker_cooldown_us;
  service::SolveService svc(scfg);

  std::vector<std::future<service::SolveResult>> futures;
  futures.reserve(sp.requests);
  const auto base = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < sp.requests; ++i) {
    std::this_thread::sleep_until(
        base + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::micro>(arrivals[i])));
    service::SolveRequest req;
    req.system = systems[i].clone();
    req.deadline_us = sp.deadline_us;
    req.priority = static_cast<int>(i % 3);
    futures.push_back(svc.submit(std::move(req)));
  }
  std::vector<service::SolveResult> results;
  results.reserve(sp.requests);
  for (auto& f : futures) results.push_back(f.get());
  svc.shutdown();

  std::map<std::string, std::size_t> by_code;
  bool codes_fine = true;
  for (const auto& r : results) {
    codes_fine &= structured(r.code);
    ++by_code[tridiag::solve_code_name(r.code)];
  }
  std::printf("  outcome mix:");
  for (const auto& [name, count] : by_code) {
    std::printf(" %s=%zu", name.c_str(), count);
  }
  std::printf("\n  breaker: state=%s trips=%llu resets=%llu\n",
              service::breaker_state_name(svc.breaker().state()),
              static_cast<unsigned long long>(svc.breaker().trips()),
              static_cast<unsigned long long>(svc.breaker().resets()));
  soak_check(results.size() == sp.requests, "every submitted future resolved");
  soak_check(codes_fine, "only structured codes under live faults");
  soak_check(svc.peak_queue_depth() <= bound,
             "peak queue depth " + std::to_string(svc.peak_queue_depth()) +
                 " <= bound " + std::to_string(bound));
  const std::uint64_t accounted =
      svc.requests_completed() + svc.requests_expired() + svc.requests_shed();
  soak_check(accounted == sp.requests,
             "completed + expired + shed == submitted (" +
                 std::to_string(accounted) + " of " +
                 std::to_string(sp.requests) + ")");

  obs::JsonValue rec = obs::JsonValue::object();
  rec["solver"] = sp.solver_tok;
  rec["m"] = sp.requests;
  rec["n"] = sp.n;
  rec["time_us"] = 0.0;
  rec["soak"] = true;
  rec["service_offered_rps"] = sp.rate_rps;
  rec["service_achieved_rps"] = sp.rate_rps;
  rec["service_requests"] = sp.requests;
  rec["service_expired"] = svc.requests_expired();
  rec["service_batches"] = svc.batches_launched();
  rec["service_occupancy_mean"] = 0.0;
  rec["service_occupancy_max"] = 0.0;
  rec["service_p50_us"] = 0.0;
  rec["service_p99_us"] = 0.0;
  rec["service_batched_sim_us"] = 0.0;
  rec["service_solo_sim_us"] = 0.0;
  rec["service_shed"] = svc.requests_shed();
  rec["service_degraded"] = svc.requests_degraded();
  rec["service_retried"] = svc.requests_retried();
  telemetry.record_raw(std::move(rec));
}

int run_soak(const SoakParams& sp, bench::Telemetry& telemetry) {
  std::printf("chaos soak: solver=%s n=%zu seed=%llu\n", sp.solver_tok.c_str(),
              sp.n, static_cast<unsigned long long>(sp.seed));
  soak_phase_identity(sp);
  soak_phase_overload(sp);
  soak_phase_storm_recovery(sp);
  soak_phase_breaker(sp);
  soak_phase_quarantine(sp);
  soak_phase_live(sp, telemetry);
  if (g_soak_failures == 0) {
    std::printf("chaos soak: all invariants held\n");
    return 0;
  }
  std::printf("chaos soak: %d invariant(s) FAILED\n", g_soak_failures);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(
      argc, argv,
      util::with_obs_flags({"arrival-rate", "requests", "burst",
                            "batch-window-us", "max-batch", "shards", "n",
                            "solver", "seed", "quick", "smoke", "soak",
                            "max-queue", "max-queue-bytes", "shed-policy",
                            "breaker-threshold", "breaker-cooldown-us"}));
  const auto dev = gpusim::gtx480();
  bench::Telemetry telemetry(cli, "service");

  std::vector<double> rates{2000, 10000, 50000, 250000};
  std::size_t requests =
      static_cast<std::size_t>(cli.get_int("requests", 600));
  std::size_t n = static_cast<std::size_t>(cli.get_int("n", 128));
  const bool soak = cli.get_bool("soak", false);
  if (cli.get_bool("quick", false)) {
    rates = {5000, 50000};
    requests = static_cast<std::size_t>(cli.get_int("requests", 200));
  }
  if (cli.get_bool("smoke", false) || soak) {
    rates = {20000};
    requests = static_cast<std::size_t>(cli.get_int("requests", 60));
    n = static_cast<std::size_t>(cli.get_int("n", 64));
  }
  if (const auto v = cli.get("arrival-rate")) rates = parse_rates(*v);

  const double burst = cli.get_double("burst", soak ? 4.0 : 1.0);
  const double window_us = cli.get_double("batch-window-us", 200.0);
  const std::size_t max_batch =
      static_cast<std::size_t>(cli.get_int("max-batch", 4096));
  const std::size_t shards =
      static_cast<std::size_t>(cli.get_int("shards", 8));
  const std::string solver_tok = cli.get_string("solver", "hybrid");
  const gpu::SolverKind solver = solver_from_token(solver_tok);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::size_t max_queue =
      static_cast<std::size_t>(cli.get_int("max-queue", 0));
  const std::size_t max_queue_bytes =
      static_cast<std::size_t>(cli.get_int("max-queue-bytes", 0));
  const service::ShedPolicy policy =
      service::parse_shed_policy(cli.get_string("shed-policy", "reject-newest"));
  const int breaker_threshold =
      static_cast<int>(cli.get_int("breaker-threshold", 0));
  const double breaker_cooldown_us =
      cli.get_double("breaker-cooldown-us", 5000.0);
  // Per-request deadline rides the engine's --deadline-us default, which
  // Telemetry already applied via configure_engine_from_cli.
  const double deadline_us =
      gpusim::ExecutionEngine::instance().default_deadline_us();

  if (soak) {
    SoakParams sp;
    sp.n = n;
    sp.solver = solver;
    sp.solver_tok = solver_tok;
    sp.seed = seed;
    sp.dev = dev;
    sp.window_us = window_us;
    sp.max_batch = max_batch;
    sp.shards = shards;
    sp.max_queue = max_queue;
    sp.max_queue_bytes = max_queue_bytes;
    sp.policy = policy;
    sp.breaker_threshold = breaker_threshold;
    sp.breaker_cooldown_us = breaker_cooldown_us;
    sp.deadline_us = deadline_us;
    sp.requests = requests;
    sp.rate_rps = rates.front();
    sp.burst = burst;
    return run_soak(sp, telemetry);
  }

  // One deterministic request population per run, shared across every
  // sweep point so the curve varies only in arrival pattern.
  util::Xoshiro256 rng(seed);
  std::vector<tridiag::TridiagSystem<double>> systems;
  systems.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    systems.push_back(workloads::make_request_system(
        workloads::Kind::random_dominant, n, rng));
  }

  // Solo baseline: the simulated cost of launching every request on its
  // own (the no-service world). Rate-independent, so computed once.
  gpu::SolverRunOptions solo_opts;
  solo_opts.guard = true;
  double solo_sim_us = 0.0;
  for (const auto& sys : systems) {
    tridiag::SystemBatch<double> one(1, n, service::coalesced_layout(1, n));
    for (std::size_t i = 0; i < n; ++i) {
      one.a()[i] = sys.a()[i];
      one.b()[i] = sys.b()[i];
      one.c()[i] = sys.c()[i];
      one.d()[i] = sys.d()[i];
    }
    solo_sim_us += gpu::run_solver(solver, dev, one, solo_opts).time_us;
  }

  util::Table table("Solve service saturation sweep (" + solver_tok +
                    ", N=" + std::to_string(n) +
                    ", window=" + util::Table::num(window_us, 0) + "us)");
  table.set_header({"rate[rps]", "achieved", "req", "batches", "occ.mean",
                    "occ.max", "p50[us]", "p99[us]", "shed", "degr",
                    "sim.batch[ms]", "sim.solo[ms]", "speedup"});

  for (const double rate : rates) {
    workloads::TrafficConfig tcfg;
    tcfg.rate_rps = rate;
    tcfg.burst = burst;
    tcfg.requests = requests;
    tcfg.seed = seed;
    const auto arrivals = workloads::arrival_times_us(tcfg);

    service::ServiceConfig scfg;
    scfg.batch_window_us = window_us;
    scfg.max_batch = max_batch;
    scfg.shards = shards;
    scfg.solver = solver;
    scfg.device = dev;
    scfg.admission.max_queue = max_queue;
    scfg.admission.max_queue_bytes = max_queue_bytes;
    scfg.admission.policy = policy;
    scfg.breaker.threshold = breaker_threshold;
    scfg.breaker.cooldown_us = breaker_cooldown_us;
    service::SolveService svc(scfg);

    std::vector<std::future<service::SolveResult>> futures;
    futures.reserve(requests);
    const auto base = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      std::this_thread::sleep_until(
          base + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::micro>(arrivals[i])));
      service::SolveRequest req;
      req.system = systems[i].clone();
      req.deadline_us = deadline_us;
      futures.push_back(svc.submit(std::move(req)));
    }
    std::vector<service::SolveResult> results;
    results.reserve(requests);
    for (auto& f : futures) results.push_back(f.get());
    const auto done = std::chrono::steady_clock::now();
    svc.shutdown();

    std::vector<double> latencies;
    latencies.reserve(results.size());
    std::map<std::uint64_t, std::pair<std::size_t, double>> batches;
    for (const auto& r : results) {
      latencies.push_back(r.latency_us);
      if (r.batch_id != 0) batches[r.batch_id] = {r.batch_size, r.solve_us};
    }
    std::sort(latencies.begin(), latencies.end());
    double batched_sim_us = 0.0;
    std::size_t occ_max = 0;
    for (const auto& [id, info] : batches) {
      batched_sim_us += info.second;
      occ_max = std::max(occ_max, info.first);
    }
    const double occ_mean =
        batches.empty() ? 0.0
                        : static_cast<double>(requests - svc.requests_expired()) /
                              static_cast<double>(batches.size());
    const double wall_s =
        std::chrono::duration<double>(done - base).count();
    const double achieved =
        wall_s > 0.0 ? static_cast<double>(requests) / wall_s : 0.0;
    const double p50 = percentile(latencies, 50.0);
    const double p99 = percentile(latencies, 99.0);
    const double speedup =
        batched_sim_us > 0.0 ? solo_sim_us / batched_sim_us : 0.0;

    table.add_row({util::Table::integer(static_cast<long long>(rate)),
                   util::Table::integer(static_cast<long long>(achieved)),
                   util::Table::integer(static_cast<long long>(requests)),
                   util::Table::integer(
                       static_cast<long long>(svc.batches_launched())),
                   util::Table::num(occ_mean, 1),
                   util::Table::integer(static_cast<long long>(occ_max)),
                   bench::us(p50), bench::us(p99),
                   util::Table::integer(
                       static_cast<long long>(svc.requests_shed())),
                   util::Table::integer(
                       static_cast<long long>(svc.requests_degraded())),
                   bench::ms(batched_sim_us),
                   bench::ms(solo_sim_us), bench::ratio(speedup)});

    obs::JsonValue rec = obs::JsonValue::object();
    rec["solver"] = solver_tok;
    rec["m"] = requests;
    rec["n"] = n;
    rec["time_us"] = batched_sim_us;
    rec["service_offered_rps"] = rate;
    rec["service_achieved_rps"] = achieved;
    rec["service_requests"] = requests;
    rec["service_expired"] = svc.requests_expired();
    rec["service_batches"] = svc.batches_launched();
    rec["service_occupancy_mean"] = occ_mean;
    rec["service_occupancy_max"] = occ_max;
    rec["service_p50_us"] = p50;
    rec["service_p99_us"] = p99;
    rec["service_batched_sim_us"] = batched_sim_us;
    rec["service_solo_sim_us"] = solo_sim_us;
    rec["service_shed"] = svc.requests_shed();
    rec["service_degraded"] = svc.requests_degraded();
    rec["service_retried"] = svc.requests_retried();
    telemetry.record_raw(std::move(rec));
  }
  bench::emit(table, cli);
  return 0;
}
