// Saturation curve for the solve service (ROADMAP item 1): sweep offered
// load through the async queue + batch coalescer and report p50/p99
// latency, batch occupancy, and the throughput of coalesced launches vs
// what the same requests would cost as per-request solo launches. The
// paper's Fig. 12 says simulated solve time is flat in M until the
// device saturates — so as load rises, occupancy rises, and the batched
// simulated time falls ever further below the solo sum. docs/SERVICE.md
// and EXPERIMENTS.md ("Reproducing BENCH_service.json") read this curve.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/solve_service.hpp"
#include "workloads/traffic.hpp"

using namespace tridsolve;

namespace {

/// Parse a comma-separated list of positive rates ("2000,50000").
std::vector<double> parse_rates(const std::string& text) {
  std::vector<double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string tok = text.substr(pos, comma - pos);
    if (!tok.empty()) out.push_back(std::stod(tok));
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("empty rate list: " + text);
  return out;
}

gpu::SolverKind solver_from_token(const std::string& tok) {
  if (tok == "hybrid") return gpu::SolverKind::hybrid;
  if (tok == "hybrid-fused") return gpu::SolverKind::hybrid_fused;
  if (tok == "pthomas") return gpu::SolverKind::pthomas_only;
  if (tok == "zhang") return gpu::SolverKind::zhang;
  if (tok == "cr") return gpu::SolverKind::cr;
  if (tok == "davidson") return gpu::SolverKind::davidson;
  if (tok == "partition") return gpu::SolverKind::partition;
  throw std::invalid_argument(
      "unknown --solver: " + tok +
      " (expected hybrid, hybrid-fused, pthomas, zhang, cr, davidson or "
      "partition)");
}

/// Exact percentile of a sorted sample (nearest-rank).
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(
      argc, argv,
      util::with_obs_flags({"arrival-rate", "requests", "burst",
                            "batch-window-us", "max-batch", "shards", "n",
                            "solver", "seed", "quick", "smoke"}));
  const auto dev = gpusim::gtx480();
  bench::Telemetry telemetry(cli, "service");

  std::vector<double> rates{2000, 10000, 50000, 250000};
  std::size_t requests =
      static_cast<std::size_t>(cli.get_int("requests", 600));
  std::size_t n = static_cast<std::size_t>(cli.get_int("n", 128));
  if (cli.get_bool("quick", false)) {
    rates = {5000, 50000};
    requests = static_cast<std::size_t>(cli.get_int("requests", 200));
  }
  if (cli.get_bool("smoke", false)) {
    rates = {20000};
    requests = static_cast<std::size_t>(cli.get_int("requests", 60));
    n = static_cast<std::size_t>(cli.get_int("n", 64));
  }
  if (const auto v = cli.get("arrival-rate")) rates = parse_rates(*v);

  const double burst = cli.get_double("burst", 1.0);
  const double window_us = cli.get_double("batch-window-us", 200.0);
  const std::size_t max_batch =
      static_cast<std::size_t>(cli.get_int("max-batch", 4096));
  const std::size_t shards =
      static_cast<std::size_t>(cli.get_int("shards", 8));
  const std::string solver_tok = cli.get_string("solver", "hybrid");
  const gpu::SolverKind solver = solver_from_token(solver_tok);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // One deterministic request population per run, shared across every
  // sweep point so the curve varies only in arrival pattern.
  util::Xoshiro256 rng(seed);
  std::vector<tridiag::TridiagSystem<double>> systems;
  systems.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    systems.push_back(workloads::make_request_system(
        workloads::Kind::random_dominant, n, rng));
  }

  // Solo baseline: the simulated cost of launching every request on its
  // own (the no-service world). Rate-independent, so computed once.
  gpu::SolverRunOptions solo_opts;
  solo_opts.guard = true;
  double solo_sim_us = 0.0;
  for (const auto& sys : systems) {
    tridiag::SystemBatch<double> one(1, n, service::coalesced_layout(1, n));
    for (std::size_t i = 0; i < n; ++i) {
      one.a()[i] = sys.a()[i];
      one.b()[i] = sys.b()[i];
      one.c()[i] = sys.c()[i];
      one.d()[i] = sys.d()[i];
    }
    solo_sim_us += gpu::run_solver(solver, dev, one, solo_opts).time_us;
  }

  util::Table table("Solve service saturation sweep (" + solver_tok +
                    ", N=" + std::to_string(n) +
                    ", window=" + util::Table::num(window_us, 0) + "us)");
  table.set_header({"rate[rps]", "achieved", "req", "batches", "occ.mean",
                    "occ.max", "p50[us]", "p99[us]", "sim.batch[ms]",
                    "sim.solo[ms]", "speedup"});

  for (const double rate : rates) {
    workloads::TrafficConfig tcfg;
    tcfg.rate_rps = rate;
    tcfg.burst = burst;
    tcfg.requests = requests;
    tcfg.seed = seed;
    const auto arrivals = workloads::arrival_times_us(tcfg);

    service::ServiceConfig scfg;
    scfg.batch_window_us = window_us;
    scfg.max_batch = max_batch;
    scfg.shards = shards;
    scfg.solver = solver;
    scfg.device = dev;
    service::SolveService svc(scfg);

    std::vector<std::future<service::SolveResult>> futures;
    futures.reserve(requests);
    const auto base = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < requests; ++i) {
      std::this_thread::sleep_until(
          base + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::micro>(arrivals[i])));
      service::SolveRequest req;
      req.system = systems[i].clone();
      futures.push_back(svc.submit(std::move(req)));
    }
    std::vector<service::SolveResult> results;
    results.reserve(requests);
    for (auto& f : futures) results.push_back(f.get());
    const auto done = std::chrono::steady_clock::now();
    svc.shutdown();

    std::vector<double> latencies;
    latencies.reserve(results.size());
    std::map<std::uint64_t, std::pair<std::size_t, double>> batches;
    for (const auto& r : results) {
      latencies.push_back(r.latency_us);
      if (r.batch_id != 0) batches[r.batch_id] = {r.batch_size, r.solve_us};
    }
    std::sort(latencies.begin(), latencies.end());
    double batched_sim_us = 0.0;
    std::size_t occ_max = 0;
    for (const auto& [id, info] : batches) {
      batched_sim_us += info.second;
      occ_max = std::max(occ_max, info.first);
    }
    const double occ_mean =
        batches.empty() ? 0.0
                        : static_cast<double>(requests - svc.requests_expired()) /
                              static_cast<double>(batches.size());
    const double wall_s =
        std::chrono::duration<double>(done - base).count();
    const double achieved =
        wall_s > 0.0 ? static_cast<double>(requests) / wall_s : 0.0;
    const double p50 = percentile(latencies, 50.0);
    const double p99 = percentile(latencies, 99.0);
    const double speedup =
        batched_sim_us > 0.0 ? solo_sim_us / batched_sim_us : 0.0;

    table.add_row({util::Table::integer(static_cast<long long>(rate)),
                   util::Table::integer(static_cast<long long>(achieved)),
                   util::Table::integer(static_cast<long long>(requests)),
                   util::Table::integer(
                       static_cast<long long>(svc.batches_launched())),
                   util::Table::num(occ_mean, 1),
                   util::Table::integer(static_cast<long long>(occ_max)),
                   bench::us(p50), bench::us(p99), bench::ms(batched_sim_us),
                   bench::ms(solo_sim_us), bench::ratio(speedup)});

    obs::JsonValue rec = obs::JsonValue::object();
    rec["solver"] = solver_tok;
    rec["m"] = requests;
    rec["n"] = n;
    rec["time_us"] = batched_sim_us;
    rec["service_offered_rps"] = rate;
    rec["service_achieved_rps"] = achieved;
    rec["service_requests"] = requests;
    rec["service_expired"] = svc.requests_expired();
    rec["service_batches"] = svc.batches_launched();
    rec["service_occupancy_mean"] = occ_mean;
    rec["service_occupancy_max"] = occ_max;
    rec["service_p50_us"] = p50;
    rec["service_p99_us"] = p99;
    rec["service_batched_sim_us"] = batched_sim_us;
    rec["service_solo_sim_us"] = solo_sim_us;
    telemetry.record_raw(std::move(rec));
  }
  bench::emit(table, cli);
  return 0;
}
