// Ablation (Fig. 11): tiled-PCR window-to-block mapping variants.
//  (a) one block per system           — the default for many systems
//  (b) a block group per system       — fills the device when M is small,
//                                       at the price of halo re-loads
//  (c) several systems per block      — multiplexed windows hide latency

#include <cstdio>

#include "bench_common.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"quick"}));
  const auto dev = gpusim::gtx480();
  const bool quick = cli.get_bool("quick", false);
  bench::Telemetry telemetry(cli, "ablation_variants");

  util::Table table("Fig.11 window variants (double, k per Table III)");
  table.set_header({"M", "N", "k", "(a) 1 blk/sys [us]", "(b) split [us]",
                    "(b) redundant loads", "(c) multi/blk [us]", "best"});

  struct Cfg {
    std::size_t m, n;
  };
  std::vector<Cfg> cfgs{{1, 1 << 20}, {4, 1 << 18}, {16, 1 << 16},
                        {64, 1 << 14}, {256, 1 << 12}};
  if (quick) cfgs = {{2, 1 << 16}, {64, 1 << 12}};

  for (const auto cfg : cfgs) {
    auto run = [&](gpu::WindowVariant v) {
      gpu::HybridOptions opts;
      opts.variant = v;
      return bench::run_ours<double>(dev, cfg.m, cfg.n, opts);
    };
    const auto ra = run(gpu::WindowVariant::one_block_per_system);
    const auto rb = run(gpu::WindowVariant::split_system);
    const auto rc = run(gpu::WindowVariant::multi_system_per_block);
    telemetry.record_hybrid(dev, cfg.m, cfg.n, ra, "hybrid/one_block");
    telemetry.record_hybrid(dev, cfg.m, cfg.n, rb, "hybrid/split");
    telemetry.record_hybrid(dev, cfg.m, cfg.n, rc, "hybrid/multi");

    const double ta = ra.total_us(), tb = rb.total_us(), tc = rc.total_us();
    const char* best = ta <= tb && ta <= tc ? "a" : (tb <= tc ? "b" : "c");
    table.add_row({util::Table::integer(static_cast<long long>(cfg.m)),
                   util::Table::integer(static_cast<long long>(cfg.n)),
                   std::to_string(ra.k), bench::us(ta), bench::us(tb),
                   std::to_string(rb.redundant_loads), bench::us(tc), best});
  }
  bench::emit(table, cli);
  std::puts("expected: (b) wins for very small M (device would otherwise idle,\n"
            "despite its halo re-loads); (a)/(c) win once M provides enough blocks.");
  return 0;
}
