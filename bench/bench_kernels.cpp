// google-benchmark microbenchmarks of the *real* host kernels (these
// measure actual CPU wall time of the numerical routines, unlike the
// figure benches whose GPU timings come from the simulator).

#include <benchmark/benchmark.h>

#include "cpu_baselines/mkl_like.hpp"
#include "tridiag/cyclic_reduction.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/partition.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/periodic.hpp"
#include "tridiag/recursive_doubling.hpp"
#include "tridiag/residual.hpp"
#include "tridiag/thomas.hpp"
#include "tridiag/thomas_plan.hpp"
#include "tridiag/tiled_pcr.hpp"
#include "util/aligned_buffer.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
using tridsolve::util::AlignedBuffer;
using tridsolve::util::Xoshiro256;

namespace {

td::TridiagSystem<double> make_system(std::size_t n) {
  Xoshiro256 rng(n);
  td::TridiagSystem<double> s(n);
  wl::fill_matrix(wl::Kind::random_dominant, s.ref(), rng);
  wl::fill_rhs_random(s.ref(), rng);
  return s;
}

void BM_Thomas(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto s = make_system(n);
  AlignedBuffer<double> x(n), scratch(n);
  for (auto _ : state) {
    auto copy = s.clone();
    benchmark::DoNotOptimize(td::thomas_solve(
        copy.ref(), td::StridedView<double>(x.span()), scratch.span()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_Thomas)->Arg(512)->Arg(4096)->Arg(65536);

void BM_LuGtsv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto s = make_system(n);
  AlignedBuffer<double> x(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        td::lu_gtsv(s.ref(), td::StridedView<double>(x.span())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_LuGtsv)->Arg(512)->Arg(4096)->Arg(65536);

void BM_PcrReduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  auto s = make_system(n);
  for (auto _ : state) {
    auto copy = s.clone();
    benchmark::DoNotOptimize(td::pcr_reduce(copy.ref(), k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n * k));
}
BENCHMARK(BM_PcrReduce)->Args({4096, 4})->Args({4096, 8})->Args({65536, 6});

void BM_TiledPcrReduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  auto s = make_system(n);
  for (auto _ : state) {
    auto copy = s.clone();
    benchmark::DoNotOptimize(td::tiled_pcr_reduce(copy.ref(), k));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n * k));
}
BENCHMARK(BM_TiledPcrReduce)->Args({4096, 4})->Args({4096, 8})->Args({65536, 6});

void BM_CrSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto s = make_system(n);
  AlignedBuffer<double> x(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        td::cr_solve(s.ref(), td::StridedView<double>(x.span())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_CrSolve)->Arg(4096)->Arg(65536);

void BM_RdSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto s = make_system(n);
  AlignedBuffer<double> x(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        td::rd_solve(s.ref(), td::StridedView<double>(x.span())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_RdSolve)->Arg(4096)->Arg(16384);

void BM_ThomasPlanFactor(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto s = make_system(n);
  for (auto _ : state) {
    td::ThomasPlan<double> plan(td::as_const(s.ref()));
    benchmark::DoNotOptimize(plan.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ThomasPlanFactor)->Arg(4096)->Arg(65536);

void BM_ThomasPlanSolve(benchmark::State& state) {
  // The division-free repeated-solve path: compare against BM_Thomas to
  // see what factoring once buys per time step.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto s = make_system(n);
  const td::ThomasPlan<double> plan(td::as_const(s.ref()));
  AlignedBuffer<double> x(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.solve(
        td::as_const(s.ref()).d, td::StridedView<double>(x.span())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ThomasPlanSolve)->Arg(4096)->Arg(65536);

void BM_PeriodicSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto s = make_system(n);
  AlignedBuffer<double> x(n);
  for (auto _ : state) {
    auto copy = s.clone();
    benchmark::DoNotOptimize(td::periodic_solve(
        copy.ref(), 0.1, -0.1, td::StridedView<double>(x.span())));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_PeriodicSolve)->Arg(4096)->Arg(65536);

void BM_PartitionSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto p = static_cast<std::size_t>(state.range(1));
  auto s = make_system(n);
  AlignedBuffer<double> x(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(td::partition_solve(
        s.ref(), td::StridedView<double>(x.span()), p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_PartitionSolve)->Args({4096, 8})->Args({65536, 32});

void BM_CpuBatchSolve(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, m, n,
                                      td::Layout::contiguous, 3);
  for (auto _ : state) {
    auto copy = batch.clone();
    benchmark::DoNotOptimize(tridsolve::cpu::solve_batch(copy));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * m * n));
}
BENCHMARK(BM_CpuBatchSolve)->Args({64, 512})->Args({512, 512});

}  // namespace

BENCHMARK_MAIN();
