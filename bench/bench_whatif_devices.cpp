// What-if study (§III.A: "the ability to keep the number of PCR steps
// under control expands the portability of our method to virtually all
// GPUs"): run the same workloads on different device models — the GTX480,
// the older GTX280 (30 small SMs, 16 KB shared), and a hypothetical
// double-bandwidth Fermi — and show the hybrid adapting: the cost-model
// transition point shifts with machine parallelism, and in-shared
// baselines lose applicability on the smaller-shared-memory part.

#include <cstdio>

#include "bench_common.hpp"
#include "gpu_solvers/registry.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"quick"}));
  const bool quick = cli.get_bool("quick", false);

  auto fat_fermi = gpusim::gtx480();
  fat_fermi.name = "GTX480-2xBW";
  fat_fermi.mem_bandwidth_gbps *= 2.0;

  const std::vector<gpusim::DeviceSpec> devices{gpusim::gtx480(),
                                                gpusim::gtx280(), fat_fermi};

  struct Cfg {
    std::size_t m, n;
  };
  std::vector<Cfg> cfgs{{4096, 512}, {64, 8192}, {1, 1 << 19}};
  if (quick) cfgs = {{1024, 512}, {16, 8192}};

  for (const auto cfg : cfgs) {
    util::Table table("M=" + std::to_string(cfg.m) +
                      " N=" + std::to_string(cfg.n) +
                      " (double) across devices, time [us]");
    table.set_header({"device", "hybrid", "detail", "model k", "Zhang",
                      "Davidson"});
    for (const auto& dev : devices) {
      const auto batch = workloads::make_batch<double>(
          workloads::Kind::random_dominant, cfg.m, cfg.n,
          bench::preferred_layout(cfg.m, cfg.n), 42);
      const auto hybrid = gpu::run_solver(gpu::SolverKind::hybrid, dev, batch);
      const auto zhang = gpu::run_solver(gpu::SolverKind::zhang, dev, batch);
      const auto dav = gpu::run_solver(gpu::SolverKind::davidson, dev, batch);
      table.add_row(
          {dev.name, bench::us(hybrid.time_us), hybrid.detail,
           std::to_string(gpu::model_best_k(cfg.m, cfg.n, dev)),
           zhang.supported ? bench::us(zhang.time_us) : "n/a: " + zhang.detail,
           dav.supported ? bench::us(dav.time_us) : "n/a: " + dav.detail});
    }
    bench::emit(table, cli);
  }
  std::puts("expected: the GTX280 (16KB shared) rejects in-shared baselines\n"
            "earlier; the hybrid runs everywhere, and its cost-model k shifts\n"
            "with the machine's parallelism.");
  return 0;
}
