// Ablation (related work [10], Göddeke & Strzodka): shared-memory bank
// conflicts in the in-shared CR kernel, with and without index padding.
// The naive layout's stride-2^L accesses serialize up to bank-width-fold;
// padding removes nearly all of it. Conflicts are *measured* by the
// simulator's bank tracker, and their time impact is shown alongside.
// The hybrid's tiled PCR needs no such treatment: its window accesses are
// unit-stride by construction.

#include <cstdio>

#include "bench_common.hpp"
#include "gpu_solvers/cr_kernel.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"m"}));
  const auto dev = gpusim::gtx480();
  const std::size_t m = static_cast<std::size_t>(cli.get_int("m", 256));

  util::Table table("CR kernel bank conflicts: naive vs padded layout (M=" +
                    std::to_string(m) + ", double)");
  table.set_header({"N", "naive serializations", "padded serializations",
                    "reduction", "naive[us]", "padded[us]", "speedup"});

  for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
    auto naive_batch = workloads::make_batch<double>(
        workloads::Kind::random_dominant, m, n, tridiag::Layout::contiguous, n);
    auto padded_batch = naive_batch.clone();

    gpu::CrKernelOptions naive_opts;
    gpu::CrKernelOptions padded_opts;
    padded_opts.pad_shared = true;
    const auto naive = gpu::cr_kernel_solve<double>(dev, naive_batch, naive_opts);
    const auto padded = gpu::cr_kernel_solve<double>(dev, padded_batch, padded_opts);

    const auto ns = naive.costs.shared_serializations;
    const auto ps = padded.costs.shared_serializations;
    table.add_row(
        {util::Table::integer(static_cast<long long>(n)),
         std::to_string(ns), std::to_string(ps),
         ps == 0 ? "all" : util::Table::num(double(ns) / double(ps), 1) + "x",
         bench::us(naive.timing.time_us), bench::us(padded.timing.time_us),
         util::Table::num(naive.timing.time_us / padded.timing.time_us, 2) + "x"});
  }
  bench::emit(table, cli);
  return 0;
}
