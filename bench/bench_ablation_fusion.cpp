// Ablation (§III.C): kernel fusion of tiled PCR + p-Thomas forward.
// Fusion removes one kernel launch and the reduced system's store/reload
// round trip, but binds the p-Thomas work to the PCR kernel's
// shared-memory occupancy — so it "should be carefully used when a large
// number of parallel workload is envisioned".

#include <cstdio>

#include "bench_common.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"quick"}));
  const auto dev = gpusim::gtx480();
  const bool quick = cli.get_bool("quick", false);
  bench::Telemetry telemetry(cli, "ablation_fusion");

  util::Table table("Kernel fusion ablation (double, k per Table III)");
  table.set_header({"M", "N", "k", "unfused[us]", "fused[us]", "fused/unfused",
                    "unfused bytes", "fused bytes", "launches u/f"});

  struct Cfg {
    std::size_t m, n;
  };
  std::vector<Cfg> cfgs{{4, 65536}, {16, 32768}, {64, 8192},
                        {256, 4096}, {512, 2048}};
  if (quick) cfgs = {{16, 16384}, {256, 2048}};

  for (const auto cfg : cfgs) {
    gpu::HybridOptions plain;
    plain.variant = gpu::WindowVariant::one_block_per_system;
    const auto rp = bench::run_ours<double>(dev, cfg.m, cfg.n, plain);

    gpu::HybridOptions fused = plain;
    fused.fuse = true;
    const auto rf = bench::run_ours<double>(dev, cfg.m, cfg.n, fused);
    telemetry.record_hybrid(dev, cfg.m, cfg.n, rp, "hybrid");
    telemetry.record_hybrid(dev, cfg.m, cfg.n, rf, "hybrid_fused");

    auto bytes = [](const gpu::HybridReport& r) {
      std::size_t total = 0;
      for (const auto& seg : r.timeline.segments()) {
        total += seg.stats.costs.bytes_requested;
      }
      return total;
    };
    table.add_row({util::Table::integer(static_cast<long long>(cfg.m)),
                   util::Table::integer(static_cast<long long>(cfg.n)),
                   std::to_string(rp.k), bench::us(rp.total_us()),
                   bench::us(rf.total_us()),
                   util::Table::num(rf.total_us() / rp.total_us(), 2),
                   std::to_string(bytes(rp)), std::to_string(bytes(rf)),
                   std::to_string(rp.timeline.segments().size()) + "/" +
                       std::to_string(rf.timeline.segments().size())});
  }
  bench::emit(table, cli);
  return 0;
}
