// Ablation: the hybrid against the other GPU solver families the paper
// surveys — in-shared CR [3][10], in-shared PCR-Thomas (Zhang [16][17]),
// Davidson-style stepped hybrid [19] — on small systems where all apply,
// plus the large-system regime where only ours and Davidson survive
// (the shared-memory capacity critique of §I).

#include <cstdio>

#include "bench_common.hpp"
#include "gpu_solvers/cr_kernel.hpp"
#include "gpu_solvers/davidson.hpp"
#include "gpu_solvers/partition_kernel.hpp"
#include "gpu_solvers/zhang_pcr_thomas.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"quick"}));
  const auto dev = gpusim::gtx480();
  const bool quick = cli.get_bool("quick", false);
  bench::Telemetry telemetry(cli, "ablation_solvers");

  util::Table table("GPU solver families, execution time [us] (double)");
  table.set_header({"M", "N", "Ours", "Zhang in-shared", "CR in-shared",
                    "Davidson", "Partition[18]", "notes"});

  struct Cfg {
    std::size_t m, n;
  };
  std::vector<Cfg> cfgs{{512, 256}, {1024, 512}, {4096, 1024},
                        {256, 4096}, {16, 65536}};
  if (quick) cfgs = {{512, 256}, {16, 16384}};

  for (const auto cfg : cfgs) {
    const auto ours = bench::run_ours<double>(dev, cfg.m, cfg.n);
    telemetry.record_hybrid(dev, cfg.m, cfg.n, ours);

    auto fresh = [&] {
      return workloads::make_batch<double>(workloads::Kind::random_dominant,
                                           cfg.m, cfg.n,
                                           tridiag::Layout::contiguous, 42);
    };
    std::string zhang = "n/a (exceeds shared)";
    if (gpu::zhang_fits(dev, cfg.n, sizeof(double))) {
      auto b = fresh();
      zhang = bench::us(gpu::zhang_solve<double>(dev, b).timing.time_us);
    }
    std::string cr = "n/a (exceeds shared)";
    if (gpu::zhang_fits(dev, std::bit_ceil(cfg.n), sizeof(double))) {
      auto b = fresh();
      cr = bench::us(gpu::cr_kernel_solve<double>(dev, b).timing.time_us);
    }
    auto b = fresh();
    const auto dav = gpu::davidson_solve<double>(dev, b);
    auto b2 = fresh();
    const auto part = gpu::partition_solve_gpu<double>(dev, b2, {});

    table.add_row({util::Table::integer(static_cast<long long>(cfg.m)),
                   util::Table::integer(static_cast<long long>(cfg.n)),
                   bench::us(ours.total_us()), zhang, cr,
                   bench::us(dav.total_us()), bench::us(part.total_us()),
                   cfg.n > gpu::zhang_max_rows(dev, sizeof(double))
                       ? "large system: in-shared methods inapplicable"
                       : ""});
  }
  bench::emit(table, cli);
  return 0;
}
