// Figure 13 reproduction: execution time vs system size N for fixed
// numbers of systems M = 2048, 256, 16, 1 (double precision), plus the
// §IV text's tiled-PCR share of the runtime.
//
// Paper's headlines from this figure: up to 5x / 30x over multithreaded /
// sequential MKL at M = 2048; ~5.5x even for a single very large system;
// tiled PCR contributes 6.25% / 36.2% / ~55% of the runtime for
// M = 256 / 16 / 1.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace tridsolve;

namespace {

void panel(const gpusim::DeviceSpec& dev, const cpu::CpuModel& cpu_model,
           std::size_t m, const std::vector<std::size_t>& sizes,
           bool include_mt, const util::Cli& cli,
           bench::Telemetry& telemetry) {
  util::Table table("Fig.13 M=" + std::to_string(m) +
                    " (double), execution time [ms] vs N");
  std::vector<std::string> header{"N", "MKL(seq)"};
  if (include_mt) header.push_back("MKL(8thr)");
  header.insert(header.end(),
                {"Ours(sim)", "k", "pcr_share", "speedup_seq"});
  table.set_header(header);

  for (std::size_t n : sizes) {
    const double seq = cpu_model.sequential_us(m, n, /*fp64=*/true);
    const double mt = cpu_model.multithreaded_us(m, n, true);
    const auto ours = bench::run_ours<double>(dev, m, n);
    std::vector<std::string> row{util::Table::integer(static_cast<long long>(n)),
                                 bench::ms(seq)};
    if (include_mt) row.push_back(bench::ms(mt));
    row.insert(row.end(),
               {bench::ms(ours.total_us()), std::to_string(ours.k),
                util::Table::num(100.0 * ours.pcr_fraction(), 1) + "%",
                bench::ratio(seq / ours.total_us())});
    table.add_row(std::move(row));
    obs::JsonValue extra = obs::JsonValue::object();
    extra["mkl_seq_us"] = seq;
    extra["mkl_mt_us"] = mt;
    telemetry.record_hybrid(dev, m, n, ours, "hybrid", std::move(extra));
  }
  bench::emit(table, cli);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"quick"}));
  const auto dev = gpusim::gtx480();
  const cpu::CpuModel cpu_model;
  const bool quick = cli.get_bool("quick", false);
  bench::Telemetry telemetry(cli, "fig13");

  // Panel (a): M = 2048, N = 256..8K.
  panel(dev, cpu_model, 2048,
        quick ? std::vector<std::size_t>{256, 1024, 4096}
              : std::vector<std::size_t>{256, 512, 1024, 2048, 4096, 8192},
        /*include_mt=*/true, cli, telemetry);
  // Panel (b): M = 256, N = 4K..32K.
  panel(dev, cpu_model, 256,
        quick ? std::vector<std::size_t>{4096, 16384}
              : std::vector<std::size_t>{4096, 8192, 16384, 32768},
        true, cli, telemetry);
  // Panel (c): M = 16, N = 16K..128K.
  panel(dev, cpu_model, 16,
        quick ? std::vector<std::size_t>{16384, 65536}
              : std::vector<std::size_t>{16384, 32768, 65536, 131072},
        true, cli, telemetry);
  // Panel (d): M = 1, N = 0.5M..8M (no MT series: gtsv is not threaded).
  panel(dev, cpu_model, 1,
        quick ? std::vector<std::size_t>{std::size_t{1} << 19}
              : std::vector<std::size_t>{std::size_t{1} << 19,
                                         std::size_t{1} << 21,
                                         std::size_t{1} << 23},
        false, cli, telemetry);
  std::puts("(paper §IV: pcr_share ~55% at M=1; 36.2% at M=16; 6.25% at "
            "M=256 — see EXPERIMENTS.md for the simulator's deviation at "
            "mid-M)");
  return 0;
}
