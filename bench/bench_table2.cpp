// Table II reproduction: elimination-step cost of Thomas, PCR and the
// k-step hybrid as functions of M (systems), n (log2 system size) and P
// (machine parallelism) — printed from the analytic formulas and
// cross-checked against eliminations *measured* in instrumented runs.

#include <cstdio>

#include "bench_common.hpp"
#include "gpu_solvers/tiled_pcr_kernel.hpp"
#include "gpu_solvers/transition.hpp"
#include "tridiag/thomas.hpp"
#include "tridiag/tiled_pcr.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"quick"}));
  const auto dev = gpusim::gtx480();
  const double p = gpu::machine_parallelism(dev);
  const bool quick = cli.get_bool("quick", false);
  bench::Telemetry telemetry(cli, "table2");

  {
    util::Table table("Table II: computation cost [elimination steps] with P=" +
                      std::to_string(static_cast<long long>(p)));
    table.set_header({"M", "n(2^n rows)", "regime", "Thomas", "PCR",
                      "hybrid k=4", "hybrid k=6", "hybrid k=8"});
    const unsigned n = 14;  // 16384-row systems
    for (std::size_t m : {std::size_t{1}, std::size_t{16}, std::size_t{256},
                          std::size_t{4096}, std::size_t{65536}}) {
      table.add_row(
          {util::Table::integer(static_cast<long long>(m)), std::to_string(n),
           static_cast<double>(m) > p ? "M>P" : "M<=P",
           util::Table::num(gpu::cost_thomas(m, n, p), 0),
           util::Table::num(gpu::cost_pcr(m, n, p), 0),
           util::Table::num(gpu::cost_hybrid(m, n, p, 4), 0),
           util::Table::num(gpu::cost_hybrid(m, n, p, 6), 0),
           util::Table::num(gpu::cost_hybrid(m, n, p, 8), 0)});
    }
    bench::emit(table, cli);
  }

  {
    // Measured totals: the instrumented kernels' elimination counters must
    // match the formulas' work terms (k*2^n for PCR; 2*rows-1 per reduced
    // system for Thomas).
    util::Table table("Table II cross-check: measured elimination counts");
    table.set_header({"M", "N", "k", "PCR elims measured", "PCR elims k*M*N",
                      "match"});
    for (unsigned k : {2u, 4u, 6u}) {
      const std::size_t m = 8, n = quick ? 1024 : 4096;
      auto batch = workloads::make_batch<double>(
          workloads::Kind::random_dominant, m, n, tridiag::Layout::contiguous, k);
      std::vector<gpu::TiledPcrWork<double>> work;
      for (std::size_t s = 0; s < m; ++s) {
        work.push_back({batch.system(s), batch.system(s), 0, n});
      }
      gpu::TiledPcrConfig cfg;
      cfg.k = k;
      const auto stats = gpu::tiled_pcr_kernel<double>(dev, work, cfg);
      const std::size_t expected = k * m * n;
      table.add_row({std::to_string(m), std::to_string(n), std::to_string(k),
                     std::to_string(stats.eliminations), std::to_string(expected),
                     stats.eliminations == expected ? "yes" : "NO"});

      // One telemetry record + trace track per cross-checked configuration:
      // the same shape through the full instrumented hybrid at forced k.
      if (telemetry.enabled()) {
        gpu::HybridOptions opts;
        opts.force_k = static_cast<int>(k);
        const auto report = bench::run_ours<double>(dev, m, n, opts);
        telemetry.record_hybrid(dev, m, n, report);
      }
    }
    bench::emit(table, cli);
  }

  std::printf("Thomas steps for one 512-row system: %zu (formula 2n-1)\n",
              tridiag::thomas_elimination_steps(512));
  return 0;
}
