// Ablation (§III.A, Fig. 7-8, Eqs. 8-9): dependency caching vs naive halo
// tiling. Measures the redundant loads f(k) and redundant eliminations
// g(k) per tile boundary that the buffered sliding window eliminates.

#include <cstdio>

#include "bench_common.hpp"
#include "tridiag/pcr.hpp"
#include "tridiag/tiled_pcr.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"n", "tile"}));
  const std::size_t n = static_cast<std::size_t>(cli.get_int("n", 65536));
  const std::size_t tile = static_cast<std::size_t>(cli.get_int("tile", 256));
  const std::size_t boundaries = n / tile - 1;

  util::Table table("Naive halo tiling vs dependency caching (n=" +
                    std::to_string(n) + ", tile=" + std::to_string(tile) + ")");
  table.set_header({"k", "f(k)", "g(k)", "naive redundant loads",
                    "= 2*f(k)*bnds", "naive redundant elims", "= 2*g(k)*bnds",
                    "cached redundant loads", "cached redundant elims",
                    "cached live rows (2f(k)+k)"});

  for (unsigned k = 1; k <= 8; ++k) {
    auto naive = workloads::make_batch<double>(workloads::Kind::random_dominant,
                                               1, n, tridiag::Layout::contiguous,
                                               k);
    auto cached = naive.clone();
    const auto nc = tridiag::naive_tiled_pcr_reduce(naive.system(0), k, tile);
    const auto cc = tridiag::tiled_pcr_reduce(cached.system(0), k);

    table.add_row({std::to_string(k),
                   std::to_string(tridiag::pcr_halo(k)),
                   std::to_string(tridiag::pcr_redundant_elims(k)),
                   std::to_string(nc.redundant_loads(n)),
                   std::to_string(2 * tridiag::pcr_halo(k) * boundaries),
                   std::to_string(nc.redundant_elims(n, k)),
                   std::to_string(2 * tridiag::pcr_redundant_elims(k) * boundaries),
                   std::to_string(cc.redundant_loads(n)),
                   std::to_string(cc.redundant_elims(n, k)),
                   std::to_string(cc.cache_rows_peak)});
  }
  bench::emit(table, cli);
  std::puts("Eq. 8: f(k) = 2^k - 1 redundant loads per boundary side;\n"
            "Eq. 9: g(k) = k*2^k - 2^{k+1} + 2 redundant eliminations.\n"
            "Both grow exponentially in k; the sliding window's totals are 0.");
  return 0;
}
