// Simulator throughput bench: how many simulated blocks per second the
// execution engine retires on the Fig. 12 hybrid workload (N = 512,
// double precision), across its fast-path mechanisms:
//
//   exact-serial    1 sim thread, every block instrumented — the
//                   historical gpusim::launch behavior, the baseline
//   exact-parallel  all sim threads, every block instrumented
//   sampled         all sim threads, first/last/stride blocks instrumented
//   functional      all sim threads, no instrumentation (and, by design,
//                   no timing — recorded without simulated times)
//
// Every mode reports identical simulated numbers (ctest pins this:
// tests/test_sim_engine.cpp); this bench reports how much cheaper they
// are to produce. Results land in BENCH_sim_throughput.json via --json.

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gpu_solvers/hybrid_solver.hpp"
#include "gpusim/exec_engine.hpp"

using namespace tridsolve;

namespace {

struct ModeSpec {
  const char* name;
  bool serial;  ///< 1 sim thread instead of the configured pool
  gpusim::InstrumentMode mode;
};

constexpr ModeSpec kModes[] = {
    {"exact-serial", true, gpusim::InstrumentMode::exact},
    {"exact-parallel", false, gpusim::InstrumentMode::exact},
    {"sampled", false, gpusim::InstrumentMode::sampled},
    {"functional", false, gpusim::InstrumentMode::functional_only},
};

[[nodiscard]] bool parse_on_off(const util::Cli& cli, const char* flag,
                                bool fallback) {
  const std::string v = cli.get_string(flag, fallback ? "on" : "off");
  if (v == "on" || v == "true" || v == "1" || v == "yes") return true;
  if (v == "off" || v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument(std::string("--") + flag + " expects on|off, got '" +
                              v + "'");
}

void panel(const gpusim::DeviceSpec& dev, std::size_t m, std::size_t n,
           const util::Cli& cli, bench::Telemetry& telemetry) {
  // exact-parallel must actually exercise the pool: on a box whose default
  // thread count is 1 (or when --sim-threads 1 is set), bump it to 2 so the
  // parallel rows measure pooled execution rather than silently re-running
  // the serial path under a different label.
  const std::size_t pool_threads =
      std::max<std::size_t>(2, gpusim::ExecutionEngine::instance().threads());
  const bool guard = parse_on_off(cli, "guard", false);
  util::Table table("Simulator throughput, hybrid M=" + std::to_string(m) +
                    " N=" + std::to_string(n) + " (double)");
  table.set_header({"mode", "threads", "wall_min[ms]", "wall_median[ms]",
                    "blocks/s", "speedup"});

  const auto batch = workloads::make_batch<double>(
      workloads::Kind::random_dominant, m, n, bench::preferred_layout(m, n),
      /*seed=*/42);
  auto scratch = batch.clone();
  const auto restore = [&] {
    std::copy(batch.a().begin(), batch.a().end(), scratch.a().begin());
    std::copy(batch.b().begin(), batch.b().end(), scratch.b().begin());
    std::copy(batch.c().begin(), batch.c().end(), scratch.c().begin());
    std::copy(batch.d().begin(), batch.d().end(), scratch.d().begin());
  };

  auto& registry = obs::MetricsRegistry::instance();
  double baseline_bps = 0.0;
  const std::string mode_filter = cli.get_string("modes", "");
  for (const ModeSpec& spec : kModes) {
    if (!mode_filter.empty() &&
        mode_filter.find(spec.name) == std::string::npos) {
      continue;
    }
    const gpusim::ScopedSimThreads threads_guard(spec.serial ? 1
                                                             : pool_threads);
    const gpusim::ScopedInstrumentMode mode_guard(spec.mode);
    // Read back what the engine actually settled on so the JSONL rows
    // record the real worker count, not the requested one.
    const std::size_t threads = gpusim::ExecutionEngine::instance().threads();

    gpu::HybridOptions opts;
    opts.guard.detect = guard;
    const double blocks_before = registry.counter("gpusim.blocks");
    std::size_t calls = 0;
    gpu::HybridReport report;
    const bench::WallStats wall = bench::repeat_wall(cli, restore, [&] {
      report = gpu::hybrid_solve<double>(dev, scratch, opts);
      ++calls;
    });
    const double blocks_per_solve =
        (registry.counter("gpusim.blocks") - blocks_before) /
        static_cast<double>(calls);
    const double bps = blocks_per_solve / (wall.min_us * 1e-6);
    if (spec.serial) baseline_bps = bps;
    const double speedup = baseline_bps > 0.0 ? bps / baseline_bps : 1.0;

    table.add_row({spec.name, std::to_string(threads),
                   util::Table::num(wall.min_us / 1000.0, 2),
                   util::Table::num(wall.median_us / 1000.0, 2),
                   util::Table::num(bps, 0), bench::ratio(speedup)});

    obs::JsonValue extra = obs::JsonValue::object();
    extra["mode"] = spec.name;
    extra["instrument"] = gpusim::instrument_mode_name(spec.mode);
    extra["sim_threads"] = threads;
    extra["guard"] = guard;
    extra["vector"] = gpusim::ExecutionEngine::instance().vector_enabled();
    extra["repeats"] = wall.repeats;
    extra["wall_us"] = wall.min_us;
    extra["wall_median_us"] = wall.median_us;
    extra["blocks_per_solve"] = blocks_per_solve;
    extra["blocks_per_sec"] = bps;
    extra["speedup_vs_exact_serial"] = speedup;
    if (spec.mode == gpusim::InstrumentMode::functional_only) {
      // No simulated timing exists in this mode (that is the point);
      // record the throughput fields without a timeline.
      extra["solver"] = "hybrid";
      extra["m"] = m;
      extra["n"] = n;
      extra["time_us"] = 0.0;
      telemetry.record_raw(std::move(extra));
    } else {
      telemetry.record_hybrid(dev, m, n, report, "hybrid", std::move(extra));
    }
  }
  bench::emit(table, cli);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      util::with_obs_flags(
                          {"quick", "smoke", "m", "n", "modes", "guard"}));
  const auto dev = gpusim::gtx480();
  bench::Telemetry telemetry(cli, "sim_throughput");

  std::vector<std::pair<std::size_t, std::size_t>> shapes;
  if (cli.has("m")) {
    shapes = {{static_cast<std::size_t>(cli.get_int("m", 1024)),
               static_cast<std::size_t>(cli.get_int("n", 512))}};
  } else if (cli.get_bool("smoke", false)) {
    shapes = {{64, 512}};
  } else if (cli.get_bool("quick", false)) {
    shapes = {{1024, 512}};
  } else {
    shapes = {{256, 512}, {4096, 512}, {16384, 512}, {65536, 512}};
  }
  for (const auto& [m, n] : shapes) panel(dev, m, n, cli, telemetry);
  return 0;
}
