// Figure 12 reproduction: execution time vs number of systems M for fixed
// system sizes N = 512, 2048, 16384 (double precision), three series:
// sequential MKL, multithreaded MKL, Ours (GTX480).
//
// Paper's headline from this figure: up to 49x over sequential and 8.3x
// over multithreaded MKL at N = 512; a flat "underutilized" region for
// M < ~4096 and linear scaling beyond.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

using namespace tridsolve;

namespace {

template <typename T>
void panel(const gpusim::DeviceSpec& dev, const cpu::CpuModel& cpu_model,
           std::size_t n, std::size_t m_max, const util::Cli& cli,
           bench::Telemetry& telemetry) {
  const bool fp64 = sizeof(T) == 8;
  util::Table table("Fig.12 N=" + std::to_string(n) + " (" +
                    (fp64 ? "double" : "single") +
                    "), execution time [us] vs M");
  table.set_header({"M", "MKL(seq)", "MKL(mt)", "Ours(sim)", "k", "speedup_seq",
                    "speedup_mt"});
  double best_seq = 0.0, best_mt = 0.0;
  for (std::size_t m = 64; m <= m_max; m *= 2) {
    const double seq = cpu_model.sequential_us(m, n, fp64);
    const double mt = cpu_model.multithreaded_us(m, n, fp64);
    const auto ours = bench::run_ours<T>(dev, m, n);
    best_seq = std::max(best_seq, seq / ours.total_us());
    best_mt = std::max(best_mt, mt / ours.total_us());
    table.add_row({util::Table::integer(static_cast<long long>(m)),
                   bench::us(seq), bench::us(mt), bench::us(ours.total_us()),
                   std::to_string(ours.k), bench::ratio(seq / ours.total_us()),
                   bench::ratio(mt / ours.total_us())});
    obs::JsonValue extra = obs::JsonValue::object();
    extra["precision"] = fp64 ? "double" : "single";
    extra["mkl_seq_us"] = seq;
    extra["mkl_mt_us"] = mt;
    telemetry.record_hybrid(dev, m, n, ours, "hybrid", std::move(extra));
  }
  bench::emit(table, cli);
  std::printf("  peak speedup at N=%zu (%s): %.1fx over sequential, %.1fx over "
              "multithreaded (paper: 49x / 8.3x double, 82.5x / 12.9x single, "
              "at N=512)\n\n",
              n, fp64 ? "double" : "single", best_seq, best_mt);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      util::with_obs_flags({"quick", "smoke", "float"}));
  const auto dev = gpusim::gtx480();
  const cpu::CpuModel cpu_model;
  bench::Telemetry telemetry(cli, "fig12");

  // --smoke: tiny shapes for CI telemetry validation, one panel only.
  if (cli.get_bool("smoke", false)) {
    panel<double>(dev, cpu_model, 512, 256, cli, telemetry);
    return 0;
  }

  const bool quick = cli.get_bool("quick", false);
  panel<double>(dev, cpu_model, 512, quick ? 4096 : 16384, cli,
                telemetry);                                         // Fig. 12(a)
  panel<double>(dev, cpu_model, 2048, quick ? 1024 : 4096, cli,
                telemetry);                                         // Fig. 12(b)
  panel<double>(dev, cpu_model, 16384, quick ? 256 : 1024, cli,
                telemetry);                                         // Fig. 12(c)
  if (cli.get_bool("float", true)) {
    // The single-precision headline (§IV text; not plotted in Fig. 12).
    panel<float>(dev, cpu_model, 512, quick ? 4096 : 16384, cli, telemetry);
  }
  return 0;
}
