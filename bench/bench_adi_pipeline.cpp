// ADI pipeline breakdown (apps/adi): where a full 2-D implicit diffusion
// step spends its simulated time — batched tridiagonal solves vs the
// transposes that keep both sweep directions coalesced. The transpose
// share shows why production ADI codes care about fused/strided solver
// variants (paper §III.C's motivation for fusion applies to pipelines,
// not just single solves).

#include <cstdio>
#include <vector>

#include "apps/adi.hpp"
#include "bench_common.hpp"

using namespace tridsolve;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, util::with_obs_flags({"quick"}));
  const bool quick = cli.get_bool("quick", false);

  util::Table table("ADI step breakdown on simulated GTX480 (double)");
  table.set_header({"grid", "step[us]", "solves[us]", "transposes[us]",
                    "transpose share", "k (x-sweep)"});

  std::vector<std::size_t> sizes{128, 256, 512, 1024};
  if (quick) sizes = {64, 128};

  for (std::size_t n : sizes) {
    apps::AdiOptions opts;
    apps::AdiIntegrator<double> adi(gpusim::gtx480(), n, n, opts);
    std::vector<double> field(n * n, 1.0);
    const auto rep = adi.step(field);
    table.add_row(
        {std::to_string(n) + "x" + std::to_string(n),
         bench::us(rep.total_us()), bench::us(rep.solve_us()),
         bench::us(rep.transpose_us()),
         util::Table::num(100.0 * rep.transpose_us() / rep.total_us(), 1) + "%",
         std::to_string(gpu::heuristic_k(n, n))});
  }
  bench::emit(table, cli);
  return 0;
}
