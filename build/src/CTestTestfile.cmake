# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("tridiag")
subdirs("gpusim")
subdirs("gpu_solvers")
subdirs("cpu_baselines")
subdirs("workloads")
subdirs("apps")
