# Empty compiler generated dependencies file for tridsolve_workloads.
# This may be replaced when dependencies are built.
