file(REMOVE_RECURSE
  "CMakeFiles/tridsolve_workloads.dir/generators.cpp.o"
  "CMakeFiles/tridsolve_workloads.dir/generators.cpp.o.d"
  "libtridsolve_workloads.a"
  "libtridsolve_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridsolve_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
