file(REMOVE_RECURSE
  "libtridsolve_workloads.a"
)
