# Empty dependencies file for tridsolve_apps.
# This may be replaced when dependencies are built.
