file(REMOVE_RECURSE
  "CMakeFiles/tridsolve_apps.dir/adi.cpp.o"
  "CMakeFiles/tridsolve_apps.dir/adi.cpp.o.d"
  "libtridsolve_apps.a"
  "libtridsolve_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridsolve_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
