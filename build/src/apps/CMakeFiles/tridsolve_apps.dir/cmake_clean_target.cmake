file(REMOVE_RECURSE
  "libtridsolve_apps.a"
)
