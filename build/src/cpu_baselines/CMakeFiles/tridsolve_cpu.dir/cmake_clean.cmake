file(REMOVE_RECURSE
  "CMakeFiles/tridsolve_cpu.dir/mkl_like.cpp.o"
  "CMakeFiles/tridsolve_cpu.dir/mkl_like.cpp.o.d"
  "libtridsolve_cpu.a"
  "libtridsolve_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridsolve_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
