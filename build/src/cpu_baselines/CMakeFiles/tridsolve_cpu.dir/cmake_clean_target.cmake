file(REMOVE_RECURSE
  "libtridsolve_cpu.a"
)
