# Empty compiler generated dependencies file for tridsolve_cpu.
# This may be replaced when dependencies are built.
