# CMake generated Testfile for 
# Source directory: /root/repo/src/cpu_baselines
# Build directory: /root/repo/build/src/cpu_baselines
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
