# Empty compiler generated dependencies file for tridsolve_util.
# This may be replaced when dependencies are built.
