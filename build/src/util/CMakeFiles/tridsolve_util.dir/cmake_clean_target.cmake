file(REMOVE_RECURSE
  "libtridsolve_util.a"
)
