file(REMOVE_RECURSE
  "CMakeFiles/tridsolve_util.dir/aligned_buffer.cpp.o"
  "CMakeFiles/tridsolve_util.dir/aligned_buffer.cpp.o.d"
  "CMakeFiles/tridsolve_util.dir/cli.cpp.o"
  "CMakeFiles/tridsolve_util.dir/cli.cpp.o.d"
  "CMakeFiles/tridsolve_util.dir/random.cpp.o"
  "CMakeFiles/tridsolve_util.dir/random.cpp.o.d"
  "CMakeFiles/tridsolve_util.dir/stats.cpp.o"
  "CMakeFiles/tridsolve_util.dir/stats.cpp.o.d"
  "CMakeFiles/tridsolve_util.dir/table.cpp.o"
  "CMakeFiles/tridsolve_util.dir/table.cpp.o.d"
  "libtridsolve_util.a"
  "libtridsolve_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridsolve_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
