
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tridiag/cyclic_reduction.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/cyclic_reduction.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/cyclic_reduction.cpp.o.d"
  "/root/repo/src/tridiag/lu_pivot.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/lu_pivot.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/lu_pivot.cpp.o.d"
  "/root/repo/src/tridiag/partition.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/partition.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/partition.cpp.o.d"
  "/root/repo/src/tridiag/pcr.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/pcr.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/pcr.cpp.o.d"
  "/root/repo/src/tridiag/pcr_plan.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/pcr_plan.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/pcr_plan.cpp.o.d"
  "/root/repo/src/tridiag/periodic.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/periodic.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/periodic.cpp.o.d"
  "/root/repo/src/tridiag/recursive_doubling.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/recursive_doubling.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/recursive_doubling.cpp.o.d"
  "/root/repo/src/tridiag/residual.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/residual.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/residual.cpp.o.d"
  "/root/repo/src/tridiag/thomas.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/thomas.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/thomas.cpp.o.d"
  "/root/repo/src/tridiag/tiled_pcr.cpp" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/tiled_pcr.cpp.o" "gcc" "src/tridiag/CMakeFiles/tridsolve_tridiag.dir/tiled_pcr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tridsolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
