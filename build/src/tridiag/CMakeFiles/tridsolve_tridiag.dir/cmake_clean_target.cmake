file(REMOVE_RECURSE
  "libtridsolve_tridiag.a"
)
