# Empty dependencies file for tridsolve_tridiag.
# This may be replaced when dependencies are built.
