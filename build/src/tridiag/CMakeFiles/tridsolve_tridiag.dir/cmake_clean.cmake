file(REMOVE_RECURSE
  "CMakeFiles/tridsolve_tridiag.dir/cyclic_reduction.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/cyclic_reduction.cpp.o.d"
  "CMakeFiles/tridsolve_tridiag.dir/lu_pivot.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/lu_pivot.cpp.o.d"
  "CMakeFiles/tridsolve_tridiag.dir/partition.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/partition.cpp.o.d"
  "CMakeFiles/tridsolve_tridiag.dir/pcr.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/pcr.cpp.o.d"
  "CMakeFiles/tridsolve_tridiag.dir/pcr_plan.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/pcr_plan.cpp.o.d"
  "CMakeFiles/tridsolve_tridiag.dir/periodic.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/periodic.cpp.o.d"
  "CMakeFiles/tridsolve_tridiag.dir/recursive_doubling.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/recursive_doubling.cpp.o.d"
  "CMakeFiles/tridsolve_tridiag.dir/residual.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/residual.cpp.o.d"
  "CMakeFiles/tridsolve_tridiag.dir/thomas.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/thomas.cpp.o.d"
  "CMakeFiles/tridsolve_tridiag.dir/tiled_pcr.cpp.o"
  "CMakeFiles/tridsolve_tridiag.dir/tiled_pcr.cpp.o.d"
  "libtridsolve_tridiag.a"
  "libtridsolve_tridiag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridsolve_tridiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
