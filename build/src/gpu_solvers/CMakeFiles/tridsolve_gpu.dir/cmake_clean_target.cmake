file(REMOVE_RECURSE
  "libtridsolve_gpu.a"
)
