
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu_solvers/cr_kernel.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/cr_kernel.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/cr_kernel.cpp.o.d"
  "/root/repo/src/gpu_solvers/davidson.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/davidson.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/davidson.cpp.o.d"
  "/root/repo/src/gpu_solvers/hybrid_solver.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/hybrid_solver.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/hybrid_solver.cpp.o.d"
  "/root/repo/src/gpu_solvers/partition_kernel.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/partition_kernel.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/partition_kernel.cpp.o.d"
  "/root/repo/src/gpu_solvers/periodic_gpu.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/periodic_gpu.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/periodic_gpu.cpp.o.d"
  "/root/repo/src/gpu_solvers/pthomas_kernel.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/pthomas_kernel.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/pthomas_kernel.cpp.o.d"
  "/root/repo/src/gpu_solvers/registry.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/registry.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/registry.cpp.o.d"
  "/root/repo/src/gpu_solvers/tiled_pcr_kernel.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/tiled_pcr_kernel.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/tiled_pcr_kernel.cpp.o.d"
  "/root/repo/src/gpu_solvers/transition.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/transition.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/transition.cpp.o.d"
  "/root/repo/src/gpu_solvers/transpose_kernel.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/transpose_kernel.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/transpose_kernel.cpp.o.d"
  "/root/repo/src/gpu_solvers/zhang_pcr_thomas.cpp" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/zhang_pcr_thomas.cpp.o" "gcc" "src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/zhang_pcr_thomas.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/tridsolve_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/tridiag/CMakeFiles/tridsolve_tridiag.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tridsolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
