# Empty dependencies file for tridsolve_gpu.
# This may be replaced when dependencies are built.
