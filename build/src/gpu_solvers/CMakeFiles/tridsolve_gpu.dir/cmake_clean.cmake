file(REMOVE_RECURSE
  "CMakeFiles/tridsolve_gpu.dir/cr_kernel.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/cr_kernel.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/davidson.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/davidson.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/hybrid_solver.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/hybrid_solver.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/partition_kernel.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/partition_kernel.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/periodic_gpu.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/periodic_gpu.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/pthomas_kernel.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/pthomas_kernel.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/registry.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/registry.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/tiled_pcr_kernel.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/tiled_pcr_kernel.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/transition.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/transition.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/transpose_kernel.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/transpose_kernel.cpp.o.d"
  "CMakeFiles/tridsolve_gpu.dir/zhang_pcr_thomas.cpp.o"
  "CMakeFiles/tridsolve_gpu.dir/zhang_pcr_thomas.cpp.o.d"
  "libtridsolve_gpu.a"
  "libtridsolve_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridsolve_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
