file(REMOVE_RECURSE
  "CMakeFiles/tridsolve_gpusim.dir/device_spec.cpp.o"
  "CMakeFiles/tridsolve_gpusim.dir/device_spec.cpp.o.d"
  "CMakeFiles/tridsolve_gpusim.dir/occupancy.cpp.o"
  "CMakeFiles/tridsolve_gpusim.dir/occupancy.cpp.o.d"
  "CMakeFiles/tridsolve_gpusim.dir/timing_model.cpp.o"
  "CMakeFiles/tridsolve_gpusim.dir/timing_model.cpp.o.d"
  "CMakeFiles/tridsolve_gpusim.dir/trace.cpp.o"
  "CMakeFiles/tridsolve_gpusim.dir/trace.cpp.o.d"
  "libtridsolve_gpusim.a"
  "libtridsolve_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridsolve_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
