
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/device_spec.cpp" "src/gpusim/CMakeFiles/tridsolve_gpusim.dir/device_spec.cpp.o" "gcc" "src/gpusim/CMakeFiles/tridsolve_gpusim.dir/device_spec.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/gpusim/CMakeFiles/tridsolve_gpusim.dir/occupancy.cpp.o" "gcc" "src/gpusim/CMakeFiles/tridsolve_gpusim.dir/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/timing_model.cpp" "src/gpusim/CMakeFiles/tridsolve_gpusim.dir/timing_model.cpp.o" "gcc" "src/gpusim/CMakeFiles/tridsolve_gpusim.dir/timing_model.cpp.o.d"
  "/root/repo/src/gpusim/trace.cpp" "src/gpusim/CMakeFiles/tridsolve_gpusim.dir/trace.cpp.o" "gcc" "src/gpusim/CMakeFiles/tridsolve_gpusim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tridsolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
