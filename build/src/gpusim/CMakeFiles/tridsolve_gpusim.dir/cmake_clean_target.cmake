file(REMOVE_RECURSE
  "libtridsolve_gpusim.a"
)
