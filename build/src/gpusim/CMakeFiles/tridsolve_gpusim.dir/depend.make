# Empty dependencies file for tridsolve_gpusim.
# This may be replaced when dependencies are built.
