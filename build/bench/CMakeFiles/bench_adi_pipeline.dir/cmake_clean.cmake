file(REMOVE_RECURSE
  "CMakeFiles/bench_adi_pipeline.dir/bench_adi_pipeline.cpp.o"
  "CMakeFiles/bench_adi_pipeline.dir/bench_adi_pipeline.cpp.o.d"
  "bench_adi_pipeline"
  "bench_adi_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adi_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
