# Empty compiler generated dependencies file for bench_adi_pipeline.
# This may be replaced when dependencies are built.
