file(REMOVE_RECURSE
  "CMakeFiles/bench_whatif_devices.dir/bench_whatif_devices.cpp.o"
  "CMakeFiles/bench_whatif_devices.dir/bench_whatif_devices.cpp.o.d"
  "bench_whatif_devices"
  "bench_whatif_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
