# Empty compiler generated dependencies file for bench_whatif_devices.
# This may be replaced when dependencies are built.
