# Empty dependencies file for bench_ablation_banks.
# This may be replaced when dependencies are built.
