file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_banks.dir/bench_ablation_banks.cpp.o"
  "CMakeFiles/bench_ablation_banks.dir/bench_ablation_banks.cpp.o.d"
  "bench_ablation_banks"
  "bench_ablation_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
