# Empty dependencies file for ring_advection.
# This may be replaced when dependencies are built.
