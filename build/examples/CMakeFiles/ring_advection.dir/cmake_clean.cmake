file(REMOVE_RECURSE
  "CMakeFiles/ring_advection.dir/ring_advection.cpp.o"
  "CMakeFiles/ring_advection.dir/ring_advection.cpp.o.d"
  "ring_advection"
  "ring_advection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_advection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
