# Empty dependencies file for heat2d_adi.
# This may be replaced when dependencies are built.
