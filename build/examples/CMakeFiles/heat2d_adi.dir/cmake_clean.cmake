file(REMOVE_RECURSE
  "CMakeFiles/heat2d_adi.dir/heat2d_adi.cpp.o"
  "CMakeFiles/heat2d_adi.dir/heat2d_adi.cpp.o.d"
  "heat2d_adi"
  "heat2d_adi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat2d_adi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
