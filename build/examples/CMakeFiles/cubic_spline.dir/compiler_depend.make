# Empty compiler generated dependencies file for cubic_spline.
# This may be replaced when dependencies are built.
