file(REMOVE_RECURSE
  "CMakeFiles/cubic_spline.dir/cubic_spline.cpp.o"
  "CMakeFiles/cubic_spline.dir/cubic_spline.cpp.o.d"
  "cubic_spline"
  "cubic_spline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cubic_spline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
