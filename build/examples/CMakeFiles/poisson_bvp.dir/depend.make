# Empty dependencies file for poisson_bvp.
# This may be replaced when dependencies are built.
