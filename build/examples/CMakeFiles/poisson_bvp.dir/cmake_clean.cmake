file(REMOVE_RECURSE
  "CMakeFiles/poisson_bvp.dir/poisson_bvp.cpp.o"
  "CMakeFiles/poisson_bvp.dir/poisson_bvp.cpp.o.d"
  "poisson_bvp"
  "poisson_bvp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson_bvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
