file(REMOVE_RECURSE
  "CMakeFiles/anisotropic_smoother.dir/anisotropic_smoother.cpp.o"
  "CMakeFiles/anisotropic_smoother.dir/anisotropic_smoother.cpp.o.d"
  "anisotropic_smoother"
  "anisotropic_smoother.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anisotropic_smoother.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
