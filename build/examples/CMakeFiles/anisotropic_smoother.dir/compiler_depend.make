# Empty compiler generated dependencies file for anisotropic_smoother.
# This may be replaced when dependencies are built.
