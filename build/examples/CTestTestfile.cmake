# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--n" "700")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat2d_adi "/root/repo/build/examples/heat2d_adi" "--nx" "48" "--ny" "32" "--steps" "2")
set_tests_properties(example_heat2d_adi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cubic_spline "/root/repo/build/examples/cubic_spline" "--curves" "64" "--knots" "65")
set_tests_properties(example_cubic_spline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_poisson_bvp "/root/repo/build/examples/poisson_bvp" "--levels" "3")
set_tests_properties(example_poisson_bvp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anisotropic_smoother "/root/repo/build/examples/anisotropic_smoother" "--n" "32" "--sweeps" "10")
set_tests_properties(example_anisotropic_smoother PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ring_advection "/root/repo/build/examples/ring_advection" "--m" "8" "--n" "128" "--steps" "10")
set_tests_properties(example_ring_advection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
