# Empty compiler generated dependencies file for test_partition_gpu.
# This may be replaced when dependencies are built.
