file(REMOVE_RECURSE
  "CMakeFiles/test_partition_gpu.dir/test_partition_gpu.cpp.o"
  "CMakeFiles/test_partition_gpu.dir/test_partition_gpu.cpp.o.d"
  "test_partition_gpu"
  "test_partition_gpu.pdb"
  "test_partition_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
