# Empty dependencies file for test_adi.
# This may be replaced when dependencies are built.
