
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adi.cpp" "tests/CMakeFiles/test_adi.dir/test_adi.cpp.o" "gcc" "tests/CMakeFiles/test_adi.dir/test_adi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/tridsolve_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tridsolve_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu_solvers/CMakeFiles/tridsolve_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu_baselines/CMakeFiles/tridsolve_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/tridiag/CMakeFiles/tridsolve_tridiag.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/tridsolve_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tridsolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
