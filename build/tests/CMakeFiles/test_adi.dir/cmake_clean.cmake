file(REMOVE_RECURSE
  "CMakeFiles/test_adi.dir/test_adi.cpp.o"
  "CMakeFiles/test_adi.dir/test_adi.cpp.o.d"
  "test_adi"
  "test_adi.pdb"
  "test_adi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
