file(REMOVE_RECURSE
  "CMakeFiles/test_banks.dir/test_banks.cpp.o"
  "CMakeFiles/test_banks.dir/test_banks.cpp.o.d"
  "test_banks"
  "test_banks.pdb"
  "test_banks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
