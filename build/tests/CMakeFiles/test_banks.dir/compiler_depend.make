# Empty compiler generated dependencies file for test_banks.
# This may be replaced when dependencies are built.
