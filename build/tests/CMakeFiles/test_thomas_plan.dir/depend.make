# Empty dependencies file for test_thomas_plan.
# This may be replaced when dependencies are built.
