file(REMOVE_RECURSE
  "CMakeFiles/test_thomas_plan.dir/test_thomas_plan.cpp.o"
  "CMakeFiles/test_thomas_plan.dir/test_thomas_plan.cpp.o.d"
  "test_thomas_plan"
  "test_thomas_plan.pdb"
  "test_thomas_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thomas_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
