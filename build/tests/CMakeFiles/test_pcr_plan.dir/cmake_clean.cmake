file(REMOVE_RECURSE
  "CMakeFiles/test_pcr_plan.dir/test_pcr_plan.cpp.o"
  "CMakeFiles/test_pcr_plan.dir/test_pcr_plan.cpp.o.d"
  "test_pcr_plan"
  "test_pcr_plan.pdb"
  "test_pcr_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcr_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
