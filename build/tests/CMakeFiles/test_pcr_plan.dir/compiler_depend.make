# Empty compiler generated dependencies file for test_pcr_plan.
# This may be replaced when dependencies are built.
