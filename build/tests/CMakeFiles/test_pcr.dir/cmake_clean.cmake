file(REMOVE_RECURSE
  "CMakeFiles/test_pcr.dir/test_pcr.cpp.o"
  "CMakeFiles/test_pcr.dir/test_pcr.cpp.o.d"
  "test_pcr"
  "test_pcr.pdb"
  "test_pcr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
