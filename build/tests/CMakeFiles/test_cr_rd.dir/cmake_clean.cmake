file(REMOVE_RECURSE
  "CMakeFiles/test_cr_rd.dir/test_cr_rd.cpp.o"
  "CMakeFiles/test_cr_rd.dir/test_cr_rd.cpp.o.d"
  "test_cr_rd"
  "test_cr_rd.pdb"
  "test_cr_rd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cr_rd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
