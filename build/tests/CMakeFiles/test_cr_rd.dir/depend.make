# Empty dependencies file for test_cr_rd.
# This may be replaced when dependencies are built.
