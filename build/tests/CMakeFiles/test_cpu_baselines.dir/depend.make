# Empty dependencies file for test_cpu_baselines.
# This may be replaced when dependencies are built.
