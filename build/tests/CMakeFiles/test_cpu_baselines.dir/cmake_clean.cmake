file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_baselines.dir/test_cpu_baselines.cpp.o"
  "CMakeFiles/test_cpu_baselines.dir/test_cpu_baselines.cpp.o.d"
  "test_cpu_baselines"
  "test_cpu_baselines.pdb"
  "test_cpu_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
