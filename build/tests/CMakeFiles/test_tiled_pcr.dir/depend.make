# Empty dependencies file for test_tiled_pcr.
# This may be replaced when dependencies are built.
