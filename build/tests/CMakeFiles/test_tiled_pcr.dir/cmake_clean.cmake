file(REMOVE_RECURSE
  "CMakeFiles/test_tiled_pcr.dir/test_tiled_pcr.cpp.o"
  "CMakeFiles/test_tiled_pcr.dir/test_tiled_pcr.cpp.o.d"
  "test_tiled_pcr"
  "test_tiled_pcr.pdb"
  "test_tiled_pcr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiled_pcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
