# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_thomas[1]_include.cmake")
include("/root/repo/build/tests/test_lu_pivot[1]_include.cmake")
include("/root/repo/build/tests/test_pcr[1]_include.cmake")
include("/root/repo/build/tests/test_tiled_pcr[1]_include.cmake")
include("/root/repo/build/tests/test_cr_rd[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_cpu_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_periodic[1]_include.cmake")
include("/root/repo/build/tests/test_trace_registry[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_banks[1]_include.cmake")
include("/root/repo/build/tests/test_thomas_plan[1]_include.cmake")
include("/root/repo/build/tests/test_pcr_plan[1]_include.cmake")
include("/root/repo/build/tests/test_transpose[1]_include.cmake")
include("/root/repo/build/tests/test_adi[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_partition_gpu[1]_include.cmake")
