// Performance-attribution layer tests: log-bucketed latency histograms
// (obs/histogram.hpp), the metrics registry's histogram group and its
// snapshot-vs-concurrent-writer safety, causal span tracing
// (obs/span_tracer.hpp) through the launch engine and the resilient
// pipeline, span export to Chrome traces, roofline attribution
// (obs/roofline.hpp), and the Prometheus text writer.
//
// The load-bearing claim pinned throughout: observation is read-only.
// Solver outputs and simulated times are bit-identical with tracing on
// and off, because every tracer call no-ops when disabled and only
// wall-clock bookkeeping happens when enabled.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gpu_solvers/registry.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/exec_engine.hpp"
#include "gpusim/fault_injector.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/roofline.hpp"
#include "obs/span_tracer.hpp"
#include "tridiag/layout.hpp"
#include "tridiag/residual.hpp"
#include "workloads/generators.hpp"

namespace obs = tridsolve::obs;
namespace gs = tridsolve::gpusim;
namespace gp = tridsolve::gpu;
namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;

namespace {

/// RAII guard: tracing enabled on a fresh tracer for the scope, disabled
/// (and drained) after, so tests cannot leak spans into one another.
struct ScopedTracing {
  ScopedTracing() {
    obs::SpanTracer::instance().reset();
    obs::SpanTracer::instance().set_enabled(true);
  }
  ~ScopedTracing() {
    obs::SpanTracer::instance().set_enabled(false);
    obs::SpanTracer::instance().reset();
  }
};

bool batch_bits_equal(const td::SystemBatch<double>& a,
                      const td::SystemBatch<double>& b) {
  for (std::size_t m = 0; m < a.num_systems(); ++m) {
    const auto xa = td::as_const(a.system(m)).d;
    const auto xb = td::as_const(b.system(m)).d;
    for (std::size_t i = 0; i < a.system_size(); ++i) {
      std::uint64_t ua = 0, ub = 0;
      const double va = xa[i], vb = xb[i];
      std::memcpy(&ua, &va, sizeof va);
      std::memcpy(&ub, &vb, sizeof vb);
      if (ua != ub) return false;
    }
  }
  return true;
}

const obs::JsonValue* find_attr(const obs::Span& s, const char* key) {
  for (const auto& [k, v] : s.attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

}  // namespace

// ---- LogHistogram ----------------------------------------------------

TEST(Histogram, BucketIndexMonotoneAndBoundsContain) {
  int prev = 0;
  for (double v = 1.0 / 4096.0; v < 1e9; v *= 1.37) {
    const int idx = obs::LogHistogram::bucket_index(v);
    ASSERT_GE(idx, prev) << "bucket index must be monotone in value";
    ASSERT_LT(idx, obs::LogHistogram::kBuckets);
    if (v > obs::LogHistogram::kMinTrackable) {
      ASSERT_GE(obs::LogHistogram::bucket_upper_bound(idx), v)
          << "value " << v << " above its bucket's upper bound";
    }
    prev = idx;
  }
}

TEST(Histogram, QuantilesWithinSubBucketError) {
  obs::LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.sum, 500500.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // 8 linear sub-buckets per octave: a quantile overshoots the true rank
  // value by at most 1/8 of an octave (12.5%) and never undershoots.
  EXPECT_GE(s.p50, 500.0);
  EXPECT_LE(s.p50, 500.0 * 1.126);
  EXPECT_GE(s.p90, 900.0);
  EXPECT_LE(s.p90, 900.0 * 1.126);
  EXPECT_GE(s.p99, 990.0);
  EXPECT_LE(s.p99, 1000.0);  // clamped to the observed max
}

TEST(Histogram, DropsNegativesAndNaNKeepsZeroAndTiny) {
  obs::LogHistogram h;
  h.record(-1.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 0u);
  h.record(0.0);
  h.record(1e-9);  // below kMinTrackable: lands in bucket 0, still counted
  EXPECT_EQ(h.count(), 2u);
  const auto s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_LE(s.p99, obs::LogHistogram::bucket_upper_bound(0));
}

TEST(Histogram, ResetClears) {
  obs::LogHistogram h;
  h.record(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  h.record(2.0);  // usable after reset, min re-seeds
  EXPECT_DOUBLE_EQ(h.snapshot().min, 2.0);
}

// ---- MetricsRegistry histogram group ---------------------------------

TEST(Metrics, HistogramsRegisterSnapshotAndSerialize) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  obs::observe("test.latency_us", 10.0);
  obs::observe("test.latency_us", 20.0);
  auto handle = obs::histogram_handle("test.latency_us");
  ASSERT_TRUE(handle.valid());
  handle.record(30.0);

  ASSERT_TRUE(reg.has_histogram("test.latency_us"));
  const auto snaps = reg.histograms();
  ASSERT_EQ(snaps.count("test.latency_us"), 1u);
  EXPECT_EQ(snaps.at("test.latency_us").count, 3u);
  EXPECT_DOUBLE_EQ(snaps.at("test.latency_us").sum, 60.0);

  const obs::JsonValue doc = reg.to_json();
  const obs::JsonValue* hists = doc.find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::JsonValue* entry = hists->find("test.latency_us");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->find("count")->as_number(), 3.0);
  for (const char* key : {"sum", "min", "max", "mean", "p50", "p90", "p99"}) {
    EXPECT_NE(entry->find(key), nullptr) << key;
  }
  reg.reset();
  EXPECT_FALSE(reg.has_histogram("test.latency_us"))
      << "reset must clear histogram samples";
}

// Snapshot paths (counters()/histograms()/to_json()) must be safe against
// concurrent writers: totals observed mid-flight may lag, but nothing
// tears, and after joining the writers every count is exact. Run under
// TSan/ASan via the sanitize label.
TEST(Metrics, SnapshotsRaceCleanlyWithConcurrentWriters) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      auto ctr = obs::counter_handle("race.counter");
      auto hist = obs::histogram_handle("race.hist");
      for (int i = 0; i < kIters; ++i) {
        ctr.add(1.0);
        hist.record(static_cast<double>(i % 100));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Snapshot while the writers hammer: values must parse and be sane.
  for (int i = 0; i < 50; ++i) {
    const auto counters = reg.counters();
    const auto it = counters.find("race.counter");
    if (it != counters.end()) {
      EXPECT_GE(it->second, 0.0);
      EXPECT_LE(it->second, 1.0 * kThreads * kIters);
    }
    (void)reg.to_json();
    (void)reg.histograms();
  }
  for (auto& w : writers) w.join();
  EXPECT_DOUBLE_EQ(reg.counters().at("race.counter"),
                   1.0 * kThreads * kIters);
  EXPECT_EQ(reg.histograms().at("race.hist").count,
            static_cast<std::uint64_t>(kThreads) * kIters);
  reg.reset();
}

// ---- SpanTracer ------------------------------------------------------

TEST(SpanTracer, DisabledIsInert) {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.reset();
  ASSERT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.reserve_id(), 0u);
  {
    obs::SpanScope scope("noop");
    scope.attr("k", obs::JsonValue(1));
  }
  EXPECT_EQ(tracer.span_count(), 0u);
  tracer.advance_sim(100.0);
  EXPECT_DOUBLE_EQ(tracer.sim_now(), 0.0);
}

TEST(SpanTracer, ScopesNestAndCarryAttrs) {
  ScopedTracing tracing;
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  std::uint64_t outer_id = 0, inner_id = 0;
  {
    obs::SpanScope outer("outer");
    outer_id = outer.id();
    tracer.advance_sim(10.0);
    {
      obs::SpanScope inner("inner");
      inner_id = inner.id();
      inner.attr("cause", obs::JsonValue("test"));
      tracer.advance_sim(5.0);
    }
  }
  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);  // emitted at scope exit: inner first
  const obs::Span& inner = spans[0];
  const obs::Span& outer = spans[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.id, inner_id);
  EXPECT_EQ(inner.parent, outer_id);
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_GE(inner.wall_t1_us, inner.wall_t0_us);
  EXPECT_DOUBLE_EQ(inner.sim_t0_us, 10.0);
  EXPECT_DOUBLE_EQ(inner.sim_t1_us, 15.0);
  EXPECT_DOUBLE_EQ(outer.sim_t1_us, 15.0);
  const obs::JsonValue* cause = find_attr(inner, "cause");
  ASSERT_NE(cause, nullptr);
  EXPECT_EQ(cause->as_string(), "test");
}

TEST(SpanTracer, SpanJsonIsCanonicalJsonl) {
  ScopedTracing tracing;
  {
    obs::SpanScope scope("line\n\"quoted\"");
    scope.attr("note", obs::JsonValue("π ≤ 4"));
  }
  const auto spans = obs::SpanTracer::instance().spans();
  ASSERT_EQ(spans.size(), 1u);
  const std::string json = obs::SpanTracer::span_json(spans[0]).dump();
  const auto parsed = obs::JsonValue::parse(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(parsed->dump(), json) << "span JSON must be canonical";
  EXPECT_EQ(parsed->find("name")->as_string(), "line\n\"quoted\"");
  EXPECT_EQ(parsed->find("attrs")->find("note")->as_string(), "π ≤ 4");
}

// ---- Chrome-trace span export ----------------------------------------

TEST(ChromeTrace, AddSpansNestsByDepthWithFlowArrows) {
  obs::MetricsRegistry::instance().reset();
  std::vector<obs::Span> spans;
  obs::Span root;
  root.id = 1;
  root.name = "root";
  root.wall_t0_us = 0.0;
  root.wall_t1_us = 100.0;
  obs::Span child;
  child.id = 2;
  child.parent = 1;
  child.name = "child \"<esc>\"\n\tπ";
  child.wall_t0_us = 10.0;
  child.wall_t1_us = 90.0;
  child.attrs.emplace_back("code", obs::JsonValue("timed_out"));
  spans.push_back(root);
  spans.push_back(child);

  obs::ChromeTraceBuilder builder("test");
  EXPECT_EQ(builder.add_spans(spans), 2u);
  const auto parsed = obs::JsonValue::parse(builder.str());
  ASSERT_TRUE(parsed.has_value());
  const auto& events = parsed->find("traceEvents")->as_array();

  double root_tid = -1, child_tid = -1;
  bool saw_flow_start = false, saw_flow_finish = false;
  for (const obs::JsonValue& ev : events) {
    const std::string ph = ev.find("ph")->as_string();
    const std::string name = ev.find("name")->as_string();
    if (ph == "X" && name == "root") root_tid = ev.find("tid")->as_number();
    if (ph == "X" && name == child.name) {
      child_tid = ev.find("tid")->as_number();
      EXPECT_EQ(ev.find("args")->find("code")->as_string(), "timed_out");
      EXPECT_EQ(ev.find("args")->find("parent")->as_number(), 1.0);
    }
    if (ph == "s") saw_flow_start = true;
    if (ph == "f") saw_flow_finish = true;
  }
  ASSERT_GE(root_tid, 0.0) << "root span event missing";
  ASSERT_GE(child_tid, 0.0) << "child span event (escaped name) missing";
  EXPECT_EQ(child_tid, root_tid + 1.0)
      << "child must render one depth-track below its parent so nested "
         "spans never overlap within a (pid, tid)";
  EXPECT_TRUE(saw_flow_start && saw_flow_finish)
      << "parent->child flow arrows missing";
}

// ---- Roofline attribution --------------------------------------------

TEST(Roofline, HandComputedAttribution) {
  const gs::DeviceSpec dev = gs::gtx480();
  gs::KernelCosts costs;
  costs.transactions = 1000;
  costs.shared_bytes = 4096;
  costs.ops_f64 = 500000;
  const double time_us = 100.0;
  const obs::RooflineAttribution a =
      obs::attribute_roofline(dev, costs, time_us);

  const double bytes = 1000.0 * dev.transaction_bytes;
  EXPECT_DOUBLE_EQ(a.bytes_global, bytes);
  EXPECT_DOUBLE_EQ(a.bytes_shared, 4096.0);
  EXPECT_DOUBLE_EQ(a.achieved_gbps, bytes / time_us / 1000.0);
  EXPECT_DOUBLE_EQ(a.peak_gbps, dev.mem_bandwidth_gbps);
  EXPECT_DOUBLE_EQ(a.frac_bandwidth, a.achieved_gbps / a.peak_gbps);
  EXPECT_DOUBLE_EQ(a.achieved_gflops, 500000.0 / time_us / 1000.0);
  EXPECT_DOUBLE_EQ(a.frac_compute,
                   a.achieved_gflops / dev.peak_gflops(/*fp64=*/true));
  EXPECT_DOUBLE_EQ(a.intensity, 500000.0 / bytes);
  EXPECT_EQ(a.bound, a.frac_compute > a.frac_bandwidth ? "compute"
                                                       : "bandwidth");
  // Serialization carries every field the validator checks.
  const obs::JsonValue j = a.to_json();
  for (const char* key :
       {"bytes_global", "bytes_shared", "flops_f32", "flops_f64",
        "achieved_gbps", "peak_gbps", "achieved_gflops", "frac_bandwidth",
        "frac_compute", "intensity", "bound", "time_us"}) {
    EXPECT_NE(j.find(key), nullptr) << key;
  }
}

TEST(Roofline, TimelineMergesLabelsAndSkipsHostSegments) {
  const gs::DeviceSpec dev = gs::gtx480();
  gs::Timeline tl;
  gs::LaunchStats seg;
  seg.timed = true;
  seg.timing.time_us = 10.0;
  seg.costs.transactions = 100;
  seg.costs.ops_f64 = 1000;
  tl.add("pcr", seg);
  tl.add("pcr", seg);  // same label: must merge
  tl.add("thomas", seg);
  tl.add_fixed("host-convert", 5.0);  // host: must be skipped

  const auto roofs = obs::attribute_timeline(dev, tl);
  ASSERT_EQ(roofs.size(), 2u);
  ASSERT_EQ(roofs.count("pcr"), 1u);
  ASSERT_EQ(roofs.count("thomas"), 1u);
  EXPECT_DOUBLE_EQ(roofs.at("pcr").time_us, 20.0);
  EXPECT_DOUBLE_EQ(roofs.at("pcr").bytes_global,
                   200.0 * dev.transaction_bytes);
  EXPECT_DOUBLE_EQ(roofs.at("thomas").time_us, 10.0);
}

// ---- Read-only pin ---------------------------------------------------

TEST(ReadOnly, TracingOnVsOffIsBitIdentical) {
  const gs::DeviceSpec dev = gs::gtx480();
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 12, 128,
                                            td::Layout::contiguous,
                                            /*seed=*/2026);
  td::SystemBatch<double> sol_off;
  const gp::SolveOutcome off =
      gp::run_solver<double>(gp::SolverKind::hybrid, dev, batch, {}, &sol_off);
  ASSERT_TRUE(off.supported);

  td::SystemBatch<double> sol_on;
  gp::SolveOutcome on;
  {
    ScopedTracing tracing;
    on = gp::run_solver<double>(gp::SolverKind::hybrid, dev, batch, {},
                                &sol_on);
    EXPECT_GT(obs::SpanTracer::instance().span_count(), 0u)
        << "tracing was on: launches must have produced spans";
  }
  ASSERT_TRUE(on.supported);
  EXPECT_EQ(on.time_us, off.time_us)
      << "simulated time must not move when tracing is enabled";
  EXPECT_EQ(on.launches, off.launches);
  EXPECT_TRUE(batch_bits_equal(sol_on, sol_off))
      << "solver output must be bit-identical with tracing on";
}

// ---- Resilient pipeline span tree ------------------------------------

TEST(ResilientSpans, AttemptsAreChildrenTaggedWithSolveCode) {
  const auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 12, 128,
                                            td::Layout::contiguous,
                                            /*seed=*/2026);
  gs::FaultPlan plan;
  plan.pinpoint = true;
  plan.at_launch = 0;
  plan.pinpoint_kind = gs::kFaultLaunchFail;
  gs::ScopedFaultPlan fp(plan);

  ScopedTracing tracing;
  gp::ResilientOutcome ro;
  ASSERT_NO_THROW(ro = gp::run_solver_resilient<double>(
                      gp::SolverKind::hybrid, gs::gtx480(), batch));
  ASSERT_GE(ro.report.retries, 1u);

  const auto spans = obs::SpanTracer::instance().spans();
  const obs::Span* root = nullptr;
  for (const obs::Span& s : spans) {
    if (s.name == "resilient_solve") {
      ASSERT_EQ(root, nullptr) << "exactly one root span";
      root = &s;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent, 0u);

  static constexpr const char* kCodes[] = {
      "ok", "near_singular", "zero_pivot", "timed_out", "launch_failed",
      "singular", "deadline", "bad_size"};
  std::size_t attempts = 0;
  bool saw_launch_failed = false;
  for (const obs::Span& s : spans) {
    if (s.name != "attempt") continue;
    ++attempts;
    EXPECT_EQ(s.parent, root->id)
        << "every attempt must be a child of the resilient_solve root";
    const obs::JsonValue* code = find_attr(s, "code");
    ASSERT_NE(code, nullptr) << "attempt span missing its SolveCode cause";
    bool known = false;
    for (const char* c : kCodes) known = known || code->as_string() == c;
    EXPECT_TRUE(known) << "unknown SolveCode name " << code->as_string();
    if (code->as_string() == "launch_failed") saw_launch_failed = true;
    EXPECT_NE(find_attr(s, "stage"), nullptr);
    EXPECT_NE(find_attr(s, "systems"), nullptr);
    EXPECT_NE(find_attr(s, "recovered"), nullptr);
    EXPECT_NE(find_attr(s, "still_flagged"), nullptr);
  }
  EXPECT_EQ(attempts, ro.report.attempts.size())
      << "one attempt span per AttemptRecord";
  EXPECT_TRUE(saw_launch_failed)
      << "the injected launch failure's attempt must carry its cause";

  // The causal chain reaches the launches: every launch span parents
  // under an attempt (GPU dispatches happen only inside attempts here).
  std::size_t launches = 0;
  for (const obs::Span& s : spans) {
    if (s.name != "launch") continue;
    ++launches;
    const obs::Span* parent = nullptr;
    for (const obs::Span& p : spans) {
      if (p.id == s.parent) parent = &p;
    }
    ASSERT_NE(parent, nullptr) << "launch span with unresolvable parent";
    EXPECT_EQ(parent->name, "attempt");
  }
  EXPECT_GT(launches, 0u);
}

// ---- Prometheus text writer ------------------------------------------

TEST(Prometheus, NamesSanitizedAndSummariesEmitted) {
  EXPECT_EQ(obs::prometheus_name("gpusim.launch.time_us"),
            "gpusim_launch_time_us");
  EXPECT_EQ(obs::prometheus_name("0bad-name"), "_bad_name");

  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  obs::counter_handle("prom.count").add(3.0);
  obs::observe("prom.lat_us", 10.0);
  obs::observe("prom.lat_us", 20.0);
  const std::string text = obs::prometheus_text(reg);
  EXPECT_NE(text.find("# TYPE prom_count counter"), std::string::npos) << text;
  EXPECT_NE(text.find("prom_count 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prom_lat_us summary"), std::string::npos);
  EXPECT_NE(text.find("prom_lat_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("prom_lat_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("prom_lat_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("prom_lat_us_sum 30"), std::string::npos);
  reg.reset();
}
