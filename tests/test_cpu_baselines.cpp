// CPU baseline tests: the real batched gtsv solves correctly; the timing
// model reproduces the linearity and ratio properties the paper relies on.

#include <gtest/gtest.h>

#include "cpu_baselines/mkl_like.hpp"
#include "tridiag/lu_pivot.hpp"
#include "tridiag/residual.hpp"
#include "workloads/generators.hpp"

namespace td = tridsolve::tridiag;
namespace wl = tridsolve::workloads;
namespace cb = tridsolve::cpu;

TEST(CpuSolveBatch, SolvesEverySystem) {
  auto batch = wl::make_batch<double>(wl::Kind::random_dominant, 32, 200,
                                      td::Layout::contiguous, 5);
  const auto orig = batch.clone();
  ASSERT_TRUE(cb::solve_batch(batch).ok());
  auto check = orig.clone();
  for (std::size_t m = 0; m < 32; ++m) {
    std::vector<double> x(200);
    auto sys = check.system(m);
    ASSERT_TRUE(
        td::lu_gtsv<double>(sys, td::StridedView<double>(x.data(), 200, 1)).ok());
    for (std::size_t i = 0; i < 200; ++i) {
      EXPECT_NEAR(batch.d()[batch.index(m, i)], x[i], 1e-12);
    }
  }
}

TEST(CpuSolveBatch, WorksOnInterleavedLayout) {
  auto batch = wl::make_batch<double>(wl::Kind::spline, 8, 64,
                                      td::Layout::interleaved, 9);
  auto orig = batch.clone();
  ASSERT_TRUE(cb::solve_batch(batch).ok());
  for (std::size_t m = 0; m < 8; ++m) {
    // residual against the original coefficients
    auto osys = orig.system(m);
    auto ssys = batch.system(m);
    EXPECT_LT(td::relative_residual(td::as_const(osys),
                                    td::as_const(ssys).d),
              1e-13);
  }
}

TEST(CpuSolveBatch, PivotingHandlesWeakDiagonals) {
  auto batch = wl::make_batch<double>(wl::Kind::needs_pivoting, 4, 100,
                                      td::Layout::contiguous, 13);
  auto orig = batch.clone();
  ASSERT_TRUE(cb::solve_batch(batch).ok());
  for (std::size_t m = 0; m < 4; ++m) {
    auto osys = orig.system(m);
    auto ssys = batch.system(m);
    EXPECT_LT(td::relative_residual(td::as_const(osys), td::as_const(ssys).d),
              1e-10);
  }
}

TEST(CpuModel, SequentialIsLinearInMAndN) {
  const cb::CpuModel model;
  const double t1 = model.sequential_us(100, 512, true);
  EXPECT_NEAR(model.sequential_us(200, 512, true), 2.0 * t1, 1e-9);
  // Linear in N up to the per-call overhead.
  const double per_row =
      (model.sequential_us(1, 1024, true) - model.sequential_us(1, 512, true)) / 512;
  EXPECT_NEAR(per_row, 66.5 / (3.33 * 1e3), 1e-6);
}

TEST(CpuModel, MultithreadedRatioMatchesPaper) {
  // 49x / 8.3x = 5.9x MT speedup at saturation; M=1 gets no threading.
  const cb::CpuModel model;
  const double seq = model.sequential_us(16384, 512, true);
  const double mt = model.multithreaded_us(16384, 512, true);
  EXPECT_NEAR(seq / mt, 5.9, 0.01);
  EXPECT_DOUBLE_EQ(model.multithreaded_us(1, 4096, true),
                   model.sequential_us(1, 4096, true));
}

TEST(CpuModel, FewSystemsGetPartialSpeedup) {
  const cb::CpuModel model;
  // Large N so the one-off fork overhead is negligible: 3 systems -> ~3x.
  const double seq = model.sequential_us(3, 16384, true);
  const double mt = model.multithreaded_us(3, 16384, true);
  EXPECT_GT(seq / mt, 2.5);
  EXPECT_LT(seq / mt, 3.01);
}

TEST(CpuModel, SinglePrecisionIsCheaper) {
  const cb::CpuModel model;
  EXPECT_LT(model.sequential_us(1000, 512, false),
            model.sequential_us(1000, 512, true));
}
