// Tiled transpose kernel tests: correctness over shapes, coalescing on
// both sides, and the textbook shared-memory bank-conflict contrast
// between padded and unpadded tiles.

#include <gtest/gtest.h>

#include <vector>

#include "gpu_solvers/transpose_kernel.hpp"
#include "gpusim/device_spec.hpp"
#include "util/aligned_buffer.hpp"
#include "util/random.hpp"

namespace gp = tridsolve::gpu;
namespace gs = tridsolve::gpusim;
using tridsolve::util::Xoshiro256;

namespace {

std::vector<double> random_matrix(std::size_t rows, std::size_t cols,
                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> m(rows * cols);
  tridsolve::util::fill_uniform(rng, std::span<double>(m), -1.0, 1.0);
  return m;
}

}  // namespace

class TransposeShapes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(TransposeShapes, RoundTripAndElementwise) {
  const auto [rows, cols] = GetParam();
  const auto dev = gs::gtx480();
  const auto in = random_matrix(rows, cols, rows * 100 + cols);
  std::vector<double> out(rows * cols, 0.0);

  gp::transpose<double>(dev, in.data(), out.data(), rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_EQ(out[c * rows + r], in[r * cols + c]) << r << "," << c;
    }
  }

  std::vector<double> back(rows * cols, 0.0);
  gp::transpose<double>(dev, out.data(), back.data(), cols, rows);
  EXPECT_EQ(back, in);
}

using RC = std::tuple<std::size_t, std::size_t>;
INSTANTIATE_TEST_SUITE_P(Shapes, TransposeShapes,
                         ::testing::Values(RC{32, 32}, RC{64, 128}, RC{100, 60},
                                           RC{1, 77}, RC{77, 1}, RC{33, 31},
                                           RC{256, 256}));

TEST(Transpose, BothSidesCoalesced) {
  const auto dev = gs::gtx480();
  const std::size_t n = 256;
  // Segment-aligned storage, as cudaMalloc would hand out: otherwise every
  // 256-byte row access straddles an extra 128-byte segment.
  tridsolve::util::AlignedBuffer<double> in(n * n), out(n * n);
  Xoshiro256 rng(1);
  tridsolve::util::fill_uniform(rng, in.span(), -1.0, 1.0);
  const auto stats = gp::transpose<double>(dev, in.data(), out.data(), n, n);
  // 2 x n^2 useful element transfers; near-ideal transactions thanks to
  // the shared-memory staging.
  EXPECT_GT(stats.costs.coalescing_efficiency(dev.transaction_bytes), 0.9);
}

TEST(Transpose, PaddingRemovesBankConflicts) {
  const auto dev = gs::gtx480();
  const std::size_t n = 128;
  const auto in = random_matrix(n, n, 2);
  std::vector<double> out(n * n);

  gp::TransposeOptions padded;
  padded.pad_shared = true;
  gp::TransposeOptions naive;
  naive.pad_shared = false;
  const auto sp = gp::transpose<double>(dev, in.data(), out.data(), n, n, padded);
  const auto sn = gp::transpose<double>(dev, in.data(), out.data(), n, n, naive);

  EXPECT_GT(sn.costs.shared_serializations,
            8 * std::max<std::size_t>(1, sp.costs.shared_serializations));
  EXPECT_LE(sp.timing.time_us, sn.timing.time_us);
}

TEST(Transpose, RejectsBadTileConfig) {
  const auto dev = gs::gtx480();
  std::vector<double> a(16), b(16);
  gp::TransposeOptions opts;
  opts.tile = 30;
  opts.rows_per_thread = 4;  // 30 % 4 != 0
  EXPECT_THROW(gp::transpose<double>(dev, a.data(), b.data(), 4, 4, opts),
               std::invalid_argument);
}

TEST(Transpose, FloatAlsoWorks) {
  const auto dev = gs::gtx480();
  const std::size_t rows = 48, cols = 96;
  Xoshiro256 rng(3);
  std::vector<float> in(rows * cols), out(rows * cols);
  tridsolve::util::fill_uniform(rng, std::span<float>(in), -1.0f, 1.0f);
  gp::transpose<float>(dev, in.data(), out.data(), rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_EQ(out[c * rows + r], in[r * cols + c]);
    }
  }
}
